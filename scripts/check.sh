#!/bin/sh
# Tier-1 gate: configure + build + test both CMake presets.
#
#   scripts/check.sh          # default (RelWithDebInfo) and sanitize
#   scripts/check.sh --fast   # default preset only
#
# Run from the repository root. Any failure aborts with a non-zero
# exit code, so this is safe to use as a pre-commit / CI entry point.
set -eu

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
PRESETS="default sanitize"
[ "${1:-}" = "--fast" ] && PRESETS="default"

for preset in $PRESETS; do
    echo "== preset: $preset =="
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS"
    ctest --preset "$preset" -j "$JOBS" --output-on-failure
done

# The loopback server exercises event-loop/pool/session threading;
# sweep it under the sanitizers at more than one pool size (ctest
# above already ran it at the default). ServeMux* covers the
# multiplexed frontend, PollerBackends/WakePipe the readiness shim on
# both backends, Scenario* the composed-mix engine and its serving
# integration (parallel stream builds + isolated baselines),
# ServeRecorder*/ServeReplay* the flight recorder attached to a live
# server and the record->replay loop, StreamedBuild*/Arena* the
# out-of-core profile builder (spill I/O, k-way merge, parallel
# segment fitting) and the arena/flat-map storage, and
# KMeans*/Representative*/SampledValidate* the parallel clustering
# and per-cluster substrate sims behind sampled validation, all
# under ASan/UBSan.
# Skipped under --fast, which never builds the sanitize preset.
if [ "$PRESETS" != "default" ]; then
    for threads in 1 4; do
        echo "== sanitize serve sweep: $threads thread(s) =="
        MOCKTAILS_SERVE_TEST_THREADS="$threads" \
            build-sanitize/tests/mocktails_tests \
            --gtest_filter='ServeServer*:ServeMux*:*PollerBackends*:WakePipe*:Scenario*:ServeRecorder*:ServeReplay*:StreamedBuild*:Arena*:KMeans*:Representative*:SampledValidate*' \
            --gtest_brief=1
    done
fi

echo "== all checks passed =="
