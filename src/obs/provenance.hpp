/**
 * @file
 * Request provenance: which part of the model produced each request.
 *
 * A Mocktails synthetic stream is the merge of many per-leaf streams,
 * each driven by four independent McC feature models. When a metric
 * of the synthetic stream misses its baseline, the aggregate stream
 * cannot say *which leaf* (or which layer of the partitioning
 * hierarchy, or which Markov chain) produced the error. This module
 * carries that origin information as a side channel — one compact
 * record per synthesised request, index-aligned with the output trace
 * — so mem::Request itself never grows and the disabled path stays
 * bit-identical and free.
 *
 * The table has two levels:
 *  - LeafProvenance (one per leaf): the leaf's position in the
 *    hierarchy (path), its synthesis metadata, and the McC mode of
 *    each feature model (Constant vs Markov chain).
 *  - RequestOrigin (one per request): the emitting leaf plus the
 *    Markov state that produced the request's inter-arrival delta
 *    (-1 when the delta model is constant/absent, or for a leaf's
 *    first request, which has no delta).
 */

#ifndef MOCKTAILS_OBS_PROVENANCE_HPP
#define MOCKTAILS_OBS_PROVENANCE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace mocktails::obs
{

/** The McC family of one fitted feature model. */
enum class FeatureMode : std::uint8_t
{
    Absent = 0,   ///< no model (empty training sequence)
    Constant = 1, ///< single repeated value
    Markov = 2,   ///< first-order Markov chain
    Other = 3,    ///< custom model (e.g. the STM baseline)
};

/** Short name: "-", "const", "markov", "other". */
const char *toString(FeatureMode mode);

/**
 * Static origin metadata of one hierarchy leaf.
 */
struct LeafProvenance
{
    /**
     * Position in the partitioning hierarchy: the child ordinal at
     * each layer, "/"-joined (e.g. "2/0" = third temporal window,
     * first spatial region). Leaves synthesised from a bare profile
     * (no trace to re-partition) fall back to "leaf<N>".
     */
    std::string path;

    std::uint64_t count = 0;  ///< requests the leaf synthesises
    std::uint64_t addrLo = 0; ///< leaf address range, [lo, hi)
    std::uint64_t addrHi = 0;

    FeatureMode deltaTime = FeatureMode::Absent;
    FeatureMode stride = FeatureMode::Absent;
    FeatureMode op = FeatureMode::Absent;
    FeatureMode size = FeatureMode::Absent;
};

/**
 * Per-request origin, index-aligned with the synthesised trace.
 */
struct RequestOrigin
{
    std::uint32_t leaf = 0;      ///< index into ProvenanceTable::leaves
    std::int32_t deltaState = -1; ///< Markov state of the delta, or -1
};

/**
 * The provenance side channel of one synthesis run.
 *
 * Filled by core::SynthesisEngine / core::synthesize when a table is
 * passed in; origins()[i] describes the i-th request of the output
 * trace.
 */
class ProvenanceTable
{
  public:
    std::vector<LeafProvenance> &leaves() { return leaves_; }
    const std::vector<LeafProvenance> &leaves() const { return leaves_; }

    std::vector<RequestOrigin> &origins() { return origins_; }
    const std::vector<RequestOrigin> &origins() const { return origins_; }

    /** Drop all recorded state (e.g. between synthesis runs). */
    void
    clear()
    {
        leaves_.clear();
        origins_.clear();
    }

    /**
     * Requests emitted by each leaf, summed over origins(). The vector
     * has leaves().size() entries.
     */
    std::vector<std::uint64_t> requestsPerLeaf() const;

  private:
    std::vector<LeafProvenance> leaves_;
    std::vector<RequestOrigin> origins_;
};

} // namespace mocktails::obs

#endif // MOCKTAILS_OBS_PROVENANCE_HPP
