#include "obs/provenance.hpp"

namespace mocktails::obs
{

const char *
toString(FeatureMode mode)
{
    switch (mode) {
      case FeatureMode::Absent:
        return "-";
      case FeatureMode::Constant:
        return "const";
      case FeatureMode::Markov:
        return "markov";
      case FeatureMode::Other:
        return "other";
    }
    return "?";
}

std::vector<std::uint64_t>
ProvenanceTable::requestsPerLeaf() const
{
    std::vector<std::uint64_t> counts(leaves_.size(), 0);
    for (const RequestOrigin &origin : origins_) {
        if (origin.leaf < counts.size())
            ++counts[origin.leaf];
    }
    return counts;
}

} // namespace mocktails::obs
