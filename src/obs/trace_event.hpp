/**
 * @file
 * Bounded trace-event recording in Chrome trace_event format.
 *
 * Telemetry (src/telemetry) answers *how much*; this module answers
 * *when and from where*: discrete events — a synthetic request being
 * emitted, a DRAM burst occupying the bus, a cache miss — recorded
 * with their simulated timestamp and an origin track, so a whole run
 * can be opened in chrome://tracing or Perfetto and scrubbed along
 * the simulated timeline.
 *
 * Design constraints mirror the telemetry subsystem:
 *  - Disabled is free: instrumentation sites guard on collector()
 *    returning nullptr (one pointer load) and never touch the
 *    simulated state, so runs without tracing are bit-identical.
 *  - Bounded and lossy-safe: the writer owns a fixed event budget;
 *    once full, further events are counted as dropped instead of
 *    growing without bound. A truncated file is still valid JSON and
 *    still loads in the viewer.
 *  - Two serialisations: the JSON "traceEvents" array the Chrome/
 *    Perfetto UIs consume, and a compact varint-packed binary form
 *    (same codec family as traces/profiles) for archival.
 *
 * Timestamps: the trace_event "ts" field is nominally microseconds.
 * Simulated ticks are written through 1:1 — one tick displays as one
 * microsecond, which preserves every ratio the viewer shows.
 */

#ifndef MOCKTAILS_OBS_TRACE_EVENT_HPP
#define MOCKTAILS_OBS_TRACE_EVENT_HPP

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mocktails::obs
{

/**
 * Track-id ("tid") conventions of the built-in instrumentation, so
 * the different subsystems land on disjoint, stably-named tracks in
 * the viewer.
 */
namespace track
{
constexpr std::uint32_t kMerge = 0;       ///< synthesis merge counters
constexpr std::uint32_t kDramBase = 1;    ///< + DRAM channel index
constexpr std::uint32_t kCacheL1 = 900;   ///< L1 miss events
constexpr std::uint32_t kCacheL2 = 901;   ///< L2 miss events
constexpr std::uint32_t kLeafBase = 1000; ///< + synthesis leaf index
constexpr std::uint32_t kScenarioBase = 2000; ///< + scenario device index
} // namespace track

/**
 * One recorded event. Names, categories and argument keys are
 * interned; args hold integer values only (enough for ids, rows,
 * depths and flags, and it keeps the binary form compact).
 */
struct TraceEvent
{
    std::uint32_t name = 0;     ///< index into the intern table
    std::uint32_t category = 0; ///< index into the intern table
    char phase = 'i';           ///< 'X' complete, 'i' instant, 'C' counter
    std::uint64_t ts = 0;       ///< simulated tick
    std::uint64_t dur = 0;      ///< duration in ticks ('X' only)
    std::uint32_t tid = 0;      ///< track: leaf id, channel id, ...
    /// (interned key, value) pairs rendered into "args".
    std::vector<std::pair<std::uint32_t, std::int64_t>> args;
};

/**
 * Collects events up to a fixed budget and serialises them.
 *
 * Thread-safe: recording takes a mutex. All built-in instrumentation
 * sites sit on single-threaded code (the event-driven simulators and
 * the synthesis merge loops), so the lock is uncontended there; the
 * guard exists so user code may record from worker threads too.
 */
class TraceEventWriter
{
  public:
    /** Named argument passed alongside an event. */
    using Arg = std::pair<const char *, std::int64_t>;

    /** @param max_events Event budget; further events are dropped. */
    explicit TraceEventWriter(std::size_t max_events = kDefaultMaxEvents);

    static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

    /// @name Recording
    /// @{

    /** A duration on track @p tid: [ts, ts + dur). */
    void complete(const char *name, const char *category,
                  std::uint64_t ts, std::uint64_t dur, std::uint32_t tid,
                  std::initializer_list<Arg> args = {});

    /** A point event on track @p tid. */
    void instant(const char *name, const char *category, std::uint64_t ts,
                 std::uint32_t tid, std::initializer_list<Arg> args = {});

    /** A sampled counter series (rendered as a chart in the viewer). */
    void counter(const char *name, const char *category, std::uint64_t ts,
                 std::int64_t value, std::uint32_t tid = 0);

    /** Label track @p tid as @p name in the viewer (metadata event). */
    void nameTrack(std::uint32_t tid, const std::string &name);

    /// @}

    /** Events currently held. */
    std::size_t size() const;

    /** Events rejected because the budget was exhausted. */
    std::uint64_t dropped() const;

    /** The event budget this writer was built with. */
    std::size_t capacity() const { return max_events_; }

    /// @name Serialisation
    /// @{

    /** Render the Chrome trace_event JSON object. */
    std::string toJson() const;

    /** Serialise to the compact binary form. */
    std::vector<std::uint8_t> encode() const;

    /** Rebuild a writer from encode() bytes. @return false if corrupt. */
    static bool decode(const std::vector<std::uint8_t> &bytes,
                       TraceEventWriter &writer);

    /** Write toJson() (path ending ".json") to a file. */
    bool saveJson(const std::string &path) const;

    /** Write encode() bytes to a file. */
    bool saveBinary(const std::string &path) const;

    /// @}

    /// Test/inspection access to the raw events and intern table.
    const std::vector<TraceEvent> &events() const { return events_; }
    const std::string &internedString(std::uint32_t id) const
    {
        return strings_[id];
    }

  private:
    std::uint32_t intern(const std::string &s);
    void record(TraceEvent event);

    mutable std::mutex mutex_;
    std::size_t max_events_;
    std::uint64_t dropped_ = 0;
    std::vector<std::string> strings_;
    std::vector<TraceEvent> events_;
    /// (tid, interned name) labels emitted as metadata events.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> track_names_;
};

/// @name Global collector
/// Instrumentation sites check collector() — a single pointer load —
/// and record only when a writer is installed, so runs without
/// tracing pay nothing and stay bit-identical.
/// @{

/** The currently installed writer, or nullptr (tracing off). */
TraceEventWriter *collector();

/**
 * Install (or with nullptr remove) the global writer. The caller
 * keeps ownership and must uninstall before destroying the writer.
 */
void setCollector(TraceEventWriter *writer);

/**
 * RAII installation of a writer for one scope (e.g. one validate
 * run). Restores the previous collector on destruction.
 */
class ScopedCollector
{
  public:
    explicit ScopedCollector(TraceEventWriter &writer)
        : previous_(collector())
    {
        setCollector(&writer);
    }

    ~ScopedCollector() { setCollector(previous_); }

    ScopedCollector(const ScopedCollector &) = delete;
    ScopedCollector &operator=(const ScopedCollector &) = delete;

  private:
    TraceEventWriter *previous_;
};

/// @}

} // namespace mocktails::obs

#endif // MOCKTAILS_OBS_TRACE_EVENT_HPP
