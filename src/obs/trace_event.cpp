#include "obs/trace_event.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "util/codec.hpp"

namespace mocktails::obs
{

namespace
{

std::atomic<TraceEventWriter *> g_collector{nullptr};

constexpr std::uint64_t kMagic = 0x4d4b5445; // "MKTE"
constexpr std::uint64_t kVersion = 1;

/** Append @p s to @p out with JSON string escaping. */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

TraceEventWriter *
collector()
{
    return g_collector.load(std::memory_order_acquire);
}

void
setCollector(TraceEventWriter *writer)
{
    g_collector.store(writer, std::memory_order_release);
}

TraceEventWriter::TraceEventWriter(std::size_t max_events)
    : max_events_(max_events)
{
    // Id 0 is the empty string so "no name" needs no special case.
    strings_.emplace_back();
}

std::uint32_t
TraceEventWriter::intern(const std::string &s)
{
    // Linear scan is fine: instrumentation uses a handful of fixed
    // names, and the scan avoids keeping a side map coherent with
    // decode()'s direct table rebuild.
    for (std::uint32_t i = 0; i < strings_.size(); ++i) {
        if (strings_[i] == s)
            return i;
    }
    strings_.push_back(s);
    return static_cast<std::uint32_t>(strings_.size() - 1);
}

void
TraceEventWriter::record(TraceEvent event)
{
    if (events_.size() >= max_events_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(event));
}

void
TraceEventWriter::complete(const char *name, const char *category,
                           std::uint64_t ts, std::uint64_t dur,
                           std::uint32_t tid,
                           std::initializer_list<Arg> args)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent event;
    event.phase = 'X';
    event.name = intern(name);
    event.category = intern(category);
    event.ts = ts;
    event.dur = dur;
    event.tid = tid;
    for (const Arg &arg : args)
        event.args.emplace_back(intern(arg.first), arg.second);
    record(std::move(event));
}

void
TraceEventWriter::instant(const char *name, const char *category,
                          std::uint64_t ts, std::uint32_t tid,
                          std::initializer_list<Arg> args)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent event;
    event.phase = 'i';
    event.name = intern(name);
    event.category = intern(category);
    event.ts = ts;
    event.tid = tid;
    for (const Arg &arg : args)
        event.args.emplace_back(intern(arg.first), arg.second);
    record(std::move(event));
}

void
TraceEventWriter::counter(const char *name, const char *category,
                          std::uint64_t ts, std::int64_t value,
                          std::uint32_t tid)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent event;
    event.phase = 'C';
    event.name = intern(name);
    event.category = intern(category);
    event.ts = ts;
    event.tid = tid;
    event.args.emplace_back(intern("value"), value);
    record(std::move(event));
}

void
TraceEventWriter::nameTrack(std::uint32_t tid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Last label wins; repeated naming (one call per run) stays one
    // metadata event per track.
    for (auto &entry : track_names_) {
        if (entry.first == tid) {
            entry.second = intern(name);
            return;
        }
    }
    track_names_.emplace_back(tid, intern(name));
}

std::size_t
TraceEventWriter::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::uint64_t
TraceEventWriter::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::string
TraceEventWriter::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    // ~96 bytes per rendered event is a close upper bound for the
    // built-in instrumentation; reserve to avoid quadratic growth.
    out.reserve(64 + events_.size() * 96);
    out += "{\"traceEvents\":[";
    bool first = true;
    char buf[96];

    for (const auto &[tid, name] : track_names_) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,";
        std::snprintf(buf, sizeof(buf), "\"tid\":%u,\"args\":{\"name\":",
                      tid);
        out += buf;
        appendJsonString(out, strings_[name]);
        out += "}}";
    }

    for (const TraceEvent &e : events_) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"ph\":\"";
        out += e.phase;
        out += "\",\"name\":";
        appendJsonString(out, strings_[e.name]);
        out += ",\"cat\":";
        appendJsonString(out, strings_[e.category]);
        std::snprintf(buf, sizeof(buf),
                      ",\"ts\":%llu,\"pid\":1,\"tid\":%u",
                      static_cast<unsigned long long>(e.ts), e.tid);
        out += buf;
        if (e.phase == 'X') {
            std::snprintf(buf, sizeof(buf), ",\"dur\":%llu",
                          static_cast<unsigned long long>(e.dur));
            out += buf;
        }
        if (e.phase == 'i')
            out += ",\"s\":\"t\""; // instant scoped to its track
        if (!e.args.empty()) {
            out += ",\"args\":{";
            bool first_arg = true;
            for (const auto &[key, value] : e.args) {
                if (!first_arg)
                    out += ',';
                first_arg = false;
                appendJsonString(out, strings_[key]);
                std::snprintf(buf, sizeof(buf), ":%lld",
                              static_cast<long long>(value));
                out += buf;
            }
            out += '}';
        }
        out += '}';
    }
    out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(dropped_));
    out += buf;
    out += "}}";
    return out;
}

std::vector<std::uint8_t>
TraceEventWriter::encode() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    util::ByteWriter w;
    w.putVarint(kMagic);
    w.putVarint(kVersion);
    w.putVarint(dropped_);

    w.putVarint(strings_.size());
    for (const std::string &s : strings_)
        w.putString(s);

    w.putVarint(track_names_.size());
    for (const auto &[tid, name] : track_names_) {
        w.putVarint(tid);
        w.putVarint(name);
    }

    w.putVarint(events_.size());
    std::uint64_t last_ts = 0;
    for (const TraceEvent &e : events_) {
        w.putByte(static_cast<std::uint8_t>(e.phase));
        w.putVarint(e.name);
        w.putVarint(e.category);
        // Events arrive roughly time-ordered per source; delta-encode
        // the timestamps so the common case packs into 1-2 bytes.
        w.putSigned(static_cast<std::int64_t>(e.ts - last_ts));
        last_ts = e.ts;
        w.putVarint(e.dur);
        w.putVarint(e.tid);
        w.putVarint(e.args.size());
        for (const auto &[key, value] : e.args) {
            w.putVarint(key);
            w.putSigned(value);
        }
    }
    return w.bytes();
}

bool
TraceEventWriter::decode(const std::vector<std::uint8_t> &bytes,
                         TraceEventWriter &writer)
{
    util::ByteReader r(bytes);
    if (r.getVarint() != kMagic || r.getVarint() != kVersion)
        return false;

    TraceEventWriter out;
    out.dropped_ = r.getVarint();

    const std::uint64_t n_strings = r.getVarint();
    if (!r.ok() || n_strings == 0 || n_strings > r.remaining() + 1)
        return false;
    out.strings_.clear();
    out.strings_.reserve(n_strings);
    for (std::uint64_t i = 0; i < n_strings; ++i)
        out.strings_.push_back(r.getString());

    const std::uint64_t n_tracks = r.getVarint();
    if (!r.ok() || n_tracks > r.remaining() + 1)
        return false;
    for (std::uint64_t i = 0; i < n_tracks; ++i) {
        const auto tid = static_cast<std::uint32_t>(r.getVarint());
        const auto name = static_cast<std::uint32_t>(r.getVarint());
        if (name >= out.strings_.size())
            return false;
        out.track_names_.emplace_back(tid, name);
    }

    const std::uint64_t n_events = r.getVarint();
    // Each encoded event is at least 7 bytes.
    if (!r.ok() || n_events > r.remaining() / 7 + 1)
        return false;
    out.events_.reserve(n_events);
    out.max_events_ =
        std::max<std::size_t>(out.max_events_, n_events);
    std::uint64_t last_ts = 0;
    for (std::uint64_t i = 0; i < n_events; ++i) {
        TraceEvent e;
        e.phase = static_cast<char>(r.getByte());
        e.name = static_cast<std::uint32_t>(r.getVarint());
        e.category = static_cast<std::uint32_t>(r.getVarint());
        last_ts += static_cast<std::uint64_t>(r.getSigned());
        e.ts = last_ts;
        e.dur = r.getVarint();
        e.tid = static_cast<std::uint32_t>(r.getVarint());
        const std::uint64_t n_args = r.getVarint();
        if (!r.ok() || n_args > r.remaining() + 1)
            return false;
        for (std::uint64_t a = 0; a < n_args; ++a) {
            const auto key = static_cast<std::uint32_t>(r.getVarint());
            const std::int64_t value = r.getSigned();
            e.args.emplace_back(key, value);
        }
        if (e.name >= out.strings_.size() ||
            e.category >= out.strings_.size())
            return false;
        out.events_.push_back(std::move(e));
    }
    if (!r.ok())
        return false;

    // The mutex makes the writer non-movable; hand the decoded state
    // over field by field under the destination's lock.
    std::lock_guard<std::mutex> lock(writer.mutex_);
    writer.max_events_ = std::max(writer.max_events_, out.max_events_);
    writer.dropped_ = out.dropped_;
    writer.strings_ = std::move(out.strings_);
    writer.track_names_ = std::move(out.track_names_);
    writer.events_ = std::move(out.events_);
    return true;
}

bool
TraceEventWriter::saveJson(const std::string &path) const
{
    const std::string json = toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    return std::fclose(f) == 0 && written == json.size();
}

bool
TraceEventWriter::saveBinary(const std::string &path) const
{
    return util::saveBytes(path, encode());
}

} // namespace mocktails::obs
