#include "telemetry/span.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

namespace mocktails::telemetry
{

namespace
{

/** The calling thread's stack of open spans (registry, index). */
thread_local std::vector<std::pair<MetricsRegistry *, std::int32_t>>
    t_span_stack;

} // namespace

std::int64_t
steadyNowNs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point origin = clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               clock::now() - origin)
        .count();
}

Span::Span(MetricsRegistry &registry, const std::string &name)
{
    if (!enabled())
        return;
    registry_ = &registry;
    start_ns_ = steadyNowNs();

    // The innermost open span of the same registry on this thread is
    // the parent.
    std::int32_t parent = -1;
    std::int32_t depth = 0;
    for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend();
         ++it) {
        if (it->first == registry_) {
            parent = it->second;
            break;
        }
    }
    for (const auto &[reg, index] : t_span_stack)
        depth += reg == registry_ ? 1 : 0;

    index_ = registry_->beginSpan(name, parent, depth, start_ns_);
    t_span_stack.emplace_back(registry_, index_);
}

Span::~Span()
{
    if (registry_ == nullptr)
        return;
    registry_->endSpan(index_, steadyNowNs() - start_ns_);
    // RAII scopes unwind in order, so this span is the top entry.
    if (!t_span_stack.empty() &&
        t_span_stack.back() == std::make_pair(registry_, index_)) {
        t_span_stack.pop_back();
    }
}

ScopedTimer::ScopedTimer(MetricsRegistry &registry,
                         const std::string &name)
{
    if (!enabled())
        return;
    calls_ = &registry.counter(name + ".calls");
    ns_ = &registry.counter(name + ".ns");
    start_ns_ = steadyNowNs();
}

ScopedTimer::~ScopedTimer()
{
    if (calls_ == nullptr)
        return;
    calls_->add(1);
    ns_->add(static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, steadyNowNs() - start_ns_)));
}

} // namespace mocktails::telemetry
