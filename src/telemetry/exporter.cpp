#include "telemetry/exporter.hpp"

#include <cstdio>
#include <fstream>

namespace mocktails::telemetry
{

namespace
{

/** JSON string escaping for metric names (control chars, quote, \). */
std::string
escapeJson(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Shortest round-trip double without locale surprises. */
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/** CSV-quote a field when it contains a separator or quote. */
std::string
csvField(const std::string &in)
{
    if (in.find_first_of(",\"\n") == std::string::npos)
        return in;
    std::string out = "\"";
    for (const char c : in) {
        out += c;
        if (c == '"')
            out += '"';
    }
    out += '"';
    return out;
}

} // namespace

void
JsonlExporter::render(const Snapshot &snapshot, std::uint64_t seq,
                      const ExportOptions &options, std::ostream &out)
{
    out << "{\"type\":\"snapshot\",\"seq\":" << seq;
    if (options.includeTimes)
        out << ",\"unix_ns\":" << snapshot.wallUnixNs;
    out << "}\n";

    for (const auto &c : snapshot.counters) {
        out << "{\"type\":\"counter\",\"seq\":" << seq << ",\"name\":\""
            << escapeJson(c.name) << "\",\"value\":" << c.value
            << "}\n";
    }
    for (const auto &g : snapshot.gauges) {
        out << "{\"type\":\"gauge\",\"seq\":" << seq << ",\"name\":\""
            << escapeJson(g.name) << "\",\"value\":" << g.value
            << "}\n";
    }
    for (const auto &h : snapshot.histograms) {
        out << "{\"type\":\"histogram\",\"seq\":" << seq
            << ",\"name\":\"" << escapeJson(h.name) << "\",\"edges\":[";
        for (std::size_t i = 0; i < h.edges.size(); ++i)
            out << (i ? "," : "") << h.edges[i];
        out << "],\"counts\":[";
        for (std::size_t i = 0; i < h.counts.size(); ++i)
            out << (i ? "," : "") << h.counts[i];
        out << "],\"total\":" << h.total
            << ",\"mean\":" << formatDouble(h.mean) << "}\n";
    }
    for (const auto &s : snapshot.spans) {
        out << "{\"type\":\"span\",\"seq\":" << seq << ",\"name\":\""
            << escapeJson(s.name) << "\",\"parent\":" << s.parent
            << ",\"depth\":" << s.depth;
        if (options.includeTimes) {
            out << ",\"start_ns\":" << s.startNs
                << ",\"duration_ns\":" << s.durationNs;
        }
        out << "}\n";
    }
}

struct JsonlExporter::Impl
{
    std::ofstream file;
    ExportOptions options;
    std::uint64_t seq = 0;
};

JsonlExporter::JsonlExporter(const std::string &path,
                             ExportOptions options)
    : impl_(std::make_unique<Impl>())
{
    impl_->file.open(path, std::ios::app);
    impl_->options = options;
}

JsonlExporter::~JsonlExporter() = default;

bool
JsonlExporter::ok() const
{
    return impl_->file.is_open() && impl_->file.good();
}

void
JsonlExporter::write(const Snapshot &snapshot)
{
    render(snapshot, impl_->seq++, impl_->options, impl_->file);
    impl_->file.flush();
}

void
CsvExporter::render(const Snapshot &snapshot, std::uint64_t seq,
                    const ExportOptions &options, bool header,
                    std::ostream &out)
{
    if (header)
        out << "seq,kind,name,bucket,value\n";
    if (options.includeTimes) {
        out << seq << ",snapshot,unix_ns,," << snapshot.wallUnixNs
            << "\n";
    }
    for (const auto &c : snapshot.counters) {
        out << seq << ",counter," << csvField(c.name) << ",,"
            << c.value << "\n";
    }
    for (const auto &g : snapshot.gauges) {
        out << seq << ",gauge," << csvField(g.name) << ",," << g.value
            << "\n";
    }
    for (const auto &h : snapshot.histograms) {
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            out << seq << ",histogram," << csvField(h.name) << ",";
            if (b < h.edges.size())
                out << h.edges[b];
            else
                out << "inf";
            out << "," << h.counts[b] << "\n";
        }
    }
    for (const auto &s : snapshot.spans) {
        out << seq << ",span," << csvField(s.name) << ","
            << s.depth << ","
            << (options.includeTimes ? s.durationNs : 0) << "\n";
    }
}

struct CsvExporter::Impl
{
    std::ofstream file;
    ExportOptions options;
    std::uint64_t seq = 0;
    bool needHeader = true;
};

CsvExporter::CsvExporter(const std::string &path, ExportOptions options)
    : impl_(std::make_unique<Impl>())
{
    // Only a fresh file gets the header; appending to an earlier
    // run's file keeps it parseable as one table.
    {
        std::ifstream existing(path);
        impl_->needHeader = !existing.good() ||
                            existing.peek() == std::ifstream::
                                                   traits_type::eof();
    }
    impl_->file.open(path, std::ios::app);
    impl_->options = options;
}

CsvExporter::~CsvExporter() = default;

bool
CsvExporter::ok() const
{
    return impl_->file.is_open() && impl_->file.good();
}

void
CsvExporter::write(const Snapshot &snapshot)
{
    render(snapshot, impl_->seq++, impl_->options, impl_->needHeader,
           impl_->file);
    impl_->needHeader = false;
    impl_->file.flush();
}

std::unique_ptr<Exporter>
makeFileExporter(const std::string &path)
{
    const bool csv = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv)
        return std::make_unique<CsvExporter>(path);
    return std::make_unique<JsonlExporter>(path);
}

PeriodicExporter::PeriodicExporter(MetricsRegistry &registry,
                                   std::unique_ptr<Exporter> exporter,
                                   std::chrono::milliseconds interval)
    : registry_(registry), exporter_(std::move(exporter)),
      interval_(interval)
{
    thread_ = std::thread([this] {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            if (cv_.wait_for(lock, interval_,
                             [this] { return stop_; })) {
                return;
            }
            lock.unlock();
            exporter_->write(registry_.snapshot());
            lock.lock();
        }
    });
}

PeriodicExporter::~PeriodicExporter()
{
    stop();
}

void
PeriodicExporter::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_)
            return;
        stop_ = true;
        stopped_ = true;
    }
    cv_.notify_all();
    thread_.join();
    exporter_->write(registry_.snapshot());
}

} // namespace mocktails::telemetry
