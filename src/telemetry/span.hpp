/**
 * @file
 * RAII wall-time instrumentation: Span and ScopedTimer.
 *
 * A Span records one timed interval with parent/child nesting: spans
 * opened while another span is active on the same thread become its
 * children, so a snapshot reconstructs the phase tree of a pipeline
 * run (profile.build -> profile.partition / profile.fit -> ...).
 *
 * A ScopedTimer is the cheap aggregate variant: it folds its elapsed
 * time into a pair of counters ("<name>.calls", "<name>.ns") instead
 * of recording individual intervals — right for phases that repeat
 * many times per run.
 *
 * Both are no-ops while telemetry is disabled (the enabled() check in
 * the constructor is a single relaxed load).
 */

#ifndef MOCKTAILS_TELEMETRY_SPAN_HPP
#define MOCKTAILS_TELEMETRY_SPAN_HPP

#include <cstdint>
#include <string>

#include "telemetry/metrics.hpp"

namespace mocktails::telemetry
{

/** Nanoseconds on the steady clock since the process started. */
std::int64_t steadyNowNs();

/**
 * One timed interval in the span tree. Must be destroyed on the
 * thread that created it (RAII scopes guarantee this).
 */
class Span
{
  public:
    /** Opens a span in the global registry (if telemetry is on). */
    explicit Span(const std::string &name)
        : Span(MetricsRegistry::global(), name)
    {}

    Span(MetricsRegistry &registry, const std::string &name);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    MetricsRegistry *registry_ = nullptr; ///< null when inactive
    std::int32_t index_ = -1;
    std::int64_t start_ns_ = 0;
};

/**
 * Accumulates elapsed wall time into "<name>.calls" / "<name>.ns".
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const std::string &name)
        : ScopedTimer(MetricsRegistry::global(), name)
    {}

    ScopedTimer(MetricsRegistry &registry, const std::string &name);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Counter *calls_ = nullptr; ///< null when inactive
    Counter *ns_ = nullptr;
    std::int64_t start_ns_ = 0;
};

} // namespace mocktails::telemetry

#endif // MOCKTAILS_TELEMETRY_SPAN_HPP
