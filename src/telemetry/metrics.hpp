/**
 * @file
 * Low-overhead process-wide metrics: counters, gauges and fixed-bucket
 * histograms.
 *
 * Design goals (see DESIGN.md "Telemetry"):
 *  - Hot paths pay one relaxed atomic increment. Every counter and
 *    histogram is internally sharded into cache-line-sized slots; a
 *    thread always touches its own shard, so concurrent increments
 *    from the thread pool never contend on one cache line. snapshot()
 *    sums the shards.
 *  - Metric handles (Counter&, Gauge&, FixedHistogram&) returned by
 *    MetricsRegistry are stable for the registry's lifetime, so
 *    instrumented components resolve a name once and keep the pointer.
 *  - Collection is opt-in: instrumentation sites guard on enabled()
 *    (a single relaxed bool load), so a build without --telemetry
 *    pays essentially nothing.
 *
 * Naming scheme: lower-case dotted paths, "<subsystem>.<metric>" or
 * "<subsystem>.<component>.<metric>", e.g. "partition.leaves",
 * "dram.channel0.read_bursts", "pool.steals". Durations are counters
 * suffixed ".ns"; distributions are histograms.
 */

#ifndef MOCKTAILS_TELEMETRY_METRICS_HPP
#define MOCKTAILS_TELEMETRY_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mocktails::telemetry
{

/// Shards per metric; increments spread over these by thread.
constexpr std::size_t kShards = 16;

/** Stable per-thread shard slot in [0, kShards). */
std::size_t shardIndex();

/** True when telemetry collection is switched on (default off). */
bool enabled();

/** Globally enable/disable collection at instrumentation sites. */
void setEnabled(bool on);

/**
 * A monotonically increasing event count (sharded, thread-safe).
 */
class Counter
{
  public:
    /** Add @p n to the calling thread's shard (relaxed). */
    void
    add(std::uint64_t n = 1)
    {
        shards_[shardIndex()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Sum over all shards. Safe concurrently with add(). */
    std::uint64_t
    value() const
    {
        std::uint64_t sum = 0;
        for (const auto &shard : shards_)
            sum += shard.value.load(std::memory_order_relaxed);
        return sum;
    }

    /** Zero every shard (not atomic w.r.t. concurrent add()). */
    void
    reset()
    {
        for (auto &shard : shards_)
            shard.value.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> value{0};
    };
    std::array<Shard, kShards> shards_{};
};

/**
 * A last-writer-wins instantaneous value (thread-safe).
 */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { set(0); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * A histogram over fixed, immutable bucket edges (sharded,
 * thread-safe).
 *
 * Bucket-edge semantics (shared with util::Histogram::dense()):
 * @p edges are ascending *exclusive upper bounds*. With k edges there
 * are k + 1 buckets: bucket i (i < k) counts values v with
 * edges[i-1] <= v < edges[i]; underflow (v < edges[0]) clamps into
 * bucket 0 and overflow (v >= edges[k-1]) into the final bucket k.
 */
class FixedHistogram
{
  public:
    /** @pre edges is non-empty and strictly ascending. */
    explicit FixedHistogram(std::vector<std::int64_t> edges);

    /** Record @p weight observations of @p value. */
    void record(std::int64_t value, std::uint64_t weight = 1);

    /** Number of buckets (edges + 1, including overflow). */
    std::size_t buckets() const { return edges_.size() + 1; }

    const std::vector<std::int64_t> &edges() const { return edges_; }

    /** Bucket the value would land in (see class comment). */
    std::size_t bucketFor(std::int64_t value) const;

    /** Per-bucket totals summed over shards. */
    std::vector<std::uint64_t> counts() const;

    /** Total observations. */
    std::uint64_t total() const;

    /** Mean of all recorded values (0 when empty). */
    double mean() const;

    /** Zero every bucket (not atomic w.r.t. concurrent record()). */
    void reset();

    /// @name Edge builders
    /// @{

    /** n evenly spaced edges covering [lo, hi). */
    static std::vector<std::int64_t>
    linearEdges(std::int64_t lo, std::int64_t hi, std::size_t n);

    /** Power-of-two edges first, 2*first, ... up to and incl. limit. */
    static std::vector<std::int64_t>
    exponentialEdges(std::int64_t first, std::int64_t limit);

    /// @}

  private:
    std::vector<std::int64_t> edges_;
    /// Flat [shard][bucket] counts; atomics are never moved after
    /// construction.
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
    struct alignas(64) SumShard
    {
        std::atomic<std::int64_t> sum{0};
    };
    std::array<SumShard, kShards> sums_{};
};

/**
 * One finished Span (see span.hpp), as captured by a snapshot.
 */
struct SpanSample
{
    std::string name;
    std::int32_t parent = -1; ///< index into Snapshot::spans, -1 = root
    std::int32_t depth = 0;
    std::int64_t startNs = 0; ///< steady-clock, relative to process
    std::int64_t durationNs = 0;
};

/**
 * A point-in-time copy of every metric, sorted by name.
 */
struct Snapshot
{
    struct CounterSample
    {
        std::string name;
        std::uint64_t value = 0;
    };

    struct GaugeSample
    {
        std::string name;
        std::int64_t value = 0;
    };

    struct HistogramSample
    {
        std::string name;
        std::vector<std::int64_t> edges;
        std::vector<std::uint64_t> counts;
        std::uint64_t total = 0;
        double mean = 0.0;
    };

    std::int64_t wallUnixNs = 0; ///< wall-clock time of the snapshot
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;
    std::vector<SpanSample> spans; ///< finished spans, start order
};

/**
 * Owns every named metric. Handles stay valid until the registry is
 * destroyed; values can be zeroed with reset() but metrics are never
 * removed.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry used by built-in instrumentation. */
    static MetricsRegistry &global();

    /** Find-or-create; one object per name for the registry's life. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /**
     * Find-or-create. The first registration of a name fixes its
     * bucket edges; later lookups ignore @p edges.
     */
    FixedHistogram &histogram(const std::string &name,
                              std::vector<std::int64_t> edges);

    /// @name Span bookkeeping (used by telemetry::Span)
    /// @{
    std::int32_t beginSpan(std::string name, std::int32_t parent,
                           std::int32_t depth, std::int64_t start_ns);
    void endSpan(std::int32_t index, std::int64_t duration_ns);
    /// @}

    /** Copy every metric (and finished span) at this instant. */
    Snapshot snapshot() const;

    /** Zero all values and drop spans; handles stay valid. */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<FixedHistogram>> histograms_;

    mutable std::mutex span_mutex_;
    std::vector<SpanSample> spans_;
};

} // namespace mocktails::telemetry

#endif // MOCKTAILS_TELEMETRY_METRICS_HPP
