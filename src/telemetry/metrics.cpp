#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace mocktails::telemetry
{

namespace
{

std::atomic<bool> g_enabled{false};

std::int64_t
wallUnixNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace

std::size_t
shardIndex()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t index =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return index;
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

FixedHistogram::FixedHistogram(std::vector<std::int64_t> edges)
    : edges_(std::move(edges))
{
    assert(!edges_.empty());
    assert(std::is_sorted(edges_.begin(), edges_.end()) &&
           std::adjacent_find(edges_.begin(), edges_.end()) ==
               edges_.end());
    counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        kShards * buckets());
    for (std::size_t i = 0; i < kShards * buckets(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

std::size_t
FixedHistogram::bucketFor(std::int64_t value) const
{
    // First bucket whose exclusive upper edge is above the value;
    // v >= last edge lands in the final (overflow) bucket.
    const auto it =
        std::upper_bound(edges_.begin(), edges_.end(), value);
    return static_cast<std::size_t>(it - edges_.begin());
}

void
FixedHistogram::record(std::int64_t value, std::uint64_t weight)
{
    const std::size_t shard = shardIndex();
    counts_[shard * buckets() + bucketFor(value)].fetch_add(
        weight, std::memory_order_relaxed);
    sums_[shard].sum.fetch_add(value * static_cast<std::int64_t>(weight),
                               std::memory_order_relaxed);
}

std::vector<std::uint64_t>
FixedHistogram::counts() const
{
    std::vector<std::uint64_t> out(buckets(), 0);
    for (std::size_t s = 0; s < kShards; ++s) {
        for (std::size_t b = 0; b < buckets(); ++b)
            out[b] += counts_[s * buckets() + b].load(
                std::memory_order_relaxed);
    }
    return out;
}

std::uint64_t
FixedHistogram::total() const
{
    std::uint64_t sum = 0;
    for (const std::uint64_t c : counts())
        sum += c;
    return sum;
}

double
FixedHistogram::mean() const
{
    const std::uint64_t n = total();
    if (n == 0)
        return 0.0;
    std::int64_t sum = 0;
    for (const auto &shard : sums_)
        sum += shard.sum.load(std::memory_order_relaxed);
    return static_cast<double>(sum) / static_cast<double>(n);
}

void
FixedHistogram::reset()
{
    for (std::size_t i = 0; i < kShards * buckets(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
    for (auto &shard : sums_)
        shard.sum.store(0, std::memory_order_relaxed);
}

std::vector<std::int64_t>
FixedHistogram::linearEdges(std::int64_t lo, std::int64_t hi,
                            std::size_t n)
{
    assert(n > 0 && hi > lo);
    std::vector<std::int64_t> edges;
    edges.reserve(n);
    const double step =
        static_cast<double>(hi - lo) / static_cast<double>(n);
    for (std::size_t i = 1; i <= n; ++i) {
        const auto edge =
            lo + static_cast<std::int64_t>(step * static_cast<double>(i));
        if (edges.empty() || edge > edges.back())
            edges.push_back(edge);
    }
    return edges;
}

std::vector<std::int64_t>
FixedHistogram::exponentialEdges(std::int64_t first, std::int64_t limit)
{
    assert(first > 0 && limit >= first);
    std::vector<std::int64_t> edges;
    for (std::int64_t edge = first; edge <= limit; edge *= 2) {
        edges.push_back(edge);
        if (edge > limit / 2)
            break; // next doubling would overflow past limit
    }
    return edges;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

FixedHistogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<std::int64_t> edges)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<FixedHistogram>(std::move(edges));
    return *slot;
}

std::int32_t
MetricsRegistry::beginSpan(std::string name, std::int32_t parent,
                           std::int32_t depth, std::int64_t start_ns)
{
    std::lock_guard<std::mutex> lock(span_mutex_);
    SpanSample sample;
    sample.name = std::move(name);
    sample.parent = parent;
    sample.depth = depth;
    sample.startNs = start_ns;
    sample.durationNs = -1; // in flight
    spans_.push_back(std::move(sample));
    return static_cast<std::int32_t>(spans_.size() - 1);
}

void
MetricsRegistry::endSpan(std::int32_t index, std::int64_t duration_ns)
{
    std::lock_guard<std::mutex> lock(span_mutex_);
    if (index >= 0 && static_cast<std::size_t>(index) < spans_.size())
        spans_[static_cast<std::size_t>(index)].durationNs =
            duration_ns;
}

Snapshot
MetricsRegistry::snapshot() const
{
    Snapshot out;
    out.wallUnixNs = wallUnixNs();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.counters.reserve(counters_.size());
        for (const auto &[name, counter] : counters_)
            out.counters.push_back({name, counter->value()});
        out.gauges.reserve(gauges_.size());
        for (const auto &[name, gauge] : gauges_)
            out.gauges.push_back({name, gauge->value()});
        out.histograms.reserve(histograms_.size());
        for (const auto &[name, histogram] : histograms_) {
            Snapshot::HistogramSample sample;
            sample.name = name;
            sample.edges = histogram->edges();
            sample.counts = histogram->counts();
            for (const std::uint64_t c : sample.counts)
                sample.total += c;
            sample.mean = histogram->mean();
            out.histograms.push_back(std::move(sample));
        }
    }
    {
        std::lock_guard<std::mutex> lock(span_mutex_);
        out.spans.reserve(spans_.size());
        // In-flight spans are skipped, so remap parent indices into
        // the filtered vector (a finished child whose parent is still
        // open becomes a root in this snapshot).
        std::vector<std::int32_t> remap(spans_.size(), -1);
        for (std::size_t i = 0; i < spans_.size(); ++i) {
            const SpanSample &span = spans_[i];
            if (span.durationNs < 0)
                continue;
            remap[i] = static_cast<std::int32_t>(out.spans.size());
            out.spans.push_back(span);
            auto &copied = out.spans.back();
            copied.parent = span.parent >= 0
                                ? remap[static_cast<std::size_t>(
                                      span.parent)]
                                : -1;
        }
    }
    return out;
}

void
MetricsRegistry::reset()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &[name, counter] : counters_)
            counter->reset();
        for (auto &[name, gauge] : gauges_)
            gauge->reset();
        for (auto &[name, histogram] : histograms_)
            histogram->reset();
    }
    std::lock_guard<std::mutex> lock(span_mutex_);
    spans_.clear();
}

} // namespace mocktails::telemetry
