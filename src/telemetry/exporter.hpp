/**
 * @file
 * Snapshot exporters: JSONL, CSV, and a periodic background dumper.
 *
 * JSONL layout (one record per line, greppable / jq-able):
 *   {"type":"snapshot","seq":0,"unix_ns":...}
 *   {"type":"counter","seq":0,"name":"partition.leaves","value":42}
 *   {"type":"gauge","seq":0,"name":"...","value":-3}
 *   {"type":"histogram","seq":0,"name":"...","edges":[...],
 *    "counts":[...],"total":9,"mean":1.5}
 *   {"type":"span","seq":0,"name":"profile.build","parent":-1,
 *    "depth":0,"start_ns":...,"duration_ns":...}
 *
 * CSV layout: header "seq,kind,name,bucket,value" — counters/gauges
 * use one row with an empty bucket column; histograms one row per
 * bucket (bucket column = exclusive upper edge, "inf" for overflow);
 * spans one row with the duration in ns as the value.
 *
 * Exporters append, so successive snapshots of one process (or of a
 * multi-command pipeline writing to the same path) accumulate in one
 * file with increasing "seq".
 */

#ifndef MOCKTAILS_TELEMETRY_EXPORTER_HPP
#define MOCKTAILS_TELEMETRY_EXPORTER_HPP

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "telemetry/metrics.hpp"

namespace mocktails::telemetry
{

/**
 * Exporter knobs.
 */
struct ExportOptions
{
    /**
     * Include wall-clock / steady-clock time fields. Disable for
     * byte-reproducible output (golden tests).
     */
    bool includeTimes = true;
};

/**
 * Writes snapshots somewhere, one call per snapshot.
 */
class Exporter
{
  public:
    virtual ~Exporter() = default;

    /** Append one snapshot. */
    virtual void write(const Snapshot &snapshot) = 0;

    /** False when the output could not be opened. */
    virtual bool ok() const = 0;
};

/**
 * Appends snapshots to a file as JSON Lines.
 */
class JsonlExporter : public Exporter
{
  public:
    explicit JsonlExporter(const std::string &path,
                           ExportOptions options = ExportOptions{});
    ~JsonlExporter() override;

    void write(const Snapshot &snapshot) override;
    bool ok() const override;

    /** Render one snapshot to a stream (the file-less core). */
    static void render(const Snapshot &snapshot, std::uint64_t seq,
                       const ExportOptions &options,
                       std::ostream &out);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Appends snapshots to a CSV file (header written once per file).
 */
class CsvExporter : public Exporter
{
  public:
    explicit CsvExporter(const std::string &path,
                         ExportOptions options = ExportOptions{});
    ~CsvExporter() override;

    void write(const Snapshot &snapshot) override;
    bool ok() const override;

    /**
     * Render one snapshot to a stream.
     * @param header Emit the column header before the rows.
     */
    static void render(const Snapshot &snapshot, std::uint64_t seq,
                       const ExportOptions &options, bool header,
                       std::ostream &out);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Make a file exporter for @p path: CsvExporter for *.csv, otherwise
 * JsonlExporter.
 */
std::unique_ptr<Exporter> makeFileExporter(const std::string &path);

/**
 * Snapshots a registry through an exporter at a fixed cadence on a
 * background thread, plus one final snapshot on stop()/destruction.
 */
class PeriodicExporter
{
  public:
    PeriodicExporter(MetricsRegistry &registry,
                     std::unique_ptr<Exporter> exporter,
                     std::chrono::milliseconds interval);
    ~PeriodicExporter();

    PeriodicExporter(const PeriodicExporter &) = delete;
    PeriodicExporter &operator=(const PeriodicExporter &) = delete;

    /** Stop the cadence and write the final snapshot (idempotent). */
    void stop();

  private:
    MetricsRegistry &registry_;
    std::unique_ptr<Exporter> exporter_;
    std::chrono::milliseconds interval_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    bool stopped_ = false;
    std::thread thread_;
};

} // namespace mocktails::telemetry

#endif // MOCKTAILS_TELEMETRY_EXPORTER_HPP
