/**
 * @file
 * Serving integration: scenarios as first-class profile ids.
 *
 * registerScenario() parses a `.scn` file eagerly (bad specs fail at
 * registration, not at first fetch) and installs ProfileStore loaders
 * for:
 *
 *   scenario:<name>      the tick-interleaved merged stream; its
 *                        OpenedBody advertises the device count in
 *                        `leaves` (StoredProfile::streamParts)
 *   scenario:<name>#<k>  device k's stream alone (one mux channel per
 *                        device in `profile_tool fetch --mux`)
 *
 * Stream materialisation is lazy and single-flighted by the store; the
 * resulting entries participate in LRU eviction like disk profiles,
 * and live sessions keep evicted streams alive via shared_ptr.
 */

#ifndef MOCKTAILS_SCENARIO_SERVE_HPP
#define MOCKTAILS_SCENARIO_SERVE_HPP

#include <string>

#include "scenario/spec.hpp"
#include "serve/profile_store.hpp"

namespace mocktails::scenario
{

/**
 * Register every id of the scenario at @p path in @p store.
 *
 * @param id_out When non-null receives the merged id
 *        ("scenario:<name>").
 * @return false with @p error set on parse failure (the store is left
 *         untouched).
 */
bool registerScenario(serve::ProfileStore &store,
                      const std::string &path,
                      std::string *id_out = nullptr,
                      std::string *error = nullptr);

/** As above, from an already-parsed spec. */
void registerScenario(serve::ProfileStore &store, ScenarioSpec spec,
                      std::string *id_out = nullptr);

} // namespace mocktails::scenario

#endif // MOCKTAILS_SCENARIO_SERVE_HPP
