#include "scenario/report.hpp"

#include <cstdio>

namespace mocktails::scenario
{

namespace
{

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    out += '"';
}

void
appendKv(std::string &out, const char *key, double value)
{
    char buf[80];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%.6g", key, value);
    out += buf;
}

void
appendKv(std::string &out, const char *key, std::uint64_t value)
{
    char buf[80];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", key,
                  static_cast<unsigned long long>(value));
    out += buf;
}

bool
writeString(const std::string &text, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    return std::fclose(f) == 0 && written == text.size();
}

} // namespace

std::string
ScenarioReport::toJson() const
{
    std::string out;
    out.reserve(512 + devices.size() * 320);
    out += "{\"name\":";
    appendJsonString(out, name);
    appendKv(out, "total_requests", totalRequests);
    appendKv(out, "read_bursts", readBursts);
    appendKv(out, "write_bursts", writeBursts);
    appendKv(out, "read_row_hits", readRowHits);
    appendKv(out, "write_row_hits", writeRowHits);
    appendKv(out, "avg_read_latency", avgReadLatency);
    appendKv(out, "backpressure_rejects", backpressureRejects);
    appendKv(out, "finish_tick", static_cast<std::uint64_t>(finishTick));
    out += ",\"devices\":[";
    bool first = true;
    for (const DeviceReport &d : devices) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":";
        appendJsonString(out, d.name);
        out += ",\"kind\":";
        appendJsonString(out, d.kind);
        appendKv(out, "port", static_cast<std::uint64_t>(d.port));
        appendKv(out, "requests", d.requests);
        appendKv(out, "reads", d.reads);
        appendKv(out, "writes", d.writes);
        appendKv(out, "contended_read_latency", d.contendedReadLatency);
        appendKv(out, "isolated_read_latency", d.isolatedReadLatency);
        appendKv(out, "slowdown", d.slowdown);
        appendKv(out, "read_latency_p50", d.readLatencyP50);
        appendKv(out, "read_latency_p99", d.readLatencyP99);
        appendKv(out, "accumulated_delay",
                 static_cast<std::uint64_t>(d.accumulatedDelay));
        appendKv(out, "finish_tick",
                 static_cast<std::uint64_t>(d.finishTick));
        appendKv(out, "isolated_finish_tick",
                 static_cast<std::uint64_t>(d.isolatedFinishTick));
        out += '}';
    }
    out += "]}";
    return out;
}

std::string
ScenarioReport::toMarkdown() const
{
    std::string out;
    char line[256];
    out += "# Scenario report: " + name + "\n\n";
    std::snprintf(line, sizeof(line),
                  "- requests: %llu (reads+writes across %zu devices)\n",
                  static_cast<unsigned long long>(totalRequests),
                  devices.size());
    out += line;
    std::snprintf(line, sizeof(line),
                  "- mean read latency: %.2f ticks\n", avgReadLatency);
    out += line;
    std::snprintf(
        line, sizeof(line),
        "- row hits: %llu read / %llu write (of %llu / %llu bursts)\n",
        static_cast<unsigned long long>(readRowHits),
        static_cast<unsigned long long>(writeRowHits),
        static_cast<unsigned long long>(readBursts),
        static_cast<unsigned long long>(writeBursts));
    out += line;
    std::snprintf(line, sizeof(line),
                  "- backpressure rejects: %llu; finish tick: %llu\n\n",
                  static_cast<unsigned long long>(backpressureRejects),
                  static_cast<unsigned long long>(finishTick));
    out += line;

    out += "Devices ranked by interference-induced slowdown "
           "(contended / isolated mean read latency):\n\n";
    out += "| device | kind | port | requests | isolated | contended "
           "| slowdown | p50 | p99 | delay |\n";
    out += "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|\n";
    for (const DeviceReport &d : devices) {
        std::snprintf(
            line, sizeof(line),
            "| %s | %s | %u | %llu | %.2f | %.2f | %.3fx "
            "| %.1f | %.1f | %llu |\n",
            d.name.c_str(), d.kind.c_str(), d.port,
            static_cast<unsigned long long>(d.requests),
            d.isolatedReadLatency, d.contendedReadLatency, d.slowdown,
            d.readLatencyP50, d.readLatencyP99,
            static_cast<unsigned long long>(d.accumulatedDelay));
        out += line;
    }
    return out;
}

bool
saveReportJson(const ScenarioReport &report, const std::string &path)
{
    return writeString(report.toJson(), path);
}

bool
saveReportMarkdown(const ScenarioReport &report, const std::string &path)
{
    return writeString(report.toMarkdown(), path);
}

} // namespace mocktails::scenario
