#include "scenario/spec.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <numeric>
#include <set>

namespace mocktails::scenario
{

namespace
{

/** Read one full line of any length (mirrors mem/trace_io.cpp). */
bool
readLine(std::FILE *f, std::string &line)
{
    line.clear();
    char chunk[256];
    while (std::fgets(chunk, sizeof(chunk), f) != nullptr) {
        line += chunk;
        if (!line.empty() && line.back() == '\n') {
            line.pop_back();
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return true;
        }
    }
    return !line.empty();
}

void
setParseError(std::string *error, const std::string &path,
              std::uint64_t line_number, const std::string &message,
              const std::string &line)
{
    if (error == nullptr)
        return;
    *error = path + ":" + std::to_string(line_number) + ": " + message;
    if (!line.empty()) {
        const std::string head = line.substr(0, 64);
        *error += " in '" + head +
                  (line.size() > head.size() ? "...'" : "'");
    }
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Strip surrounding double quotes, if any. */
std::string
unquote(const std::string &s)
{
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
        return s.substr(1, s.size() - 2);
    return s;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (~std::uint64_t{0} - digit) / 10)
            return false; // overflow
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

bool
parseBool(const std::string &s, bool &out)
{
    if (s == "true") {
        out = true;
        return true;
    }
    if (s == "false") {
        out = false;
        return true;
    }
    return false;
}

/**
 * Parse a decimal clock ratio ("1", "0.5", "2.25") into an exact
 * num/den pair, reduced. Rejects zero and more than 6 fraction digits
 * (enough for any believable clock ratio, and keeps den in range).
 */
bool
parseClock(const std::string &s, std::uint32_t &num, std::uint32_t &den)
{
    const std::size_t dot = s.find('.');
    const std::string whole = dot == std::string::npos ? s : s.substr(0, dot);
    const std::string frac =
        dot == std::string::npos ? "" : s.substr(dot + 1);
    if (whole.empty() && frac.empty())
        return false;
    if (frac.size() > 6)
        return false;
    std::uint64_t w = 0, f = 0;
    if (!whole.empty() && !parseU64(whole, w))
        return false;
    if (!frac.empty() && !parseU64(frac, f))
        return false;
    std::uint64_t d = 1;
    for (std::size_t i = 0; i < frac.size(); ++i)
        d *= 10;
    std::uint64_t n = w * d + f;
    if (n == 0 || n > ~std::uint32_t{0})
        return false;
    const std::uint64_t g = std::gcd(n, d);
    num = static_cast<std::uint32_t>(n / g);
    den = static_cast<std::uint32_t>(d / g);
    return true;
}

/** The current [section] context while parsing. */
enum class Section { None, Dram, Crossbar, Link, Device };

} // namespace

std::string
DeviceSpec::kind() const
{
    return generator.empty() ? "profile:" + profilePath
                             : "generator:" + generator;
}

std::string
scenarioNameFromPath(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    std::string stem =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        stem.resize(dot);
    return stem;
}

std::string
scenarioId(const std::string &name)
{
    return "scenario:" + name;
}

std::string
scenarioDeviceId(const std::string &name, std::size_t device_index)
{
    return "scenario:" + name + "#" + std::to_string(device_index);
}

bool
parseScenario(const std::string &text, const std::string &path,
              ScenarioSpec &spec, std::string *error)
{
    spec = ScenarioSpec{};
    spec.name = scenarioNameFromPath(path);

    Section section = Section::None;
    DeviceSpec device; // staging for the current [device] section
    bool device_open = false;
    bool port_explicit = false;
    std::uint32_t next_port = 0;

    const auto finishDevice = [&](std::uint64_t line_number,
                                  const std::string &line) {
        if (!device_open)
            return true;
        if (device.generator.empty() == device.profilePath.empty()) {
            setParseError(error, path, line_number,
                          "device '" + device.name +
                              "' needs exactly one of generator= or "
                              "profile=",
                          line);
            return false;
        }
        if (!port_explicit)
            device.port = next_port;
        next_port = std::max(next_port, device.port) + 1;
        spec.devices.push_back(device);
        device_open = false;
        return true;
    };

    std::uint64_t line_number = 0;
    std::size_t pos = 0;
    std::string line;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            line = text.substr(pos);
            pos = text.size() + 1;
        } else {
            line = text.substr(pos, nl - pos);
            pos = nl + 1;
        }
        ++line_number;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();

        // Strip comments (a '#' outside quotes) and whitespace.
        bool quoted = false;
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (line[i] == '"')
                quoted = !quoted;
            else if (line[i] == '#' && !quoted) {
                line.resize(i);
                break;
            }
        }
        const std::string stripped = trim(line);
        if (stripped.empty())
            continue;

        // Section header.
        if (stripped.front() == '[') {
            if (stripped.back() != ']') {
                setParseError(error, path, line_number,
                              "unterminated section header", line);
                return false;
            }
            if (!finishDevice(line_number, line))
                return false;
            const std::string header =
                trim(stripped.substr(1, stripped.size() - 2));
            if (header == "dram") {
                section = Section::Dram;
            } else if (header == "crossbar") {
                section = Section::Crossbar;
            } else if (header == "link") {
                section = Section::Link;
                spec.sharedLink = true; // presence enables the link
            } else if (header.compare(0, 7, "device ") == 0) {
                section = Section::Device;
                device = DeviceSpec{};
                device.name = unquote(trim(header.substr(7)));
                device_open = true;
                port_explicit = false;
                if (device.name.empty()) {
                    setParseError(error, path, line_number,
                                  "device section needs a name", line);
                    return false;
                }
                for (const DeviceSpec &d : spec.devices) {
                    if (d.name == device.name) {
                        setParseError(error, path, line_number,
                                      "duplicate device '" +
                                          device.name + "'",
                                      line);
                        return false;
                    }
                }
            } else {
                setParseError(error, path, line_number,
                              "unknown section [" + header + "]", line);
                return false;
            }
            continue;
        }

        // key = value line.
        const std::size_t eq = stripped.find('=');
        if (eq == std::string::npos) {
            setParseError(error, path, line_number,
                          "expected 'key = value' or '[section]'",
                          line);
            return false;
        }
        const std::string key = trim(stripped.substr(0, eq));
        const std::string value = trim(stripped.substr(eq + 1));
        if (key.empty() || value.empty()) {
            setParseError(error, path, line_number,
                          "expected 'key = value'", line);
            return false;
        }

        std::uint64_t u = 0;
        const auto wantU64 = [&](std::uint64_t &out) {
            if (!parseU64(value, out)) {
                setParseError(error, path, line_number,
                              "'" + key +
                                  "' expects a non-negative integer",
                              line);
                return false;
            }
            return true;
        };
        const auto wantU32 = [&](std::uint32_t &out) {
            if (!wantU64(u) || u > ~std::uint32_t{0}) {
                setParseError(error, path, line_number,
                              "'" + key + "' out of range", line);
                return false;
            }
            out = static_cast<std::uint32_t>(u);
            return true;
        };

        switch (section) {
        case Section::None:
            if (key == "name") {
                spec.name = unquote(value);
            } else if (key == "seed") {
                if (!wantU64(spec.seed))
                    return false;
            } else {
                setParseError(error, path, line_number,
                              "unknown top-level key '" + key + "'",
                              line);
                return false;
            }
            break;

        case Section::Dram:
            if (key == "channels") {
                if (!wantU32(spec.dram.channels))
                    return false;
            } else if (key == "ranks") {
                if (!wantU32(spec.dram.ranksPerChannel))
                    return false;
            } else if (key == "banks") {
                if (!wantU32(spec.dram.banksPerRank))
                    return false;
            } else if (key == "burst_size") {
                if (!wantU32(spec.dram.burstSize))
                    return false;
            } else if (key == "row_buffer") {
                if (!wantU32(spec.dram.rowBufferSize))
                    return false;
            } else if (key == "read_queue") {
                if (!wantU32(spec.dram.readQueueCapacity))
                    return false;
            } else if (key == "write_queue") {
                if (!wantU32(spec.dram.writeQueueCapacity))
                    return false;
            } else {
                setParseError(error, path, line_number,
                              "unknown [dram] key '" + key + "'",
                              line);
                return false;
            }
            break;

        case Section::Crossbar:
            if (key == "latency") {
                if (!wantU32(spec.crossbar.latency))
                    return false;
            } else if (key == "queue") {
                if (!wantU32(spec.crossbar.queueCapacity))
                    return false;
            } else if (key == "retry_interval") {
                if (!wantU32(spec.crossbar.retryInterval))
                    return false;
            } else {
                setParseError(error, path, line_number,
                              "unknown [crossbar] key '" + key + "'",
                              line);
                return false;
            }
            break;

        case Section::Link:
            if (key == "shared") {
                if (!parseBool(value, spec.sharedLink)) {
                    setParseError(error, path, line_number,
                                  "'shared' expects true or false",
                                  line);
                    return false;
                }
            } else if (key == "latency") {
                if (!wantU32(spec.arbiter.linkLatency))
                    return false;
            } else if (key == "queue") {
                if (!wantU32(spec.arbiter.queueCapacity))
                    return false;
            } else if (key == "cycle") {
                if (!wantU32(spec.arbiter.cycleTime))
                    return false;
            } else {
                setParseError(error, path, line_number,
                              "unknown [link] key '" + key + "'",
                              line);
                return false;
            }
            break;

        case Section::Device:
            if (key == "generator") {
                device.generator = unquote(value);
            } else if (key == "profile") {
                device.profilePath = unquote(value);
            } else if (key == "requests") {
                if (!wantU64(device.requests))
                    return false;
            } else if (key == "seed") {
                if (!wantU64(device.seed))
                    return false;
            } else if (key == "port") {
                if (!wantU32(device.port))
                    return false;
                port_explicit = true;
            } else if (key == "clock") {
                if (!parseClock(value, device.clockNum,
                                device.clockDen)) {
                    setParseError(error, path, line_number,
                                  "'clock' expects a positive decimal "
                                  "ratio (e.g. 0.5, 1, 2.25)",
                                  line);
                    return false;
                }
            } else if (key == "start") {
                if (!wantU64(device.startOffset))
                    return false;
            } else if (key == "budget") {
                if (!wantU64(device.budget))
                    return false;
            } else if (key == "priority") {
                if (!wantU32(device.priority))
                    return false;
            } else {
                setParseError(error, path, line_number,
                              "unknown [device] key '" + key + "'",
                              line);
                return false;
            }
            break;
        }
    }

    if (!finishDevice(line_number, ""))
        return false;
    if (spec.devices.empty()) {
        setParseError(error, path, line_number,
                      "scenario declares no [device] sections", "");
        return false;
    }

    // Devices are identified by crossbar port: sort and reject clashes.
    std::stable_sort(spec.devices.begin(), spec.devices.end(),
                     [](const DeviceSpec &a, const DeviceSpec &b) {
                         return a.port < b.port;
                     });
    std::set<std::uint32_t> ports;
    for (const DeviceSpec &d : spec.devices) {
        if (!ports.insert(d.port).second) {
            setParseError(error, path, line_number,
                          "duplicate crossbar port " +
                              std::to_string(d.port),
                          "");
            return false;
        }
    }
    return true;
}

bool
loadScenario(const std::string &path, ScenarioSpec &spec,
             std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        if (error != nullptr)
            *error = path + ": cannot open";
        return false;
    }
    std::string text, line;
    while (readLine(f, line)) {
        text += line;
        text += '\n';
    }
    std::fclose(f);
    return parseScenario(text, path, spec, error);
}

} // namespace mocktails::scenario
