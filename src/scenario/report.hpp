/**
 * @file
 * ScenarioReport: per-device and global results of a composed run.
 *
 * The central number is per-device *interference-induced slowdown*:
 * each device's mean read latency in the contended run divided by the
 * same device's latency when it ran alone on an identical memory
 * system. Devices are ranked worst-first, which is the question an
 * architect asks of a mix ("who suffers when these IPs share the
 * crossbar?"). JSON for tooling, markdown for humans.
 */

#ifndef MOCKTAILS_SCENARIO_REPORT_HPP
#define MOCKTAILS_SCENARIO_REPORT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mem/request.hpp"

namespace mocktails::scenario
{

/** One device's results, contended vs. isolated. */
struct DeviceReport
{
    std::string name;
    std::string kind;       ///< "generator:..." / "profile:..."
    std::uint32_t port = 0;

    std::uint64_t requests = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    /// @name Contended (shared crossbar/DRAM) run
    /// @{
    double contendedReadLatency = 0.0; ///< mean, ticks
    double readLatencyP50 = 0.0;       ///< ticks (0 when no reads)
    double readLatencyP99 = 0.0;
    mem::Tick accumulatedDelay = 0;    ///< backpressure folded in
    mem::Tick finishTick = 0;
    /// @}

    /// @name Isolated baseline (same device alone, same topology)
    /// @{
    double isolatedReadLatency = 0.0;
    mem::Tick isolatedFinishTick = 0;
    /// @}

    /** contended / isolated mean read latency (0 when undefined). */
    double slowdown = 0.0;
};

/** The full scenario outcome. */
struct ScenarioReport
{
    std::string name;

    /** Devices ranked by interference-induced slowdown, worst first. */
    std::vector<DeviceReport> devices;

    /// @name Global shared-memory-system statistics
    /// @{
    std::uint64_t totalRequests = 0;
    std::uint64_t readBursts = 0;
    std::uint64_t writeBursts = 0;
    std::uint64_t readRowHits = 0;
    std::uint64_t writeRowHits = 0;
    double avgReadLatency = 0.0; ///< mean over all devices, ticks
    std::uint64_t backpressureRejects = 0;
    mem::Tick finishTick = 0;    ///< last injection in the mix
    /// @}

    /** Render as a self-contained JSON object. */
    std::string toJson() const;

    /** Render as a markdown table + summary. */
    std::string toMarkdown() const;
};

/** Write toJson() to @p path. @return false on I/O failure. */
bool saveReportJson(const ScenarioReport &report,
                    const std::string &path);

/** Write toMarkdown() to @p path. @return false on I/O failure. */
bool saveReportMarkdown(const ScenarioReport &report,
                        const std::string &path);

} // namespace mocktails::scenario

#endif // MOCKTAILS_SCENARIO_REPORT_HPP
