/**
 * @file
 * Scenario specifications: scriptable multi-profile SoC mixes.
 *
 * The paper's motivating use case (Secs. I, VI) is an architect
 * swapping Mocktails profiles in for the proprietary IP blocks of a
 * heterogeneous SoC. A scenario spec (`*.scn`) scripts exactly that
 * composition: named devices — each a Table II / SPEC generator or a
 * profile file — attached to crossbar ports of one shared memory
 * system, with a per-device clock ratio, start offset and request
 * budget. The format is a line-based TOML-lite:
 *
 *   # phone-soc.scn
 *   name = "phone-soc"
 *   seed = 1
 *
 *   [dram]               # optional Table III overrides
 *   channels = 4
 *
 *   [crossbar]
 *   latency = 8
 *
 *   [link]               # optional: funnel everything through one
 *   shared = true        # round-robin-arbitrated link
 *   latency = 4
 *
 *   [device gpu]
 *   generator = "T-Rex1" # or: profile = "gpu.mkp"
 *   requests = 20000
 *   seed = 7             # 0 = derived from the scenario seed + port
 *   port = 1             # crossbar port (default: declaration order)
 *   clock = 2.0          # device cycles per interconnect cycle
 *   start = 5000         # interconnect ticks before the device starts
 *   budget = 0           # request cap after scaling (0 = all)
 *   priority = 0         # shared-link priority (lower = more urgent)
 *
 * The parser fails loudly with "path:line: message" diagnostics naming
 * the offending line, the same contract as mem::loadTraceCsv.
 */

#ifndef MOCKTAILS_SCENARIO_SPEC_HPP
#define MOCKTAILS_SCENARIO_SPEC_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dram/config.hpp"
#include "interconnect/arbiter.hpp"
#include "interconnect/crossbar.hpp"
#include "mem/request.hpp"

namespace mocktails::scenario
{

/**
 * One device of a scenario: a named request stream on a crossbar port.
 */
struct DeviceSpec
{
    std::string name; ///< section name, unique within the scenario

    /** Exactly one of the two is set. */
    std::string generator;   ///< Table II / SPEC workload name
    std::string profilePath; ///< .mkp file synthesised per-device

    /** Generator target length (profiles emit their own count). */
    std::uint64_t requests = 10000;

    /** Per-device synthesis/generator seed; 0 = scenario seed + port. */
    std::uint64_t seed = 0;

    /** Crossbar port / merge rank; defaults to declaration order. */
    std::uint32_t port = 0;

    /**
     * Device clock as a ratio of the interconnect clock, kept exact as
     * num/den: a device at clock 2/1 issues twice per interconnect
     * cycle, so its ticks halve when projected onto interconnect time
     * (tick' = start + tick * den / num).
     */
    std::uint32_t clockNum = 1;
    std::uint32_t clockDen = 1;

    /** Interconnect tick at which the device starts issuing. */
    mem::Tick startOffset = 0;

    /** Request budget after scaling; 0 = the whole stream. */
    std::uint64_t budget = 0;

    /** Shared-link arbitration priority (lower = more urgent). */
    std::uint32_t priority = 0;

    /** Resolved per-device seed (seed, or scenario seed + port). */
    std::uint64_t effectiveSeed(std::uint64_t scenario_seed) const
    {
        return seed != 0 ? seed : scenario_seed + port + 1;
    }

    /** "generator:T-Rex1" / "profile:gpu.mkp" for reports. */
    std::string kind() const;
};

/**
 * A full scenario: shared-memory-system topology plus its devices,
 * sorted by port.
 */
struct ScenarioSpec
{
    std::string name;         ///< defaults to the file stem
    std::uint64_t seed = 1;   ///< base for derived per-device seeds

    dram::DramConfig dram;
    interconnect::CrossbarConfig crossbar;

    /** When true all devices share one arbitrated link. */
    bool sharedLink = false;
    interconnect::ArbiterConfig arbiter;

    std::vector<DeviceSpec> devices;
};

/**
 * Parse scenario text. @p path is used only for diagnostics and the
 * default scenario name.
 *
 * @return false with @p error (when non-null) set to a "path:line:
 *         message" diagnostic on malformed input.
 */
bool parseScenario(const std::string &text, const std::string &path,
                   ScenarioSpec &spec, std::string *error = nullptr);

/** Load and parse @p path. Same diagnostics as parseScenario. */
bool loadScenario(const std::string &path, ScenarioSpec &spec,
                  std::string *error = nullptr);

/** "dir/phone-soc.scn" -> "phone-soc" (the default scenario name). */
std::string scenarioNameFromPath(const std::string &path);

/** The serving id of a scenario: "scenario:" + name. */
std::string scenarioId(const std::string &name);

/** Id of one device's sub-stream: "scenario:<name>#<index>". */
std::string scenarioDeviceId(const std::string &name,
                             std::size_t device_index);

} // namespace mocktails::scenario

#endif // MOCKTAILS_SCENARIO_SPEC_HPP
