#include "scenario/serve.hpp"

#include <memory>
#include <utility>

#include "scenario/engine.hpp"

namespace mocktails::scenario
{

namespace
{

/**
 * Fill @p out with a materialised trace entry. The profile metadata
 * mirrors the trace's so v1 clients (which read OpenedBody fields
 * filled from either) see consistent names.
 */
void
fillStored(serve::StoredProfile &out, mem::Trace trace,
           std::uint64_t stream_parts)
{
    out.profile.name = trace.name();
    out.profile.device = trace.device();
    out.streamParts = stream_parts;
    out.trace = std::make_shared<const mem::Trace>(std::move(trace));
}

} // namespace

void
registerScenario(serve::ProfileStore &store, ScenarioSpec spec,
                 std::string *id_out)
{
    const auto shared =
        std::make_shared<const ScenarioSpec>(std::move(spec));
    const std::string merged_id = scenarioId(shared->name);
    if (id_out != nullptr)
        *id_out = merged_id;

    store.registerLoader(
        merged_id,
        [shared](serve::StoredProfile &out, std::string *error) {
            ScenarioEngine engine(*shared);
            if (!engine.buildStreams(error))
                return false;
            fillStored(out, engine.mergedStream(),
                       shared->devices.size());
            return true;
        });

    for (std::size_t k = 0; k < shared->devices.size(); ++k) {
        store.registerLoader(
            scenarioDeviceId(shared->name, k),
            [shared, k](serve::StoredProfile &out,
                        std::string *error) {
                mem::Trace stream;
                ScenarioEngine engine(*shared);
                if (!engine.buildDeviceStream(k, stream, error))
                    return false;
                fillStored(out, std::move(stream), 0);
                return true;
            });
    }
}

bool
registerScenario(serve::ProfileStore &store, const std::string &path,
                 std::string *id_out, std::string *error)
{
    ScenarioSpec spec;
    if (!loadScenario(path, spec, error))
        return false;
    registerScenario(store, std::move(spec), id_out);
    return true;
}

} // namespace mocktails::scenario
