/**
 * @file
 * ScenarioEngine: executes a ScenarioSpec end to end.
 *
 * Dataflow:
 *
 *   spec.devices ──(generator / profile synthesis)──► device streams
 *        │  clock-scale, offset, budget                    │
 *        │                                                 ▼
 *        │               k-way merge (tick, port) ──► merged stream
 *        │                                                 │
 *        ├── per-device isolated runs (parallel, sharded DRAM)
 *        └── one contended simulateSoc run (shared crossbar/DRAM)
 *                                                          │
 *                                                          ▼
 *                       ScenarioReport (slowdown-ranked devices)
 *
 * Determinism: device streams come from core::synthesize /
 * makeDeviceTrace, both bit-identical per seed at any thread count;
 * clock scaling is exact integer arithmetic; the merge is a pure
 * deterministic k-way merge keyed (tick, port). The merged stream and
 * the report are therefore bit-identical at every thread count.
 */

#ifndef MOCKTAILS_SCENARIO_ENGINE_HPP
#define MOCKTAILS_SCENARIO_ENGINE_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "mem/trace.hpp"
#include "scenario/report.hpp"
#include "scenario/spec.hpp"

namespace mocktails::scenario
{

/** Execution knobs: how, never what — results are thread-invariant. */
struct ScenarioOptions
{
    /** Worker cap for stream builds and isolated baselines; 0 = auto. */
    unsigned threads = 0;

    /**
     * Skip the per-device isolated baselines (report slowdown as 0).
     * The contended run and the merged stream are unaffected.
     */
    bool skipIsolated = false;
};

/**
 * Builds a scenario's device streams and runs the composed mix.
 *
 * Usage: construct, then either mergedStream() for the serving path or
 * run() for the full contended-vs-isolated report. Streams build
 * lazily on first use and are cached.
 */
class ScenarioEngine
{
  public:
    explicit ScenarioEngine(ScenarioSpec spec,
                            ScenarioOptions options = ScenarioOptions{});

    const ScenarioSpec &spec() const { return spec_; }

    /**
     * Materialise every device stream (in parallel across devices).
     * Ticks are already projected onto the interconnect clock.
     *
     * @return false with @p error set when a profile fails to load or
     *         a generator name is unknown.
     */
    bool buildStreams(std::string *error = nullptr);

    /**
     * Build one device's stream in isolation (no caching): generator
     * or profile synthesis, then clock scaling, start offset and
     * budget. Deterministic in the spec alone.
     */
    bool buildDeviceStream(std::size_t device_index, mem::Trace &out,
                           std::string *error = nullptr) const;

    /** The cached per-device streams (buildStreams() implied). */
    const std::vector<mem::Trace> &deviceStreams();

    /**
     * The tick-interleaved merge of all device streams, keyed
     * (tick, port) — the stream served under "scenario:<name>".
     */
    const mem::Trace &mergedStream();

    /**
     * Run isolated baselines plus the contended mix and fill
     * @p report. @return false with @p error on stream-build failure.
     */
    bool run(ScenarioReport &report, std::string *error = nullptr);

  private:
    ScenarioSpec spec_;
    ScenarioOptions options_;
    bool built_ = false;
    std::string build_error_;
    std::vector<mem::Trace> streams_;
    mem::Trace merged_;
    bool merged_built_ = false;
};

/**
 * Convenience: parse + build + run in one call.
 * @return false with @p error on parse or build failure.
 */
bool runScenarioFile(const std::string &path,
                     ScenarioReport &report,
                     const ScenarioOptions &options = ScenarioOptions{},
                     std::string *error = nullptr);

} // namespace mocktails::scenario

#endif // MOCKTAILS_SCENARIO_ENGINE_HPP
