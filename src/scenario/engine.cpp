#include "scenario/engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>
#include <utility>

#include "core/profile.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "dram/soc.hpp"
#include "mem/source.hpp"
#include "obs/trace_event.hpp"
#include "telemetry/metrics.hpp"
#include "util/thread_pool.hpp"
#include "workloads/devices.hpp"

namespace mocktails::scenario
{

namespace
{

/** Nearest-rank percentile over unsorted samples (0 when empty). */
double
percentile(std::vector<float> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const double rank =
        q * static_cast<double>(samples.size() - 1) / 100.0;
    const auto idx = static_cast<std::size_t>(rank + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

const workloads::DeviceTraceSpec *
findGenerator(const std::string &name)
{
    for (const workloads::DeviceTraceSpec &spec :
         workloads::deviceTraces()) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

} // namespace

ScenarioEngine::ScenarioEngine(ScenarioSpec spec, ScenarioOptions options)
    : spec_(std::move(spec)), options_(options)
{}

bool
ScenarioEngine::buildDeviceStream(std::size_t device_index,
                                  mem::Trace &out,
                                  std::string *error) const
{
    const DeviceSpec &d = spec_.devices[device_index];
    const std::uint64_t seed = d.effectiveSeed(spec_.seed);

    if (!d.generator.empty()) {
        const workloads::DeviceTraceSpec *gen =
            findGenerator(d.generator);
        if (gen == nullptr) {
            if (error != nullptr)
                *error = "device '" + d.name +
                         "': unknown generator '" + d.generator + "'";
            return false;
        }
        out = gen->make(static_cast<std::size_t>(d.requests), seed);
        out.setDevice(gen->device);
    } else {
        core::Profile profile;
        std::string load_error;
        if (!core::loadProfile(d.profilePath, profile, &load_error)) {
            if (error != nullptr)
                *error = "device '" + d.name + "': " + load_error;
            return false;
        }
        // Inner synthesis stays sequential: buildStreams() already
        // parallelises across devices, and synthesize() is
        // bit-identical at every thread count anyway.
        out = core::synthesize(profile, seed, 1);
        out.setDevice(profile.device);
    }
    out.setName(d.name);

    // Project device time onto the interconnect clock, exactly:
    // tick' = start + tick * den / num (integer, monotone in tick).
    if (d.startOffset != 0 || d.clockNum != d.clockDen) {
        for (mem::Request &r : out.requests())
            r.tick = d.startOffset +
                     r.tick * d.clockDen / d.clockNum;
    }
    if (d.budget != 0 && out.size() > d.budget)
        out.truncate(static_cast<std::size_t>(d.budget));
    return true;
}

bool
ScenarioEngine::buildStreams(std::string *error)
{
    if (built_) {
        if (!build_error_.empty() && error != nullptr)
            *error = build_error_;
        return build_error_.empty();
    }
    built_ = true;
    streams_.assign(spec_.devices.size(), mem::Trace{});
    std::vector<std::string> errors(spec_.devices.size());
    util::parallelFor(
        spec_.devices.size(),
        [&](std::size_t i) {
            buildDeviceStream(i, streams_[i], &errors[i]);
        },
        options_.threads);
    for (const std::string &e : errors) {
        if (!e.empty()) {
            build_error_ = e;
            streams_.clear();
            if (error != nullptr)
                *error = build_error_;
            return false;
        }
    }
    if (telemetry::enabled()) {
        auto &registry = telemetry::MetricsRegistry::global();
        registry.counter("scenario.devices").add(streams_.size());
        for (const mem::Trace &s : streams_)
            registry.counter("scenario.device_requests").add(s.size());
    }
    return true;
}

const std::vector<mem::Trace> &
ScenarioEngine::deviceStreams()
{
    buildStreams();
    return streams_;
}

const mem::Trace &
ScenarioEngine::mergedStream()
{
    if (merged_built_)
        return merged_;
    merged_built_ = true;
    merged_ = mem::Trace(spec_.name, "scenario");
    if (!buildStreams())
        return merged_;

    // K-way merge keyed (tick, device index). Devices are sorted by
    // port, so the index tie-break is the port tie-break; equal ticks
    // interleave in a stable, spec-defined order.
    struct Head
    {
        mem::Tick tick;
        std::size_t device;

        bool
        operator>(const Head &other) const
        {
            if (tick != other.tick)
                return tick > other.tick;
            return device > other.device;
        }
    };
    std::priority_queue<Head, std::vector<Head>, std::greater<Head>>
        heap;
    std::vector<std::size_t> cursor(streams_.size(), 0);
    std::size_t total = 0;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        total += streams_[i].size();
        if (!streams_[i].empty())
            heap.push(Head{streams_[i][0].tick, i});
    }
    merged_.requests().reserve(total);
    while (!heap.empty()) {
        const Head head = heap.top();
        heap.pop();
        const mem::Trace &stream = streams_[head.device];
        merged_.add(stream[cursor[head.device]]);
        if (++cursor[head.device] < stream.size())
            heap.push(
                Head{stream[cursor[head.device]].tick, head.device});
    }
    if (telemetry::enabled())
        telemetry::MetricsRegistry::global()
            .counter("scenario.merged_requests")
            .add(merged_.size());
    return merged_;
}

bool
ScenarioEngine::run(ScenarioReport &report, std::string *error)
{
    if (!buildStreams(error))
        return false;

    report = ScenarioReport{};
    report.name = spec_.name;
    report.devices.resize(spec_.devices.size());

    // Isolated baselines: each device alone on an identical topology.
    // parallelFor over devices; the inner simulation stays serial (a
    // nested parallelFor would run sequentially anyway).
    if (!options_.skipIsolated) {
        util::parallelFor(
            spec_.devices.size(),
            [&](std::size_t i) {
                dram::SimulationOptions sim_options;
                sim_options.threads = 1;
                const dram::SimulationResult isolated =
                    dram::simulateTrace(streams_[i], spec_.dram,
                                        spec_.crossbar, sim_options);
                report.devices[i].isolatedReadLatency =
                    isolated.avgReadLatency();
                report.devices[i].isolatedFinishTick =
                    isolated.finishTick;
            },
            options_.threads);
    }

    // The contended mix: every device on the shared memory system.
    dram::SocConfig soc_config;
    soc_config.dram = spec_.dram;
    soc_config.crossbar = spec_.crossbar;
    soc_config.sharedLink = spec_.sharedLink;
    soc_config.arbiter = spec_.arbiter;
    soc_config.collectLatencySamples = true;
    if (spec_.sharedLink) {
        soc_config.arbiter.priorities.clear();
        for (const DeviceSpec &d : spec_.devices)
            soc_config.arbiter.priorities.push_back(d.priority);
    }
    std::vector<dram::SocDevice> soc_devices;
    soc_devices.reserve(spec_.devices.size());
    for (std::size_t i = 0; i < spec_.devices.size(); ++i)
        soc_devices.emplace_back(
            spec_.devices[i].name,
            std::make_shared<mem::TraceSource>(streams_[i]));
    const dram::SocResult contended =
        dram::simulateSoc(soc_devices, soc_config);

    obs::TraceEventWriter *trace = obs::collector();
    for (std::size_t i = 0; i < spec_.devices.size(); ++i) {
        const DeviceSpec &d = spec_.devices[i];
        const dram::SocDeviceResult &res = contended.devices[i];
        DeviceReport &out = report.devices[i];
        out.name = d.name;
        out.kind = d.kind();
        out.port = d.port;
        out.requests = res.injected;
        out.reads = res.reads;
        out.writes = res.writes;
        out.contendedReadLatency = res.readLatency.mean();
        out.readLatencyP50 = percentile(res.readLatencySamples, 50.0);
        out.readLatencyP99 = percentile(res.readLatencySamples, 99.0);
        out.accumulatedDelay = res.accumulatedDelay;
        out.finishTick = res.finishTick;
        out.slowdown = out.isolatedReadLatency > 0.0
                           ? out.contendedReadLatency /
                                 out.isolatedReadLatency
                           : 0.0;
        report.totalRequests += res.injected;
        report.finishTick =
            std::max(report.finishTick, res.finishTick);
        if (trace != nullptr) {
            const auto tid = static_cast<std::uint32_t>(
                obs::track::kScenarioBase + i);
            trace->nameTrack(tid, "scenario " + spec_.name + "/" +
                                      d.name);
            trace->complete(
                "device", "scenario", d.startOffset,
                res.finishTick > d.startOffset
                    ? res.finishTick - d.startOffset
                    : 0,
                tid,
                {{"requests",
                  static_cast<std::int64_t>(res.injected)},
                 {"port", static_cast<std::int64_t>(d.port)}});
        }
    }

    // Rank by interference-induced slowdown, worst first; ties (e.g.
    // skipped baselines) stay in port order because the sort is stable.
    std::stable_sort(report.devices.begin(), report.devices.end(),
                     [](const DeviceReport &a, const DeviceReport &b) {
                         return a.slowdown > b.slowdown;
                     });

    report.readBursts = contended.readBursts();
    report.writeBursts = contended.writeBursts();
    report.readRowHits = contended.readRowHits();
    report.writeRowHits = contended.writeRowHits();
    report.avgReadLatency = contended.memory.readLatency.mean();
    report.backpressureRejects = contended.memory.backpressureRejects;

    if (telemetry::enabled()) {
        auto &registry = telemetry::MetricsRegistry::global();
        registry.counter("scenario.runs").add(1);
        registry.counter("scenario.contended_requests")
            .add(report.totalRequests);
    }
    return true;
}

bool
runScenarioFile(const std::string &path, ScenarioReport &report,
                const ScenarioOptions &options, std::string *error)
{
    ScenarioSpec spec;
    if (!loadScenario(path, spec, error))
        return false;
    ScenarioEngine engine(std::move(spec), options);
    return engine.run(report, error);
}

} // namespace mocktails::scenario
