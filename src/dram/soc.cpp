#include "dram/soc.hpp"

#include <memory>
#include <unordered_map>

#include "dram/memory_system.hpp"
#include "dram/trace_player.hpp"
#include "sim/event_queue.hpp"

namespace mocktails::dram
{

std::uint64_t
SocResult::readRowHits() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels)
        sum += c.readRowHits;
    return sum;
}

std::uint64_t
SocResult::writeRowHits() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels)
        sum += c.writeRowHits;
    return sum;
}

std::uint64_t
SocResult::readBursts() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels)
        sum += c.readBursts;
    return sum;
}

std::uint64_t
SocResult::writeBursts() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels)
        sum += c.writeBursts;
    return sum;
}

SocResult
simulateSoc(const std::vector<SocDevice> &devices,
            const DramConfig &dram_config,
            const interconnect::CrossbarConfig &xbar_config)
{
    SocConfig config;
    config.dram = dram_config;
    config.crossbar = xbar_config;
    return simulateSoc(devices, config);
}

SocResult
simulateSoc(const std::vector<SocDevice> &devices,
            const SocConfig &config)
{
    sim::EventQueue events;
    MemorySystem memory(events, config.dram);

    SocResult result;
    result.devices.resize(devices.size());

    // Ownership of requests: map each admitted request id to the
    // device that injected it, for per-IP latency accounting.
    std::unordered_map<std::uint64_t, std::size_t> owner;
    owner.reserve(1024);

    memory.setCompletionCallback(
        [&](std::uint64_t id, bool is_read, sim::Tick admitted,
            sim::Tick completed) {
            const auto it = owner.find(id);
            if (it == owner.end())
                return;
            auto &device = result.devices[it->second];
            const auto latency =
                static_cast<double>(completed - admitted);
            if (is_read) {
                device.readLatency.add(latency);
                if (config.collectLatencySamples)
                    device.readLatencySamples.push_back(
                        static_cast<float>(latency));
            } else {
                device.writeLatency.add(latency);
            }
            owner.erase(it);
        });

    // Admission into the memory system with per-device accounting.
    const auto inject = [&](std::size_t device_index,
                            const mem::Request &r) {
        if (!memory.tryInject(r))
            return false;
        owner.emplace(memory.lastRequestId(), device_index);
        auto &device = result.devices[device_index];
        if (r.isRead())
            ++device.reads;
        else
            ++device.writes;
        return true;
    };

    std::vector<std::unique_ptr<interconnect::Crossbar>> ports;
    std::unique_ptr<interconnect::Arbiter> arbiter;
    std::vector<std::unique_ptr<TracePlayer>> players;
    players.reserve(devices.size());

    if (config.sharedLink && !devices.empty()) {
        // All devices behind one round-robin-arbitrated link.
        arbiter = std::make_unique<interconnect::Arbiter>(
            events, config.arbiter,
            static_cast<std::uint32_t>(devices.size()),
            [&](std::uint32_t port, const mem::Request &r) {
                return inject(port, r);
            });
        for (std::size_t i = 0; i < devices.size(); ++i) {
            result.devices[i].name = devices[i].name;
            players.push_back(std::make_unique<TracePlayer>(
                events, *devices[i].source,
                [&, i](const mem::Request &r) {
                    return arbiter->trySend(
                        static_cast<std::uint32_t>(i), r);
                }));
        }
    } else {
        // One private crossbar port per device.
        ports.reserve(devices.size());
        for (std::size_t i = 0; i < devices.size(); ++i) {
            result.devices[i].name = devices[i].name;
            ports.push_back(std::make_unique<interconnect::Crossbar>(
                events, config.crossbar,
                [&, i](const mem::Request &r) {
                    return inject(i, r);
                }));
            players.push_back(std::make_unique<TracePlayer>(
                events, *devices[i].source,
                [port = ports.back().get()](const mem::Request &r) {
                    return port->trySend(r);
                }));
        }
    }

    for (auto &player : players)
        player->start();
    events.run();

    for (std::size_t i = 0; i < devices.size(); ++i) {
        result.devices[i].injected = players[i]->injected();
        result.devices[i].accumulatedDelay =
            players[i]->accumulatedDelay();
        result.devices[i].finishTick = players[i]->finishTick();
    }
    result.memory = memory.stats();
    for (std::uint32_t c = 0; c < memory.channelCount(); ++c)
        result.channels.push_back(memory.channelStats(c));
    if (arbiter)
        result.linkGrants = arbiter->grants();
    return result;
}

} // namespace mocktails::dram
