/**
 * @file
 * Physical address decomposition into DRAM coordinates.
 */

#ifndef MOCKTAILS_DRAM_ADDRESS_MAP_HPP
#define MOCKTAILS_DRAM_ADDRESS_MAP_HPP

#include <cstdint>

#include "dram/config.hpp"
#include "mem/request.hpp"

namespace mocktails::dram
{

/**
 * The DRAM coordinates of one burst-sized access.
 */
struct DramCoord
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    std::uint32_t column = 0; ///< burst index within the row

    /** Flat bank identifier within the channel (rank*banks + bank). */
    std::uint32_t
    flatBank(const DramConfig &config) const
    {
        return rank * config.banksPerRank + bank;
    }

    friend bool
    operator==(const DramCoord &a, const DramCoord &b)
    {
        return a.channel == b.channel && a.rank == b.rank &&
               a.bank == b.bank && a.row == b.row && a.column == b.column;
    }
};

/**
 * Decodes byte addresses into DRAM coordinates per the configured
 * interleaving scheme.
 */
class AddressMap
{
  public:
    explicit AddressMap(const DramConfig &config);

    /** Decode the burst containing byte address @p addr. */
    DramCoord decode(mem::Addr addr) const;

    /** Inverse of decode (returns the first byte of the burst). */
    mem::Addr encode(const DramCoord &coord) const;

  private:
    AddressMapping mapping_;
    std::uint32_t burst_shift_;
    std::uint32_t channels_;
    std::uint32_t ranks_;
    std::uint32_t banks_;
    std::uint32_t columns_;
};

} // namespace mocktails::dram

#endif // MOCKTAILS_DRAM_ADDRESS_MAP_HPP
