/**
 * @file
 * Replays a request stream into the memory system.
 *
 * The player honours request timestamps and implements the paper's
 * simulator-feedback rule (Sec. III-C): when backpressure prevents
 * injection, the accumulated stall is added to the timestamps of all
 * not-yet-injected requests, so the stream's *relative* timing is
 * preserved under contention.
 */

#ifndef MOCKTAILS_DRAM_TRACE_PLAYER_HPP
#define MOCKTAILS_DRAM_TRACE_PLAYER_HPP

#include <cstdint>
#include <functional>

#include "mem/request.hpp"
#include "mem/source.hpp"
#include "sim/event_queue.hpp"

namespace mocktails::dram
{

/**
 * Event-driven injector: pulls requests from a RequestSource and
 * offers them to a sink (crossbar or memory system) at their adjusted
 * timestamps.
 */
class TracePlayer
{
  public:
    /** Downstream admission: returns false to signal backpressure. */
    using Sink = std::function<bool(const mem::Request &)>;

    TracePlayer(sim::EventQueue &events, mem::RequestSource &source,
                Sink sink, std::uint32_t retry_interval = 1);

    /** Begin injecting; call once before running the event queue. */
    void start();

    /** Requests successfully injected so far. */
    std::uint64_t injected() const { return injected_; }

    /** Total backpressure delay folded into the stream (ticks). */
    sim::Tick accumulatedDelay() const { return delay_; }

    /** True once the source is exhausted and the last request sent. */
    bool done() const { return done_; }

    /** Tick at which the final request was injected. */
    sim::Tick finishTick() const { return finish_tick_; }

  private:
    void step();

    sim::EventQueue &events_;
    mem::RequestSource &source_;
    Sink sink_;
    std::uint32_t retry_interval_;

    mem::Request current_{};
    bool have_current_ = false;
    bool done_ = false;
    sim::Tick delay_ = 0;
    std::uint64_t injected_ = 0;
    sim::Tick finish_tick_ = 0;
};

} // namespace mocktails::dram

#endif // MOCKTAILS_DRAM_TRACE_PLAYER_HPP
