#include "dram/channel.hpp"

#include <cassert>

#include "obs/trace_event.hpp"

namespace mocktails::dram
{

Channel::Channel(sim::EventQueue &events, const DramConfig &config,
                 CompletionCallback on_complete, std::uint32_t id)
    : events_(events), config_(config),
      on_complete_(std::move(on_complete)), id_(id),
      open_row_(config.banksPerChannel())
{
    stats_.perBankReadBursts.assign(config.banksPerChannel(), 0);
    stats_.perBankWriteBursts.assign(config.banksPerChannel(), 0);
}

void
Channel::push(const Burst &burst)
{
    if (burst.isRead) {
        assert(canAcceptRead());
        stats_.readQueueSeen.add(
            static_cast<std::int64_t>(read_queue_.size()));
        read_queue_.push_back(burst);
    } else {
        assert(canAcceptWrite());
        stats_.writeQueueSeen.add(
            static_cast<std::int64_t>(write_queue_.size()));
        write_queue_.push_back(burst);
    }

    if (!busy_)
        trySchedule();
}

void
Channel::trySchedule()
{
    if (busy_)
        return;

    // Refresh is charged lazily: when the interval has elapsed and
    // there is pending work to observe it. (A strictly periodic
    // refresh event would keep the simulation alive forever; idle
    // refreshes are invisible to every collected metric.)
    if (config_.tREFI > 0 &&
        events_.now() - last_refresh_ >= config_.tREFI &&
        (!read_queue_.empty() || !write_queue_.empty())) {
        performRefresh();
        return;
    }

    if (write_mode_) {
        // Leave the drain once the low watermark is reached (with the
        // minimum-writes hysteresis) or there is nothing left to write.
        const bool drained =
            write_queue_.empty() ||
            (write_queue_.size() <= config_.writeLowMark() &&
             writes_this_drain_ >= config_.minWritesPerSwitch);
        if (drained)
            write_mode_ = false;
    }

    if (!write_mode_) {
        // Enter the drain when the high watermark is crossed, or when
        // there is nothing else to do (gem5 drains writes when idle).
        const bool pressured =
            write_queue_.size() >= config_.writeHighMark();
        const bool idle_drain =
            read_queue_.empty() && !write_queue_.empty();
        if (pressured || idle_drain) {
            write_mode_ = true;
            writes_this_drain_ = 0;
            stats_.readsPerTurnaround.add(
                static_cast<double>(reads_this_turn_));
            ++stats_.turnarounds;
            reads_this_turn_ = 0;
        }
    }

    std::deque<Burst> &queue = write_mode_ ? write_queue_ : read_queue_;
    const std::size_t index = pickIndex(queue);
    if (index == npos)
        return; // both queues empty; stay idle until the next push

    service(queue, index);
}

void
Channel::performRefresh()
{
    last_refresh_ = events_.now();
    for (auto &row : open_row_)
        row.reset();
    ++stats_.refreshes;
    if (obs::TraceEventWriter *trace = obs::collector()) {
        trace->complete("refresh", "dram", events_.now(), config_.tRFC,
                        obs::track::kDramBase + id_);
    }

    busy_ = true;
    stats_.busyCycles += config_.tRFC;
    stats_.lastActiveTick = std::max<std::uint64_t>(
        stats_.lastActiveTick, events_.now() + config_.tRFC);
    events_.scheduleIn(config_.tRFC, sim::kBandDevice, [this] {
        busy_ = false;
        trySchedule();
    });
}

std::size_t
Channel::pickIndex(const std::deque<Burst> &queue) const
{
    if (queue.empty())
        return npos;
    if (config_.scheduling == Scheduling::Fcfs)
        return 0;

    // FR-FCFS: the oldest burst that hits an open row, else the oldest.
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const auto &open = open_row_[queue[i].bank];
        if (open && *open == queue[i].row)
            return i;
    }
    return 0;
}

void
Channel::service(std::deque<Burst> &queue, std::size_t index)
{
    const Burst burst = queue[index];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));

    const auto &open = open_row_[burst.bank];
    const bool hit = open && *open == burst.row;
    const bool conflict = open && *open != burst.row;

    std::uint32_t prep = 0;
    if (conflict)
        prep = config_.tRP + config_.tRCD;
    else if (!hit)
        prep = config_.tRCD;

    // Bus direction turnaround penalty (none for the first burst).
    std::uint32_t turnaround = 0;
    if (any_serviced_) {
        if (last_was_write_ && burst.isRead)
            turnaround = config_.tWTR;
        else if (!last_was_write_ && !burst.isRead)
            turnaround = config_.tRTW;
    }

    const std::uint32_t access =
        burst.isRead ? config_.tCL : config_.tCWL;
    const sim::Tick start = events_.now() + turnaround;
    const sim::Tick completion = start + prep + access + config_.tBURST;
    const sim::Tick bus_free = start + prep + config_.tBURST;

    // Statistics.
    if (burst.isRead) {
        ++stats_.readBursts;
        if (hit)
            ++stats_.readRowHits;
        ++stats_.perBankReadBursts[burst.bank];
        ++reads_this_turn_;
    } else {
        ++stats_.writeBursts;
        if (hit)
            ++stats_.writeRowHits;
        ++stats_.perBankWriteBursts[burst.bank];
        ++writes_this_drain_;
    }

    // Observability: the burst's bus occupancy as a duration on this
    // channel's track, with the row outcome and bank as drill-down
    // args (0 = miss, 1 = hit, 2 = conflict).
    if (obs::TraceEventWriter *trace = obs::collector()) {
        trace->complete(
            burst.isRead ? "R" : "W", "dram", events_.now(),
            bus_free - events_.now(), obs::track::kDramBase + id_,
            {{"row", conflict ? 2 : (hit ? 1 : 0)},
             {"bank", burst.bank},
             {"queued", static_cast<std::int64_t>(
                            read_queue_.size() + write_queue_.size())}});
    }

    open_row_[burst.bank] = burst.row;
    updatePagePolicy(burst.bank, burst.row);
    last_was_write_ = !burst.isRead;
    any_serviced_ = true;

    busy_ = true;
    stats_.busyCycles += bus_free - events_.now();
    stats_.lastActiveTick = std::max<std::uint64_t>(
        stats_.lastActiveTick, completion);
    // Channel-internal events run on the device band: at any tick,
    // every transport-side push lands before the bus frees and before
    // completions fire, so the scheduler's view of its queues depends
    // only on this channel's burst-arrival history — the property the
    // sharded simulation's per-channel replay relies on.
    events_.schedule(completion, sim::kBandDevice,
                     [this, burst, completion] {
                         on_complete_(burst, completion);
                     });
    events_.schedule(bus_free, sim::kBandDevice, [this] {
        busy_ = false;
        trySchedule();
    });
}

void
Channel::updatePagePolicy(std::uint32_t bank, std::uint64_t row)
{
    switch (config_.pagePolicy) {
      case PagePolicy::Closed:
        open_row_[bank].reset();
        break;
      case PagePolicy::Open:
        break;
      case PagePolicy::OpenAdaptive:
        // Precharge early only when a conflicting access is already
        // queued and no queued access still wants this row.
        if (!anyPending(bank, row, true) && anyPending(bank, row, false))
            open_row_[bank].reset();
        break;
    }
}

bool
Channel::anyPending(std::uint32_t bank, std::uint64_t row,
                    bool same_row) const
{
    const auto matches = [&](const Burst &b) {
        return b.bank == bank && ((b.row == row) == same_row);
    };
    for (const Burst &b : read_queue_) {
        if (matches(b))
            return true;
    }
    for (const Burst &b : write_queue_) {
        if (matches(b))
            return true;
    }
    return false;
}

} // namespace mocktails::dram
