#include "dram/memory_system.hpp"

#include <cassert>

namespace mocktails::dram
{

MemorySystem::MemorySystem(sim::EventQueue &events,
                           const DramConfig &config)
    : events_(events), config_(config), map_(config)
{
    assert(config.isValid());
    channels_.reserve(config.channels);
    for (std::uint32_t c = 0; c < config.channels; ++c) {
        channels_.push_back(std::make_unique<Channel>(
            events_, config_,
            [this](const Burst &b, sim::Tick t) {
                onBurstComplete(b, t);
            },
            c));
    }
}

bool
MemorySystem::tryInject(const mem::Request &request)
{
    assert(request.size > 0);

    // Enumerate the bursts the request touches.
    const mem::Addr first = request.addr & ~mem::Addr{config_.burstSize - 1};
    const mem::Addr last =
        (request.end() - 1) & ~mem::Addr{config_.burstSize - 1};

    // Count per-channel demand so admission can be all-or-nothing.
    std::vector<std::uint32_t> demand(config_.channels, 0);
    std::uint32_t burst_count = 0;
    for (mem::Addr a = first;; a += config_.burstSize) {
        ++demand[map_.decode(a).channel];
        ++burst_count;
        if (a == last)
            break;
    }

    for (std::uint32_t c = 0; c < config_.channels; ++c) {
        if (demand[c] == 0)
            continue;
        const auto &channel = *channels_[c];
        const std::size_t free =
            request.isRead()
                ? config_.readQueueCapacity - channel.readQueueSize()
                : config_.writeQueueCapacity - channel.writeQueueSize();
        if (demand[c] > free) {
            ++stats_.backpressureRejects;
            return false;
        }
    }

    const std::uint64_t id = next_request_id_++;
    pending_.emplace(id, Pending{events_.now(), burst_count,
                                 request.isRead()});

    ++stats_.requests;
    if (request.isRead())
        ++stats_.readRequests;
    else
        ++stats_.writeRequests;

    for (mem::Addr a = first;; a += config_.burstSize) {
        const DramCoord coord = map_.decode(a);
        Burst burst;
        burst.arrival = events_.now();
        burst.row = coord.row;
        burst.bank = coord.flatBank(config_);
        burst.isRead = request.isRead();
        burst.requestId = id;
        channels_[coord.channel]->push(burst);
        if (a == last)
            break;
    }
    return true;
}

bool
MemorySystem::idle() const
{
    for (const auto &channel : channels_) {
        if (!channel->idle())
            return false;
    }
    return true;
}

const ChannelStats &
MemorySystem::channelStats(std::uint32_t channel) const
{
    assert(channel < channels_.size());
    return channels_[channel]->stats();
}

std::uint64_t
MemorySystem::totalReadBursts() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels_)
        sum += c->stats().readBursts;
    return sum;
}

std::uint64_t
MemorySystem::totalWriteBursts() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels_)
        sum += c->stats().writeBursts;
    return sum;
}

std::uint64_t
MemorySystem::totalReadRowHits() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels_)
        sum += c->stats().readRowHits;
    return sum;
}

std::uint64_t
MemorySystem::totalWriteRowHits() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels_)
        sum += c->stats().writeRowHits;
    return sum;
}

double
MemorySystem::avgReadQueueLength() const
{
    double sum = 0.0;
    std::uint64_t samples = 0;
    for (const auto &c : channels_) {
        const auto &h = c->stats().readQueueSeen;
        sum += h.mean() * static_cast<double>(h.total());
        samples += h.total();
    }
    return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
}

double
MemorySystem::avgWriteQueueLength() const
{
    double sum = 0.0;
    std::uint64_t samples = 0;
    for (const auto &c : channels_) {
        const auto &h = c->stats().writeQueueSeen;
        sum += h.mean() * static_cast<double>(h.total());
        samples += h.total();
    }
    return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
}

void
MemorySystem::onBurstComplete(const Burst &burst, sim::Tick completion)
{
    const auto it = pending_.find(burst.requestId);
    assert(it != pending_.end());
    Pending &p = it->second;
    assert(p.outstanding > 0);
    if (--p.outstanding == 0) {
        if (p.isRead) {
            stats_.readLatency.add(
                static_cast<double>(completion - p.admission));
        }
        if (on_request_complete_) {
            on_request_complete_(burst.requestId, p.isRead,
                                 p.admission, completion);
        }
        pending_.erase(it);
    }
}

} // namespace mocktails::dram
