#include "dram/memory_system.hpp"

#include <algorithm>
#include <cassert>

namespace mocktails::dram
{

namespace
{

/** Initial pending-table capacity; covers the default queue depths. */
constexpr std::size_t kInitialPendingSlots = 1024;

} // namespace

MemorySystem::MemorySystem(sim::EventQueue &events,
                           const DramConfig &config)
    : events_(events), config_(config), map_(config)
{
    assert(config.isValid());
    channels_.reserve(config.channels);
    for (std::uint32_t c = 0; c < config.channels; ++c) {
        channels_.push_back(std::make_unique<Channel>(
            events_, config_,
            [this](const Burst &b, sim::Tick t) {
                onBurstComplete(b, t);
            },
            c));
    }
    pending_slots_.resize(kInitialPendingSlots);
    pending_mask_ = kInitialPendingSlots - 1;
    demand_scratch_.assign(config.channels, 0);
}

MemorySystem::PendingSlot &
MemorySystem::claimSlot(std::uint64_t id)
{
    while (pending_slots_[id & pending_mask_].id != kNoId)
        growPendingTable();
    PendingSlot &slot = pending_slots_[id & pending_mask_];
    slot.id = id;
    return slot;
}

void
MemorySystem::growPendingTable()
{
    std::size_t capacity = pending_slots_.size();
    for (;;) {
        capacity *= 2;
        const std::uint64_t mask = capacity - 1;
        std::vector<PendingSlot> next(capacity);
        bool clean = true;
        for (const PendingSlot &slot : pending_slots_) {
            if (slot.id == kNoId)
                continue;
            PendingSlot &dest = next[slot.id & mask];
            if (dest.id != kNoId) {
                clean = false;
                break;
            }
            dest = slot;
        }
        if (clean) {
            pending_slots_ = std::move(next);
            pending_mask_ = mask;
            return;
        }
    }
}

bool
MemorySystem::tryInject(const mem::Request &request)
{
    assert(request.size > 0);

    // Count per-channel demand so admission can be all-or-nothing.
    std::fill(demand_scratch_.begin(), demand_scratch_.end(), 0u);
    std::uint32_t burst_count = 0;
    forEachBurst(request, config_, map_,
                 [&](mem::Addr, const DramCoord &coord) {
                     ++demand_scratch_[coord.channel];
                     ++burst_count;
                 });

    for (std::uint32_t c = 0; c < config_.channels; ++c) {
        if (demand_scratch_[c] == 0)
            continue;
        const auto &channel = *channels_[c];
        const std::size_t free =
            request.isRead()
                ? config_.readQueueCapacity - channel.readQueueSize()
                : config_.writeQueueCapacity - channel.writeQueueSize();
        if (demand_scratch_[c] > free) {
            ++stats_.backpressureRejects;
            return false;
        }
    }

    const std::uint64_t id = next_request_id_++;
    PendingSlot &slot = claimSlot(id);
    slot.admission = events_.now();
    slot.outstanding = burst_count;
    slot.isRead = request.isRead();

    ++stats_.requests;
    if (request.isRead())
        ++stats_.readRequests;
    else
        ++stats_.writeRequests;

    forEachBurst(request, config_, map_,
                 [&](mem::Addr, const DramCoord &coord) {
                     Burst burst;
                     burst.arrival = events_.now();
                     burst.row = coord.row;
                     burst.bank = coord.flatBank(config_);
                     burst.isRead = request.isRead();
                     burst.requestId = id;
                     channels_[coord.channel]->push(burst);
                 });
    return true;
}

bool
MemorySystem::idle() const
{
    for (const auto &channel : channels_) {
        if (!channel->idle())
            return false;
    }
    return true;
}

const ChannelStats &
MemorySystem::channelStats(std::uint32_t channel) const
{
    assert(channel < channels_.size());
    return channels_[channel]->stats();
}

std::uint64_t
MemorySystem::totalReadBursts() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels_)
        sum += c->stats().readBursts;
    return sum;
}

std::uint64_t
MemorySystem::totalWriteBursts() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels_)
        sum += c->stats().writeBursts;
    return sum;
}

std::uint64_t
MemorySystem::totalReadRowHits() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels_)
        sum += c->stats().readRowHits;
    return sum;
}

std::uint64_t
MemorySystem::totalWriteRowHits() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels_)
        sum += c->stats().writeRowHits;
    return sum;
}

double
MemorySystem::avgReadQueueLength() const
{
    double sum = 0.0;
    std::uint64_t samples = 0;
    for (const auto &c : channels_) {
        const auto &h = c->stats().readQueueSeen;
        sum += h.mean() * static_cast<double>(h.total());
        samples += h.total();
    }
    return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
}

double
MemorySystem::avgWriteQueueLength() const
{
    double sum = 0.0;
    std::uint64_t samples = 0;
    for (const auto &c : channels_) {
        const auto &h = c->stats().writeQueueSeen;
        sum += h.mean() * static_cast<double>(h.total());
        samples += h.total();
    }
    return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
}

void
MemorySystem::onBurstComplete(const Burst &burst, sim::Tick completion)
{
    PendingSlot &slot = pending_slots_[burst.requestId & pending_mask_];
    assert(slot.id == burst.requestId && "completion for unknown id");
    assert(slot.outstanding > 0);
    if (--slot.outstanding == 0) {
        if (slot.isRead) {
            stats_.readLatency.add(
                static_cast<double>(completion - slot.admission));
        }
        if (on_request_complete_) {
            on_request_complete_(burst.requestId, slot.isRead,
                                 slot.admission, completion);
        }
        slot.id = kNoId;
    }
}

} // namespace mocktails::dram
