/**
 * @file
 * Per-channel sharded DRAM simulation.
 *
 * A request maps to a fixed set of channels (dram::AddressMap), and a
 * channel's behaviour depends only on the sequence of bursts that
 * arrive at it — never on another channel's internals. The only
 * feedback from DRAM to the front end (trace player + crossbar) is
 * admission backpressure. The sharded path exploits this:
 *
 *  1. **Front-end pass** (sequential, cheap): run the real TracePlayer
 *     and Crossbar against an always-accepting sink, recording for
 *     every delivered request its delivery tick and its per-channel
 *     burst decomposition (via forEachBurst, the same decomposition
 *     MemorySystem uses). Speculation: no DRAM backpressure occurs.
 *  2. **Per-channel replay** (parallel): each channel gets its own
 *     sim::EventQueue and Channel instance and replays exactly the
 *     bursts addressed to it, pushed at the recorded delivery ticks on
 *     the transport band. Channel-internal events run on the device
 *     band, so intra-tick ordering is identical to the coupled run
 *     (see sim/event_queue.hpp). Each admission re-checks queue
 *     capacity; the first would-be rejection anywhere aborts the
 *     speculation, because channel state is bit-identical to the
 *     coupled run up to that point — the coupled run would have
 *     rejected the same request.
 *  3. **Deterministic merge**: ChannelStats are taken verbatim per
 *     channel; request read latency is folded in request-id order
 *     (both paths use the same canonical order, see simulate.cpp), so
 *     every statistic is bit-identical to the coupled path at any
 *     thread count.
 *
 * On abort the caller replays the recorded request stream through the
 * coupled path, which handles backpressure exactly.
 *
 * Note: when an obs collector is installed, per-channel replay emits
 * trace events from worker threads in nondeterministic order; the Auto
 * dispatch in simulate.cpp therefore prefers the coupled path while
 * tracing.
 */

#ifndef MOCKTAILS_DRAM_SHARDED_HPP
#define MOCKTAILS_DRAM_SHARDED_HPP

#include <cstdint>

#include "dram/config.hpp"
#include "dram/simulate.hpp"
#include "interconnect/crossbar.hpp"
#include "mem/request_batch.hpp"
#include "mem/source.hpp"

namespace mocktails::dram
{

/**
 * Outcome of one sharded simulation attempt.
 */
struct ShardedRun
{
    /** False when backpressure speculation failed (result invalid). */
    bool completed = false;

    /** Valid when completed; bit-identical to the coupled path. */
    SimulationResult result;

    /**
     * Every request pulled from the source, in order (SoA columns; a
     * BatchSource replays them). On abort the caller replays this
     * through the coupled path; the source itself has already been
     * consumed.
     */
    mem::RequestBatch recorded;

    /** Events over all queues (front end + channels), for telemetry. */
    std::uint64_t eventsScheduled = 0;
    std::uint64_t eventsExecuted = 0;
};

/**
 * Attempt a sharded simulation of @p source.
 *
 * @param threads Parallelism across channels; 0 = default, 1 = the
 *                sequential loop. The result does not depend on it.
 */
ShardedRun
simulateSharded(mem::RequestSource &source,
                const DramConfig &dram_config,
                const interconnect::CrossbarConfig &xbar_config,
                unsigned threads);

} // namespace mocktails::dram

#endif // MOCKTAILS_DRAM_SHARDED_HPP
