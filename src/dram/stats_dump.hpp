/**
 * @file
 * gem5-style statistics dump.
 *
 * Serialises a SimulationResult in the `name value # description`
 * line format gem5 users diff and post-process. This keeps Mocktails
 * runs scriptable with existing stats tooling.
 */

#ifndef MOCKTAILS_DRAM_STATS_DUMP_HPP
#define MOCKTAILS_DRAM_STATS_DUMP_HPP

#include <string>

#include "dram/simulate.hpp"

namespace mocktails::dram
{

/**
 * Render @p result as a gem5-style stats block.
 *
 * @param prefix Prepended to every stat name (e.g. "system.mem").
 */
std::string dumpStats(const SimulationResult &result,
                      const std::string &prefix = "mem");

} // namespace mocktails::dram

#endif // MOCKTAILS_DRAM_STATS_DUMP_HPP
