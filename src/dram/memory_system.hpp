/**
 * @file
 * The multi-channel memory system.
 *
 * Splits incoming requests into DRAM bursts, routes each burst to its
 * channel per the address mapping, and aggregates statistics. Requests
 * are admitted atomically: if any burst would overflow its destination
 * queue the whole request is rejected, signalling backpressure to the
 * injector (paper Sec. III-C, "Simulator Feedback").
 */

#ifndef MOCKTAILS_DRAM_MEMORY_SYSTEM_HPP
#define MOCKTAILS_DRAM_MEMORY_SYSTEM_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/address_map.hpp"
#include "dram/channel.hpp"
#include "dram/config.hpp"
#include "dram/stats.hpp"
#include "mem/request.hpp"
#include "sim/event_queue.hpp"

namespace mocktails::dram
{

/**
 * Invoke @p fn(addr, coord) for every burst-aligned address a request
 * touches, in ascending address order.
 *
 * This is *the* request-to-burst decomposition: MemorySystem admission
 * and the sharded simulation front-end (dram/sharded.cpp) both use it,
 * so a request always expands to the same burst sequence regardless of
 * which execution path replays it.
 */
template <typename Fn>
inline void
forEachBurst(const mem::Request &request, const DramConfig &config,
             const AddressMap &map, Fn &&fn)
{
    const mem::Addr first =
        request.addr & ~mem::Addr{config.burstSize - 1};
    const mem::Addr last =
        (request.end() - 1) & ~mem::Addr{config.burstSize - 1};
    for (mem::Addr a = first;; a += config.burstSize) {
        fn(a, map.decode(a));
        if (a == last)
            break;
    }
}

/**
 * The full DRAM subsystem: one controller per channel plus routing.
 */
class MemorySystem
{
  public:
    /**
     * Invoked when the last burst of a request finishes.
     *
     * @param id        The id returned by lastRequestId() at inject.
     * @param is_read   Operation of the request.
     * @param admitted  Tick the request entered the queues.
     * @param completed Tick its final burst finished.
     */
    using CompletionCallback =
        std::function<void(std::uint64_t id, bool is_read,
                           sim::Tick admitted, sim::Tick completed)>;

    MemorySystem(sim::EventQueue &events, const DramConfig &config);

    /**
     * Try to admit a request at the current simulation time.
     *
     * @return false when backpressure prevents admission; the caller
     *         should retry later.
     */
    bool tryInject(const mem::Request &request);

    /** Id assigned to the most recently admitted request. */
    std::uint64_t lastRequestId() const { return next_request_id_ - 1; }

    /** Observe request completions (e.g., per-source accounting). */
    void
    setCompletionCallback(CompletionCallback callback)
    {
        on_request_complete_ = std::move(callback);
    }

    /** True when every channel has drained. */
    bool idle() const;

    const DramConfig &config() const { return config_; }
    const AddressMap &addressMap() const { return map_; }

    /** Per-channel statistics. */
    const ChannelStats &channelStats(std::uint32_t channel) const;
    std::uint32_t channelCount() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    /** System-level statistics. */
    const MemoryStats &stats() const { return stats_; }

    /// @name Aggregates over channels
    /// @{
    std::uint64_t totalReadBursts() const;
    std::uint64_t totalWriteBursts() const;
    std::uint64_t totalReadRowHits() const;
    std::uint64_t totalWriteRowHits() const;
    double avgReadQueueLength() const;
    double avgWriteQueueLength() const;
    /// @}

  private:
    /**
     * In-flight request bookkeeping lives in a flat power-of-two table
     * indexed by `id & mask`. Request ids are sequential and the
     * outstanding window is bounded by the channel queue capacities, so
     * the table almost never collides; a collision (an id from a full
     * table-period ago still in flight) doubles the table.
     */
    struct PendingSlot
    {
        std::uint64_t id = kNoId;
        sim::Tick admission = 0;
        std::uint32_t outstanding = 0;
        bool isRead = true;
    };

    static constexpr std::uint64_t kNoId = ~std::uint64_t{0};

    void onBurstComplete(const Burst &burst, sim::Tick completion);
    PendingSlot &claimSlot(std::uint64_t id);
    void growPendingTable();

    sim::EventQueue &events_;
    DramConfig config_;
    AddressMap map_;
    std::vector<std::unique_ptr<Channel>> channels_;
    std::vector<PendingSlot> pending_slots_;
    std::uint64_t pending_mask_ = 0;
    std::vector<std::uint32_t> demand_scratch_; ///< per-channel, reused
    std::uint64_t next_request_id_ = 0;
    MemoryStats stats_;
    CompletionCallback on_request_complete_;
};

} // namespace mocktails::dram

#endif // MOCKTAILS_DRAM_MEMORY_SYSTEM_HPP
