/**
 * @file
 * Statistics collected by the DRAM model.
 *
 * These are exactly the observables the paper validates against
 * (Sec. IV-B): DRAM burst counts, queue lengths seen by arriving
 * requests, row hits, per-bank access counts, reads per read-to-write
 * turnaround, and request latency.
 */

#ifndef MOCKTAILS_DRAM_STATS_HPP
#define MOCKTAILS_DRAM_STATS_HPP

#include <cstdint>
#include <vector>

#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace mocktails::dram
{

/**
 * Per-channel counters and distributions.
 */
struct ChannelStats
{
    /// Bursts serviced.
    std::uint64_t readBursts = 0;
    std::uint64_t writeBursts = 0;

    /// Bursts that hit an open row at service time.
    std::uint64_t readRowHits = 0;
    std::uint64_t writeRowHits = 0;

    /// Queue occupancy sampled when a burst of that kind arrives.
    util::Histogram readQueueSeen;
    util::Histogram writeQueueSeen;

    /// Bursts serviced per bank (flat rank*banks + bank index).
    std::vector<std::uint64_t> perBankReadBursts;
    std::vector<std::uint64_t> perBankWriteBursts;

    /// Reads serviced between consecutive switches to write drain.
    util::RunningStats readsPerTurnaround;

    /// Number of read->write switches.
    std::uint64_t turnarounds = 0;

    /// Refreshes performed (tREFI elapsed while work was pending).
    std::uint64_t refreshes = 0;

    /// Cycles the channel was occupied (bursts, prep, refreshes).
    std::uint64_t busyCycles = 0;

    /// Tick of the channel's last activity.
    std::uint64_t lastActiveTick = 0;

    /** Fraction of [0, lastActiveTick] the channel was occupied. */
    double
    utilization() const
    {
        return lastActiveTick == 0
                   ? 0.0
                   : static_cast<double>(busyCycles) /
                         static_cast<double>(lastActiveTick);
    }

    double
    readRowHitRate() const
    {
        return readBursts == 0 ? 0.0
                               : static_cast<double>(readRowHits) /
                                     static_cast<double>(readBursts);
    }

    double
    writeRowHitRate() const
    {
        return writeBursts == 0 ? 0.0
                                : static_cast<double>(writeRowHits) /
                                      static_cast<double>(writeBursts);
    }
};

/**
 * System-wide aggregates (sums/means over channels plus request-level
 * latency, which only exists above the channel).
 */
struct MemoryStats
{
    std::uint64_t requests = 0;
    std::uint64_t readRequests = 0;
    std::uint64_t writeRequests = 0;

    /// Latency from admission to last-burst completion, read requests.
    util::RunningStats readLatency;

    /// Requests rejected at least once due to full queues.
    std::uint64_t backpressureRejects = 0;

    std::uint64_t
    totalOver(const std::vector<ChannelStats> &channels,
              std::uint64_t ChannelStats::*member) const
    {
        std::uint64_t sum = 0;
        for (const auto &c : channels)
            sum += c.*member;
        return sum;
    }
};

} // namespace mocktails::dram

#endif // MOCKTAILS_DRAM_STATS_HPP
