/**
 * @file
 * One-call simulation harness.
 *
 * Reproduces the paper's validation platform (Sec. IV-A): a traffic
 * generator (trace player) connected to main memory through a
 * crossbar, run to completion, returning every statistic the
 * evaluation compares. Both recorded traces and Mocktails synthesis
 * engines plug in through the RequestSource interface.
 */

#ifndef MOCKTAILS_DRAM_SIMULATE_HPP
#define MOCKTAILS_DRAM_SIMULATE_HPP

#include <vector>

#include "dram/config.hpp"
#include "dram/stats.hpp"
#include "interconnect/crossbar.hpp"
#include "mem/source.hpp"
#include "mem/trace.hpp"

namespace mocktails::dram
{

/**
 * Execution knobs for one simulation run. The knobs select *how* the
 * run executes, never *what* it computes: every mode and thread count
 * produces bit-identical SimulationResult contents.
 */
struct SimulationOptions
{
    /** Worker threads for the sharded path; 0 = default, 1 = serial. */
    unsigned threads = 0;

    enum class Mode
    {
        /**
         * Sharded when it can help: more than one channel, an
         * effective thread count above one, and no obs collector
         * installed (per-channel replay would scramble trace-event
         * order). Otherwise coupled.
         */
        Auto,

        /** The classic single-event-queue simulation. */
        Coupled,

        /**
         * Force the per-channel sharded path (dram/sharded.hpp); it
         * still falls back to coupled when backpressure speculation
         * aborts.
         */
        Sharded,
    };

    Mode mode = Mode::Auto;
};

/**
 * Everything measured by one simulation run.
 */
struct SimulationResult
{
    MemoryStats memory;
    std::vector<ChannelStats> channels;

    mem::Tick finishTick = 0;        ///< last injection tick
    mem::Tick accumulatedDelay = 0;  ///< backpressure added by player
    std::uint64_t injected = 0;

    /// @name Aggregates
    /// @{
    std::uint64_t readBursts() const;
    std::uint64_t writeBursts() const;
    std::uint64_t readRowHits() const;
    std::uint64_t writeRowHits() const;
    double avgReadQueueLength() const;
    double avgWriteQueueLength() const;
    double avgReadLatency() const { return memory.readLatency.mean(); }
    /// @}
};

/**
 * Run a request source through crossbar + DRAM until it drains.
 */
SimulationResult
simulateSource(mem::RequestSource &source,
               const DramConfig &dram_config = DramConfig{},
               const interconnect::CrossbarConfig &xbar_config =
                   interconnect::CrossbarConfig{},
               const SimulationOptions &options = SimulationOptions{});

/** Convenience overload for a recorded trace. */
SimulationResult
simulateTrace(const mem::Trace &trace,
              const DramConfig &dram_config = DramConfig{},
              const interconnect::CrossbarConfig &xbar_config =
                  interconnect::CrossbarConfig{},
              const SimulationOptions &options = SimulationOptions{});

} // namespace mocktails::dram

#endif // MOCKTAILS_DRAM_SIMULATE_HPP
