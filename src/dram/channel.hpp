/**
 * @file
 * A single DRAM channel controller.
 *
 * Models a gem5-style memory controller (Hansson et al., ISPASS'14, as
 * used by the paper): separate read and write burst queues, FR-FCFS
 * scheduling, an open-adaptive page policy and a write-drain state
 * machine with high/low watermarks. One burst occupies the channel's
 * data bus at a time; bank preparation (activate/precharge) extends the
 * service occupancy of row misses and conflicts.
 */

#ifndef MOCKTAILS_DRAM_CHANNEL_HPP
#define MOCKTAILS_DRAM_CHANNEL_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "dram/address_map.hpp"
#include "dram/config.hpp"
#include "dram/stats.hpp"
#include "sim/event_queue.hpp"

namespace mocktails::dram
{

/**
 * One burst-sized unit of work inside a channel.
 */
struct Burst
{
    sim::Tick arrival = 0;      ///< admission tick
    std::uint64_t row = 0;      ///< target row
    std::uint32_t bank = 0;     ///< flat bank index within the channel
    bool isRead = true;
    std::uint64_t requestId = 0; ///< owning request, for completion
};

/**
 * A DRAM channel: queues, scheduler, banks and the drain state machine.
 */
class Channel
{
  public:
    /** Invoked when a burst finishes (data returned / written). */
    using CompletionCallback =
        std::function<void(const Burst &, sim::Tick completion)>;

    /** @param id Channel index, used to label observability tracks. */
    Channel(sim::EventQueue &events, const DramConfig &config,
            CompletionCallback on_complete, std::uint32_t id = 0);

    /** Bursts currently queued for reading. */
    std::size_t readQueueSize() const { return read_queue_.size(); }

    /** Bursts currently queued for writing. */
    std::size_t writeQueueSize() const { return write_queue_.size(); }

    /** True when a read burst can be admitted. */
    bool
    canAcceptRead() const
    {
        return read_queue_.size() < config_.readQueueCapacity;
    }

    /** True when a write burst can be admitted. */
    bool
    canAcceptWrite() const
    {
        return write_queue_.size() < config_.writeQueueCapacity;
    }

    /**
     * Admit one burst. @pre the corresponding canAccept*() is true.
     * Samples the queue-seen statistics and wakes the scheduler.
     */
    void push(const Burst &burst);

    /** True when both queues are empty and the bus is idle. */
    bool idle() const { return !busy_ && read_queue_.empty() &&
                               write_queue_.empty(); }

    const ChannelStats &stats() const { return stats_; }

  private:
    /// Scheduler entry point; runs whenever the bus may start a burst.
    void trySchedule();

    /// Perform one refresh: close all rows, occupy the bus for tRFC.
    void performRefresh();

    /// Execute the burst at @p index of @p queue.
    void service(std::deque<Burst> &queue, std::size_t index);

    /// FR-FCFS / FCFS victim selection. Returns npos when empty.
    std::size_t pickIndex(const std::deque<Burst> &queue) const;

    /// Apply the page policy after an access to @p bank / @p row.
    void updatePagePolicy(std::uint32_t bank, std::uint64_t row);

    /// True when any queued burst targets @p bank with/without @p row.
    bool anyPending(std::uint32_t bank, std::uint64_t row,
                    bool same_row) const;

    sim::EventQueue &events_;
    DramConfig config_;
    CompletionCallback on_complete_;
    std::uint32_t id_ = 0;

    std::deque<Burst> read_queue_;
    std::deque<Burst> write_queue_;

    /// Open row per flat bank; nullopt = precharged.
    std::vector<std::optional<std::uint64_t>> open_row_;

    bool busy_ = false;          ///< a burst occupies the bus
    sim::Tick last_refresh_ = 0; ///< tick of the previous refresh
    bool write_mode_ = false;    ///< draining writes
    bool last_was_write_ = false;
    bool any_serviced_ = false;  ///< no turnaround before first burst
    std::uint64_t reads_this_turn_ = 0;
    std::uint64_t writes_this_drain_ = 0;

    ChannelStats stats_;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

} // namespace mocktails::dram

#endif // MOCKTAILS_DRAM_CHANNEL_HPP
