/**
 * @file
 * DRAM subsystem configuration.
 *
 * Defaults reproduce the paper's Table III: 4 channels, 1 rank per
 * channel, 8 banks per rank, 32-byte bursts, 32/64-entry read/write
 * queues and 85%/50% write-drain thresholds. The policies match the
 * evaluation setup: FR-FCFS scheduling with an open-adaptive page
 * policy and a write-drain model (paper Sec. IV-A).
 */

#ifndef MOCKTAILS_DRAM_CONFIG_HPP
#define MOCKTAILS_DRAM_CONFIG_HPP

#include <cstdint>

#include "mem/request.hpp"

namespace mocktails::dram
{

/** How a flat physical address is spread across the DRAM topology. */
enum class AddressMapping : std::uint8_t
{
    /** row:rank:bank:channel:column — channel interleave at row size. */
    RoRaBaChCo = 0,
    /** row:rank:bank:column:channel — channel interleave per burst. */
    RoRaBaCoCh = 1,
};

/** Row-buffer management policy. */
enum class PagePolicy : std::uint8_t
{
    /** Keep rows open until a conflicting access arrives. */
    Open = 0,
    /** Keep rows open, but precharge early when a queued conflict is
     *  visible and no queued hit remains (gem5's open_adaptive). */
    OpenAdaptive = 1,
    /** Precharge after every access. */
    Closed = 2,
};

/** Queue scheduling policy. */
enum class Scheduling : std::uint8_t
{
    /** First come, first served. */
    Fcfs = 0,
    /** First-ready FCFS: oldest row hit first, then oldest. */
    FrFcfs = 1,
};

/**
 * Full configuration of the memory system.
 *
 * Timing values are expressed in interconnect clock cycles (the tick
 * unit used throughout the library).
 */
struct DramConfig
{
    /// @name Topology (Table III)
    /// @{
    std::uint32_t channels = 4;
    std::uint32_t ranksPerChannel = 1;
    std::uint32_t banksPerRank = 8;
    std::uint32_t burstSize = 32;       ///< bytes per DRAM burst
    std::uint32_t rowBufferSize = 2048; ///< bytes per row per bank
    /// @}

    /// @name Queues and write drain (Table III)
    /// @{
    std::uint32_t readQueueCapacity = 32;  ///< bursts
    std::uint32_t writeQueueCapacity = 64; ///< bursts
    double writeHighThreshold = 0.85;      ///< enter drain at this fill
    double writeLowThreshold = 0.50;       ///< leave drain at this fill
    std::uint32_t minWritesPerSwitch = 16; ///< hysteresis floor
    /// @}

    /// @name Policies
    /// @{
    AddressMapping mapping = AddressMapping::RoRaBaChCo;
    PagePolicy pagePolicy = PagePolicy::OpenAdaptive;
    Scheduling scheduling = Scheduling::FrFcfs;
    /// @}

    /// @name Timing (cycles)
    /// @{
    std::uint32_t tRCD = 14;   ///< activate to column command
    std::uint32_t tRP = 14;    ///< precharge period
    std::uint32_t tCL = 14;    ///< read column access latency
    std::uint32_t tCWL = 10;   ///< write column access latency
    std::uint32_t tBURST = 4;  ///< data bus occupancy per burst
    std::uint32_t tRTW = 4;    ///< read-to-write bus turnaround
    std::uint32_t tWTR = 8;    ///< write-to-read bus turnaround
    /// @}

    /// @name Refresh (cycles; tREFI = 0 disables refresh)
    /// @{
    std::uint64_t tREFI = 7800; ///< interval between refreshes
    std::uint32_t tRFC = 140;   ///< refresh duration (blocks channel)
    /// @}

    std::uint32_t banksPerChannel() const
    {
        return ranksPerChannel * banksPerRank;
    }

    std::uint32_t columnsPerRow() const
    {
        return rowBufferSize / burstSize;
    }

    std::uint32_t writeHighMark() const
    {
        return static_cast<std::uint32_t>(writeHighThreshold *
                                          writeQueueCapacity);
    }

    std::uint32_t writeLowMark() const
    {
        return static_cast<std::uint32_t>(writeLowThreshold *
                                          writeQueueCapacity);
    }

    /** Validity check: power-of-two geometry, non-zero sizes. */
    bool isValid() const;
};

} // namespace mocktails::dram

#endif // MOCKTAILS_DRAM_CONFIG_HPP
