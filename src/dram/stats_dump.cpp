#include "dram/stats_dump.hpp"

#include <cstdio>

namespace mocktails::dram
{

namespace
{

void
line(std::string &out, const std::string &name, double value,
     const char *description)
{
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer), "%-44s %16.6f  # %s\n",
                  name.c_str(), value, description);
    out += buffer;
}

void
line(std::string &out, const std::string &name, std::uint64_t value,
     const char *description)
{
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer), "%-44s %16llu  # %s\n",
                  name.c_str(),
                  static_cast<unsigned long long>(value), description);
    out += buffer;
}

} // namespace

std::string
dumpStats(const SimulationResult &result, const std::string &prefix)
{
    std::string out;
    out += "---------- Begin Simulation Statistics ----------\n";

    line(out, prefix + ".requests", result.memory.requests,
         "Total requests admitted");
    line(out, prefix + ".readReqs", result.memory.readRequests,
         "Read requests admitted");
    line(out, prefix + ".writeReqs", result.memory.writeRequests,
         "Write requests admitted");
    line(out, prefix + ".readBursts", result.readBursts(),
         "Read bursts serviced");
    line(out, prefix + ".writeBursts", result.writeBursts(),
         "Write bursts serviced");
    line(out, prefix + ".readRowHits", result.readRowHits(),
         "Read bursts that hit an open row");
    line(out, prefix + ".writeRowHits", result.writeRowHits(),
         "Write bursts that hit an open row");
    line(out, prefix + ".avgRdQLen", result.avgReadQueueLength(),
         "Average read queue length on arrival");
    line(out, prefix + ".avgWrQLen", result.avgWriteQueueLength(),
         "Average write queue length on arrival");
    line(out, prefix + ".avgRdLatency", result.avgReadLatency(),
         "Average read latency, admission to data (cycles)");
    line(out, prefix + ".injectionDelay",
         static_cast<std::uint64_t>(result.accumulatedDelay),
         "Backpressure delay folded into the stream (cycles)");
    line(out, prefix + ".finishTick",
         static_cast<std::uint64_t>(result.finishTick),
         "Tick of the final injection");

    for (std::size_t c = 0; c < result.channels.size(); ++c) {
        const auto &channel = result.channels[c];
        const std::string base =
            prefix + ".ctrl" + std::to_string(c);
        line(out, base + ".readBursts", channel.readBursts,
             "Read bursts serviced by this controller");
        line(out, base + ".writeBursts", channel.writeBursts,
             "Write bursts serviced by this controller");
        line(out, base + ".readRowHits", channel.readRowHits,
             "Read row hits");
        line(out, base + ".writeRowHits", channel.writeRowHits,
             "Write row hits");
        line(out, base + ".readRowHitRate",
             100.0 * channel.readRowHitRate(),
             "Read row hit rate (%)");
        line(out, base + ".writeRowHitRate",
             100.0 * channel.writeRowHitRate(),
             "Write row hit rate (%)");
        line(out, base + ".rdPerTurnAround",
             channel.readsPerTurnaround.mean(),
             "Average reads before switching to writes");
        line(out, base + ".turnarounds", channel.turnarounds,
             "Read to write switches");
        line(out, base + ".refreshes", channel.refreshes,
             "Refreshes performed");
        line(out, base + ".busUtilization",
             100.0 * channel.utilization(),
             "Bus occupancy over the active window (%)");
        for (std::size_t b = 0; b < channel.perBankReadBursts.size();
             ++b) {
            line(out,
                 base + ".bank" + std::to_string(b) + ".readBursts",
                 channel.perBankReadBursts[b],
                 "Read bursts to this bank");
            line(out,
                 base + ".bank" + std::to_string(b) + ".writeBursts",
                 channel.perBankWriteBursts[b],
                 "Write bursts to this bank");
        }
    }

    out += "---------- End Simulation Statistics   ----------\n";
    return out;
}

} // namespace mocktails::dram
