#include "dram/simulate.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "dram/memory_system.hpp"
#include "dram/sharded.hpp"
#include "dram/trace_player.hpp"
#include "mem/request_batch.hpp"
#include "obs/trace_event.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/span.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::dram
{

namespace
{

/**
 * Mirror one finished simulation into the telemetry registry. Runs as
 * a post-pass over the already-collected ChannelStats instead of
 * adding atomic traffic to the event loop, and only when telemetry is
 * enabled — disabled runs skip every per-channel string build here.
 */
void
publishDramRun(const SimulationResult &result,
               std::uint64_t events_scheduled,
               std::uint64_t events_executed)
{
    if (!telemetry::enabled())
        return;
    auto &registry = telemetry::MetricsRegistry::global();
    registry.counter("sim.events_scheduled").add(events_scheduled);
    registry.counter("sim.events_executed").add(events_executed);
    registry.counter("dram.requests").add(result.memory.requests);
    registry.counter("dram.backpressure_rejects")
        .add(result.memory.backpressureRejects);

    const auto queue_edges =
        telemetry::FixedHistogram::linearEdges(1, 64, 63);
    const auto bank_edges =
        telemetry::FixedHistogram::exponentialEdges(1, 1 << 20);

    for (std::size_t c = 0; c < result.channels.size(); ++c) {
        const ChannelStats &stats = result.channels[c];
        const std::string prefix =
            "dram.channel" + std::to_string(c) + ".";
        registry.counter(prefix + "read_bursts").add(stats.readBursts);
        registry.counter(prefix + "write_bursts")
            .add(stats.writeBursts);
        registry.counter(prefix + "read_row_hits")
            .add(stats.readRowHits);
        registry.counter(prefix + "write_row_hits")
            .add(stats.writeRowHits);
        registry.counter(prefix + "refreshes").add(stats.refreshes);
        registry.counter(prefix + "turnarounds").add(stats.turnarounds);
        registry.gauge(prefix + "busy_cycles")
            .set(static_cast<std::int64_t>(stats.busyCycles));

        auto &read_queue =
            registry.histogram(prefix + "read_queue_seen", queue_edges);
        for (const auto &[value, count] : stats.readQueueSeen.bins())
            read_queue.record(value, count);
        auto &write_queue = registry.histogram(
            prefix + "write_queue_seen", queue_edges);
        for (const auto &[value, count] : stats.writeQueueSeen.bins())
            write_queue.record(value, count);

        // Bank-load balance as a distribution of per-bank burst
        // counts: a flat load puts every bank in the same bucket.
        auto &bank_load =
            registry.histogram(prefix + "bank_bursts", bank_edges);
        for (std::size_t b = 0; b < stats.perBankReadBursts.size();
             ++b) {
            bank_load.record(static_cast<std::int64_t>(
                stats.perBankReadBursts[b] +
                (b < stats.perBankWriteBursts.size()
                     ? stats.perBankWriteBursts[b]
                     : 0)));
        }
    }
}

/**
 * The classic coupled simulation: one event queue, the full system.
 *
 * The read-latency accumulator is re-folded in request-id order (the
 * canonical order) rather than taken from MemorySystem's incremental
 * completion-order accumulator: Welford statistics are sensitive to
 * fold order in the low bits, and the sharded path naturally produces
 * the id-ordered fold. Count, min and max are order-independent and
 * unchanged.
 */
SimulationResult
simulateCoupled(mem::RequestSource &source,
                const DramConfig &dram_config,
                const interconnect::CrossbarConfig &xbar_config)
{
    sim::EventQueue events;
    MemorySystem memory(events, dram_config);
    interconnect::Crossbar xbar(events, xbar_config,
                                [&](const mem::Request &r) {
                                    return memory.tryInject(r);
                                });
    TracePlayer player(events, source, [&](const mem::Request &r) {
        return xbar.trySend(r);
    });

    struct Completion
    {
        std::uint64_t id;
        sim::Tick admitted;
        sim::Tick completed;
        bool isRead;
    };
    std::vector<Completion> completions;
    memory.setCompletionCallback(
        [&](std::uint64_t id, bool is_read, sim::Tick admitted,
            sim::Tick completed) {
            completions.push_back(
                Completion{id, admitted, completed, is_read});
        });

    if (obs::TraceEventWriter *trace = obs::collector()) {
        for (std::uint32_t c = 0; c < memory.channelCount(); ++c) {
            trace->nameTrack(obs::track::kDramBase + c,
                             "dram channel " + std::to_string(c));
        }
    }

    player.start();
    events.run();

    SimulationResult result;
    result.memory = memory.stats();
    for (std::uint32_t c = 0; c < memory.channelCount(); ++c)
        result.channels.push_back(memory.channelStats(c));
    result.finishTick = player.finishTick();
    result.accumulatedDelay = player.accumulatedDelay();
    result.injected = player.injected();

    std::sort(completions.begin(), completions.end(),
              [](const Completion &a, const Completion &b) {
                  return a.id < b.id;
              });
    util::RunningStats canonical;
    for (const Completion &c : completions) {
        if (c.isRead) {
            canonical.add(
                static_cast<double>(c.completed - c.admitted));
        }
    }
    result.memory.readLatency = canonical;

    publishDramRun(result, events.scheduledCount(),
                   events.executedCount());
    return result;
}

} // namespace

std::uint64_t
SimulationResult::readBursts() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels)
        sum += c.readBursts;
    return sum;
}

std::uint64_t
SimulationResult::writeBursts() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels)
        sum += c.writeBursts;
    return sum;
}

std::uint64_t
SimulationResult::readRowHits() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels)
        sum += c.readRowHits;
    return sum;
}

std::uint64_t
SimulationResult::writeRowHits() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels)
        sum += c.writeRowHits;
    return sum;
}

double
SimulationResult::avgReadQueueLength() const
{
    double sum = 0.0;
    std::uint64_t samples = 0;
    for (const auto &c : channels) {
        sum += c.readQueueSeen.mean() *
               static_cast<double>(c.readQueueSeen.total());
        samples += c.readQueueSeen.total();
    }
    return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
}

double
SimulationResult::avgWriteQueueLength() const
{
    double sum = 0.0;
    std::uint64_t samples = 0;
    for (const auto &c : channels) {
        sum += c.writeQueueSeen.mean() *
               static_cast<double>(c.writeQueueSeen.total());
        samples += c.writeQueueSeen.total();
    }
    return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
}

SimulationResult
simulateSource(mem::RequestSource &source,
               const DramConfig &dram_config,
               const interconnect::CrossbarConfig &xbar_config,
               const SimulationOptions &options)
{
    telemetry::Span span("dram.simulate");

    bool try_sharded = false;
    switch (options.mode) {
      case SimulationOptions::Mode::Coupled:
        break;
      case SimulationOptions::Mode::Sharded:
        try_sharded = true;
        break;
      case SimulationOptions::Mode::Auto: {
        const unsigned effective =
            options.threads == 0 ? util::ThreadPool::defaultThreadCount()
                                 : options.threads;
        try_sharded = dram_config.channels > 1 && effective > 1 &&
                      obs::collector() == nullptr;
        break;
      }
    }

    if (try_sharded) {
        ShardedRun run = simulateSharded(source, dram_config,
                                         xbar_config, options.threads);
        if (run.completed) {
            publishDramRun(run.result, run.eventsScheduled,
                           run.eventsExecuted);
            return run.result;
        }
        // Backpressure speculation failed: the coupled path handles
        // admission feedback exactly. The source is consumed, so
        // replay the recorded stream.
        mem::BatchSource replay(run.recorded);
        return simulateCoupled(replay, dram_config, xbar_config);
    }

    return simulateCoupled(source, dram_config, xbar_config);
}

SimulationResult
simulateTrace(const mem::Trace &trace, const DramConfig &dram_config,
              const interconnect::CrossbarConfig &xbar_config,
              const SimulationOptions &options)
{
    mem::TraceSource source(trace);
    return simulateSource(source, dram_config, xbar_config, options);
}

} // namespace mocktails::dram
