#include "dram/simulate.hpp"

#include "dram/memory_system.hpp"
#include "dram/trace_player.hpp"
#include "sim/event_queue.hpp"

namespace mocktails::dram
{

std::uint64_t
SimulationResult::readBursts() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels)
        sum += c.readBursts;
    return sum;
}

std::uint64_t
SimulationResult::writeBursts() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels)
        sum += c.writeBursts;
    return sum;
}

std::uint64_t
SimulationResult::readRowHits() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels)
        sum += c.readRowHits;
    return sum;
}

std::uint64_t
SimulationResult::writeRowHits() const
{
    std::uint64_t sum = 0;
    for (const auto &c : channels)
        sum += c.writeRowHits;
    return sum;
}

double
SimulationResult::avgReadQueueLength() const
{
    double sum = 0.0;
    std::uint64_t samples = 0;
    for (const auto &c : channels) {
        sum += c.readQueueSeen.mean() *
               static_cast<double>(c.readQueueSeen.total());
        samples += c.readQueueSeen.total();
    }
    return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
}

double
SimulationResult::avgWriteQueueLength() const
{
    double sum = 0.0;
    std::uint64_t samples = 0;
    for (const auto &c : channels) {
        sum += c.writeQueueSeen.mean() *
               static_cast<double>(c.writeQueueSeen.total());
        samples += c.writeQueueSeen.total();
    }
    return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
}

SimulationResult
simulateSource(mem::RequestSource &source,
               const DramConfig &dram_config,
               const interconnect::CrossbarConfig &xbar_config)
{
    sim::EventQueue events;
    MemorySystem memory(events, dram_config);
    interconnect::Crossbar xbar(events, xbar_config,
                                [&](const mem::Request &r) {
                                    return memory.tryInject(r);
                                });
    TracePlayer player(events, source, [&](const mem::Request &r) {
        return xbar.trySend(r);
    });

    player.start();
    events.run();

    SimulationResult result;
    result.memory = memory.stats();
    for (std::uint32_t c = 0; c < memory.channelCount(); ++c)
        result.channels.push_back(memory.channelStats(c));
    result.finishTick = player.finishTick();
    result.accumulatedDelay = player.accumulatedDelay();
    result.injected = player.injected();
    return result;
}

SimulationResult
simulateTrace(const mem::Trace &trace, const DramConfig &dram_config,
              const interconnect::CrossbarConfig &xbar_config)
{
    mem::TraceSource source(trace);
    return simulateSource(source, dram_config, xbar_config);
}

} // namespace mocktails::dram
