#include "dram/trace_player.hpp"

#include <algorithm>
#include <utility>

namespace mocktails::dram
{

TracePlayer::TracePlayer(sim::EventQueue &events,
                         mem::RequestSource &source, Sink sink,
                         std::uint32_t retry_interval)
    : events_(events), source_(source), sink_(std::move(sink)),
      retry_interval_(std::max<std::uint32_t>(1, retry_interval))
{}

void
TracePlayer::start()
{
    if (!source_.next(current_)) {
        done_ = true;
        return;
    }
    have_current_ = true;
    events_.schedule(std::max(events_.now(), current_.tick),
                     [this] { step(); });
}

void
TracePlayer::step()
{
    // The request's adjusted injection time: original timestamp plus
    // all backpressure delay accumulated so far.
    const sim::Tick due = current_.tick + delay_;
    if (events_.now() < due) {
        events_.schedule(due, [this] { step(); });
        return;
    }

    if (!sink_(current_)) {
        // Backpressure: every future request slips by the retry wait.
        delay_ += retry_interval_;
        events_.scheduleIn(retry_interval_, [this] { step(); });
        return;
    }

    ++injected_;
    finish_tick_ = events_.now();

    if (!source_.next(current_)) {
        have_current_ = false;
        done_ = true;
        return;
    }
    events_.schedule(std::max(events_.now(), current_.tick + delay_),
                     [this] { step(); });
}

} // namespace mocktails::dram
