/**
 * @file
 * Multi-IP SoC simulation.
 *
 * The paper's motivating use case (Secs. I, VI): an architect studies a
 * heterogeneous SoC's shared memory system, substituting Mocktails
 * profiles for the proprietary IP blocks. This harness runs several
 * request sources concurrently — each behind its own crossbar port —
 * into one shared DRAM subsystem, and reports per-IP statistics
 * alongside the global controller metrics, so interference between IPs
 * can be quantified.
 */

#ifndef MOCKTAILS_DRAM_SOC_HPP
#define MOCKTAILS_DRAM_SOC_HPP

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dram/config.hpp"
#include "dram/stats.hpp"
#include "interconnect/arbiter.hpp"
#include "interconnect/crossbar.hpp"
#include "mem/source.hpp"

namespace mocktails::dram
{

/**
 * One IP block attached to the SoC: a named request source.
 *
 * The device shares ownership of its source so a stream handed in by a
 * cache with eviction (e.g. serve::ProfileStore) cannot dangle
 * mid-simulation — the same keep-alive contract SynthesisSession uses
 * for evicted profiles. Callers that manage lifetime themselves can
 * use the borrowing constructor, which attaches a no-op deleter.
 */
struct SocDevice
{
    std::string name; ///< e.g. "GPU (T-Rex1)"
    std::shared_ptr<mem::RequestSource> source;

    SocDevice() = default;

    /** Shared ownership: the simulation keeps the source alive. */
    SocDevice(std::string device_name,
              std::shared_ptr<mem::RequestSource> device_source)
        : name(std::move(device_name)), source(std::move(device_source))
    {}

    /** Borrowing: @p device_source must outlive the simulation. */
    SocDevice(std::string device_name, mem::RequestSource &device_source)
        : name(std::move(device_name)),
          source(&device_source, [](mem::RequestSource *) {})
    {}
};

/**
 * Per-IP results of a multi-device simulation.
 */
struct SocDeviceResult
{
    std::string name;
    std::uint64_t injected = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    /** Backpressure delay folded into this IP's stream. */
    mem::Tick accumulatedDelay = 0;

    /** Tick of the IP's final injection. */
    mem::Tick finishTick = 0;

    /** Read-request latency (admission to last burst) for this IP. */
    util::RunningStats readLatency;

    /** Write-request service latency for this IP. */
    util::RunningStats writeLatency;

    /**
     * Raw read latencies in completion order, kept only when
     * SocConfig::collectLatencySamples is set (percentile reporting).
     */
    std::vector<float> readLatencySamples;
};

/**
 * The full result: global DRAM statistics plus per-IP breakdowns.
 */
struct SocResult
{
    MemoryStats memory;
    std::vector<ChannelStats> channels;
    std::vector<SocDeviceResult> devices;

    /** Grants per device when a shared link was used (else empty). */
    std::vector<std::uint64_t> linkGrants;

    std::uint64_t readRowHits() const;
    std::uint64_t writeRowHits() const;
    std::uint64_t readBursts() const;
    std::uint64_t writeBursts() const;
};

/**
 * SoC topology and configuration.
 */
struct SocConfig
{
    DramConfig dram;
    interconnect::CrossbarConfig crossbar;

    /**
     * When true, all devices funnel through one round-robin-arbitrated
     * link (the non-coherent interconnect of the paper's platform)
     * instead of each having a private crossbar port.
     */
    bool sharedLink = false;
    interconnect::ArbiterConfig arbiter;

    /**
     * Record per-read latency samples into
     * SocDeviceResult::readLatencySamples (costs one float per read;
     * off by default). Mean/min/max come for free either way.
     */
    bool collectLatencySamples = false;
};

/**
 * Run all devices concurrently against one shared memory system.
 *
 * Each device gets a private crossbar port (own queue/backpressure);
 * all ports feed the same DRAM channels, so devices contend for
 * controller queues, banks and bus turnarounds exactly as IPs on an
 * SoC interconnect do.
 */
SocResult
simulateSoc(const std::vector<SocDevice> &devices,
            const DramConfig &dram_config = DramConfig{},
            const interconnect::CrossbarConfig &xbar_config =
                interconnect::CrossbarConfig{});

/** Full-topology overload (shared-link or per-device ports). */
SocResult simulateSoc(const std::vector<SocDevice> &devices,
                      const SocConfig &config);

} // namespace mocktails::dram

#endif // MOCKTAILS_DRAM_SOC_HPP
