#include "dram/sharded.hpp"

#include <atomic>
#include <cassert>
#include <memory>
#include <vector>

#include "dram/channel.hpp"
#include "dram/memory_system.hpp"
#include "dram/trace_player.hpp"
#include "sim/event_queue.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::dram
{

namespace
{

/**
 * One request's footprint on one channel: push the bursts in
 * [burstBegin, burstEnd) at @p tick. Admissions are stored in delivery
 * order, which is also nondecreasing tick order.
 */
struct Admission
{
    sim::Tick tick = 0;
    std::uint64_t requestId = 0;
    std::uint32_t burstBegin = 0;
    std::uint32_t burstEnd = 0;
    bool isRead = true;
};

/** Everything one channel needs to replay in isolation. */
struct ChannelPlan
{
    std::vector<Admission> admissions;
    std::vector<Burst> bursts; ///< channel-local, address order per request
};

/** Pull-through source that records every request it hands out. */
class RecordingSource : public mem::RequestSource
{
  public:
    RecordingSource(mem::RequestSource &inner, mem::RequestBatch &out)
        : inner_(inner), out_(out)
    {}

    bool
    next(mem::Request &request) override
    {
        if (!inner_.next(request))
            return false;
        out_.push(request);
        return true;
    }

  private:
    mem::RequestSource &inner_;
    mem::RequestBatch &out_;
};

/**
 * Replays one channel's plan on a private event queue.
 *
 * Admission events chain: each one pushes its bursts (transport band,
 * mirroring the coupled crossbar delivery) and schedules the next.
 * Channel-internal events (device band) interleave exactly as in the
 * coupled run. A failed capacity check sets the shared abort flag;
 * other channels observe it and stop admitting.
 */
class ChannelReplay
{
  public:
    ChannelReplay(const ChannelPlan &plan, const DramConfig &config,
                  std::uint32_t id, std::size_t request_count,
                  std::atomic<bool> &abort)
        : plan_(plan), config_(config), abort_(abort),
          completion_(request_count, 0),
          channel_(events_, config,
                   [this](const Burst &b, sim::Tick t) {
                       sim::Tick &done = completion_[b.requestId];
                       done = std::max(done, t);
                   },
                   id)
    {
        events_.reserve(256);
    }

    void
    run()
    {
        scheduleNext();
        events_.run();
    }

    const ChannelStats &stats() const { return channel_.stats(); }
    const std::vector<sim::Tick> &completions() const
    {
        return completion_;
    }
    std::uint64_t scheduled() const { return events_.scheduledCount(); }
    std::uint64_t executed() const { return events_.executedCount(); }

  private:
    void
    scheduleNext()
    {
        if (next_ >= plan_.admissions.size() ||
            abort_.load(std::memory_order_relaxed)) {
            return;
        }
        events_.schedule(plan_.admissions[next_].tick,
                         [this] { admit(); });
    }

    void
    admit()
    {
        if (abort_.load(std::memory_order_relaxed))
            return;
        const Admission &a = plan_.admissions[next_];
        const std::size_t queued = a.isRead
                                       ? channel_.readQueueSize()
                                       : channel_.writeQueueSize();
        const std::size_t capacity = a.isRead
                                         ? config_.readQueueCapacity
                                         : config_.writeQueueCapacity;
        const std::uint32_t demand = a.burstEnd - a.burstBegin;
        if (demand > capacity - queued) {
            // The coupled run rejects this very request: channel state
            // is identical up to here and MemorySystem's all-or-nothing
            // check would see the same full queue.
            abort_.store(true, std::memory_order_relaxed);
            return;
        }
        for (std::uint32_t i = a.burstBegin; i < a.burstEnd; ++i)
            channel_.push(plan_.bursts[i]);
        ++next_;
        scheduleNext();
    }

    const ChannelPlan &plan_;
    const DramConfig &config_;
    std::atomic<bool> &abort_;
    std::vector<sim::Tick> completion_;
    sim::EventQueue events_;
    Channel channel_;
    std::size_t next_ = 0;
};

} // namespace

ShardedRun
simulateSharded(mem::RequestSource &source,
                const DramConfig &dram_config,
                const interconnect::CrossbarConfig &xbar_config,
                unsigned threads)
{
    ShardedRun run;
    const std::uint32_t channels = dram_config.channels;
    AddressMap map(dram_config);

    // --- Front-end pass: real player + crossbar, always-accept sink.
    sim::EventQueue fe_events;
    std::vector<ChannelPlan> plans(channels);
    // Per-request metadata as two parallel columns instead of an AoS
    // struct vector: the merge below folds read latencies with a scan
    // over just these columns, and the padding of a {Tick, bool} pair
    // would double its footprint.
    std::vector<sim::Tick> admitted;
    std::vector<std::uint8_t> is_read;
    std::uint64_t next_id = 0;

    const auto accept = [&](const mem::Request &request) {
        const std::uint64_t id = next_id++;
        admitted.push_back(fe_events.now());
        is_read.push_back(request.isRead() ? 1 : 0);
        forEachBurst(
            request, dram_config, map,
            [&](mem::Addr, const DramCoord &coord) {
                ChannelPlan &plan = plans[coord.channel];
                if (plan.admissions.empty() ||
                    plan.admissions.back().requestId != id) {
                    const auto at =
                        static_cast<std::uint32_t>(plan.bursts.size());
                    plan.admissions.push_back(Admission{
                        fe_events.now(), id, at, at, request.isRead()});
                }
                Burst burst;
                burst.arrival = fe_events.now();
                burst.row = coord.row;
                burst.bank = coord.flatBank(dram_config);
                burst.isRead = request.isRead();
                burst.requestId = id;
                plan.bursts.push_back(burst);
                ++plan.admissions.back().burstEnd;
            });
        return true;
    };

    interconnect::Crossbar xbar(fe_events, xbar_config, accept);
    RecordingSource recording(source, run.recorded);
    TracePlayer player(fe_events, recording,
                       [&](const mem::Request &r) {
                           return xbar.trySend(r);
                       });
    player.start();
    fe_events.run();

    run.eventsScheduled = fe_events.scheduledCount();
    run.eventsExecuted = fe_events.executedCount();

    // --- Per-channel replay, one worker per channel.
    std::atomic<bool> abort{false};
    std::vector<std::unique_ptr<ChannelReplay>> replays(channels);
    util::parallelFor(
        channels,
        [&](std::size_t c) {
            replays[c] = std::make_unique<ChannelReplay>(
                plans[c], dram_config, static_cast<std::uint32_t>(c),
                next_id, abort);
            replays[c]->run();
        },
        threads);

    if (abort.load(std::memory_order_relaxed))
        return run; // completed stays false; caller replays coupled

    // --- Deterministic merge (channel order, then request-id order).
    run.result.finishTick = player.finishTick();
    run.result.accumulatedDelay = player.accumulatedDelay();
    run.result.injected = player.injected();

    MemoryStats &mem_stats = run.result.memory;
    mem_stats.requests = next_id;
    for (const std::uint8_t r : is_read) {
        if (r)
            ++mem_stats.readRequests;
        else
            ++mem_stats.writeRequests;
    }
    mem_stats.backpressureRejects = 0;

    run.result.channels.reserve(channels);
    for (std::uint32_t c = 0; c < channels; ++c) {
        run.result.channels.push_back(replays[c]->stats());
        run.eventsScheduled += replays[c]->scheduled();
        run.eventsExecuted += replays[c]->executed();
    }

    // Canonical read-latency fold: request-id order, completion = last
    // burst completion over all channels the request touched. The
    // coupled path folds the same sequence (simulate.cpp), so the
    // Welford accumulator matches bit for bit.
    for (std::uint64_t id = 0; id < next_id; ++id) {
        if (!is_read[id])
            continue;
        sim::Tick done = 0;
        for (std::uint32_t c = 0; c < channels; ++c)
            done = std::max(done, replays[c]->completions()[id]);
        mem_stats.readLatency.add(
            static_cast<double>(done - admitted[id]));
    }

    run.completed = true;
    return run;
}

} // namespace mocktails::dram
