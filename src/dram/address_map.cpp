#include "dram/address_map.hpp"

#include <bit>
#include <cassert>

namespace mocktails::dram
{

bool
DramConfig::isValid()
    const
{
    const bool pow2 = std::has_single_bit(channels) &&
                      std::has_single_bit(ranksPerChannel) &&
                      std::has_single_bit(banksPerRank) &&
                      std::has_single_bit(burstSize) &&
                      std::has_single_bit(rowBufferSize);
    return pow2 && burstSize > 0 && rowBufferSize >= burstSize &&
           readQueueCapacity > 0 && writeQueueCapacity > 0 &&
           writeLowThreshold <= writeHighThreshold && tBURST > 0;
}

AddressMap::AddressMap(const DramConfig &config)
    : mapping_(config.mapping),
      burst_shift_(std::countr_zero(config.burstSize)),
      channels_(config.channels),
      ranks_(config.ranksPerChannel),
      banks_(config.banksPerRank),
      columns_(config.columnsPerRow())
{
    assert(config.isValid());
}

DramCoord
AddressMap::decode(mem::Addr addr) const
{
    std::uint64_t a = addr >> burst_shift_;
    DramCoord c;

    switch (mapping_) {
      case AddressMapping::RoRaBaChCo:
        c.column = static_cast<std::uint32_t>(a % columns_);
        a /= columns_;
        c.channel = static_cast<std::uint32_t>(a % channels_);
        a /= channels_;
        break;
      case AddressMapping::RoRaBaCoCh:
        c.channel = static_cast<std::uint32_t>(a % channels_);
        a /= channels_;
        c.column = static_cast<std::uint32_t>(a % columns_);
        a /= columns_;
        break;
    }

    c.bank = static_cast<std::uint32_t>(a % banks_);
    a /= banks_;
    c.rank = static_cast<std::uint32_t>(a % ranks_);
    a /= ranks_;
    c.row = a;
    return c;
}

mem::Addr
AddressMap::encode(const DramCoord &coord) const
{
    std::uint64_t a = coord.row;
    a = a * ranks_ + coord.rank;
    a = a * banks_ + coord.bank;

    switch (mapping_) {
      case AddressMapping::RoRaBaChCo:
        a = a * channels_ + coord.channel;
        a = a * columns_ + coord.column;
        break;
      case AddressMapping::RoRaBaCoCh:
        a = a * columns_ + coord.column;
        a = a * channels_ + coord.channel;
        break;
    }

    return a << burst_shift_;
}

} // namespace mocktails::dram
