/**
 * @file
 * A chunked bump allocator for long-lived flat data structures.
 *
 * Profiles hold thousands of Markov chains; giving each chain its own
 * nest of heap vectors scatters the hot sampling data across the heap
 * and pays a malloc header per row. An Arena hands out pointer-bumped
 * blocks from a few large chunks instead: allocation is a pointer
 * add, everything a structure owns lives contiguously, and the whole
 * lot is freed at once when the arena dies. No per-object destructors
 * run — arenas are for trivially-destructible payloads only.
 */

#ifndef MOCKTAILS_UTIL_ARENA_HPP
#define MOCKTAILS_UTIL_ARENA_HPP

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace mocktails::util
{

/**
 * Bump allocator over heap chunks. Move-only; memory is released only
 * when the arena is destroyed (or clear()ed). Pointers stay valid
 * across further allocations and across moves of the arena.
 */
class Arena
{
  public:
    /** @param chunk_bytes Default size of each backing chunk. */
    explicit Arena(std::size_t chunk_bytes = 4096)
        : chunk_bytes_(chunk_bytes)
    {}

    Arena(Arena &&) = default;
    Arena &operator=(Arena &&) = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p bytes with @p align alignment (power of two).
     * Oversized requests get an exact-fit chunk of their own.
     */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        assert((align & (align - 1)) == 0 && "alignment power of two");
        std::size_t at = alignUp(used_, align);
        if (at + bytes > capacity_) {
            addChunk(bytes + align);
            at = alignUp(used_, align);
        }
        used_ = at + bytes;
        return current_ + at;
    }

    /** Typed allocation of @p count default-constructible Ts. */
    template <typename T>
    T *
    allocate(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory runs no destructors");
        auto *p = static_cast<T *>(
            allocate(count * sizeof(T), alignof(T)));
        for (std::size_t i = 0; i < count; ++i)
            new (p + i) T();
        return p;
    }

    /**
     * Ensure the next allocations of up to @p bytes (including any
     * alignment padding the caller accounted for) are carved from one
     * contiguous chunk — used to exact-size a structure's storage so
     * small arenas carry no slack.
     */
    void
    reserve(std::size_t bytes)
    {
        if (used_ + bytes > capacity_)
            addChunk(bytes);
    }

    /** Bytes handed out (excluding chunk slack). */
    std::size_t bytesUsed() const { return total_used_ + used_; }

    /** Bytes reserved from the heap. */
    std::size_t bytesReserved() const { return total_reserved_; }

    /** Drop every chunk; all outstanding pointers become invalid. */
    void
    clear()
    {
        chunks_.clear();
        current_ = nullptr;
        used_ = capacity_ = 0;
        total_used_ = total_reserved_ = 0;
    }

  private:
    static std::size_t
    alignUp(std::size_t n, std::size_t align)
    {
        return (n + align - 1) & ~(align - 1);
    }

    void
    addChunk(std::size_t at_least)
    {
        const std::size_t size = std::max(chunk_bytes_, at_least);
        chunks_.push_back(std::make_unique<std::uint8_t[]>(size));
        total_used_ += used_;
        total_reserved_ += size;
        current_ = chunks_.back().get();
        used_ = 0;
        capacity_ = size;
    }

    std::size_t chunk_bytes_;
    std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
    std::uint8_t *current_ = nullptr;
    std::size_t used_ = 0;
    std::size_t capacity_ = 0;
    std::size_t total_used_ = 0;
    std::size_t total_reserved_ = 0;
};

} // namespace mocktails::util

#endif // MOCKTAILS_UTIL_ARENA_HPP
