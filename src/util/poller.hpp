/**
 * @file
 * A small portable readiness-notification wrapper.
 *
 * The serve frontend (src/serve/server.cpp) drives every connection
 * from one event-loop thread; this is the poll(2)/epoll(7) shim it
 * stands on. The interface is deliberately tiny — register a file
 * descriptor for read/write interest, wait for events — and
 * level-triggered on both backends, so callers never have to reason
 * about edge-triggered re-arming.
 *
 * Backend selection is a runtime choice: epoll on Linux (O(ready)
 * wakeups at thousands of connections), poll(2) everywhere and as the
 * forced-portable path the tests sweep. A WakePipe (self-pipe) gives
 * other threads a way to pop a blocked wait().
 */

#ifndef MOCKTAILS_UTIL_POLLER_HPP
#define MOCKTAILS_UTIL_POLLER_HPP

#include <memory>
#include <vector>

namespace mocktails::util
{

/** Set O_NONBLOCK on @p fd. @return false on fcntl failure. */
bool setNonBlocking(int fd);

/**
 * Set FD_CLOEXEC on @p fd so the descriptor does not leak into
 * subprocesses spawned by tests and tools. @return false on failure.
 */
bool setCloseOnExec(int fd);

/** One readiness event reported by Poller::wait. */
struct PollerEvent
{
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /** Error/hangup condition (POLLERR/POLLHUP/POLLNVAL). */
    bool error = false;
};

class Poller
{
  public:
    enum class Backend {
        Auto,  ///< epoll on Linux, poll(2) elsewhere
        Poll,  ///< force the portable poll(2) backend
        Epoll, ///< Linux only; construction fails elsewhere
    };

    explicit Poller(Backend backend = Backend::Auto);
    ~Poller();

    Poller(const Poller &) = delete;
    Poller &operator=(const Poller &) = delete;

    /** False when the backend could not be created. */
    bool valid() const;

    /** "poll" or "epoll" (diagnostics). */
    const char *backendName() const;

    /** Register @p fd with the given interest set. */
    bool add(int fd, bool read, bool write);

    /** Change the interest set of a registered @p fd. */
    bool modify(int fd, bool read, bool write);

    /** Deregister @p fd (before closing it). */
    bool remove(int fd);

    /**
     * Block up to @p timeout_ms (-1 = forever, 0 = poll) and append
     * ready events to @p out (cleared first).
     * @return the number of events; 0 on timeout or EINTR.
     */
    int wait(std::vector<PollerEvent> &out, int timeout_ms);

    /** Backend interface (public so poller.cpp can derive from it). */
    struct Impl;

  private:
    std::unique_ptr<Impl> impl_;
};

/**
 * A self-pipe for waking a Poller::wait from another thread: register
 * fd() for read interest, notify() from anywhere, drain() on wakeup.
 * Both ends are non-blocking and close-on-exec.
 */
class WakePipe
{
  public:
    WakePipe();
    ~WakePipe();

    WakePipe(const WakePipe &) = delete;
    WakePipe &operator=(const WakePipe &) = delete;

    bool valid() const { return fds_[0] >= 0; }

    /** The read end, to register with a Poller. */
    int fd() const { return fds_[0]; }

    /** Make the read end readable (idempotent while undrained). */
    void notify();

    /** Consume all pending wakeups. */
    void drain();

  private:
    int fds_[2] = {-1, -1};
};

} // namespace mocktails::util

#endif // MOCKTAILS_UTIL_POLLER_HPP
