#include "util/poller.hpp"

#include <cerrno>
#include <cstdint>
#include <map>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace mocktails::util
{

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool
setCloseOnExec(int fd)
{
    const int flags = ::fcntl(fd, F_GETFD, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

struct Poller::Impl
{
    virtual ~Impl() = default;
    virtual bool valid() const = 0;
    virtual const char *name() const = 0;
    virtual bool add(int fd, bool read, bool write) = 0;
    virtual bool modify(int fd, bool read, bool write) = 0;
    virtual bool remove(int fd) = 0;
    virtual int wait(std::vector<PollerEvent> &out, int timeout_ms) = 0;
};

namespace
{

/** The portable backend: an interest map rebuilt into a pollfd set. */
struct PollImpl final : Poller::Impl
{
    std::map<int, short> interest;
    std::vector<struct pollfd> set;

    bool valid() const override { return true; }
    const char *name() const override { return "poll"; }

    static short
    events(bool read, bool write)
    {
        short e = 0;
        if (read)
            e |= POLLIN;
        if (write)
            e |= POLLOUT;
        return e;
    }

    bool
    add(int fd, bool read, bool write) override
    {
        return interest.emplace(fd, events(read, write)).second;
    }

    bool
    modify(int fd, bool read, bool write) override
    {
        const auto it = interest.find(fd);
        if (it == interest.end())
            return false;
        it->second = events(read, write);
        return true;
    }

    bool
    remove(int fd) override
    {
        return interest.erase(fd) == 1;
    }

    int
    wait(std::vector<PollerEvent> &out, int timeout_ms) override
    {
        out.clear();
        set.clear();
        set.reserve(interest.size());
        for (const auto &[fd, ev] : interest)
            set.push_back({fd, ev, 0});
        const int n =
            ::poll(set.data(), static_cast<nfds_t>(set.size()),
                   timeout_ms);
        if (n <= 0)
            return 0; // timeout, or EINTR (caller just re-loops)
        for (const struct pollfd &p : set) {
            if (p.revents == 0)
                continue;
            PollerEvent ev;
            ev.fd = p.fd;
            ev.readable = (p.revents & POLLIN) != 0;
            ev.writable = (p.revents & POLLOUT) != 0;
            ev.error =
                (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
            out.push_back(ev);
        }
        return static_cast<int>(out.size());
    }
};

#ifdef __linux__

struct EpollImpl final : Poller::Impl
{
    int epfd = -1;
    std::vector<struct epoll_event> ready;

    EpollImpl() : epfd(::epoll_create1(EPOLL_CLOEXEC)) {}

    ~EpollImpl() override
    {
        if (epfd >= 0)
            ::close(epfd);
    }

    bool valid() const override { return epfd >= 0; }
    const char *name() const override { return "epoll"; }

    static std::uint32_t
    events(bool read, bool write)
    {
        std::uint32_t e = 0;
        if (read)
            e |= EPOLLIN;
        if (write)
            e |= EPOLLOUT;
        return e;
    }

    bool
    add(int fd, bool read, bool write) override
    {
        struct epoll_event ev = {};
        ev.events = events(read, write);
        ev.data.fd = fd;
        return ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) == 0;
    }

    bool
    modify(int fd, bool read, bool write) override
    {
        struct epoll_event ev = {};
        ev.events = events(read, write);
        ev.data.fd = fd;
        return ::epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &ev) == 0;
    }

    bool
    remove(int fd) override
    {
        struct epoll_event ev = {};
        return ::epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &ev) == 0;
    }

    int
    wait(std::vector<PollerEvent> &out, int timeout_ms) override
    {
        out.clear();
        ready.resize(64);
        const int n = ::epoll_wait(epfd, ready.data(),
                                   static_cast<int>(ready.size()),
                                   timeout_ms);
        if (n <= 0)
            return 0;
        for (int i = 0; i < n; ++i) {
            PollerEvent ev;
            ev.fd = ready[static_cast<std::size_t>(i)].data.fd;
            const std::uint32_t e =
                ready[static_cast<std::size_t>(i)].events;
            ev.readable = (e & EPOLLIN) != 0;
            ev.writable = (e & EPOLLOUT) != 0;
            ev.error = (e & (EPOLLERR | EPOLLHUP)) != 0;
            out.push_back(ev);
        }
        return static_cast<int>(out.size());
    }
};

#endif // __linux__

} // namespace

Poller::Poller(Backend backend)
{
#ifdef __linux__
    if (backend == Backend::Auto || backend == Backend::Epoll) {
        auto impl = std::make_unique<EpollImpl>();
        if (impl->valid()) {
            impl_ = std::move(impl);
            return;
        }
        if (backend == Backend::Epoll)
            return; // requested explicitly; report invalid
    }
#else
    if (backend == Backend::Epoll)
        return; // not available on this platform
#endif
    impl_ = std::make_unique<PollImpl>();
}

Poller::~Poller() = default;

bool
Poller::valid() const
{
    return impl_ != nullptr && impl_->valid();
}

const char *
Poller::backendName() const
{
    return valid() ? impl_->name() : "none";
}

bool
Poller::add(int fd, bool read, bool write)
{
    return valid() && impl_->add(fd, read, write);
}

bool
Poller::modify(int fd, bool read, bool write)
{
    return valid() && impl_->modify(fd, read, write);
}

bool
Poller::remove(int fd)
{
    return valid() && impl_->remove(fd);
}

int
Poller::wait(std::vector<PollerEvent> &out, int timeout_ms)
{
    if (!valid()) {
        out.clear();
        return 0;
    }
    return impl_->wait(out, timeout_ms);
}

WakePipe::WakePipe()
{
    if (::pipe(fds_) != 0) {
        fds_[0] = fds_[1] = -1;
        return;
    }
    for (const int fd : fds_) {
        setNonBlocking(fd);
        setCloseOnExec(fd);
    }
}

WakePipe::~WakePipe()
{
    for (const int fd : fds_) {
        if (fd >= 0)
            ::close(fd);
    }
}

void
WakePipe::notify()
{
    if (fds_[1] < 0)
        return;
    const std::uint8_t byte = 1;
    // EAGAIN means the pipe already holds an undrained wakeup, which
    // is exactly as good as another byte.
    [[maybe_unused]] const ssize_t n = ::write(fds_[1], &byte, 1);
}

void
WakePipe::drain()
{
    if (fds_[0] < 0)
        return;
    std::uint8_t buf[64];
    while (::read(fds_[0], buf, sizeof(buf)) > 0) {
    }
}

} // namespace mocktails::util
