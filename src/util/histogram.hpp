/**
 * @file
 * Histograms used for reporting simulator statistics.
 */

#ifndef MOCKTAILS_UTIL_HISTOGRAM_HPP
#define MOCKTAILS_UTIL_HISTOGRAM_HPP

#include <cstdint>
#include <map>
#include <vector>

namespace mocktails::util
{

/**
 * A sparse histogram over integer values.
 *
 * Used for, e.g., the per-channel queue-length distributions of paper
 * Fig. 8 where arriving requests sample the current queue occupancy.
 */
class Histogram
{
  public:
    /** Record one observation of @p value. */
    void
    add(std::int64_t value, std::uint64_t weight = 1)
    {
        counts_[value] += weight;
        total_ += weight;
        weighted_sum_ += static_cast<double>(value) *
                         static_cast<double>(weight);
    }

    /** Number of observations of a specific value. */
    std::uint64_t
    count(std::int64_t value) const
    {
        const auto it = counts_.find(value);
        return it == counts_.end() ? 0 : it->second;
    }

    /** Total number of observations. */
    std::uint64_t total() const { return total_; }

    /** Arithmetic mean of all observations (0 when empty). */
    double
    mean() const
    {
        return total_ == 0 ? 0.0
                           : weighted_sum_ / static_cast<double>(total_);
    }

    /** Smallest observed value. @pre total() > 0. */
    std::int64_t minValue() const { return counts_.begin()->first; }

    /** Largest observed value. @pre total() > 0. */
    std::int64_t maxValue() const { return counts_.rbegin()->first; }

    /** All (value, count) pairs in increasing value order. */
    const std::map<std::int64_t, std::uint64_t> &bins() const
    {
        return counts_;
    }

    /**
     * Dense counts over [0, size). Out-of-range values clamp to the
     * boundary bins — negatives into bin 0, values >= size into the
     * last bin — convenient for plotting fixed-width distributions.
     * These are the same edge semantics as telemetry::FixedHistogram
     * (underflow to the first bucket, overflow to the last), so dense
     * plots and telemetry exports of one distribution agree.
     */
    std::vector<std::uint64_t> dense(std::size_t size) const;

    /**
     * Sum of |this - other| bin differences divided by total mass, in
     * [0, 2]; a simple distance for comparing two distributions.
     */
    double distanceTo(const Histogram &other) const;

  private:
    std::map<std::int64_t, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double weighted_sum_ = 0.0;
};

} // namespace mocktails::util

#endif // MOCKTAILS_UTIL_HISTOGRAM_HPP
