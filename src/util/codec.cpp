#include "util/codec.hpp"

#include <cstdio>

namespace mocktails::util
{

bool
saveBytes(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const std::size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool ok = (written == bytes.size()) && (std::fclose(f) == 0);
    return ok;
}

bool
loadBytes(const std::string &path, std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size < 0) {
        std::fclose(f);
        return false;
    }
    std::fseek(f, 0, SEEK_SET);
    bytes.resize(static_cast<std::size_t>(size));
    const std::size_t read =
        bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    return read == bytes.size();
}

} // namespace mocktails::util
