#include "util/codec.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace mocktails::util
{

namespace
{

/** "path: message (errno text)" diagnostic into @p error (nullable). */
void
setFileError(std::string *error, const std::string &path,
             const char *message, int saved_errno)
{
    if (error == nullptr)
        return;
    *error = path + ": " + message;
    if (saved_errno != 0) {
        *error += " (";
        *error += std::strerror(saved_errno);
        *error += ")";
    }
}

} // namespace

bool
saveBytes(const std::string &path, const std::vector<std::uint8_t> &bytes,
          std::string *error)
{
    errno = 0;
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        setFileError(error, path, "cannot open for writing", errno);
        return false;
    }
    const std::size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    if (written != bytes.size()) {
        setFileError(error, path, "short write", errno);
        std::fclose(f);
        return false;
    }
    if (std::fclose(f) != 0) {
        setFileError(error, path, "close failed", errno);
        return false;
    }
    return true;
}

bool
saveBytes(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    return saveBytes(path, bytes, nullptr);
}

bool
loadBytes(const std::string &path, std::vector<std::uint8_t> &bytes,
          std::string *error)
{
    errno = 0;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        setFileError(error, path, "cannot open for reading", errno);
        return false;
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size < 0) {
        setFileError(error, path, "cannot determine size", errno);
        std::fclose(f);
        return false;
    }
    std::fseek(f, 0, SEEK_SET);
    bytes.resize(static_cast<std::size_t>(size));
    const std::size_t read =
        bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (read != bytes.size()) {
        setFileError(error, path, "short read", errno);
        return false;
    }
    return true;
}

bool
loadBytes(const std::string &path, std::vector<std::uint8_t> &bytes)
{
    return loadBytes(path, bytes, nullptr);
}

} // namespace mocktails::util
