/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library flows through Rng so that
 * model generation, synthesis and the synthetic workload generators are
 * reproducible from a single seed. The generator is xoshiro256**, seeded
 * through splitmix64 so that nearby seeds produce unrelated streams.
 */

#ifndef MOCKTAILS_UTIL_RNG_HPP
#define MOCKTAILS_UTIL_RNG_HPP

#include <cassert>
#include <cstdint>
#include <vector>

namespace mocktails::util
{

/**
 * A small, fast, deterministic random number generator (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be used
 * with <random> distributions, although the member helpers below cover
 * everything the library needs.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit value. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound > 0);
        // Lemire's unbiased bounded generation.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = -bound % bound;
            while (low < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        assert(lo <= hi);
        const auto span =
            static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
        if (span == max())
            return static_cast<std::int64_t>((*this)());
        return lo + static_cast<std::int64_t>(below(span + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Sample an index from non-negative weights.
     *
     * @param weights Relative weights; at least one must be positive.
     * @return An index i with probability weights[i] / sum(weights).
     */
    std::size_t
    weightedIndex(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        assert(total > 0.0);
        double target = uniform() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            target -= weights[i];
            if (target < 0.0)
                return i;
        }
        return weights.size() - 1;
    }

    /** Derive an unrelated child generator (for per-stream RNGs). */
    Rng
    fork()
    {
        return Rng((*this)());
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace mocktails::util

#endif // MOCKTAILS_UTIL_RNG_HPP
