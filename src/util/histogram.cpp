#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace mocktails::util
{

std::vector<std::uint64_t>
Histogram::dense(std::size_t size) const
{
    std::vector<std::uint64_t> out(size, 0);
    if (size == 0)
        return out;
    for (const auto &[value, count] : counts_) {
        const auto idx = value < 0 ? std::size_t{0}
                         : std::min(static_cast<std::size_t>(value),
                                    size - 1);
        out[idx] += count;
    }
    return out;
}

double
Histogram::distanceTo(const Histogram &other) const
{
    if (total_ == 0 && other.total_ == 0)
        return 0.0;
    const double n1 = std::max<double>(1.0, static_cast<double>(total_));
    const double n2 =
        std::max<double>(1.0, static_cast<double>(other.total_));

    double distance = 0.0;
    auto it1 = counts_.begin();
    auto it2 = other.counts_.begin();
    while (it1 != counts_.end() || it2 != other.counts_.end()) {
        double p1 = 0.0, p2 = 0.0;
        if (it2 == other.counts_.end() ||
            (it1 != counts_.end() && it1->first < it2->first)) {
            p1 = it1->second / n1;
            ++it1;
        } else if (it1 == counts_.end() || it2->first < it1->first) {
            p2 = it2->second / n2;
            ++it2;
        } else {
            p1 = it1->second / n1;
            p2 = it2->second / n2;
            ++it1;
            ++it2;
        }
        distance += std::abs(p1 - p2);
    }
    return distance;
}

} // namespace mocktails::util
