#include "util/stats.hpp"

#include <cmath>

namespace mocktails::util
{

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::sampleStddev() const
{
    return std::sqrt(sampleVariance());
}

double
percentError(double measured, double reference)
{
    if (reference == 0.0)
        return measured == 0.0 ? 0.0 : 100.0;
    return std::abs(measured - reference) / std::abs(reference) * 100.0;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v > 0.0 ? v : 1e-12);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
variance(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double mean = arithmeticMean(values);
    double m2 = 0.0;
    for (double v : values)
        m2 += (v - mean) * (v - mean);
    return m2 / static_cast<double>(values.size());
}

} // namespace mocktails::util
