/**
 * @file
 * A small LZ77-family byte compressor.
 *
 * Stands in for the gzip stage the paper applied to its protobuf files
 * (Sec. V, Fig. 17). The block format follows the LZ4 scheme: a stream
 * of sequences, each a literal run followed by a match copy described
 * by a 16-bit backwards offset. The comparison in Fig. 17 only depends
 * on traces and profiles being compressed with the same codec, which
 * this provides.
 */

#ifndef MOCKTAILS_UTIL_COMPRESS_HPP
#define MOCKTAILS_UTIL_COMPRESS_HPP

#include <cstdint>
#include <vector>

namespace mocktails::util
{

/** Compress a byte buffer. The output embeds the uncompressed size. */
std::vector<std::uint8_t> compress(const std::vector<std::uint8_t> &input);

/**
 * Decompress a buffer produced by compress().
 *
 * @param input The compressed bytes.
 * @param output Receives the reconstructed bytes.
 * @return false if the input is corrupt or truncated.
 */
bool decompress(const std::vector<std::uint8_t> &input,
                std::vector<std::uint8_t> &output);

} // namespace mocktails::util

#endif // MOCKTAILS_UTIL_COMPRESS_HPP
