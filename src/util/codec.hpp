/**
 * @file
 * Byte-oriented binary encoding primitives.
 *
 * Traces and statistical profiles are persisted in a compact binary
 * format built from LEB128 varints with zigzag encoding for signed
 * values. The paper used protocol buffers; this codec provides the same
 * wire-level properties (small integers stay small, deltas compress
 * well) without the external dependency.
 */

#ifndef MOCKTAILS_UTIL_CODEC_HPP
#define MOCKTAILS_UTIL_CODEC_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/varint.hpp"

namespace mocktails::util
{

/**
 * An append-only byte sink with varint helpers.
 */
class ByteWriter
{
  public:
    /** Append one raw byte. */
    void putByte(std::uint8_t b) { bytes_.push_back(b); }

    /** Append an unsigned LEB128 varint (see util/varint.hpp). */
    void putVarint(std::uint64_t value) { appendVarint(bytes_, value); }

    /** Append a zigzag-coded signed varint. */
    void putSigned(std::int64_t value) { putVarint(zigzagEncode(value)); }

    /** Append a length-prefixed string. */
    void
    putString(const std::string &s)
    {
        putVarint(s.size());
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    /** Append a double in its IEEE-754 bit pattern. */
    void
    putDouble(double value)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(value));
        __builtin_memcpy(&bits, &value, sizeof(bits));
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    }

    /** Append raw bytes verbatim. */
    void
    putBytes(const std::uint8_t *data, std::size_t size)
    {
        bytes_.insert(bytes_.end(), data, data + size);
    }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }
    std::size_t size() const { return bytes_.size(); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * A bounds-checked cursor over an encoded byte buffer.
 *
 * Decoding failures (truncated or malformed input) latch an error flag
 * instead of throwing; callers check ok() once after a decode pass.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    explicit ByteReader(const std::vector<std::uint8_t> &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {}

    /** Read one raw byte; returns 0 and sets the error flag past-end. */
    std::uint8_t
    getByte()
    {
        if (pos_ >= size_) {
            failed_ = true;
            return 0;
        }
        return data_[pos_++];
    }

    /** Read an unsigned LEB128 varint (see util/varint.hpp). */
    std::uint64_t
    getVarint()
    {
        std::uint64_t value = 0;
        const std::size_t used =
            decodeVarint(data_ + pos_, size_ - pos_, value);
        if (used == 0) {
            failed_ = true;
            return 0;
        }
        pos_ += used;
        return value;
    }

    /** Read a zigzag-coded signed varint. */
    std::int64_t getSigned() { return zigzagDecode(getVarint()); }

    /** Read a length-prefixed string. */
    std::string
    getString()
    {
        const std::uint64_t n = getVarint();
        if (failed_ || n > size_ - pos_) {
            failed_ = true;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    /** Read a double stored by ByteWriter::putDouble. */
    double
    getDouble()
    {
        std::uint64_t bits = 0;
        for (int i = 0; i < 8; ++i)
            bits |= static_cast<std::uint64_t>(getByte()) << (8 * i);
        double value;
        __builtin_memcpy(&value, &bits, sizeof(value));
        return value;
    }

    /** True until a decode error (truncation/overflow) occurs. */
    bool ok() const { return !failed_; }
    bool atEnd() const { return pos_ >= size_; }
    std::size_t position() const { return pos_; }
    std::size_t remaining() const { return size_ - pos_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/**
 * Write a byte buffer to a file. @return true on success.
 *
 * The three-argument overloads report failures loudly: @p error (when
 * non-null) receives a "path: message (errno text)" diagnostic.
 */
bool saveBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes);
bool saveBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes, std::string *error);

/** Read a whole file into a byte buffer. @return true on success. */
bool loadBytes(const std::string &path, std::vector<std::uint8_t> &bytes);
bool loadBytes(const std::string &path, std::vector<std::uint8_t> &bytes,
               std::string *error);

} // namespace mocktails::util

#endif // MOCKTAILS_UTIL_CODEC_HPP
