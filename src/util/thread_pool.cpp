#include "util/thread_pool.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/span.hpp"

namespace mocktails::util
{

namespace
{

/** Set while a thread is executing ThreadPool::workerLoop. */
thread_local bool on_worker_thread = false;

/** Requested size for the process-wide pool (0 = default). */
std::atomic<unsigned> global_pool_threads{0};

} // namespace

/** One worker's deque: owner pops the front, thieves pop the back. */
struct ThreadPool::Queue
{
    std::mutex mutex;
    std::deque<Task> tasks;
};

ThreadPool::ThreadPool(unsigned threads)
{
    // Resolve the telemetry counters before any worker exists. This
    // also guarantees the registry singleton finishes construction
    // first and is therefore destroyed only after this pool has
    // joined its workers (reverse static-destruction order).
    auto &registry = telemetry::MetricsRegistry::global();
    tasks_run_metric_ = &registry.counter("pool.tasks_run");
    steals_metric_ = &registry.counter("pool.steals");
    idle_ns_metric_ = &registry.counter("pool.idle_ns");
    submitted_metric_ = &registry.counter("pool.submitted");

    const unsigned n = threads == 0 ? defaultThreadCount() : threads;
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stop_.store(true);
    }
    sleep_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(Task task)
{
    assert(task);
    const unsigned id =
        next_queue_.fetch_add(1, std::memory_order_relaxed) % size();
    {
        std::lock_guard<std::mutex> lock(queues_[id]->mutex);
        queues_[id]->tasks.push_back(std::move(task));
    }
    {
        // pending_ is only advanced under sleep_mutex_ so a worker
        // between its empty-queue scan and its wait cannot miss the
        // wakeup.
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        pending_.fetch_add(1, std::memory_order_relaxed);
    }
    sleep_cv_.notify_one();
    if (telemetry::enabled())
        submitted_metric_->add(1);
}

bool
ThreadPool::onWorkerThread()
{
    return on_worker_thread;
}

unsigned
ThreadPool::defaultThreadCount()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(
        global_pool_threads.load(std::memory_order_relaxed));
    return pool;
}

void
ThreadPool::setGlobalThreadCount(unsigned threads)
{
    global_pool_threads.store(threads, std::memory_order_relaxed);
}

void
ThreadPool::workerLoop(unsigned id)
{
    on_worker_thread = true;
    for (;;) {
        Task task;
        if (tryPop(id, task)) {
            pending_.fetch_sub(1, std::memory_order_relaxed);
            task();
            if (telemetry::enabled())
                tasks_run_metric_->add(1);
            continue;
        }
        // Time spent parked counts as idle; the clock reads happen
        // only on the sleep path and only while telemetry is on.
        const bool timed = telemetry::enabled();
        const std::int64_t idle_from =
            timed ? telemetry::steadyNowNs() : 0;
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        sleep_cv_.wait(lock, [this] {
            return stop_.load(std::memory_order_relaxed) ||
                   pending_.load(std::memory_order_relaxed) > 0;
        });
        if (timed) {
            idle_ns_metric_->add(static_cast<std::uint64_t>(
                std::max<std::int64_t>(
                    0, telemetry::steadyNowNs() - idle_from)));
        }
        if (stop_.load(std::memory_order_relaxed) &&
            pending_.load(std::memory_order_relaxed) == 0) {
            return;
        }
    }
}

bool
ThreadPool::tryPop(unsigned id, Task &out)
{
    {
        Queue &own = *queues_[id];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.front());
            own.tasks.pop_front();
            return true;
        }
    }
    for (unsigned k = 1; k < size(); ++k) {
        Queue &victim = *queues_[(id + k) % size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            if (telemetry::enabled())
                steals_metric_->add(1);
            return true;
        }
    }
    return false;
}

namespace
{

/**
 * Shared state of one parallelFor call: a bag of contiguous chunks
 * drained cooperatively by the caller and by pool workers.
 */
struct ForState
{
    std::size_t n = 0;
    std::size_t chunk = 0;
    std::size_t total_chunks = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;

    void
    drain()
    {
        for (;;) {
            const std::size_t c =
                next.fetch_add(1, std::memory_order_relaxed);
            if (c >= total_chunks)
                return;
            const std::size_t begin = c * chunk;
            const std::size_t end = std::min(n, begin + chunk);
            for (std::size_t i = begin; i < end; ++i)
                (*fn)(i);
            std::size_t finished;
            {
                std::lock_guard<std::mutex> lock(mutex);
                finished = done.fetch_add(1) + 1;
            }
            if (finished == total_chunks)
                cv.notify_all();
        }
    }
};

} // namespace

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
            unsigned threads)
{
    if (n == 0)
        return;
    const unsigned want =
        threads == 0 ? ThreadPool::defaultThreadCount() : threads;
    // threads == 1 is the exact legacy path: no pool, no task objects.
    // Nested parallel sections also run inline — the outer call
    // already keeps the workers busy.
    if (want <= 1 || n == 1 || ThreadPool::onWorkerThread()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto state = std::make_shared<ForState>();
    state->n = n;
    // ~4 chunks per worker: coarse enough to amortise the queue
    // round-trips, fine enough for stealing to balance skewed leaves.
    state->total_chunks =
        std::min(n, static_cast<std::size_t>(want) * 4);
    state->chunk = (n + state->total_chunks - 1) / state->total_chunks;
    state->total_chunks = (n + state->chunk - 1) / state->chunk;
    state->fn = &fn;

    // The caller is one participant; helpers become no-ops if the
    // caller drains every chunk first. Stragglers only hold the
    // shared state, never &fn, once the chunk bag is empty.
    ThreadPool &pool = ThreadPool::global();
    const unsigned helpers = static_cast<unsigned>(std::min<std::size_t>(
        want - 1, state->total_chunks - 1));
    for (unsigned i = 0; i < helpers; ++i)
        pool.submit([state] { state->drain(); });

    state->drain();
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
        return state->done.load() == state->total_chunks;
    });
}

} // namespace mocktails::util
