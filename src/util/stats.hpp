/**
 * @file
 * Summary statistics used when reporting experiment results.
 */

#ifndef MOCKTAILS_UTIL_STATS_HPP
#define MOCKTAILS_UTIL_STATS_HPP

#include <cstdint>
#include <vector>

namespace mocktails::util
{

/**
 * Streaming mean/variance accumulator (Welford's algorithm).
 */
class RunningStats
{
  public:
    /** Record one sample. */
    void
    add(double value)
    {
        ++count_;
        const double delta = value - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (value - mean_);
        if (count_ == 1 || value < min_)
            min_ = value;
        if (count_ == 1 || value > max_)
            max_ = value;
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ == 0 ? 0.0 : mean_; }

    /** Smallest sample seen (0 when empty). */
    double min() const { return count_ == 0 ? 0.0 : min_; }

    /** Largest sample seen (0 when empty). */
    double max() const { return count_ == 0 ? 0.0 : max_; }

    /** Population variance (0 with fewer than two samples). */
    double
    variance() const
    {
        return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
    }

    /** Bessel-corrected sample variance, m2/(n-1) (0 when n < 2). */
    double
    sampleVariance() const
    {
        return count_ < 2 ? 0.0
                          : m2_ / static_cast<double>(count_ - 1);
    }

    double stddev() const;

    /** Square root of sampleVariance(). */
    double sampleStddev() const;

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Relative error |measured - reference| / reference, as a percentage.
 *
 * When the reference is zero the error is 0 if measured is also zero,
 * otherwise 100 (matching how the paper reports errors against counts
 * that may legitimately be zero, e.g. banks receiving no writes).
 */
double percentError(double measured, double reference);

/** Geometric mean of non-negative values; zeros contribute as 1e-12. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean (0 when empty). */
double arithmeticMean(const std::vector<double> &values);

/** Population variance (0 when fewer than 2 values). */
double variance(const std::vector<double> &values);

} // namespace mocktails::util

#endif // MOCKTAILS_UTIL_STATS_HPP
