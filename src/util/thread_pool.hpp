/**
 * @file
 * A small work-stealing thread pool and a parallel-for helper.
 *
 * Profile construction and synthesis are embarrassingly parallel
 * across hierarchy leaves (every leaf is modelled and generated
 * independently — paper Secs. III-B/III-C), so the hot paths fan leaf
 * work out over a process-wide pool. Each worker owns a deque: it pops
 * its own tasks from the front and steals from the back of its
 * siblings' deques when it runs dry, which keeps skewed leaf sizes
 * balanced without a global queue bottleneck.
 *
 * Determinism contract: parallelFor() runs fn(i) exactly once for
 * every index, callers write results into disjoint per-index slots,
 * and a thread count of 1 executes the plain sequential loop. All
 * users of the pool (model fitting, sharded synthesis) are therefore
 * bit-identical at every thread count.
 */

#ifndef MOCKTAILS_UTIL_THREAD_POOL_HPP
#define MOCKTAILS_UTIL_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mocktails::telemetry
{
class Counter;
} // namespace mocktails::telemetry

namespace mocktails::util
{

/**
 * A fixed-size pool of worker threads with per-worker deques and work
 * stealing.
 *
 * Telemetry (when enabled, see telemetry/metrics.hpp): every pool
 * feeds the process-wide "pool.submitted", "pool.tasks_run",
 * "pool.steals" and "pool.idle_ns" counters.
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param threads Worker count; 0 = defaultThreadCount(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains all queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned
    size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue a task for asynchronous execution. Tasks must not throw.
     */
    void submit(Task task);

    /** True when the calling thread is a pool worker. */
    static bool onWorkerThread();

    /** max(1, std::thread::hardware_concurrency()). */
    static unsigned defaultThreadCount();

    /**
     * The shared process-wide pool. Created on first use, joined at
     * process exit. Sized setGlobalThreadCount() if that was called
     * before first use, else defaultThreadCount().
     */
    static ThreadPool &global();

    /**
     * Request a worker count for the process-wide pool (0 = default).
     * Effective only when called before the first global() use — the
     * pool is created exactly once; later calls are ignored. Tools
     * with a --threads flag call this at startup so every parallel
     * stage (profile build, synthesis, validation, sharded DRAM)
     * shares one honouring pool instead of spawning its own.
     */
    static void setGlobalThreadCount(unsigned threads);

  private:
    struct Queue;

    void workerLoop(unsigned id);
    bool tryPop(unsigned id, Task &out);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;

    /// Process-wide telemetry counters, resolved once in the
    /// constructor (before any worker starts).
    telemetry::Counter *tasks_run_metric_ = nullptr;
    telemetry::Counter *steals_metric_ = nullptr;
    telemetry::Counter *idle_ns_metric_ = nullptr;
    telemetry::Counter *submitted_metric_ = nullptr;

    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
    std::atomic<std::size_t> pending_{0};
    std::atomic<unsigned> next_queue_{0};
    std::atomic<bool> stop_{false};
};

/**
 * Run fn(i) for every i in [0, n), fanned out over the global pool.
 *
 * The calling thread participates, so the call also makes progress
 * when every worker is busy, and returns only once all n indices have
 * been processed. Indices are handed out in contiguous chunks; fn must
 * be safe to call concurrently for distinct indices and must not
 * throw.
 *
 * @param threads Parallelism cap; 0 = defaultThreadCount(). A value
 *                of 1 runs the exact sequential loop on the calling
 *                thread (the legacy path), as do nested calls from
 *                inside a pool worker.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn,
                 unsigned threads = 0);

} // namespace mocktails::util

#endif // MOCKTAILS_UTIL_THREAD_POOL_HPP
