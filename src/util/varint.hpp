/**
 * @file
 * Standalone LEB128 varint and zigzag primitives.
 *
 * Factored out of the byte-stream codec (codec.hpp) so code that
 * frames its own buffers — the serve wire protocol, the MKTE binary
 * trace-event form — can share one encoding without going through a
 * ByteWriter/ByteReader pair. ByteWriter::putVarint and
 * ByteReader::getVarint delegate here, so every on-disk and on-wire
 * format in the repository speaks the identical varint dialect.
 *
 * Encoding: little-endian base-128, 7 payload bits per byte, the high
 * bit set on every byte except the last. A std::uint64_t needs at most
 * kMaxVarintBytes (10) bytes. Decoding accepts at most 10 bytes and
 * reports malformed input (truncation, or a continuation bit on the
 * 10th byte) by returning 0 consumed bytes.
 */

#ifndef MOCKTAILS_UTIL_VARINT_HPP
#define MOCKTAILS_UTIL_VARINT_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mocktails::util
{

/** Largest encoded size of a 64-bit varint. */
constexpr std::size_t kMaxVarintBytes = 10;

/** Map a signed value onto an unsigned one with small magnitudes first. */
constexpr std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

/** Inverse of zigzagEncode. */
constexpr std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

/**
 * Encode @p value into @p out (>= kMaxVarintBytes writable bytes).
 * @return The number of bytes written, in [1, kMaxVarintBytes].
 */
inline std::size_t
encodeVarint(std::uint64_t value, std::uint8_t *out)
{
    std::size_t n = 0;
    while (value >= 0x80) {
        out[n++] = static_cast<std::uint8_t>(value) | 0x80;
        value >>= 7;
    }
    out[n++] = static_cast<std::uint8_t>(value);
    return n;
}

/** Append the varint encoding of @p value to @p out. */
inline void
appendVarint(std::vector<std::uint8_t> &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

/**
 * Decode one varint from the first @p size bytes at @p data.
 *
 * @param value Receives the decoded value on success.
 * @return Bytes consumed (>= 1), or 0 when the input is truncated or
 *         longer than kMaxVarintBytes (malformed).
 */
inline std::size_t
decodeVarint(const std::uint8_t *data, std::size_t size,
             std::uint64_t &value)
{
    std::uint64_t v = 0;
    int shift = 0;
    for (std::size_t i = 0; i < size; ++i) {
        if (shift > 63)
            return 0;
        const std::uint8_t b = data[i];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80)) {
            value = v;
            return i + 1;
        }
        shift += 7;
    }
    return 0;
}

/** Encoded size of @p value without writing it. */
inline std::size_t
varintSize(std::uint64_t value)
{
    std::size_t n = 1;
    while (value >= 0x80) {
        value >>= 7;
        ++n;
    }
    return n;
}

} // namespace mocktails::util

#endif // MOCKTAILS_UTIL_VARINT_HPP
