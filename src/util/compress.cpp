#include "util/compress.hpp"

#include <cstring>

#include "util/codec.hpp"

namespace mocktails::util
{

namespace
{

constexpr std::size_t minMatch = 4;
constexpr std::size_t maxOffset = 65535;
constexpr int hashBits = 16;

std::uint32_t
hash4(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - hashBits);
}

/** Emit one sequence: a literal run, then (unless final) a match. */
void
emitSequence(std::vector<std::uint8_t> &out, const std::uint8_t *literals,
             std::size_t lit_len, std::size_t offset, std::size_t match_len)
{
    const bool has_match = match_len >= minMatch;
    const std::size_t match_code = has_match ? match_len - minMatch : 0;

    std::uint8_t token = 0;
    token |= static_cast<std::uint8_t>(lit_len >= 15 ? 15 : lit_len) << 4;
    if (has_match)
        token |= static_cast<std::uint8_t>(match_code >= 15 ? 15
                                                            : match_code);
    out.push_back(token);

    if (lit_len >= 15) {
        std::size_t rest = lit_len - 15;
        while (rest >= 255) {
            out.push_back(255);
            rest -= 255;
        }
        out.push_back(static_cast<std::uint8_t>(rest));
    }
    out.insert(out.end(), literals, literals + lit_len);

    if (has_match) {
        out.push_back(static_cast<std::uint8_t>(offset & 0xff));
        out.push_back(static_cast<std::uint8_t>(offset >> 8));
        if (match_code >= 15) {
            std::size_t rest = match_code - 15;
            while (rest >= 255) {
                out.push_back(255);
                rest -= 255;
            }
            out.push_back(static_cast<std::uint8_t>(rest));
        }
    }
}

} // namespace

std::vector<std::uint8_t>
compress(const std::vector<std::uint8_t> &input)
{
    std::vector<std::uint8_t> out;
    {
        ByteWriter header;
        header.putVarint(input.size());
        out = header.take();
    }
    if (input.empty())
        return out;

    const std::uint8_t *base = input.data();
    const std::size_t size = input.size();

    // Most recent position of each 4-byte hash; kNoPos means unseen.
    constexpr std::uint32_t no_pos = 0xffffffffu;
    std::vector<std::uint32_t> table(std::size_t{1} << hashBits, no_pos);

    std::size_t pos = 0;
    std::size_t literal_start = 0;
    // The final minMatch-1 bytes can never start a match.
    const std::size_t match_limit = size >= minMatch ? size - minMatch + 1
                                                     : 0;

    while (pos < match_limit) {
        const std::uint32_t h = hash4(base + pos);
        const std::uint32_t candidate = table[h];
        table[h] = static_cast<std::uint32_t>(pos);

        std::size_t match_len = 0;
        if (candidate != no_pos && pos - candidate <= maxOffset &&
            std::memcmp(base + candidate, base + pos, minMatch) == 0) {
            match_len = minMatch;
            while (pos + match_len < size &&
                   base[candidate + match_len] == base[pos + match_len]) {
                ++match_len;
            }
        }

        if (match_len >= minMatch) {
            emitSequence(out, base + literal_start, pos - literal_start,
                         pos - candidate, match_len);
            // Index a sparse set of positions inside the match so later
            // data can still find it, without quadratic insertion cost.
            const std::size_t end = pos + match_len;
            for (std::size_t p = pos + 1; p + minMatch <= end && p + 4 <= size;
                 p += 7) {
                table[hash4(base + p)] = static_cast<std::uint32_t>(p);
            }
            pos = end;
            literal_start = pos;
        } else {
            ++pos;
        }
    }

    // Trailing literal-only sequence.
    emitSequence(out, base + literal_start, size - literal_start, 0, 0);
    return out;
}

bool
decompress(const std::vector<std::uint8_t> &input,
           std::vector<std::uint8_t> &output)
{
    ByteReader header(input);
    const std::uint64_t expected = header.getVarint();
    if (!header.ok())
        return false;

    // Sanity bound: one input byte can expand to at most ~256 output
    // bytes (match-length extension bytes), so a larger claim is
    // corrupt — reject before allocating.
    if (expected > (static_cast<std::uint64_t>(input.size()) + 1) * 256)
        return false;

    output.clear();
    output.reserve(expected);

    std::size_t pos = header.position();
    const std::uint8_t *data = input.data();
    const std::size_t size = input.size();

    auto read_extension = [&](std::size_t &value) -> bool {
        while (true) {
            if (pos >= size)
                return false;
            const std::uint8_t b = data[pos++];
            value += b;
            if (b != 255)
                return true;
        }
    };

    while (output.size() < expected) {
        if (pos >= size)
            return false;
        const std::uint8_t token = data[pos++];

        std::size_t lit_len = token >> 4;
        if (lit_len == 15 && !read_extension(lit_len))
            return false;
        if (pos + lit_len > size)
            return false;
        output.insert(output.end(), data + pos, data + pos + lit_len);
        pos += lit_len;

        if (output.size() >= expected)
            break;

        if (pos + 2 > size)
            return false;
        const std::size_t offset = data[pos] |
                                   (static_cast<std::size_t>(data[pos + 1])
                                    << 8);
        pos += 2;
        if (offset == 0 || offset > output.size())
            return false;

        std::size_t match_len = (token & 0x0f);
        if (match_len == 15 && !read_extension(match_len))
            return false;
        match_len += minMatch;

        // Byte-by-byte copy: matches may overlap their own output.
        std::size_t src = output.size() - offset;
        for (std::size_t i = 0; i < match_len; ++i)
            output.push_back(output[src + i]);
    }

    return output.size() == expected;
}

} // namespace mocktails::util
