/**
 * @file
 * An open-addressing set of 64-bit keys for hot-loop membership tests.
 *
 * The cache hierarchy records the footprint (unique blocks touched) on
 * every access; std::unordered_set allocates a node per insert and
 * chases pointers per probe. This set keeps keys in one flat
 * power-of-two array with linear probing — an insert is a hash, a few
 * contiguous probes and a store, and clear() reuses the allocation.
 * Insert-only (no erase), which is all the footprint needs.
 */

#ifndef MOCKTAILS_UTIL_FLAT_SET_HPP
#define MOCKTAILS_UTIL_FLAT_SET_HPP

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mocktails::util
{

/**
 * Insert-only hash set of uint64 keys. One key value is reserved as
 * the internal empty marker: ~0 (keys are stored biased by one).
 */
class FlatSet64
{
  public:
    /** @param expected Sizing hint; the set grows as needed. */
    explicit FlatSet64(std::size_t expected = 0)
    {
        slots_.resize(capacityFor(expected), 0);
        mask_ = slots_.size() - 1;
    }

    /**
     * Insert @p key. @return true when the key was not yet present.
     * @pre key != ~0 (reserved).
     */
    bool
    insert(std::uint64_t key)
    {
        assert(key != ~std::uint64_t{0} && "reserved key");
        const std::uint64_t stored = key + 1;
        std::size_t i = static_cast<std::size_t>(mix(key)) & mask_;
        while (slots_[i] != 0) {
            if (slots_[i] == stored)
                return false;
            i = (i + 1) & mask_;
        }
        slots_[i] = stored;
        ++size_;
        // Keep the load factor under ~0.7 so probe runs stay short.
        if (size_ * 10 > slots_.size() * 7)
            grow();
        return true;
    }

    /** True when @p key has been inserted. */
    bool
    contains(std::uint64_t key) const
    {
        const std::uint64_t stored = key + 1;
        std::size_t i = static_cast<std::size_t>(mix(key)) & mask_;
        while (slots_[i] != 0) {
            if (slots_[i] == stored)
                return true;
            i = (i + 1) & mask_;
        }
        return false;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Remove every key, keeping the allocation. */
    void
    clear()
    {
        std::fill(slots_.begin(), slots_.end(), 0);
        size_ = 0;
    }

  private:
    /** splitmix64 finalizer: full-avalanche mix of the key. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    static std::size_t
    capacityFor(std::size_t expected)
    {
        std::size_t capacity = 64;
        // Headroom so `expected` inserts stay under the growth load.
        while (capacity * 7 < expected * 10)
            capacity *= 2;
        return capacity;
    }

    void
    grow()
    {
        std::vector<std::uint64_t> old;
        old.swap(slots_);
        slots_.resize(old.size() * 2, 0);
        mask_ = slots_.size() - 1;
        for (const std::uint64_t stored : old) {
            if (stored == 0)
                continue;
            std::size_t i =
                static_cast<std::size_t>(mix(stored - 1)) & mask_;
            while (slots_[i] != 0)
                i = (i + 1) & mask_;
            slots_[i] = stored;
        }
    }

    std::vector<std::uint64_t> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace mocktails::util

#endif // MOCKTAILS_UTIL_FLAT_SET_HPP
