/**
 * @file
 * An open-addressing map from 64-bit keys to 32-bit indices.
 *
 * The Markov chain interning loop (value -> state index) is the
 * hottest lookup during profile fitting; std::unordered_map pays a
 * node allocation per state and a pointer chase per probe. This map
 * keeps keys and values in two flat power-of-two arrays with linear
 * probing — the FlatSet64 recipe (same splitmix64 mix, same 0.7 load
 * factor) extended with a value column. Insert-only, which is all the
 * interning needs. Keys are arbitrary (every int64 is valid): empty
 * slots are marked in the value column, which stores indices biased
 * by one.
 */

#ifndef MOCKTAILS_UTIL_FLAT_MAP_HPP
#define MOCKTAILS_UTIL_FLAT_MAP_HPP

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mocktails::util
{

/**
 * Insert-only hash map int64 -> uint32. Values must be below
 * 0xffffffff (the bias-by-one empty marker needs one spare value).
 */
class FlatMap64
{
  public:
    /** find() result when the key is absent. */
    static constexpr std::uint32_t kNotFound = 0xffffffffu;

    /** @param expected Sizing hint; the map grows as needed. */
    explicit FlatMap64(std::size_t expected = 0)
    {
        keys_.resize(capacityFor(expected), 0);
        vals_.assign(keys_.size(), 0);
        mask_ = keys_.size() - 1;
    }

    /**
     * Insert @p key -> @p value when the key is absent.
     * @return true when newly inserted (false leaves the map as-is).
     * @pre value < kNotFound.
     */
    bool
    insert(std::int64_t key, std::uint32_t value)
    {
        assert(value < kNotFound && "reserved value");
        const auto raw = static_cast<std::uint64_t>(key);
        std::size_t i = static_cast<std::size_t>(mix(raw)) & mask_;
        while (vals_[i] != 0) {
            if (keys_[i] == raw)
                return false;
            i = (i + 1) & mask_;
        }
        keys_[i] = raw;
        vals_[i] = value + 1;
        ++size_;
        // Keep the load factor under ~0.7 so probe runs stay short.
        if (size_ * 10 > keys_.size() * 7)
            grow();
        return true;
    }

    /** Value stored for @p key, or kNotFound. */
    std::uint32_t
    find(std::int64_t key) const
    {
        const auto raw = static_cast<std::uint64_t>(key);
        std::size_t i = static_cast<std::size_t>(mix(raw)) & mask_;
        while (vals_[i] != 0) {
            if (keys_[i] == raw)
                return vals_[i] - 1;
            i = (i + 1) & mask_;
        }
        return kNotFound;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Remove every entry, keeping the allocation. */
    void
    clear()
    {
        std::fill(vals_.begin(), vals_.end(), 0);
        size_ = 0;
    }

  private:
    /** splitmix64 finalizer: full-avalanche mix of the key. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    static std::size_t
    capacityFor(std::size_t expected)
    {
        std::size_t capacity = 64;
        // Headroom so `expected` inserts stay under the growth load.
        while (capacity * 7 < expected * 10)
            capacity *= 2;
        return capacity;
    }

    void
    grow()
    {
        std::vector<std::uint64_t> old_keys;
        std::vector<std::uint32_t> old_vals;
        old_keys.swap(keys_);
        old_vals.swap(vals_);
        keys_.resize(old_keys.size() * 2, 0);
        vals_.assign(keys_.size(), 0);
        mask_ = keys_.size() - 1;
        for (std::size_t j = 0; j < old_keys.size(); ++j) {
            if (old_vals[j] == 0)
                continue;
            std::size_t i =
                static_cast<std::size_t>(mix(old_keys[j])) & mask_;
            while (vals_[i] != 0)
                i = (i + 1) & mask_;
            keys_[i] = old_keys[j];
            vals_[i] = old_vals[j];
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<std::uint32_t> vals_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace mocktails::util

#endif // MOCKTAILS_UTIL_FLAT_MAP_HPP
