/**
 * @file
 * A round-robin arbiter for a shared interconnect link.
 *
 * The crossbar gives every master its own port; real mobile SoCs often
 * funnel several IP blocks through one shared link before the memory
 * controller (the non-coherent interconnect of the paper's Sec. IV-A
 * platform). The arbiter models that: N input queues, one grant per
 * cycle, round-robin fairness, head-of-line blocking per input, and
 * backpressure both from the downstream sink and to the upstream
 * masters.
 */

#ifndef MOCKTAILS_INTERCONNECT_ARBITER_HPP
#define MOCKTAILS_INTERCONNECT_ARBITER_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "mem/request.hpp"
#include "sim/event_queue.hpp"

namespace mocktails::interconnect
{

/**
 * Arbiter configuration.
 */
struct ArbiterConfig
{
    /** Requests buffered per input port before backpressure. */
    std::uint32_t queueCapacity = 8;

    /** Cycles between grant attempts. */
    std::uint32_t cycleTime = 1;

    /** Cycles a granted request takes to traverse the link. */
    std::uint32_t linkLatency = 4;

    /**
     * Optional per-port priorities (lower value = more urgent, as for
     * a latency-critical display controller). Ports of equal priority
     * share round-robin; a higher-priority backlog always wins. Empty
     * means all ports are equal.
     */
    std::vector<std::uint32_t> priorities;
};

/**
 * N-input round-robin arbiter over one downstream sink.
 */
class Arbiter
{
  public:
    /**
     * Downstream admission; receives the granted input port so the
     * caller can do per-master accounting. Returns false to reject
     * (backpressure).
     */
    using Sink =
        std::function<bool(std::uint32_t port, const mem::Request &)>;

    Arbiter(sim::EventQueue &events, const ArbiterConfig &config,
            std::uint32_t num_ports, Sink sink);

    /**
     * Offer a request on input port @p port at the current tick.
     * @return false when that port's queue is full.
     */
    bool trySend(std::uint32_t port, const mem::Request &request);

    /** True when all queues are empty and nothing is in flight. */
    bool idle() const;

    std::uint32_t numPorts() const
    {
        return static_cast<std::uint32_t>(queues_.size());
    }

    std::size_t queueSize(std::uint32_t port) const
    {
        return queues_[port].size();
    }

    /** Requests granted per port (fairness accounting). */
    const std::vector<std::uint64_t> &grants() const { return grants_; }

    /** Grant attempts rejected by the downstream sink. */
    std::uint64_t sinkRejections() const { return sink_rejections_; }

  private:
    void scheduleGrant();
    void grantOne();

    sim::EventQueue &events_;
    ArbiterConfig config_;
    Sink sink_;
    std::vector<std::deque<mem::Request>> queues_;
    std::vector<std::uint64_t> grants_;
    std::uint32_t next_port_ = 0; ///< round-robin pointer
    bool granting_ = false;
    std::uint64_t sink_rejections_ = 0;
};

} // namespace mocktails::interconnect

#endif // MOCKTAILS_INTERCONNECT_ARBITER_HPP
