#include "interconnect/crossbar.hpp"

#include <utility>

namespace mocktails::interconnect
{

Crossbar::Crossbar(sim::EventQueue &events, const CrossbarConfig &config,
                   Sink sink)
    : events_(events), config_(config), sink_(std::move(sink))
{}

bool
Crossbar::trySend(const mem::Request &request)
{
    if (queue_.size() >= config_.queueCapacity)
        return false;
    queue_.push_back(InFlight{request, events_.now() + config_.latency});
    if (!delivering_)
        scheduleDelivery();
    return true;
}

void
Crossbar::scheduleDelivery()
{
    delivering_ = true;
    const sim::Tick when =
        std::max(events_.now(), queue_.front().readyAt);
    events_.schedule(when, [this] { deliverHead(); });
}

void
Crossbar::deliverHead()
{
    if (sink_(queue_.front().request)) {
        queue_.pop_front();
        ++delivered_;
        if (!queue_.empty()) {
            scheduleDelivery();
        } else {
            delivering_ = false;
        }
    } else {
        // Head-of-line blocking: retry the same request later.
        ++sink_rejections_;
        events_.scheduleIn(config_.retryInterval,
                           [this] { deliverHead(); });
    }
}

} // namespace mocktails::interconnect
