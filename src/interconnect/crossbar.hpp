/**
 * @file
 * A simple crossbar between traffic sources and the memory system.
 *
 * The paper's validation platform connects the traffic generator to
 * main memory "through a crossbar" (Sec. IV-A). This model adds a fixed
 * traversal latency, a bounded internal queue, and a one-request-per-
 * cycle delivery port. Downstream rejection (full controller queues)
 * causes head-of-line blocking and, once the internal queue fills,
 * backpressure to the source — the feedback path the Mocktails
 * injection process reacts to.
 */

#ifndef MOCKTAILS_INTERCONNECT_CROSSBAR_HPP
#define MOCKTAILS_INTERCONNECT_CROSSBAR_HPP

#include <cstdint>
#include <deque>
#include <functional>

#include "mem/request.hpp"
#include "sim/event_queue.hpp"

namespace mocktails::interconnect
{

/**
 * Crossbar configuration.
 */
struct CrossbarConfig
{
    /** Cycles to traverse the crossbar. */
    std::uint32_t latency = 8;

    /** Requests buffered inside the crossbar before backpressure. */
    std::uint32_t queueCapacity = 16;

    /** Cycles between delivery attempts when the sink rejects. */
    std::uint32_t retryInterval = 1;
};

/**
 * Single-port crossbar: accepts requests, delivers them downstream in
 * order after a fixed latency.
 */
class Crossbar
{
  public:
    /** Downstream admission: returns false to reject (backpressure). */
    using Sink = std::function<bool(const mem::Request &)>;

    Crossbar(sim::EventQueue &events, const CrossbarConfig &config,
             Sink sink);

    /**
     * Offer a request to the crossbar at the current tick.
     * @return false when the internal queue is full.
     */
    bool trySend(const mem::Request &request);

    /** True when nothing is buffered or in flight. */
    bool idle() const { return queue_.empty() && !delivering_; }

    std::size_t queueSize() const { return queue_.size(); }

    /** Requests that have left the crossbar into the memory system. */
    std::uint64_t delivered() const { return delivered_; }

    /** Delivery attempts rejected by the sink. */
    std::uint64_t sinkRejections() const { return sink_rejections_; }

  private:
    struct InFlight
    {
        mem::Request request;
        sim::Tick readyAt; ///< earliest delivery tick (arrival+latency)
    };

    void scheduleDelivery();
    void deliverHead();

    sim::EventQueue &events_;
    CrossbarConfig config_;
    Sink sink_;
    std::deque<InFlight> queue_;
    bool delivering_ = false;
    std::uint64_t delivered_ = 0;
    std::uint64_t sink_rejections_ = 0;
};

} // namespace mocktails::interconnect

#endif // MOCKTAILS_INTERCONNECT_CROSSBAR_HPP
