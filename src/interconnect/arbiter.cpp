#include "interconnect/arbiter.hpp"

#include <cassert>
#include <utility>

namespace mocktails::interconnect
{

Arbiter::Arbiter(sim::EventQueue &events, const ArbiterConfig &config,
                 std::uint32_t num_ports, Sink sink)
    : events_(events), config_(config), sink_(std::move(sink)),
      queues_(num_ports), grants_(num_ports, 0)
{
    assert(num_ports > 0);
}

bool
Arbiter::trySend(std::uint32_t port, const mem::Request &request)
{
    assert(port < queues_.size());
    if (queues_[port].size() >= config_.queueCapacity)
        return false;
    queues_[port].push_back(request);
    if (!granting_)
        scheduleGrant();
    return true;
}

bool
Arbiter::idle() const
{
    if (granting_)
        return false;
    for (const auto &queue : queues_) {
        if (!queue.empty())
            return false;
    }
    return true;
}

void
Arbiter::scheduleGrant()
{
    granting_ = true;
    events_.scheduleIn(config_.cycleTime, [this] { grantOne(); });
}

void
Arbiter::grantOne()
{
    // Pick the most urgent backlogged priority class, then round-
    // robin within it (plain round-robin when no priorities are
    // configured).
    const std::uint32_t ports = numPorts();
    const auto priority_of = [this](std::uint32_t port) {
        return port < config_.priorities.size()
                   ? config_.priorities[port]
                   : 0u;
    };

    std::uint32_t chosen = ports;
    std::uint32_t best_priority = ~0u;
    for (std::uint32_t i = 0; i < ports; ++i) {
        const std::uint32_t port = (next_port_ + i) % ports;
        if (queues_[port].empty())
            continue;
        if (priority_of(port) < best_priority) {
            best_priority = priority_of(port);
            chosen = port;
        }
    }
    if (chosen == ports) {
        granting_ = false; // all drained; wake on next trySend
        return;
    }

    // The grant succeeds only if the downstream sink accepts after
    // the link traversal. To keep ordering per port, the request
    // stays queued until accepted.
    const mem::Request &head = queues_[chosen].front();
    if (sink_(chosen, head)) {
        queues_[chosen].pop_front();
        ++grants_[chosen];
        // Move the pointer past the granted port (fairness).
        next_port_ = (chosen + 1) % ports;
        // The link is busy for linkLatency before the next grant.
        events_.scheduleIn(std::max(config_.cycleTime,
                                    config_.linkLatency),
                           [this] { grantOne(); });
    } else {
        ++sink_rejections_;
        // Downstream is full: try a different port next cycle (the
        // round-robin pointer advances so one blocked destination
        // cannot starve the others... unless it is the only one).
        next_port_ = (chosen + 1) % ports;
        events_.scheduleIn(config_.cycleTime, [this] { grantOne(); });
    }
}

} // namespace mocktails::interconnect
