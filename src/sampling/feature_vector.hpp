/**
 * @file
 * Memory-behaviour signatures of profile leaves and request intervals.
 *
 * Representative-interval sampling (after "Memory Access Vectors" and
 * the cache-interval representativeness work in PAPERS.md) clusters
 * units of work by a compact feature signature and simulates only one
 * representative per cluster. This module computes those signatures:
 * a fixed-length FeatureVector summarising footprint, volume, op mix,
 * size, stride mix, tempo, Markov-delta entropy and reuse — extracted
 * either from a fitted core::LeafModel (no trace needed, so `reduce`
 * works on a bare .mkp) or measured directly from a mem::RequestBatch
 * interval of a raw stream.
 *
 * Everything here is deterministic: signatures depend only on the
 * model/batch contents, and profileSignatures() writes one disjoint
 * slot per leaf, so it is bit-identical at every thread count.
 */

#ifndef MOCKTAILS_SAMPLING_FEATURE_VECTOR_HPP
#define MOCKTAILS_SAMPLING_FEATURE_VECTOR_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "mem/request_batch.hpp"

namespace mocktails::sampling
{

/** Number of dimensions in a signature. */
constexpr std::size_t kFeatureDims = 10;

/**
 * One memory-behaviour signature. Dimensions (all deterministic):
 *
 *  0 footprint   log2(1 + span bytes [addrHi-addrLo or touched span])
 *  1 volume      log2(1 + request count)
 *  2 op mix      read fraction in [0, 1]
 *  3 size        log2(1 + mean request size)
 *  4 stride      log2(1 + mean |stride|)
 *  5 stride mix  entropy of the stride value distribution (bits)
 *  6 tempo       log2(1 + mean inter-arrival delta)
 *  7 delta H     Markov-delta entropy: count-weighted mean transition-
 *                row entropy of the delta-time chain (bits)
 *  8 revisit     min(1, distinct 64B blocks / requests) — low values
 *                mean heavy address reuse
 *  9 reuse gap   log2(1 + mean requests between touches of the same
 *                64B block) — the reuse-distance summary
 */
struct FeatureVector
{
    std::array<double, kFeatureDims> v{};

    double operator[](std::size_t i) const { return v[i]; }
    double &operator[](std::size_t i) { return v[i]; }
};

/** Human-readable name of dimension @p i (for reports/tests). */
const char *featureName(std::size_t i);

/**
 * Signature of one fitted leaf model, computed from the McC models
 * alone (value/transition distributions), without synthesising.
 */
FeatureVector leafSignature(const core::LeafModel &leaf);

/**
 * Signature of the interval [begin, end) of a raw SoA request stream.
 * Stride/delta/reuse are measured over the interval's actual rows.
 */
FeatureVector batchSignature(const mem::RequestBatch &batch,
                             std::size_t begin, std::size_t end);

/**
 * Signatures of every leaf of @p profile, fanned out over the shared
 * pool (one disjoint slot per leaf — identical at every thread count).
 */
std::vector<FeatureVector> profileSignatures(const core::Profile &profile,
                                             unsigned threads = 0);

/**
 * Per-dimension z-score normalisation fitted on a signature set, so no
 * single dimension dominates the clustering distance. Zero-variance
 * dimensions map to 0 (they carry no clustering information).
 */
struct Standardizer
{
    std::array<double, kFeatureDims> mean{};
    std::array<double, kFeatureDims> invStddev{};

    static Standardizer fit(const std::vector<FeatureVector> &points);

    FeatureVector apply(const FeatureVector &x) const;

    std::vector<FeatureVector>
    applyAll(const std::vector<FeatureVector> &points) const;
};

/** Squared Euclidean distance between two signatures. */
double distance2(const FeatureVector &a, const FeatureVector &b);

} // namespace mocktails::sampling

#endif // MOCKTAILS_SAMPLING_FEATURE_VECTOR_HPP
