#include "sampling/sampled_validate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "cache/hierarchy.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "obs/provenance.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::sampling
{

namespace
{

/**
 * Rate-like metrics extrapolate as a request-share weighted mean;
 * everything else is a count and scales additively by cluster weight.
 */
bool
isRateMetric(const std::string &name)
{
    return name.find("rate") != std::string::npos ||
           name.find("latency") != std::string::npos;
}

void
extrapolateMetrics(
    const std::vector<ClusterValidation> &clusters,
    const RepresentativeSet &set,
    std::vector<validation::MetricComparison> ClusterValidation::*table,
    std::vector<validation::MetricComparison> &out)
{
    if (clusters.empty())
        return;
    double total = 0.0;
    for (const ClusterInfo &c : set.clusters)
        total += static_cast<double>(c.requests);

    const std::size_t metric_count = (clusters[0].*table).size();
    for (std::size_t m = 0; m < metric_count; ++m) {
        const std::string &name = (clusters[0].*table)[m].name;
        const bool rate = isRateMetric(name);
        double base = 0.0;
        double synth = 0.0;
        for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
            const validation::MetricComparison &raw =
                (clusters[ci].*table)[m];
            const ClusterInfo &info = set.clusters[ci];
            const double scale =
                rate ? (total > 0.0
                            ? static_cast<double>(info.requests) / total
                            : 0.0)
                     : info.weight;
            base += scale * raw.baseline;
            synth += scale * raw.synthetic;
        }
        validation::appendMetric(out, name, base, synth);
    }
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    out += '"';
}

} // namespace

SampledValidationReport
validateProfileSampled(const mem::Trace &trace,
                       const core::Profile &profile,
                       const SampledValidationOptions &options)
{
    SampledValidationReport result;
    result.totalRequests = trace.size();

    // The extrapolation needs baseline leaf i to line up with profile
    // leaf i, exactly as attribution does: re-partition the baseline
    // with the profile's own hierarchy configuration.
    const std::vector<core::Leaf> baseline_leaves =
        core::buildLeaves(trace, profile.config);
    if (baseline_leaves.size() != profile.leaves.size() ||
        profile.leaves.empty()) {
        result.note =
            "re-partitioning produced " +
            std::to_string(baseline_leaves.size()) +
            " leaves for " + std::to_string(profile.leaves.size()) +
            " profile leaves; fell back to full validation";
        result.report =
            validation::validateProfile(trace, profile, options.base);
        result.simulatedRequests = trace.size();
        return result;
    }
    result.matched = true;

    SamplingOptions sampling = options.sampling;
    if (sampling.threads == 0)
        sampling.threads = options.base.threads;
    result.set = selectRepresentatives(profile, sampling);
    const RepresentativeSet &set = result.set;

    // One synthesis of the reduced profile; provenance splits the
    // merged stream back into per-representative sub-streams (reduced
    // leaf i == set.clusters[i]).
    const core::Profile reduced = makeReducedProfile(profile, set);
    obs::ProvenanceTable provenance;
    const mem::Trace synthetic =
        core::synthesize(reduced, options.base.seed,
                         options.base.threads, &provenance);

    std::vector<mem::Trace> synth_parts(set.clusters.size());
    for (std::size_t i = 0; i < synthetic.size(); ++i)
        synth_parts[provenance.origins()[i].leaf].add(synthetic[i]);

    std::vector<mem::Trace> base_parts(set.clusters.size());
    for (std::size_t c = 0; c < set.clusters.size(); ++c) {
        const core::Leaf &leaf =
            baseline_leaves[set.clusters[c].medoidLeaf];
        for (const mem::Request &request : leaf.requests)
            base_parts[c].add(request);
        result.simulatedRequests += leaf.requests.size();
    }

    // One task per cluster, each filling only its own slot; the four
    // substrate runs of a cluster execute sequentially inside the
    // task (nested parallelFor calls degrade to sequential on pool
    // workers), so the report is bit-identical at every thread count.
    result.clusters.resize(set.clusters.size());
    util::parallelFor(
        set.clusters.size(),
        [&](std::size_t c) {
            ClusterValidation &cv = result.clusters[c];
            cv.cluster = static_cast<std::uint32_t>(c);
            if (options.base.dram) {
                dram::SimulationOptions sim_options;
                sim_options.threads = 1;
                const dram::SimulationResult base =
                    dram::simulateTrace(base_parts[c],
                                        dram::DramConfig{},
                                        interconnect::CrossbarConfig{},
                                        sim_options);
                const dram::SimulationResult synth =
                    dram::simulateTrace(synth_parts[c],
                                        dram::DramConfig{},
                                        interconnect::CrossbarConfig{},
                                        sim_options);
                validation::appendDramMetrics(base, synth,
                                              cv.dramMetrics);
            }
            if (options.base.cache) {
                cache::Hierarchy base{cache::HierarchyConfig{}};
                cache::Hierarchy synth{cache::HierarchyConfig{}};
                base.run(base_parts[c]);
                synth.run(synth_parts[c]);
                validation::appendCacheMetrics(base, synth,
                                               cv.cacheMetrics);
            }
        },
        options.base.threads);

    extrapolateMetrics(result.clusters, set,
                       &ClusterValidation::dramMetrics,
                       result.report.dramMetrics);
    extrapolateMetrics(result.clusters, set,
                       &ClusterValidation::cacheMetrics,
                       result.report.cacheMetrics);
    validation::finalizeReport(result.report,
                               options.base.passThresholdPercent);
    return result;
}

std::string
formatSampledReport(const SampledValidationReport &report)
{
    std::string out = validation::formatReport(report.report);
    char line[192];
    if (!report.matched) {
        out += "sampling: " + report.note + "\n";
        return out;
    }
    const double pct =
        report.totalRequests > 0
            ? 100.0 * static_cast<double>(report.simulatedRequests) /
                  static_cast<double>(report.totalRequests)
            : 0.0;
    std::snprintf(line, sizeof(line),
                  "sampling: k=%u silhouette=%.3f simulated "
                  "%llu/%llu requests (%.1f%%) bound +/-%.1f%%\n",
                  report.set.k, report.set.meanSilhouette,
                  static_cast<unsigned long long>(
                      report.simulatedRequests),
                  static_cast<unsigned long long>(report.totalRequests),
                  pct, report.set.errorBoundPercent);
    out += line;
    std::snprintf(line, sizeof(line), "%8s %8s %8s %12s %9s %8s\n",
                  "cluster", "medoid", "leaves", "requests", "weight",
                  "bound");
    out += line;
    for (std::size_t c = 0; c < report.set.clusters.size(); ++c) {
        const ClusterInfo &info = report.set.clusters[c];
        std::snprintf(line, sizeof(line),
                      "%8zu %8u %8zu %12llu %9.2f %7.1f%%\n", c,
                      info.medoidLeaf, info.members.size(),
                      static_cast<unsigned long long>(info.requests),
                      info.weight, info.errorBoundPercent);
        out += line;
    }
    return out;
}

std::string
sampledReportToJson(const SampledValidationReport &report)
{
    // Splice a "sampling" object into the standard report document so
    // existing consumers keep parsing it unchanged (DESIGN.md §14).
    std::string out = validation::reportToJson(report.report);
    out.pop_back(); // trailing '}'
    char buf[96];
    out += ",\"sampling\":{\"matched\":";
    out += report.matched ? "true" : "false";
    if (!report.note.empty()) {
        out += ",\"note\":";
        appendJsonString(out, report.note);
    }
    std::snprintf(buf, sizeof(buf), ",\"k\":%u", report.set.k);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"mean_silhouette\":%.6g",
                  report.set.meanSilhouette);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"simulated_requests\":%llu",
                  static_cast<unsigned long long>(
                      report.simulatedRequests));
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"total_requests\":%llu",
                  static_cast<unsigned long long>(report.totalRequests));
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"error_bound_percent\":%.6g",
                  report.set.errorBoundPercent);
    out += buf;
    out += ",\"clusters\":[";
    for (std::size_t c = 0; c < report.set.clusters.size(); ++c) {
        const ClusterInfo &info = report.set.clusters[c];
        if (c > 0)
            out += ',';
        std::snprintf(buf, sizeof(buf),
                      "{\"medoid_leaf\":%u,\"leaves\":%zu",
                      info.medoidLeaf, info.members.size());
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"requests\":%llu",
                      static_cast<unsigned long long>(info.requests));
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"weight\":%.6g",
                      info.weight);
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"dispersion\":%.6g",
                      info.dispersion);
        out += buf;
        std::snprintf(buf, sizeof(buf),
                      ",\"error_bound_percent\":%.6g}",
                      info.errorBoundPercent);
        out += buf;
    }
    out += "]}}";
    return out;
}

bool
saveSampledReportJson(const SampledValidationReport &report,
                      const std::string &path)
{
    const std::string json = sampledReportToJson(report);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), f);
    return std::fclose(f) == 0 && written == json.size();
}

BoundsCheck
checkAgainstFull(const SampledValidationReport &sampled,
                 const validation::ValidationReport &full)
{
    BoundsCheck check;
    check.boundPercent = sampled.set.errorBoundPercent;

    std::map<std::string, double> full_errors;
    for (const auto *metrics : {&full.dramMetrics, &full.cacheMetrics})
        for (const validation::MetricComparison &m : *metrics)
            full_errors[m.name] = m.errorPercent;

    for (const auto *metrics : {&sampled.report.dramMetrics,
                                &sampled.report.cacheMetrics}) {
        for (const validation::MetricComparison &m : *metrics) {
            const auto it = full_errors.find(m.name);
            if (it == full_errors.end())
                continue;
            const double delta =
                std::abs(m.errorPercent - it->second);
            check.worstDeltaPercent =
                std::max(check.worstDeltaPercent, delta);
            const bool ok = delta <= check.boundPercent;
            if (!ok)
                check.passed = false;
            char line[160];
            std::snprintf(line, sizeof(line),
                          "%-24s sampled %7.2f%% vs full %7.2f%% "
                          "(delta %6.2f%% %s bound %.2f%%)",
                          m.name.c_str(), m.errorPercent, it->second,
                          delta, ok ? "<=" : ">", check.boundPercent);
            check.lines.emplace_back(line);
        }
    }
    return check;
}

std::vector<ClusterAttribution>
attributeClusters(const validation::AttributionReport &attribution,
                  const RepresentativeSet &set)
{
    std::map<std::uint32_t, const validation::LeafAttribution *> by_leaf;
    for (const validation::LeafAttribution &leaf : attribution.leaves)
        by_leaf[leaf.leaf] = &leaf;

    std::vector<ClusterAttribution> rows;
    rows.reserve(set.clusters.size());
    for (std::size_t c = 0; c < set.clusters.size(); ++c) {
        const ClusterInfo &info = set.clusters[c];
        ClusterAttribution row;
        row.cluster = static_cast<std::uint32_t>(c);
        row.medoidLeaf = info.medoidLeaf;
        row.leaves = info.members.size();
        row.weight = info.weight;
        double weighted_mean = 0.0;
        double total = 0.0;
        for (const std::uint32_t member : info.members) {
            const auto it = by_leaf.find(member);
            if (it == by_leaf.end())
                continue;
            const validation::LeafAttribution &leaf = *it->second;
            row.requests += leaf.baselineRequests;
            const auto w =
                static_cast<double>(leaf.baselineRequests);
            weighted_mean += w * leaf.meanErrorPercent;
            total += w;
            if (leaf.worstErrorPercent > row.worstErrorPercent) {
                row.worstErrorPercent = leaf.worstErrorPercent;
                row.worstPath = leaf.path;
            }
        }
        row.meanErrorPercent =
            total > 0.0 ? weighted_mean / total : 0.0;
        rows.push_back(std::move(row));
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const ClusterAttribution &a,
                        const ClusterAttribution &b) {
                         return a.worstErrorPercent >
                                b.worstErrorPercent;
                     });
    return rows;
}

std::string
clusterAttributionToMarkdown(const std::vector<ClusterAttribution> &rows)
{
    std::string out;
    out += "| cluster | medoid | leaves | requests | weight |"
           " worst err | mean err | worst path |\n";
    out += "|--------:|-------:|-------:|---------:|-------:|"
           "----------:|---------:|:-----------|\n";
    char line[192];
    for (const ClusterAttribution &row : rows) {
        std::snprintf(line, sizeof(line),
                      "| %u | %u | %llu | %llu | %.2f | %.2f%% |"
                      " %.2f%% | %s |\n",
                      row.cluster, row.medoidLeaf,
                      static_cast<unsigned long long>(row.leaves),
                      static_cast<unsigned long long>(row.requests),
                      row.weight, row.worstErrorPercent,
                      row.meanErrorPercent,
                      row.worstPath.empty() ? "-"
                                            : row.worstPath.c_str());
        out += line;
    }
    return out;
}

} // namespace mocktails::sampling
