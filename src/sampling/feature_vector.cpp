#include "sampling/feature_vector.hpp"

#include <cmath>
#include <map>

#include "core/mcc.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::sampling
{

namespace
{

double
log2p1(double x)
{
    return std::log2(1.0 + (x < 0.0 ? 0.0 : x));
}

/** Shannon entropy (bits) of a count distribution. */
double
countEntropy(const std::vector<std::uint64_t> &counts)
{
    double total = 0.0;
    for (const std::uint64_t c : counts)
        total += static_cast<double>(c);
    if (total <= 0.0)
        return 0.0;
    double h = 0.0;
    for (const std::uint64_t c : counts) {
        if (c == 0)
            continue;
        const double p = static_cast<double>(c) / total;
        h -= p * std::log2(p);
    }
    return h;
}

/** Distribution summary of one feature model (null-safe). */
struct ModelStats
{
    double mean = 0.0;    ///< value-count weighted mean
    double meanAbs = 0.0; ///< weighted mean of |value|
    double entropy = 0.0; ///< value-distribution entropy (bits)
    /// Count-weighted mean transition-row entropy (Markov only).
    double transitionEntropy = 0.0;
};

ModelStats
modelStats(const core::FeatureModel *model)
{
    ModelStats s;
    if (model == nullptr)
        return s;
    if (const auto *constant =
            dynamic_cast<const core::ConstantModel *>(model)) {
        s.mean = static_cast<double>(constant->value());
        s.meanAbs = std::abs(s.mean);
        return s;
    }
    const auto *markov = dynamic_cast<const core::MarkovModel *>(model);
    if (markov == nullptr)
        return s; // custom model (e.g. STM baseline): neutral stats
    const core::MarkovChain &chain = markov->chain();
    const std::vector<std::uint64_t> &counts = chain.valueCounts();
    double total = 0.0;
    for (std::size_t i = 0; i < chain.numStates(); ++i) {
        const auto weight = static_cast<double>(counts[i]);
        const auto value = static_cast<double>(chain.stateValue(i));
        s.mean += weight * value;
        s.meanAbs += weight * std::abs(value);
        total += weight;
    }
    if (total > 0.0) {
        s.mean /= total;
        s.meanAbs /= total;
    }
    s.entropy = countEntropy(counts);

    // Markov entropy: how unpredictable the next value is given the
    // current one, averaged over states by how often each is visited.
    double weighted_h = 0.0;
    for (std::size_t from = 0; from < chain.numStates(); ++from) {
        const core::TransitionView row = chain.transitions(from);
        double row_total = 0.0;
        for (const core::Transition &t : row)
            row_total += static_cast<double>(t.second);
        if (row_total <= 0.0)
            continue;
        double row_h = 0.0;
        for (const core::Transition &t : row) {
            if (t.second == 0)
                continue;
            const double p = static_cast<double>(t.second) / row_total;
            row_h -= p * std::log2(p);
        }
        weighted_h += static_cast<double>(counts[from]) * row_h;
    }
    if (total > 0.0)
        s.transitionEntropy = weighted_h / total;
    return s;
}

} // namespace

const char *
featureName(std::size_t i)
{
    static const char *const names[kFeatureDims] = {
        "footprint", "volume",  "op_mix",  "size",    "stride",
        "stride_mix", "tempo",  "delta_h", "revisit", "reuse_gap"};
    return i < kFeatureDims ? names[i] : "?";
}

FeatureVector
leafSignature(const core::LeafModel &leaf)
{
    FeatureVector x;
    const double span =
        static_cast<double>(leaf.addrHi - leaf.addrLo);
    const auto count = static_cast<double>(leaf.count);
    const ModelStats delta = modelStats(leaf.deltaTime.get());
    const ModelStats stride = modelStats(leaf.stride.get());
    const ModelStats op = modelStats(leaf.op.get());
    const ModelStats size = modelStats(leaf.size.get());

    x[0] = log2p1(span);
    x[1] = log2p1(count);
    x[2] = 1.0 - op.mean; // op values: Read=0, Write=1
    x[3] = log2p1(size.mean);
    x[4] = log2p1(stride.meanAbs);
    x[5] = stride.entropy;
    x[6] = log2p1(delta.mean);
    x[7] = delta.transitionEntropy;

    // Reuse, estimated from the model: the leaf touches at most
    // span/64 distinct 64B blocks with `count` requests. A revisit
    // ratio near 1 means streaming, near 0 means a hot set.
    const double blocks = std::max(1.0, span / 64.0);
    x[8] = count > 0.0 ? std::min(1.0, blocks / count) : 1.0;
    x[9] = log2p1(count / blocks);
    return x;
}

FeatureVector
batchSignature(const mem::RequestBatch &batch, std::size_t begin,
               std::size_t end)
{
    FeatureVector x;
    if (end > batch.size())
        end = batch.size();
    if (begin >= end)
        return x;
    const std::size_t n = end - begin;

    mem::Addr lo = batch.addrs[begin];
    mem::Addr hi = batch.end(begin);
    std::uint64_t reads = 0;
    double size_sum = 0.0;
    double stride_abs_sum = 0.0;
    double delta_sum = 0.0;
    // Deterministic accumulation: std::map iterates values in order,
    // so the entropy floating-point sums are stable.
    std::map<std::int64_t, std::uint64_t> stride_counts;
    std::map<mem::Addr, std::size_t> last_touch; // 64B block -> row
    std::uint64_t reuse_events = 0;
    double reuse_gap_sum = 0.0;

    for (std::size_t i = begin; i < end; ++i) {
        lo = std::min(lo, batch.addrs[i]);
        hi = std::max(hi, batch.end(i));
        reads += batch.ops[i] == mem::Op::Read ? 1 : 0;
        size_sum += static_cast<double>(batch.sizes[i]);
        if (i > begin) {
            const auto stride =
                static_cast<std::int64_t>(batch.addrs[i]) -
                static_cast<std::int64_t>(batch.addrs[i - 1]);
            ++stride_counts[stride];
            stride_abs_sum += std::abs(static_cast<double>(stride));
            delta_sum += static_cast<double>(batch.ticks[i] -
                                             batch.ticks[i - 1]);
        }
        const mem::Addr block = batch.addrs[i] >> 6;
        const auto it = last_touch.find(block);
        if (it != last_touch.end()) {
            ++reuse_events;
            reuse_gap_sum += static_cast<double>(i - it->second);
            it->second = i;
        } else {
            last_touch.emplace(block, i);
        }
    }

    const auto dn = static_cast<double>(n);
    x[0] = log2p1(static_cast<double>(hi - lo));
    x[1] = log2p1(dn);
    x[2] = static_cast<double>(reads) / dn;
    x[3] = log2p1(size_sum / dn);
    if (n > 1) {
        x[4] = log2p1(stride_abs_sum / static_cast<double>(n - 1));
        x[6] = log2p1(delta_sum / static_cast<double>(n - 1));
    }
    std::vector<std::uint64_t> counts;
    counts.reserve(stride_counts.size());
    for (const auto &entry : stride_counts)
        counts.push_back(entry.second);
    x[5] = countEntropy(counts);
    // No fitted chain here; the measured stride entropy doubles as the
    // unpredictability signal for raw intervals.
    x[7] = x[5];
    x[8] = std::min(1.0, static_cast<double>(last_touch.size()) / dn);
    x[9] = reuse_events > 0
               ? log2p1(reuse_gap_sum /
                        static_cast<double>(reuse_events))
               : 0.0;
    return x;
}

std::vector<FeatureVector>
profileSignatures(const core::Profile &profile, unsigned threads)
{
    std::vector<FeatureVector> out(profile.leaves.size());
    util::parallelFor(
        profile.leaves.size(),
        [&](std::size_t i) { out[i] = leafSignature(profile.leaves[i]); },
        threads);
    return out;
}

Standardizer
Standardizer::fit(const std::vector<FeatureVector> &points)
{
    Standardizer s;
    if (points.empty())
        return s;
    const auto n = static_cast<double>(points.size());
    for (std::size_t d = 0; d < kFeatureDims; ++d) {
        double sum = 0.0;
        for (const FeatureVector &p : points)
            sum += p[d];
        s.mean[d] = sum / n;
        double var = 0.0;
        for (const FeatureVector &p : points) {
            const double delta = p[d] - s.mean[d];
            var += delta * delta;
        }
        const double stddev = std::sqrt(var / n);
        s.invStddev[d] = stddev > 1e-12 ? 1.0 / stddev : 0.0;
    }
    return s;
}

FeatureVector
Standardizer::apply(const FeatureVector &x) const
{
    FeatureVector out;
    for (std::size_t d = 0; d < kFeatureDims; ++d)
        out[d] = (x[d] - mean[d]) * invStddev[d];
    return out;
}

std::vector<FeatureVector>
Standardizer::applyAll(const std::vector<FeatureVector> &points) const
{
    std::vector<FeatureVector> out(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        out[i] = apply(points[i]);
    return out;
}

double
distance2(const FeatureVector &a, const FeatureVector &b)
{
    double sum = 0.0;
    for (std::size_t d = 0; d < kFeatureDims; ++d) {
        const double delta = a[d] - b[d];
        sum += delta * delta;
    }
    return sum;
}

} // namespace mocktails::sampling
