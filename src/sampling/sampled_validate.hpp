/**
 * @file
 * Sampled validation: simulate representatives, extrapolate the rest.
 *
 * Full validation (validation/validate.hpp) synthesises the whole
 * profile and runs four substrate simulations over every request —
 * the dominant cost on large profiles. Sampled validation clusters
 * the leaves (representative.hpp), simulates only the medoid leaf of
 * each cluster on both substrates, and extrapolates every
 * MetricComparison by cluster weight:
 *
 *  - count metrics (bursts, row hits, writebacks, footprint blocks)
 *    scale additively: value = sum_c weight_c * value_c;
 *  - rate metrics (miss rates, average latency) combine as the
 *    request-share weighted mean: value = sum_c share_c * value_c
 *    with share_c = requests_c / total.
 *
 * The report carries the predicted error bound of the selection; the
 * CI smoke asserts that the sampled verdict stays within that bound
 * of a full validation run (checkAgainstFull).
 */

#ifndef MOCKTAILS_SAMPLING_SAMPLED_VALIDATE_HPP
#define MOCKTAILS_SAMPLING_SAMPLED_VALIDATE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "mem/trace.hpp"
#include "sampling/representative.hpp"
#include "validation/attribution.hpp"
#include "validation/validate.hpp"

namespace mocktails::sampling
{

/**
 * Options of a sampled validation run.
 */
struct SampledValidationOptions
{
    /** The usual validation knobs (threshold, seed, substrates). */
    validation::ValidationOptions base;

    /** Clustering and error-bound knobs. */
    SamplingOptions sampling;
};

/**
 * The per-cluster comparison behind one extrapolated report.
 */
struct ClusterValidation
{
    /** Index into RepresentativeSet::clusters. */
    std::uint32_t cluster = 0;

    /** Raw (unscaled) medoid metrics, baseline vs synthetic. */
    std::vector<validation::MetricComparison> dramMetrics;
    std::vector<validation::MetricComparison> cacheMetrics;
};

/**
 * The sampled validation report.
 */
struct SampledValidationReport
{
    /** The extrapolated report — same shape as full validation. */
    validation::ValidationReport report;

    /** The selection the extrapolation is built on. */
    RepresentativeSet set;

    /** Per-cluster raw comparisons, in set.clusters order. */
    std::vector<ClusterValidation> clusters;

    /** Baseline requests actually simulated (medoid leaves only). */
    std::uint64_t simulatedRequests = 0;

    /** Baseline requests of the full trace. */
    std::uint64_t totalRequests = 0;

    /**
     * True when re-partitioning the baseline with profile.config
     * reproduced the profile's leaves. When false the run fell back
     * to full validation and @ref note says why.
     */
    bool matched = false;
    std::string note;
};

/**
 * Validate @p profile against @p trace by simulating only the
 * representative leaves. Deterministic at every thread count.
 */
SampledValidationReport validateProfileSampled(
    const mem::Trace &trace, const core::Profile &profile,
    const SampledValidationOptions &options = SampledValidationOptions{});

/** Render as human-readable text (formatReport + sampling summary). */
std::string formatSampledReport(const SampledValidationReport &report);

/**
 * Render as JSON: reportToJson() of the extrapolated report with a
 * "sampling" object spliced in (k, silhouette, simulated/total
 * requests, per-cluster sizes/weights/bounds) — see DESIGN.md §14.
 */
std::string sampledReportToJson(const SampledValidationReport &report);

/** Write sampledReportToJson() to a file. @return true on success. */
bool saveSampledReportJson(const SampledValidationReport &report,
                           const std::string &path);

/**
 * The bound check behind the CI smoke: for every metric present in
 * both reports, |sampled error% - full error%| must stay within the
 * selection's predicted bound.
 */
struct BoundsCheck
{
    bool passed = true;

    /** Worst |sampled - full| error delta over all metrics. */
    double worstDeltaPercent = 0.0;

    /** The bound the deltas were checked against. */
    double boundPercent = 0.0;

    /** One line per metric: "name: sampled X% vs full Y% ...". */
    std::vector<std::string> lines;
};

BoundsCheck checkAgainstFull(const SampledValidationReport &sampled,
                             const validation::ValidationReport &full);

/**
 * One cluster of the attribution drill-down: member-leaf errors of an
 * attribution run aggregated per sampling cluster, so the ranked table
 * names "cluster 2 (14 leaves, weight 13.7)" instead of single leaves.
 */
struct ClusterAttribution
{
    std::uint32_t cluster = 0;    ///< index into set.clusters
    std::uint32_t medoidLeaf = 0;
    std::uint64_t leaves = 0;     ///< member count
    std::uint64_t requests = 0;   ///< baseline requests of the members
    double weight = 1.0;
    double worstErrorPercent = 0.0;
    double meanErrorPercent = 0.0; ///< request-weighted member mean
    std::string worstPath;         ///< hierarchy path of the worst leaf
};

/**
 * Aggregate a leaf-level attribution report per sampling cluster,
 * ranked worst-first. Leaves absent from the attribution report (e.g.
 * truncated by maxLeaves) are skipped.
 */
std::vector<ClusterAttribution>
attributeClusters(const validation::AttributionReport &attribution,
                  const RepresentativeSet &set);

/** Render attributeClusters() as a markdown table. */
std::string
clusterAttributionToMarkdown(const std::vector<ClusterAttribution> &rows);

} // namespace mocktails::sampling

#endif // MOCKTAILS_SAMPLING_SAMPLED_VALIDATE_HPP
