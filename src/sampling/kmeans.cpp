#include "sampling/kmeans.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::sampling
{

namespace
{

/** Nearest centroid of @p x; ties -> the lower index. */
std::uint32_t
nearest(const FeatureVector &x,
        const std::vector<FeatureVector> &centroids)
{
    std::uint32_t best = 0;
    double best_d = distance2(x, centroids[0]);
    for (std::uint32_t c = 1; c < centroids.size(); ++c) {
        const double d = distance2(x, centroids[c]);
        if (d < best_d) {
            best_d = d;
            best = c;
        }
    }
    return best;
}

/** k-means++ seeding: D^2-weighted draws from a seeded Rng. */
std::vector<FeatureVector>
seedCentroids(const std::vector<FeatureVector> &points, std::uint32_t k,
              util::Rng &rng, unsigned threads)
{
    const std::size_t n = points.size();
    std::vector<FeatureVector> centroids;
    centroids.reserve(k);
    centroids.push_back(points[rng.below(n)]);

    std::vector<double> dist(n);
    while (centroids.size() < k) {
        util::parallelFor(
            n,
            [&](std::size_t i) {
                double best = distance2(points[i], centroids[0]);
                for (std::size_t c = 1; c < centroids.size(); ++c)
                    best = std::min(best,
                                    distance2(points[i], centroids[c]));
                dist[i] = best;
            },
            threads);
        double total = 0.0;
        for (const double d : dist) // fixed order: deterministic sum
            total += d;
        std::size_t pick;
        if (total <= 0.0) {
            // All remaining points coincide with a centroid.
            pick = rng.below(n);
        } else {
            double target = rng.uniform() * total;
            pick = n - 1;
            for (std::size_t i = 0; i < n; ++i) {
                target -= dist[i];
                if (target < 0.0) {
                    pick = i;
                    break;
                }
            }
        }
        centroids.push_back(points[pick]);
    }
    return centroids;
}

KMeansResult
clusterOnce(const std::vector<FeatureVector> &points, std::uint32_t k,
            const KMeansOptions &options)
{
    const std::size_t n = points.size();
    KMeansResult result;
    result.k = k;
    result.assignment.assign(n, 0);
    result.sizes.assign(k, 0);

    util::Rng rng(options.seed);
    result.centroids = seedCentroids(points, k, rng, options.threads);

    std::vector<std::uint32_t> assignment(n, k); // k = unassigned
    for (std::uint32_t iter = 0; iter < options.maxIterations; ++iter) {
        result.iterations = iter + 1;

        // Assignment: one disjoint slot per point.
        util::parallelFor(
            n,
            [&](std::size_t i) {
                result.assignment[i] = nearest(points[i],
                                               result.centroids);
            },
            options.threads);

        std::fill(result.sizes.begin(), result.sizes.end(), 0);
        for (const std::uint32_t c : result.assignment)
            ++result.sizes[c];

        // Empty clusters grab the point farthest from its centroid
        // (sequential, fixed order -> deterministic).
        for (std::uint32_t c = 0; c < k; ++c) {
            if (result.sizes[c] != 0)
                continue;
            std::size_t far = 0;
            double far_d = -1.0;
            for (std::size_t i = 0; i < n; ++i) {
                if (result.sizes[result.assignment[i]] <= 1)
                    continue; // don't empty another cluster
                const double d = distance2(
                    points[i], result.centroids[result.assignment[i]]);
                if (d > far_d) {
                    far_d = d;
                    far = i;
                }
            }
            if (far_d < 0.0)
                continue;
            --result.sizes[result.assignment[far]];
            result.assignment[far] = c;
            result.sizes[c] = 1;
            result.centroids[c] = points[far];
        }

        if (assignment == result.assignment)
            break;
        assignment = result.assignment;

        // Update: one disjoint centroid per cluster; each cluster
        // scans the points sequentially in index order, so the mean
        // is bit-identical at every thread count.
        util::parallelFor(
            k,
            [&](std::size_t c) {
                if (result.sizes[c] == 0)
                    return;
                FeatureVector sum;
                for (std::size_t i = 0; i < n; ++i) {
                    if (result.assignment[i] != c)
                        continue;
                    for (std::size_t d = 0; d < kFeatureDims; ++d)
                        sum[d] += points[i][d];
                }
                const auto m = static_cast<double>(result.sizes[c]);
                for (std::size_t d = 0; d < kFeatureDims; ++d)
                    sum[d] /= m;
                result.centroids[c] = sum;
            },
            options.threads);
    }

    // Simplified silhouette against the final centroids.
    if (k >= 2) {
        std::vector<double> s(n);
        util::parallelFor(
            n,
            [&](std::size_t i) {
                const std::uint32_t own = result.assignment[i];
                const double a =
                    std::sqrt(distance2(points[i],
                                        result.centroids[own]));
                double b = -1.0;
                for (std::uint32_t c = 0; c < k; ++c) {
                    if (c == own)
                        continue;
                    const double d = std::sqrt(
                        distance2(points[i], result.centroids[c]));
                    if (b < 0.0 || d < b)
                        b = d;
                }
                const double m = std::max(a, b);
                s[i] = m > 0.0 ? (b - a) / m : 0.0;
            },
            options.threads);
        double total = 0.0;
        for (const double v : s)
            total += v;
        result.meanSilhouette = total / static_cast<double>(n);
    }
    return result;
}

/** cluster() on the full point set — no subsampling. */
KMeansResult
clusterFull(const std::vector<FeatureVector> &points,
            const KMeansOptions &options)
{
    const std::size_t n = points.size();
    std::uint32_t k = options.k;
    if (k > 0)
        return clusterOnce(points, std::min<std::uint32_t>(k, n),
                           options);

    // Silhouette-guided selection: best mean silhouette wins, ties go
    // to the smaller k (cheaper and no crisper).
    const auto max_k = static_cast<std::uint32_t>(
        std::min<std::size_t>(options.maxK, n));
    if (max_k < 2) {
        KMeansOptions one = options;
        one.k = 1;
        return clusterOnce(points, 1, one);
    }
    KMeansResult best;
    for (std::uint32_t trial = 2; trial <= max_k; ++trial) {
        KMeansResult r = clusterOnce(points, trial, options);
        if (best.k == 0 || r.meanSilhouette > best.meanSilhouette)
            best = std::move(r);
    }
    return best;
}

} // namespace

KMeansResult
cluster(const std::vector<FeatureVector> &points,
        const KMeansOptions &options)
{
    const std::size_t n = points.size();
    if (n == 0)
        return KMeansResult{};

    if (options.maxFitPoints == 0 || n <= options.maxFitPoints)
        return clusterFull(points, options);

    // Fit on an every-Nth-point subsample, then assign everything in
    // one parallel pass. The stride depends only on n and the cap, so
    // the subsample — and with it every downstream value — is
    // bit-identical at any thread count.
    const std::size_t stride =
        (n + options.maxFitPoints - 1) / options.maxFitPoints;
    std::vector<FeatureVector> sample;
    sample.reserve(n / stride + 1);
    for (std::size_t i = 0; i < n; i += stride)
        sample.push_back(points[i]);

    KMeansResult fitted = clusterFull(sample, options);

    KMeansResult result;
    result.k = fitted.k;
    result.centroids = std::move(fitted.centroids);
    result.meanSilhouette = fitted.meanSilhouette;
    result.iterations = fitted.iterations;
    result.assignment.assign(n, 0);
    result.sizes.assign(result.k, 0);
    util::parallelFor(
        n,
        [&](std::size_t i) {
            result.assignment[i] = nearest(points[i],
                                           result.centroids);
        },
        options.threads);
    for (const std::uint32_t c : result.assignment)
        ++result.sizes[c];
    return result;
}

} // namespace mocktails::sampling
