/**
 * @file
 * Representative leaves: medoids, weights, error bounds, reduced .mkp.
 *
 * The middle of the sampling pipeline: cluster the per-leaf signatures
 * (feature_vector.hpp + kmeans.hpp), pick one *medoid* leaf per cluster
 * — the member closest to the centroid — and carry, per cluster, the
 * extrapolation weight (cluster requests / medoid requests) and a
 * dispersion-based error bound. Sampled validation simulates only the
 * medoids and scales their metrics by the weights; `profile_tool
 * reduce` persists the same selection as a *reduced profile*: a valid
 * .mkp holding only the medoid leaves plus a weights side-table
 * appended as a trailer that Profile::decode (which reads exactly the
 * declared leaf count and ignores trailing bytes) never sees — so the
 * file loads everywhere a full profile loads, including ProfileStore
 * and the serve wire protocol.
 */

#ifndef MOCKTAILS_SAMPLING_REPRESENTATIVE_HPP
#define MOCKTAILS_SAMPLING_REPRESENTATIVE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "sampling/kmeans.hpp"

namespace mocktails::sampling
{

/**
 * Sampling knobs.
 */
struct SamplingOptions
{
    /** Cluster count; 0 = silhouette-guided (kmeans.hpp). */
    std::uint32_t k = 0;

    /** Largest k tried by the silhouette search. */
    std::uint32_t maxK = 12;

    /** Seed for the deterministic clustering. */
    std::uint64_t seed = 1;

    /** Worker threads; 0 = hardware, 1 = sequential. Identical
     *  results at every count. */
    unsigned threads = 0;

    /**
     * Error-bound model: bound% = floor + slope * dispersion, where
     * dispersion is the cluster's request-weighted RMS signature
     * distance to its medoid (standardized space). The defaults are
     * calibrated against full validation on the fig06 workloads.
     */
    double boundFloorPercent = 7.5;
    double boundSlopePercent = 12.0;
};

/**
 * One cluster of leaves and its representative.
 */
struct ClusterInfo
{
    /** The representative: index into Profile::leaves. */
    std::uint32_t medoidLeaf = 0;

    /** Member leaf indices, ascending. */
    std::vector<std::uint32_t> members;

    /** Total requests of all member leaves. */
    std::uint64_t requests = 0;

    /** Requests of the medoid leaf alone. */
    std::uint64_t medoidRequests = 0;

    /** Extrapolation factor: requests / medoidRequests. */
    double weight = 1.0;

    /** Request-weighted RMS signature distance to the medoid. */
    double dispersion = 0.0;

    /** Predicted extrapolation error for this cluster (percent). */
    double errorBoundPercent = 0.0;
};

/**
 * The complete representative selection for one profile.
 */
struct RepresentativeSet
{
    std::uint32_t k = 0;

    /** Clusters ranked by descending request count (ties: ascending
     *  medoid index) — the order reduced-profile leaves are stored in. */
    std::vector<ClusterInfo> clusters;

    /** Mean silhouette of the chosen clustering. */
    double meanSilhouette = 0.0;

    /** Requests of the full profile. */
    std::uint64_t totalRequests = 0;

    /** Overall predicted error: the worst per-cluster bound. */
    double errorBoundPercent = 0.0;

    /** Requests synthesised when only medoids run. */
    std::uint64_t representativeRequests() const;
};

/**
 * Cluster @p profile's leaves and pick the representatives.
 *
 * Deterministic: same profile + same options.seed give a bit-identical
 * set at every thread count.
 */
RepresentativeSet
selectRepresentatives(const core::Profile &profile,
                      const SamplingOptions &options = SamplingOptions{});

/**
 * Build the reduced profile: same name/device/config, but only the
 * medoid leaves, stored in @p set cluster order (so reduced leaf i
 * belongs to set.clusters[i]).
 */
core::Profile makeReducedProfile(const core::Profile &profile,
                                 const RepresentativeSet &set);

/**
 * The weights side-table persisted with a reduced profile.
 */
struct ReducedWeights
{
    struct Entry
    {
        double weight = 1.0;
        std::uint64_t requests = 0; ///< full-cluster requests
        double errorBoundPercent = 0.0;
    };

    /** One entry per reduced-profile leaf, in leaf order. */
    std::vector<Entry> entries;

    std::uint64_t totalRequests = 0; ///< of the original profile
    double meanSilhouette = 0.0;
};

/**
 * Save the reduced profile as a .mkp with the weights trailer.
 *
 * Layout inside the compressed envelope:
 *   [Profile::encode() bytes][trailer][u64 LE trailer size][magic 8B]
 * The fixed-width footer is parsed from the end, so readers never need
 * the profile-end offset; plain loadProfile() ignores everything after
 * the declared leaves and loads the medoids as an ordinary profile.
 */
bool saveReducedProfile(const core::Profile &reduced,
                        const RepresentativeSet &set,
                        const std::string &path,
                        std::string *error = nullptr);

/**
 * Load a reduced .mkp: the profile (as loadProfile would) plus the
 * weights table. @return false (with @p error) when @p path has no
 * weights trailer or it is corrupt.
 */
bool loadReducedProfile(const std::string &path, core::Profile &profile,
                        ReducedWeights &weights,
                        std::string *error = nullptr);

/** True when the file at @p path carries a weights trailer. */
bool isReducedProfile(const std::string &path);

} // namespace mocktails::sampling

#endif // MOCKTAILS_SAMPLING_REPRESENTATIVE_HPP
