/**
 * @file
 * Deterministic k-means++ clustering with silhouette-guided k.
 *
 * The clustering behind representative-interval sampling. Determinism
 * is the load-bearing property: a seeded util::Rng drives the k-means++
 * seeding, Lloyd iterations use fixed tie-breaks (lowest cluster index
 * wins), and both hot loops parallelise over the shared pool with one
 * disjoint output slot per index — assignment over points, centroid
 * update over clusters (each cluster scans the points sequentially in
 * index order, so no reduction-order wobble). The result is therefore
 * bit-identical across thread counts and across repeated runs with the
 * same seed.
 */

#ifndef MOCKTAILS_SAMPLING_KMEANS_HPP
#define MOCKTAILS_SAMPLING_KMEANS_HPP

#include <cstdint>
#include <vector>

#include "sampling/feature_vector.hpp"

namespace mocktails::sampling
{

struct KMeansOptions
{
    /** Cluster count; 0 = pick by mean silhouette over [2, maxK]. */
    std::uint32_t k = 0;

    /** Largest k tried by the silhouette search. */
    std::uint32_t maxK = 12;

    /** Lloyd iteration cap (normally converges much earlier). */
    std::uint32_t maxIterations = 64;

    /** Seed for the k-means++ seeding. */
    std::uint64_t seed = 1;

    /**
     * Fit cap: above this many points the Lloyd iterations (and the
     * silhouette search) run on an every-Nth-point subsample with
     * N = ceil(points / cap), followed by one full assignment pass
     * against the fitted centroids. The stride depends only on the
     * point count, so results stay bit-identical across thread
     * counts. 0 disables subsampling.
     */
    std::size_t maxFitPoints = 16384;

    /** Worker threads; 0 = hardware, 1 = sequential. Identical
     *  results at every count. */
    unsigned threads = 0;
};

struct KMeansResult
{
    std::uint32_t k = 0;

    /** Cluster of each input point. */
    std::vector<std::uint32_t> assignment;

    /** k centroids in the input (already standardized) space. */
    std::vector<FeatureVector> centroids;

    /** Points per cluster. */
    std::vector<std::uint64_t> sizes;

    /**
     * Mean simplified silhouette over all points: a(i) = distance to
     * the own centroid, b(i) = distance to the nearest other centroid,
     * s(i) = (b - a) / max(a, b). In [-1, 1]; higher = crisper.
     */
    double meanSilhouette = 0.0;

    /** Lloyd iterations actually run (of the chosen k). */
    std::uint32_t iterations = 0;
};

/**
 * Cluster @p points (standardize first — see Standardizer).
 *
 * With options.k == 0 the cluster count is chosen by running the
 * clustering for every k in [2, min(maxK, points)] and keeping the
 * best mean silhouette (ties -> the smaller k). A single point (or
 * k == 1) degenerates to one cluster holding everything.
 */
KMeansResult cluster(const std::vector<FeatureVector> &points,
                     const KMeansOptions &options = KMeansOptions{});

} // namespace mocktails::sampling

#endif // MOCKTAILS_SAMPLING_KMEANS_HPP
