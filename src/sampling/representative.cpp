#include "sampling/representative.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/codec.hpp"
#include "util/compress.hpp"

namespace mocktails::sampling
{

namespace
{

/** Footer magic closing a reduced-profile weights trailer. */
constexpr char kWeightsMagic[8] = {'M', 'K', 'S', 'W',
                                   'G', 'T', '0', '1'};
constexpr std::size_t kFooterSize = 8 + sizeof(kWeightsMagic);
constexpr std::uint8_t kWeightsVersion = 1;

void
putU64le(std::vector<std::uint8_t> &out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

std::uint64_t
getU64le(const std::uint8_t *p)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return value;
}

} // namespace

std::uint64_t
RepresentativeSet::representativeRequests() const
{
    std::uint64_t total = 0;
    for (const ClusterInfo &c : clusters)
        total += c.medoidRequests;
    return total;
}

RepresentativeSet
selectRepresentatives(const core::Profile &profile,
                      const SamplingOptions &options)
{
    RepresentativeSet set;
    set.totalRequests = profile.totalRequests();
    if (profile.leaves.empty())
        return set;

    const std::vector<FeatureVector> raw =
        profileSignatures(profile, options.threads);
    const Standardizer standardizer = Standardizer::fit(raw);
    const std::vector<FeatureVector> points =
        standardizer.applyAll(raw);

    KMeansOptions kopts;
    kopts.k = options.k;
    kopts.maxK = options.maxK;
    kopts.seed = options.seed;
    kopts.threads = options.threads;
    const KMeansResult clustering = cluster(points, kopts);

    set.k = clustering.k;
    set.meanSilhouette = clustering.meanSilhouette;
    set.clusters.resize(clustering.k);

    for (std::uint32_t c = 0; c < clustering.k; ++c) {
        ClusterInfo &info = set.clusters[c];
        // Medoid: the member closest to the centroid; strict < keeps
        // ties on the lowest index.
        double best_d = 0.0;
        bool have = false;
        for (std::uint32_t i = 0; i < points.size(); ++i) {
            if (clustering.assignment[i] != c)
                continue;
            info.members.push_back(i);
            info.requests += profile.leaves[i].count;
            const double d =
                distance2(points[i], clustering.centroids[c]);
            if (!have || d < best_d) {
                best_d = d;
                info.medoidLeaf = i;
                have = true;
            }
        }
        if (!have)
            continue; // empty cluster (k was clamped)
        info.medoidRequests = profile.leaves[info.medoidLeaf].count;
        info.weight =
            info.medoidRequests > 0
                ? static_cast<double>(info.requests) /
                      static_cast<double>(info.medoidRequests)
                : static_cast<double>(info.members.size());

        // Dispersion: request-weighted RMS distance to the medoid in
        // the standardized signature space.
        double weighted = 0.0;
        double total = 0.0;
        for (const std::uint32_t i : info.members) {
            const auto w =
                static_cast<double>(profile.leaves[i].count);
            weighted +=
                w * distance2(points[i], points[info.medoidLeaf]);
            total += w;
        }
        info.dispersion =
            total > 0.0 ? std::sqrt(weighted / total) : 0.0;
        info.errorBoundPercent = options.boundFloorPercent +
                                 options.boundSlopePercent *
                                     info.dispersion;
    }

    // Drop clusters that ended up empty, then rank by weight: most
    // requests first, ties on the lower medoid index.
    set.clusters.erase(
        std::remove_if(set.clusters.begin(), set.clusters.end(),
                       [](const ClusterInfo &c) {
                           return c.members.empty();
                       }),
        set.clusters.end());
    std::stable_sort(set.clusters.begin(), set.clusters.end(),
                     [](const ClusterInfo &a, const ClusterInfo &b) {
                         if (a.requests != b.requests)
                             return a.requests > b.requests;
                         return a.medoidLeaf < b.medoidLeaf;
                     });
    set.k = static_cast<std::uint32_t>(set.clusters.size());
    for (const ClusterInfo &c : set.clusters)
        set.errorBoundPercent =
            std::max(set.errorBoundPercent, c.errorBoundPercent);
    return set;
}

namespace
{

/** Deep-copy one leaf through the feature-model codec. LeafModel
 * holds unique_ptrs, so the round-trip is the only copy path — but
 * doing it per leaf keeps reduction O(k), not O(profile size). */
core::LeafModel
cloneLeaf(const core::LeafModel &leaf)
{
    util::ByteWriter w;
    core::encodeFeatureModel(w, leaf.deltaTime);
    core::encodeFeatureModel(w, leaf.stride);
    core::encodeFeatureModel(w, leaf.op);
    core::encodeFeatureModel(w, leaf.size);

    core::LeafModel copy;
    copy.startTime = leaf.startTime;
    copy.startAddr = leaf.startAddr;
    copy.addrLo = leaf.addrLo;
    copy.addrHi = leaf.addrHi;
    copy.count = leaf.count;
    util::ByteReader r(w.bytes());
    bool ok = true;
    copy.deltaTime = core::decodeFeatureModel(r, ok);
    copy.stride = core::decodeFeatureModel(r, ok);
    copy.op = core::decodeFeatureModel(r, ok);
    copy.size = core::decodeFeatureModel(r, ok);
    return copy;
}

} // namespace

core::Profile
makeReducedProfile(const core::Profile &profile,
                   const RepresentativeSet &set)
{
    core::Profile reduced;
    reduced.name = profile.name;
    reduced.device = profile.device;
    reduced.config = profile.config;
    reduced.leaves.reserve(set.clusters.size());
    for (const ClusterInfo &c : set.clusters)
        reduced.leaves.push_back(
            cloneLeaf(profile.leaves[c.medoidLeaf]));
    return reduced;
}

bool
saveReducedProfile(const core::Profile &reduced,
                   const RepresentativeSet &set, const std::string &path,
                   std::string *error)
{
    if (reduced.leaves.size() != set.clusters.size()) {
        if (error != nullptr)
            *error = "reduced profile has " +
                     std::to_string(reduced.leaves.size()) +
                     " leaves but the representative set has " +
                     std::to_string(set.clusters.size()) + " clusters";
        return false;
    }

    std::vector<std::uint8_t> payload = reduced.encode();

    util::ByteWriter trailer;
    trailer.putByte(kWeightsVersion);
    trailer.putVarint(set.clusters.size());
    trailer.putVarint(set.totalRequests);
    trailer.putDouble(set.meanSilhouette);
    for (const ClusterInfo &c : set.clusters) {
        trailer.putDouble(c.weight);
        trailer.putVarint(c.requests);
        trailer.putDouble(c.errorBoundPercent);
    }
    const std::vector<std::uint8_t> &tbytes = trailer.bytes();
    payload.insert(payload.end(), tbytes.begin(), tbytes.end());
    putU64le(payload, tbytes.size());
    payload.insert(payload.end(), kWeightsMagic,
                   kWeightsMagic + sizeof(kWeightsMagic));

    return util::saveBytes(path, util::compress(payload), error);
}

namespace
{

bool
extractTrailer(const std::string &path,
               std::vector<std::uint8_t> &payload,
               std::vector<std::uint8_t> &trailer, std::string *error)
{
    std::vector<std::uint8_t> compressed;
    if (!util::loadBytes(path, compressed, error))
        return false;
    if (!util::decompress(compressed, payload)) {
        if (error != nullptr)
            *error = path + ": corrupt compression envelope";
        return false;
    }
    if (payload.size() < kFooterSize ||
        std::memcmp(payload.data() + payload.size() -
                        sizeof(kWeightsMagic),
                    kWeightsMagic, sizeof(kWeightsMagic)) != 0) {
        if (error != nullptr)
            *error = path + ": no reduced-profile weights trailer";
        return false;
    }
    const std::uint64_t tsize =
        getU64le(payload.data() + payload.size() - kFooterSize);
    if (tsize > payload.size() - kFooterSize) {
        if (error != nullptr)
            *error = path + ": weights trailer size " +
                     std::to_string(tsize) +
                     " exceeds the payload";
        return false;
    }
    const std::size_t tbegin = payload.size() - kFooterSize -
                               static_cast<std::size_t>(tsize);
    trailer.assign(payload.begin() + tbegin,
                   payload.end() - kFooterSize);
    return true;
}

} // namespace

bool
loadReducedProfile(const std::string &path, core::Profile &profile,
                   ReducedWeights &weights, std::string *error)
{
    std::vector<std::uint8_t> payload;
    std::vector<std::uint8_t> trailer;
    if (!extractTrailer(path, payload, trailer, error))
        return false;
    if (!core::Profile::decode(payload, profile, error))
        return false;

    util::ByteReader r(trailer);
    const std::uint8_t version = r.getByte();
    if (!r.ok() || version != kWeightsVersion) {
        if (error != nullptr)
            *error = path + ": unsupported weights trailer version";
        return false;
    }
    const std::uint64_t count = r.getVarint();
    weights.totalRequests = r.getVarint();
    weights.meanSilhouette = r.getDouble();
    if (!r.ok() || count != profile.leaves.size()) {
        if (error != nullptr)
            *error = path + ": weights trailer does not match the " +
                     std::to_string(profile.leaves.size()) +
                     " profile leaves";
        return false;
    }
    weights.entries.resize(count);
    for (ReducedWeights::Entry &e : weights.entries) {
        e.weight = r.getDouble();
        e.requests = r.getVarint();
        e.errorBoundPercent = r.getDouble();
    }
    if (!r.ok()) {
        if (error != nullptr)
            *error = path + ": truncated weights trailer";
        return false;
    }
    return true;
}

bool
isReducedProfile(const std::string &path)
{
    std::vector<std::uint8_t> payload;
    std::vector<std::uint8_t> trailer;
    return extractTrailer(path, payload, trailer, nullptr);
}

} // namespace mocktails::sampling
