/**
 * @file
 * A minimal discrete-event simulation kernel.
 *
 * The DRAM controller and crossbar models are event driven: components
 * schedule callbacks at future ticks and the kernel executes them in
 * tick order. Events scheduled for the same tick run in scheduling
 * order (FIFO), which keeps component interactions deterministic.
 */

#ifndef MOCKTAILS_SIM_EVENT_QUEUE_HPP
#define MOCKTAILS_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "mem/request.hpp"

namespace mocktails::sim
{

using Tick = mem::Tick;

/**
 * The event queue: schedule callbacks, then run until drained.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p callback at absolute tick @p when.
     * @pre when >= now().
     */
    void schedule(Tick when, Callback callback);

    /** Schedule @p callback @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback callback)
    {
        schedule(now_ + delay, std::move(callback));
    }

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /** Events ever scheduled on this queue (telemetry observable). */
    std::uint64_t scheduledCount() const { return next_sequence_; }

    /** Events executed so far (telemetry observable). */
    std::uint64_t executedCount() const { return executed_; }

    /** Execute events in order until the queue drains. */
    void run();

    /** Execute events with tick <= @p limit; time advances to limit. */
    void runUntil(Tick limit);

  private:
    struct Event
    {
        Tick when;
        std::uint64_t sequence;
        Callback callback;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t next_sequence_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace mocktails::sim

#endif // MOCKTAILS_SIM_EVENT_QUEUE_HPP
