/**
 * @file
 * A minimal discrete-event simulation kernel.
 *
 * The DRAM controller and crossbar models are event driven: components
 * schedule callbacks at future ticks and the kernel executes them in
 * tick order. Events scheduled for the same tick run in band order
 * first (see Band) and in scheduling order (FIFO) within a band, which
 * keeps component interactions deterministic — and, crucially, makes
 * the interleaving of transport events (player, crossbar) and
 * device-internal events (channel service completions) independent of
 * *when* each side scheduled its event. That independence is what lets
 * the per-channel sharded DRAM simulation replay a channel's event
 * stream in isolation and still produce bit-identical statistics (see
 * dram/sharded.hpp).
 *
 * The queue is engineered for the simulation hot loop: events live in
 * a flat binary heap (no node allocations), callbacks are stored in a
 * small-buffer callable so typical captures never touch the heap, and
 * run() drains same-(tick, band) runs of events in batches.
 */

#ifndef MOCKTAILS_SIM_EVENT_QUEUE_HPP
#define MOCKTAILS_SIM_EVENT_QUEUE_HPP

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "mem/request.hpp"

namespace mocktails::sim
{

using Tick = mem::Tick;

/**
 * Intra-tick ordering class. All events at one tick run in increasing
 * band order; FIFO within a band.
 *
 * Transport covers injection-side components (trace player, crossbar,
 * arbiter) — everything that *pushes work into* a device. Device
 * covers a component's internal bookkeeping (bus-free, burst
 * completion, refresh). Running transport before device at the same
 * tick gives arrivals a fixed, component-local ordering relative to
 * internal state transitions, independent of global scheduling
 * history.
 */
enum Band : std::uint8_t
{
    kBandTransport = 0,
    kBandDevice = 1,
};

/**
 * A move-only callable with inline storage for small captures.
 *
 * std::function heap-allocates captures beyond its tiny internal
 * buffer, which put an allocation on every DRAM burst completion. This
 * type stores captures up to kInlineSize bytes in place and falls back
 * to the heap only for larger callables.
 */
class EventCallback
{
  public:
    static constexpr std::size_t kInlineSize = 48;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    EventCallback(F &&f) // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buffer_))
                Fn(std::forward<F>(f));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            relocate_ = [](void *dst, void *src) {
                Fn *from = static_cast<Fn *>(src);
                ::new (dst) Fn(std::move(*from));
                from->~Fn();
            };
            destroy_ = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
        } else {
            // Large capture: one allocation, pointer stored inline.
            Fn *heap = new Fn(std::forward<F>(f));
            std::memcpy(buffer_, &heap, sizeof(heap));
            invoke_ = [](void *p) {
                Fn *fn;
                std::memcpy(&fn, p, sizeof(fn));
                (*fn)();
            };
            relocate_ = [](void *dst, void *src) {
                std::memcpy(dst, src, sizeof(Fn *));
            };
            destroy_ = [](void *p) {
                Fn *fn;
                std::memcpy(&fn, p, sizeof(fn));
                delete fn;
            };
        }
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    void
    operator()()
    {
        assert(invoke_ != nullptr);
        invoke_(buffer_);
    }

    explicit operator bool() const { return invoke_ != nullptr; }

  private:
    void
    moveFrom(EventCallback &other) noexcept
    {
        invoke_ = other.invoke_;
        relocate_ = other.relocate_;
        destroy_ = other.destroy_;
        if (relocate_ != nullptr)
            relocate_(buffer_, other.buffer_);
        other.invoke_ = nullptr;
        other.relocate_ = nullptr;
        other.destroy_ = nullptr;
    }

    void
    reset() noexcept
    {
        if (destroy_ != nullptr)
            destroy_(buffer_);
        invoke_ = nullptr;
        relocate_ = nullptr;
        destroy_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char buffer_[kInlineSize]{};
    void (*invoke_)(void *) = nullptr;
    void (*relocate_)(void *, void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
};

/**
 * The event queue: schedule callbacks, then run until drained.
 */
class EventQueue
{
  public:
    using Callback = EventCallback;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p callback at absolute tick @p when on @p band.
     * @pre when >= now(); at the current tick, band must not order the
     *      event before the band currently executing.
     */
    void schedule(Tick when, Band band, Callback callback);

    /** Schedule on the transport band (the default for components). */
    void
    schedule(Tick when, Callback callback)
    {
        schedule(when, kBandTransport, std::move(callback));
    }

    /** Schedule @p callback @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback callback)
    {
        schedule(now_ + delay, kBandTransport, std::move(callback));
    }

    /** Band-aware relative scheduling. */
    void
    scheduleIn(Tick delay, Band band, Callback callback)
    {
        schedule(now_ + delay, band, std::move(callback));
    }

    /** True when no events remain. */
    bool
    empty() const
    {
        return heap_.empty() && batch_pos_ >= batch_.size();
    }

    /** Number of pending events. */
    std::size_t
    pending() const
    {
        return heap_.size() + (batch_.size() - batch_pos_);
    }

    /** Pre-size the heap (events), avoiding growth in the hot loop. */
    void reserve(std::size_t events) { heap_.reserve(events); }

    /** Events ever scheduled on this queue (telemetry observable). */
    std::uint64_t scheduledCount() const { return next_sequence_; }

    /** Events executed so far (telemetry observable). */
    std::uint64_t executedCount() const { return executed_; }

    /** Execute events in order until the queue drains. */
    void run();

    /** Execute events with tick <= @p limit; time advances to limit. */
    void runUntil(Tick limit);

  private:
    struct Event
    {
        Tick when;
        std::uint64_t sequence;
        Callback callback;
        std::uint8_t band;
    };

    /** True when @p a must run after @p b. */
    static bool
    later(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.band != b.band)
            return a.band > b.band;
        return a.sequence > b.sequence;
    }

    void pushHeap(Event event);
    Event popHeap();

    /**
     * Move every event matching the top's (tick, band) into batch_.
     * @return the number of events staged.
     */
    std::size_t stageBatch();

    std::vector<Event> heap_;
    std::vector<Event> batch_; ///< reused same-(tick, band) run
    std::size_t batch_pos_ = 0;
    Tick now_ = 0;
    std::uint8_t current_band_ = 0; ///< band being executed at now_
    bool executing_ = false;
    std::uint64_t next_sequence_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace mocktails::sim

#endif // MOCKTAILS_SIM_EVENT_QUEUE_HPP
