#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace mocktails::sim
{

void
EventQueue::schedule(Tick when, Callback callback)
{
    assert(when >= now_ && "cannot schedule in the past");
    events_.push(Event{when, next_sequence_++, std::move(callback)});
}

void
EventQueue::run()
{
    while (!events_.empty()) {
        // Moving out of the priority queue requires a const_cast because
        // top() returns a const reference; the pop() immediately after
        // makes this safe.
        Event event = std::move(const_cast<Event &>(events_.top()));
        events_.pop();
        now_ = event.when;
        ++executed_;
        event.callback();
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!events_.empty() && events_.top().when <= limit) {
        Event event = std::move(const_cast<Event &>(events_.top()));
        events_.pop();
        now_ = event.when;
        ++executed_;
        event.callback();
    }
    now_ = std::max(now_, limit);
}

} // namespace mocktails::sim
