#include "sim/event_queue.hpp"

#include <algorithm>

namespace mocktails::sim
{

void
EventQueue::schedule(Tick when, Band band, Callback callback)
{
    assert(when >= now_ && "cannot schedule in the past");
    // A same-tick event on a band the queue has already moved past
    // would silently run out of order; every legal component schedules
    // same-tick work on its own band or a later one.
    assert((!executing_ || when > now_ || band >= current_band_) &&
           "same-tick event scheduled on an already-executed band");
    pushHeap(Event{when, next_sequence_++, std::move(callback),
                   static_cast<std::uint8_t>(band)});
}

void
EventQueue::pushHeap(Event event)
{
    heap_.push_back(std::move(event));
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!later(heap_[parent], heap_[i]))
            break;
        std::swap(heap_[parent], heap_[i]);
        i = parent;
    }
}

EventQueue::Event
EventQueue::popHeap()
{
    Event top = std::move(heap_.front());
    if (heap_.size() > 1)
        heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    while (true) {
        const std::size_t left = 2 * i + 1;
        const std::size_t right = left + 1;
        std::size_t best = i;
        if (left < n && later(heap_[best], heap_[left]))
            best = left;
        if (right < n && later(heap_[best], heap_[right]))
            best = right;
        if (best == i)
            break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
    return top;
}

std::size_t
EventQueue::stageBatch()
{
    // Successive pops come out in (tick, band, seq) order, so the
    // staged run preserves FIFO within the band. Events scheduled by
    // the callbacks themselves land in heap_ with larger sequence
    // numbers and are staged by a later batch at the same key.
    batch_.clear();
    batch_pos_ = 0;
    const Tick when = heap_.front().when;
    const std::uint8_t band = heap_.front().band;
    now_ = when;
    current_band_ = band;
    do {
        batch_.push_back(popHeap());
    } while (!heap_.empty() && heap_.front().when == when &&
             heap_.front().band == band);
    return batch_.size();
}

void
EventQueue::run()
{
    executing_ = true;
    while (!heap_.empty()) {
        stageBatch();
        while (batch_pos_ < batch_.size()) {
            Callback callback =
                std::move(batch_[batch_pos_].callback);
            ++batch_pos_;
            ++executed_;
            callback();
        }
    }
    batch_.clear();
    batch_pos_ = 0;
    executing_ = false;
}

void
EventQueue::runUntil(Tick limit)
{
    executing_ = true;
    while (!heap_.empty() && heap_.front().when <= limit) {
        stageBatch();
        while (batch_pos_ < batch_.size()) {
            Callback callback =
                std::move(batch_[batch_pos_].callback);
            ++batch_pos_;
            ++executed_;
            callback();
        }
    }
    batch_.clear();
    batch_pos_ = 0;
    executing_ = false;
    now_ = std::max(now_, limit);
}

} // namespace mocktails::sim
