#include "serve/replay.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/client.hpp"

namespace mocktails::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

void
setError(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
}

/** One recorded connection, split into the replayer's working form. */
struct ConnectionScript
{
    std::uint64_t conn = 0;

    struct Send
    {
        const RecordedFrame *frame = nullptr;
        /** Responses that must have arrived before this send (the
         *  number of s2c frames recorded before it). */
        std::size_t gate = 0;
    };
    std::vector<Send> sends;

    /** Expected responses, per channel, in recorded order. */
    std::map<std::uint64_t, std::vector<const RecordedFrame *>> expect;
    std::size_t expectTotal = 0;
    std::uint64_t firstTsNs = 0;
};

std::vector<ConnectionScript>
buildScripts(const Recording &recording)
{
    std::map<std::uint64_t, ConnectionScript> scripts;
    for (const RecordedFrame &frame : recording.frames) {
        auto [it, inserted] =
            scripts.try_emplace(frame.conn, ConnectionScript{});
        ConnectionScript &script = it->second;
        if (inserted) {
            script.conn = frame.conn;
            script.firstTsNs = frame.tsNs;
        }
        if (frame.dir == FrameDirection::ClientToServer) {
            script.sends.push_back({&frame, script.expectTotal});
        } else {
            script.expect[frame.channel].push_back(&frame);
            ++script.expectTotal;
        }
    }
    std::vector<ConnectionScript> out;
    out.reserve(scripts.size());
    for (auto &[conn, script] : scripts)
        out.push_back(std::move(script));
    return out;
}

/** What one replayed connection saw come back. */
struct ConnectionOutcome
{
    std::map<std::uint64_t, std::vector<Frame>> got; ///< per channel
    std::size_t received = 0;
    std::size_t sent = 0;
    std::vector<double> chunkLatenciesUs;
    std::string error; ///< transport failure, "" on success
};

/**
 * Drive one connection: a sender walking the script (gated on the
 * recorded response counts) and an inline reader thread collecting
 * responses until the recording's expected total.
 */
bool
driveConnection(const std::string &host, std::uint16_t port,
                const ReplayOptions &options, bool verify,
                const ConnectionScript &script,
                ConnectionOutcome &outcome)
{
    ClientOptions dial_options;
    dial_options.readTimeoutMs = options.readTimeoutMs;
    dial_options.writeTimeoutMs = options.writeTimeoutMs;
    const int fd = dialServer(host, port, dial_options, &outcome.error);
    if (fd < 0)
        return false;

    std::mutex mutex;
    std::condition_variable cv;
    std::size_t received = 0;
    bool reader_done = false;
    std::string reader_error;
    // Send time per outstanding pull, per channel (loadgen latency).
    std::map<std::uint64_t, std::deque<Clock::time_point>> pending;

    std::thread reader([&] {
        Frame frame;
        while (true) {
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (received >= script.expectTotal)
                    break;
            }
            const FrameResult rc =
                readFrame(fd, frame, kMaxFrameBytes);
            if (rc != FrameResult::Ok) {
                std::lock_guard<std::mutex> lock(mutex);
                reader_error =
                    rc == FrameResult::Eof
                        ? "server closed the connection mid-replay"
                    : rc == FrameResult::Timeout
                        ? "timed out waiting for a recorded response"
                        : "transport error while reading responses";
                break;
            }
            const Clock::time_point now = Clock::now();
            std::lock_guard<std::mutex> lock(mutex);
            ++received;
            if (frame.type == MsgType::Chunk) {
                const std::uint64_t channel = extractChannel(
                    frame.type, frame.body.data(), frame.body.size());
                auto it = pending.find(channel);
                if (it != pending.end() && !it->second.empty()) {
                    const auto sent_at = it->second.front();
                    it->second.pop_front();
                    outcome.chunkLatenciesUs.push_back(
                        std::chrono::duration<double, std::micro>(
                            now - sent_at)
                            .count());
                }
            }
            if (verify) {
                const std::uint64_t channel = extractChannel(
                    frame.type, frame.body.data(), frame.body.size());
                outcome.got[channel].push_back(frame);
            }
            cv.notify_all();
        }
        std::lock_guard<std::mutex> lock(mutex);
        reader_done = true;
        cv.notify_all();
    });

    const Clock::time_point start = Clock::now();
    bool send_failed = false;
    for (const ConnectionScript::Send &send : script.sends) {
        {
            // Causal gate: the original server had sent `gate`
            // responses before it saw this frame; wait for as many.
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] {
                return received >= send.gate || !reader_error.empty();
            });
            if (!reader_error.empty()) {
                send_failed = true;
                break;
            }
        }
        if (options.timing && send.frame->tsNs > script.firstTsNs) {
            const auto target =
                start + std::chrono::nanoseconds(send.frame->tsNs -
                                                 script.firstTsNs);
            std::this_thread::sleep_until(target);
        }
        if (send.frame->type == MsgType::SynthChunk) {
            std::lock_guard<std::mutex> lock(mutex);
            pending[send.frame->channel].push_back(Clock::now());
        }
        if (!writeFrame(fd, send.frame->type, send.frame->body)) {
            std::lock_guard<std::mutex> lock(mutex);
            if (reader_error.empty())
                reader_error = "transport error while sending frame";
            send_failed = true;
            break;
        }
        ++outcome.sent;
    }

    if (!send_failed) {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] {
            return received >= script.expectTotal || reader_done;
        });
    }
    // Unblock a reader stuck in readFrame: shut the socket down.
    ::shutdown(fd, SHUT_RDWR);
    reader.join();
    ::close(fd);

    outcome.received = received;
    outcome.error = reader_error;
    return outcome.error.empty();
}

/** Byte-diff one connection's responses against the recording. */
void
diffConnection(const ConnectionScript &script,
               const ConnectionOutcome &outcome, ReplayResult &result)
{
    for (const auto &[channel, expected] : script.expect) {
        const auto it = outcome.got.find(channel);
        static const std::vector<Frame> kNone;
        const std::vector<Frame> &got =
            it != outcome.got.end() ? it->second : kNone;
        if (expected.size() != got.size()) {
            ReplayMismatch mismatch;
            mismatch.conn = script.conn;
            mismatch.channel = channel;
            mismatch.index = std::min(expected.size(), got.size());
            mismatch.detail =
                "expected " + std::to_string(expected.size()) +
                " response frames, got " + std::to_string(got.size());
            result.mismatches.push_back(std::move(mismatch));
        }
        const std::size_t common =
            std::min(expected.size(), got.size());
        for (std::size_t i = 0; i < common; ++i) {
            const RecordedFrame &want = *expected[i];
            const Frame &have = got[i];
            if (want.type != have.type) {
                ReplayMismatch mismatch;
                mismatch.conn = script.conn;
                mismatch.channel = channel;
                mismatch.index = i;
                mismatch.detail =
                    std::string("expected ") + toString(want.type) +
                    ", got " + toString(have.type);
                result.mismatches.push_back(std::move(mismatch));
                continue;
            }
            if (want.type == MsgType::Stats ||
                want.type == MsgType::ServerStats) {
                // Live-counter snapshots; bodies are not replayable.
                ++result.framesSkipped;
                continue;
            }
            ++result.framesCompared;
            if (want.body == have.body)
                continue;
            std::size_t first = 0;
            const std::size_t limit =
                std::min(want.body.size(), have.body.size());
            while (first < limit && want.body[first] == have.body[first])
                ++first;
            ReplayMismatch mismatch;
            mismatch.conn = script.conn;
            mismatch.channel = channel;
            mismatch.index = i;
            mismatch.detail =
                std::string(toString(want.type)) +
                " body diverges at byte " + std::to_string(first) +
                " (recorded " + std::to_string(want.body.size()) +
                " bytes, live " + std::to_string(have.body.size()) +
                " bytes)";
            result.mismatches.push_back(std::move(mismatch));
        }
    }
}

} // namespace

double
ReplayResult::latencyPercentileUs(double p) const
{
    if (chunkLatenciesUs.empty())
        return 0.0;
    std::vector<double> sorted = chunkLatenciesUs;
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        std::max(0.0, std::min(100.0, p)) / 100.0 *
        static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(std::lround(rank))];
}

bool
replayRecording(const Recording &recording, const std::string &host,
                std::uint16_t port, const ReplayOptions &options,
                ReplayResult &result, std::string *error)
{
    result = ReplayResult{};
    const std::vector<ConnectionScript> scripts =
        buildScripts(recording);
    result.connections = scripts.size();
    if (scripts.empty()) {
        setError(error, "recording holds no frames");
        return false;
    }

    const bool verify = options.loadgen == 0;
    const unsigned clones = verify ? 1 : options.loadgen;

    struct Job
    {
        const ConnectionScript *script = nullptr;
        ConnectionOutcome outcome;
        bool ok = false;
    };
    std::vector<Job> jobs(scripts.size() *
                          static_cast<std::size_t>(clones));
    for (std::size_t c = 0; c < clones; ++c)
        for (std::size_t s = 0; s < scripts.size(); ++s)
            jobs[c * scripts.size() + s].script = &scripts[s];

    std::vector<std::thread> threads;
    threads.reserve(jobs.size());
    for (Job &job : jobs)
        threads.emplace_back([&] {
            job.ok = driveConnection(host, port, options, verify,
                                     *job.script, job.outcome);
        });
    for (std::thread &thread : threads)
        thread.join();

    result.clones = jobs.size();
    std::string first_error;
    for (Job &job : jobs) {
        result.framesSent += job.outcome.sent;
        result.framesReceived += job.outcome.received;
        result.chunkLatenciesUs.insert(
            result.chunkLatenciesUs.end(),
            job.outcome.chunkLatenciesUs.begin(),
            job.outcome.chunkLatenciesUs.end());
        if (!job.ok && first_error.empty())
            first_error = "connection " +
                          std::to_string(job.script->conn) + ": " +
                          job.outcome.error;
        if (verify)
            diffConnection(*job.script, job.outcome, result);
    }
    if (!first_error.empty()) {
        setError(error, first_error);
        return false;
    }
    return true;
}

bool
corruptLastChunk(Recording &recording)
{
    for (auto it = recording.frames.rbegin();
         it != recording.frames.rend(); ++it) {
        if (it->dir == FrameDirection::ServerToClient &&
            it->type == MsgType::Chunk && !it->body.empty()) {
            it->body.back() ^= 0x20;
            return true;
        }
    }
    return false;
}

} // namespace mocktails::serve
