/**
 * @file
 * An event-driven TCP server that streams synthetic traces.
 *
 * One event-loop thread owns every socket through a util::Poller
 * (poll(2)/epoll behind one interface): a non-blocking listener, a
 * wake pipe, and per-connection read/write buffer state machines
 * speaking the length-prefixed protocol of protocol.hpp. No
 * connection ever pins a thread-pool worker — the PR 5 design held
 * one pool worker per live connection, so pool_size idle clients
 * starved synthesis and validation work on the shared pool.
 *
 * CPU-heavy work (profile open, chunk synthesis) runs as *bounded*
 * pool tasks: at most one task per channel and maxTasksPerConnection
 * per connection in flight, results posted back to the loop through a
 * completion queue and flushed when the socket is writable. The
 * per-connection write buffer is capped (maxWriteBufferBytes); a
 * connection at the cap schedules no further synthesis until the peer
 * drains, and within a connection pulls are scheduled round-robin
 * across channels so one busy channel cannot monopolize the pool
 * slots (v2 multiplexing, see protocol.hpp).
 *
 * Robust accept loop: transient resource exhaustion (EMFILE / ENFILE
 * / ENOBUFS / ENOMEM) pauses accepting with exponential backoff and
 * retries; aborted handshakes (ECONNABORTED and friends) are skipped;
 * the loop exits only when stop() asked it to. Every socket is
 * close-on-exec so fds never leak into subprocesses.
 *
 * Idle connections are reaped when silent longer than readTimeoutMs
 * with nothing in flight; a peer that stops draining its socket is
 * dropped after writeTimeoutMs of write stall.
 *
 * Graceful shutdown: stop() wakes the loop, which stops accepting,
 * stops reading commands, lets in-flight pool tasks finish, flushes
 * their frames, closes every connection and joins.
 *
 * Telemetry: "serve.connections" / "serve.frames_in" /
 * "serve.frames_out" / "serve.errors" / "serve.timeouts" /
 * "serve.accept_errors" / "serve.sockopt_errors" /
 * "serve.write_stalls" / "serve.completions_dropped" counters,
 * "serve.connections_active" gauge, plus the session and store
 * metrics of session.hpp / profile_store.hpp. The same counters are
 * queryable over the wire with the ServerStat command (served for
 * any negotiated version), and every frame can be recorded to a
 * .mksr flight recording via ServerOptions::recorder (recorder.hpp).
 */

#ifndef MOCKTAILS_SERVE_SERVER_HPP
#define MOCKTAILS_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/profile_store.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "util/poller.hpp"

namespace mocktails::util
{
class ThreadPool;
} // namespace mocktails::util

namespace mocktails::serve
{

class ServeRecorder;

struct ServerOptions
{
    /** Port to bind; 0 = ephemeral (read the choice from port()). */
    std::uint16_t port = 0;

    /** Bind address; loopback by default (this is a lab tool). */
    std::string bindAddress = "127.0.0.1";

    /**
     * Idle-reap deadline, ms: a connection silent longer than this
     * with no work in flight is closed. 0 = never reap.
     */
    int readTimeoutMs = 30000;

    /** Write-stall deadline, ms (a peer that stops draining is
     * dropped). 0 = never. */
    int writeTimeoutMs = 30000;

    /** Inbound frame limit; commands are tiny (see protocol.hpp). */
    std::uint32_t maxFrameBytes = kMaxCommandFrameBytes;

    /** Upper bound on requests per Chunk; client asks are clamped. */
    std::size_t maxChunkRequests = 1u << 16;

    /** SessionOptions::bufferCapacity for server-side sessions. */
    std::size_t sessionBuffer = 0;

    /** Listen backlog. */
    int backlog = 128;

    /**
     * Shared per-connection cap on buffered outbound bytes. A
     * connection at the cap stops scheduling synthesis tasks until
     * the peer drains; this is the only way one connection's slow
     * reader can stall its own channels (never anybody else's).
     */
    std::size_t maxWriteBufferBytes = 4u << 20;

    /** Pool tasks in flight per connection (>= 1). */
    unsigned maxTasksPerConnection = 4;

    /** Initial accept backoff on resource exhaustion, ms (doubles up
     * to ~1 s until an accept succeeds). */
    int acceptBackoffMs = 50;

    /** Pool for synthesis tasks; nullptr = util::ThreadPool::global().
     *  Must outlive the server. */
    util::ThreadPool *pool = nullptr;

    /** Readiness backend (tests sweep poll vs epoll). */
    util::Poller::Backend pollerBackend = util::Poller::Backend::Auto;

    /**
     * Flight recorder (recorder.hpp); nullptr = off (the default, and
     * a single pointer test per frame when so). Must outlive the
     * server. Every inbound and outbound frame of every connection is
     * recorded under the server's connection ids.
     */
    ServeRecorder *recorder = nullptr;
};

/** What the accept loop does about a failed accept(2). */
enum class AcceptAction {
    Skip,    ///< per-connection failure; try the next one immediately
    Backoff, ///< resource exhaustion; pause accepting, then retry
};

/**
 * Classify an accept(2) errno. Transient per-connection failures
 * (ECONNABORTED, EPROTO, EINTR, EAGAIN) are skipped; fd/memory
 * exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) — and anything unknown —
 * backs off and retries. Nothing short of stop() kills the listener.
 */
AcceptAction classifyAcceptError(int error);

class StreamServer
{
  public:
    /** @param store Must outlive the server. */
    StreamServer(ProfileStore &store, ServerOptions options = {});

    /** Stops and drains (idempotent with stop()). */
    ~StreamServer();

    StreamServer(const StreamServer &) = delete;
    StreamServer &operator=(const StreamServer &) = delete;

    /**
     * Bind, listen and start the event loop.
     * @return false with @p error set when the socket setup fails.
     */
    bool start(std::string *error = nullptr);

    /** The bound port (after start()); resolves port 0 requests. */
    std::uint16_t port() const { return port_; }

    /**
     * Graceful shutdown: stop accepting, let in-flight pool tasks
     * finish, flush and close every connection, join the loop.
     * Idempotent. Must not be called from the event loop.
     */
    void stop();

    /**
     * Block until @p connections connections have completed and none
     * is active (used by `profile_tool serve --once N`).
     */
    void waitForConnections(std::uint64_t connections);

    /// @name Introspection
    /// @{
    std::uint64_t connectionsAccepted() const;
    std::uint64_t connectionsCompleted() const;
    unsigned connectionsActive() const;
    /** Failed accept(2) calls survived (satellite: the PR 5 listener
     *  died on the first one). */
    std::uint64_t acceptErrors() const { return accept_errors_; }
    /** setsockopt/fcntl failures on accepted sockets. */
    std::uint64_t sockoptErrors() const { return sockopt_errors_; }
    /** Pool completions whose connection was gone when they landed
     *  (peer died mid-task, or shutdown drained them) — their frames
     *  were dropped, counted instead of lost silently (satellite:
     *  stop() during an in-flight dispatch used to hide these). */
    std::uint64_t completionsDropped() const
    {
        return completions_dropped_;
    }
    /// @}

  private:
    struct ChannelState;
    struct Connection;
    struct Completion;

    void eventLoop();

    // Accept path.
    void acceptReady();
    void pauseAccepting();
    void resumeAcceptingIfDue();

    // Connection I/O state machines (loop thread only).
    void readInput(Connection &conn);
    bool flushWrites(Connection &conn);
    void enqueueFrame(Connection &conn, std::vector<std::uint8_t> frame);
    void updateInterest(Connection &conn);
    void startDrain(Connection &conn);
    void closeConnection(std::uint64_t conn_id, bool timed_out);
    void maybeFinishDrain(Connection &conn);

    // Frame dispatch and scheduling (loop thread only).
    bool dispatchFrame(Connection &conn, const Frame &frame);
    std::vector<std::uint8_t> packServerStatsFrame() const;
    void startOpen(Connection &conn, std::uint64_t channel,
                   std::string id, std::uint64_t seed);
    void schedulePulls(Connection &conn);
    void finishClose(Connection &conn, std::uint64_t channel,
                     const std::shared_ptr<ChannelState> &state);
    void sendConnError(Connection &conn, ErrorCode code,
                       const std::string &message);
    void sendChannelError(Connection &conn, std::uint64_t channel,
                          ErrorCode code, const std::string &message);

    // Completion queue (pool threads post, loop consumes).
    void postCompletion(Completion &&completion);
    void processCompletions();
    void handleCompletion(Completion &&completion);

    int computeTimeoutMs() const;
    void reapDeadlined();
    void beginStopDrain();

    Connection *findConnection(std::uint64_t conn_id);
    util::ThreadPool &pool();

    ProfileStore *store_;
    ServerOptions options_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread loop_;

    // Loop-private state (only the event-loop thread touches these
    // after start()).
    std::unique_ptr<util::Poller> poller_;
    util::WakePipe wake_;
    std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;
    std::map<int, std::uint64_t> by_fd_;
    std::uint64_t next_conn_id_ = 1;
    unsigned tasks_in_flight_ = 0;
    bool accept_paused_ = false;
    bool listener_closed_ = false;
    bool drain_begun_ = false;
    std::chrono::steady_clock::time_point accept_resume_at_{};
    int accept_backoff_ms_ = 0;

    // Completion queue.
    std::mutex completions_mutex_;
    std::vector<Completion> completions_;

    // Shared control/introspection state.
    mutable std::mutex mutex_;
    std::condition_variable drained_;
    bool stop_requested_ = false;
    bool started_ = false;
    bool loop_done_ = false;
    unsigned active_ = 0;
    std::uint64_t accepted_ = 0;
    std::uint64_t completed_ = 0;
    std::atomic<std::uint64_t> accept_errors_{0};
    std::atomic<std::uint64_t> sockopt_errors_{0};
    std::atomic<std::uint64_t> completions_dropped_{0};
};

} // namespace mocktails::serve

#endif // MOCKTAILS_SERVE_SERVER_HPP
