/**
 * @file
 * A blocking-socket TCP server that streams synthetic traces.
 *
 * Deliberately poll/epoll-free and portable: one listener thread
 * accepts connections and hands each one to the shared PR-1 thread
 * pool; a connection handler is a plain blocking read-dispatch-write
 * loop speaking the length-prefixed protocol of protocol.hpp. Socket
 * receive/send timeouts (SO_RCVTIMEO/SO_SNDTIMEO) bound every
 * blocking call, which is what reaps idle connections and keeps
 * shutdown prompt without a readiness API.
 *
 * Graceful shutdown: stop() closes the listener, shuts down the read
 * side of every live connection (the handler finishes the command in
 * flight — draining its sessions' current chunk — then observes EOF
 * and exits) and blocks until the last handler has drained.
 *
 * Telemetry: "serve.connections" / "serve.frames_in" /
 * "serve.frames_out" / "serve.errors" / "serve.timeouts" counters,
 * "serve.connections_active" gauge, plus the session and store
 * metrics of session.hpp / profile_store.hpp.
 */

#ifndef MOCKTAILS_SERVE_SERVER_HPP
#define MOCKTAILS_SERVE_SERVER_HPP

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/profile_store.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace mocktails::serve
{

struct ServerOptions
{
    /** Port to bind; 0 = ephemeral (read the choice from port()). */
    std::uint16_t port = 0;

    /** Bind address; loopback by default (this is a lab tool). */
    std::string bindAddress = "127.0.0.1";

    /**
     * Receive timeout per blocking read, ms. A connection that stays
     * silent longer is reaped. 0 = no timeout (not recommended).
     */
    int readTimeoutMs = 30000;

    /** Send timeout, ms (a peer that stops draining is dropped). */
    int writeTimeoutMs = 30000;

    /** Inbound frame limit; commands are tiny (see protocol.hpp). */
    std::uint32_t maxFrameBytes = kMaxCommandFrameBytes;

    /** Upper bound on requests per Chunk; client asks are clamped. */
    std::size_t maxChunkRequests = 1u << 16;

    /** SessionOptions::bufferCapacity for server-side sessions. */
    std::size_t sessionBuffer = 0;

    /** Listen backlog. */
    int backlog = 16;
};

class StreamServer
{
  public:
    /** @param store Must outlive the server. */
    StreamServer(ProfileStore &store, ServerOptions options = {});

    /** Stops and drains (idempotent with stop()). */
    ~StreamServer();

    StreamServer(const StreamServer &) = delete;
    StreamServer &operator=(const StreamServer &) = delete;

    /**
     * Bind, listen and start accepting.
     * @return false with @p error set when the socket setup fails.
     */
    bool start(std::string *error = nullptr);

    /** The bound port (after start()); resolves port 0 requests. */
    std::uint16_t port() const { return port_; }

    /**
     * Graceful shutdown: stop accepting, let in-flight commands
     * finish, drain and join every handler. Idempotent. Must not be
     * called from a connection handler.
     */
    void stop();

    /**
     * Block until @p connections connections have completed and no
     * handler is active (used by `profile_tool serve --once N`).
     */
    void waitForConnections(std::uint64_t connections);

    /// @name Introspection
    /// @{
    std::uint64_t connectionsAccepted() const;
    std::uint64_t connectionsCompleted() const;
    unsigned connectionsActive() const;
    /// @}

  private:
    void listenLoop(int listen_fd);
    void handleConnection(int fd);

    /** Dispatch one decoded frame. @return false to end the loop. */
    bool dispatchFrame(int fd, const Frame &frame,
                       struct ConnectionState &conn);

    bool sendError(int fd, ErrorCode code, const std::string &message);

    ProfileStore *store_;
    ServerOptions options_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread listener_;

    mutable std::mutex mutex_;
    std::condition_variable drained_;
    bool stopping_ = false;
    bool started_ = false;
    std::vector<int> live_fds_;
    unsigned active_ = 0;
    std::uint64_t accepted_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace mocktails::serve

#endif // MOCKTAILS_SERVE_SERVER_HPP
