#include "serve/session.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace mocktails::serve
{

namespace
{

void
publishSessionOpen()
{
    if (!telemetry::enabled())
        return;
    auto &registry = telemetry::MetricsRegistry::global();
    registry.counter("serve.sessions_opened").add();
    registry.gauge("serve.sessions_active").add(1);
}

void
publishSessionClose(std::uint64_t emitted,
                    std::uint64_t backpressure_waits)
{
    if (!telemetry::enabled())
        return;
    auto &registry = telemetry::MetricsRegistry::global();
    registry.counter("serve.sessions_closed").add();
    registry.counter("serve.requests_streamed").add(emitted);
    registry.counter("serve.backpressure_waits")
        .add(backpressure_waits);
    registry.gauge("serve.sessions_active").add(-1);
}

} // namespace

SynthesisSession::SynthesisSession(
    std::shared_ptr<const StoredProfile> profile, SessionOptions options)
    : profile_(std::move(profile)), options_(options)
{
    if (profile_->trace != nullptr) {
        total_ = profile_->trace->size();
    } else {
        engine_ = std::make_unique<core::SynthesisEngine>(
            profile_->profile, options.seed);
        total_ = engine_->total();
    }
    publishSessionOpen();
    if (options_.bufferCapacity > 0)
        producer_ = std::thread([this] { producerLoop(); });
}

bool
SynthesisSession::pullOne(mem::Request &out)
{
    if (engine_ != nullptr)
        return engine_->next(out);
    const mem::Trace &trace = *profile_->trace;
    if (trace_pos_ >= trace.size())
        return false;
    out = trace[trace_pos_++];
    return true;
}

std::size_t
SynthesisSession::pullBatch(std::vector<mem::Request> &out,
                            std::size_t max)
{
    if (engine_ != nullptr)
        return engine_->nextBatch(out, max);
    const mem::Trace &trace = *profile_->trace;
    const std::size_t take =
        std::min(max, trace.size() - trace_pos_);
    const auto begin = trace.requests().begin() +
                       static_cast<std::ptrdiff_t>(trace_pos_);
    out.insert(out.end(), begin,
               begin + static_cast<std::ptrdiff_t>(take));
    trace_pos_ += take;
    return take;
}

SynthesisSession::~SynthesisSession()
{
    close();
}

void
SynthesisSession::producerLoop()
{
    mem::Request request;
    for (;;) {
        // Generate outside the lock: the merge is the expensive part
        // and the buffer only needs the hand-off protected.
        if (!pullOne(request))
            break;
        std::unique_lock<std::mutex> lock(mutex_);
        if (buffer_.size() >= options_.bufferCapacity &&
            !closed_) {
            ++backpressure_waits_;
            not_full_.wait(lock, [this] {
                return buffer_.size() < options_.bufferCapacity ||
                       closed_;
            });
        }
        if (closed_)
            return;
        buffer_.push_back(request);
        not_empty_.notify_all();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    producer_done_ = true;
    not_empty_.notify_all();
}

std::size_t
SynthesisSession::next(std::vector<mem::Request> &out, std::size_t max)
{
    if (max == 0)
        return 0;

    if (options_.bufferCapacity == 0) {
        // Synchronous pull: the engine runs on the caller.
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return 0;
        const std::size_t made = pullBatch(out, max);
        emitted_ += made;
        return made;
    }

    std::size_t made = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (made < max) {
        not_empty_.wait(lock, [this] {
            return !buffer_.empty() || producer_done_ || closed_;
        });
        if (closed_)
            break;
        if (buffer_.empty())
            break; // producer done and drained
        const std::size_t take =
            std::min(max - made, buffer_.size());
        out.insert(out.end(), buffer_.begin(),
                   buffer_.begin() +
                       static_cast<std::ptrdiff_t>(take));
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(take));
        made += take;
        emitted_ += take;
        not_full_.notify_all();
    }
    return made;
}

bool
SynthesisSession::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (options_.bufferCapacity == 0)
        return !closed_ && emitted_ >= total_;
    return producer_done_ && buffer_.empty() && !closed_;
}

bool
SynthesisSession::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

void
SynthesisSession::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return;
        closed_ = true;
        not_full_.notify_all();
        not_empty_.notify_all();
    }
    if (producer_.joinable())
        producer_.join();
    std::uint64_t emitted, waits;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        emitted = emitted_;
        waits = backpressure_waits_;
    }
    publishSessionClose(emitted, waits);
}

std::uint64_t
SynthesisSession::emitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return emitted_;
}

std::size_t
SynthesisSession::buffered() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return buffer_.size();
}

std::uint64_t
SynthesisSession::backpressureWaits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return backpressure_waits_;
}

} // namespace mocktails::serve
