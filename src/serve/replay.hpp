/**
 * @file
 * Deterministic replay of .mksr flight recordings (recorder.hpp).
 *
 * replayRecording() re-drives a live server with the recorded
 * client-side frames and diffs what comes back against the recorded
 * responses. Each recorded connection is replayed on its own fresh
 * TCP connection, concurrently, exactly as the original clients ran.
 *
 * Determinism rules (see DESIGN.md "Flight recorder & replay"):
 *
 *  - Per-connection *arrival order* is preserved: before sending the
 *    recorded client frame at position i, the replayer waits until as
 *    many response frames have arrived as the recording shows before
 *    position i. This reconstructs the original causal pacing (a
 *    strict v1 client's command N happened-after response N-1), so
 *    the server walks the same state-machine path — without it,
 *    blasting a recorded Close could cancel pulls the original run
 *    answered.
 *  - Responses are diffed per (connection, channel), not globally:
 *    chunks of one channel are answered in order with a per-channel
 *    carry codec (bit-identical streams), while chunks of *different*
 *    channels interleave at the pool scheduler's whim.
 *  - Stats and ServerStats response *bodies* are exempt from the byte
 *    diff (the type must still match): they snapshot live counters
 *    mid-flight, which is exactly the nondeterminism the per-channel
 *    rule cannot remove.
 *
 * Load generation: loadgen > 0 clones every recorded connection that
 * many times and drives all clones concurrently, collecting
 * pull-to-chunk latencies instead of verifying bytes — captured
 * traffic becomes a load profile.
 */

#ifndef MOCKTAILS_SERVE_REPLAY_HPP
#define MOCKTAILS_SERVE_REPLAY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "serve/recorder.hpp"

namespace mocktails::serve
{

struct ReplayOptions
{
    /** Pace sends by the recorded timestamps (off: as fast as the
     *  causal gating allows). */
    bool timing = false;

    /**
     * Clones per recorded connection. 0 = verification replay (one
     * pass, responses byte-diffed); N > 0 = load generation (N clones
     * per connection, latencies collected, no byte diff).
     */
    unsigned loadgen = 0;

    /** Socket receive/send timeouts, ms; bound a stuck replay. */
    int readTimeoutMs = 30000;
    int writeTimeoutMs = 30000;
};

/** One byte-level divergence between recording and live replay. */
struct ReplayMismatch
{
    std::uint64_t conn = 0;
    std::uint64_t channel = 0;
    std::uint64_t index = 0; ///< response index within the channel
    std::string detail;
};

struct ReplayResult
{
    std::uint64_t connections = 0; ///< recorded connections driven
    std::uint64_t clones = 0;      ///< total connections dialled
    std::uint64_t framesSent = 0;
    std::uint64_t framesReceived = 0;
    std::uint64_t framesCompared = 0;
    std::uint64_t framesSkipped = 0; ///< Stats/ServerStats bodies
    std::vector<ReplayMismatch> mismatches;

    /** Pull-to-chunk latencies, µs (loadgen mode only). */
    std::vector<double> chunkLatenciesUs;

    bool ok() const { return mismatches.empty(); }

    /** Percentile over chunkLatenciesUs (p in [0,100]; 0 if empty). */
    double latencyPercentileUs(double p) const;
};

/**
 * Replay @p recording against host:port.
 * @return false with @p error set on transport/setup failure;
 *         byte-level divergences are reported through
 *         @p result.mismatches, not as errors.
 */
bool replayRecording(const Recording &recording,
                     const std::string &host, std::uint16_t port,
                     const ReplayOptions &options, ReplayResult &result,
                     std::string *error = nullptr);

/**
 * Flip one payload byte of the last recorded server->client Chunk —
 * the deliberate-corruption probe the replay CTest uses to prove the
 * diff detects divergence. @return false if no Chunk exists.
 */
bool corruptLastChunk(Recording &recording);

} // namespace mocktails::serve

#endif // MOCKTAILS_SERVE_REPLAY_HPP
