#include "serve/profile_store.hpp"

#include "telemetry/metrics.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::serve
{

ProfileStore::ProfileStore(StoreOptions options)
    : options_(std::move(options))
{
    auto &registry = telemetry::MetricsRegistry::global();
    hits_metric_ = &registry.counter("store.hits");
    misses_metric_ = &registry.counter("store.misses");
    evictions_metric_ = &registry.counter("store.evictions");
    load_failures_metric_ = &registry.counter("store.load_failures");
    resident_profiles_metric_ = &registry.gauge("store.resident_profiles");
    resident_bytes_metric_ = &registry.gauge("store.resident_bytes");
}

void
ProfileStore::registerProfile(const std::string &id,
                              const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    registered_[id] = path;
}

void
ProfileStore::registerLoader(const std::string &id, Loader loader)
{
    std::lock_guard<std::mutex> lock(mutex_);
    loaders_[id] = std::move(loader);
}

void
ProfileStore::insert(const std::string &id, core::Profile profile)
{
    auto stored = std::make_shared<StoredProfile>();
    stored->id = id;
    stored->totalRequests = profile.totalRequests();
    // In-memory inserts have no file; charge the size the profile
    // would occupy as the distributable artefact, so byte-capacity
    // eviction treats both populations alike.
    stored->bytes = profile.encodeCompressed().size();
    stored->profile = std::move(profile);

    std::lock_guard<std::mutex> lock(mutex_);
    Entry &entry = entries_[id];
    if (entry.state == Entry::State::Ready)
        resident_bytes_ -= entry.value->bytes;
    entry.state = Entry::State::Ready;
    entry.value = std::move(stored);
    entry.lastUse = ++use_clock_;
    resident_bytes_ += entry.value->bytes;
    enforceCapacityLocked();
    publishGaugesLocked();
    cv_.notify_all();
}

std::string
ProfileStore::resolvePath(const std::string &id) const
{
    // Lock held by the caller.
    const auto it = registered_.find(id);
    if (it != registered_.end())
        return it->second;
    if (options_.root.empty() || id.empty())
        return {};
    // Only plain file names resolve under the root: a remote peer
    // must not traverse out of the served directory.
    if (id.find('/') != std::string::npos ||
        id.find("..") != std::string::npos)
        return {};
    return options_.root + "/" + id;
}

void
ProfileStore::loadEntry(const std::string &id, const std::string &path,
                        const Loader &loader)
{
    loads_.fetch_add(1, std::memory_order_relaxed);
    auto stored = std::make_shared<StoredProfile>();
    stored->id = id;
    stored->path = path;
    std::string error;
    bool ok;
    if (loader) {
        ok = loader(*stored, &error);
        if (ok) {
            stored->id = id;
            if (stored->totalRequests == 0)
                stored->totalRequests =
                    stored->trace != nullptr
                        ? stored->trace->size()
                        : stored->profile.totalRequests();
            if (stored->bytes == 0 && stored->trace != nullptr)
                stored->bytes = stored->trace->size() *
                                sizeof(mem::Request);
        }
    } else {
        std::vector<std::uint8_t> bytes;
        ok = util::loadBytes(path, bytes, &error);
        if (ok) {
            stored->bytes = bytes.size();
            if (!core::Profile::decodeCompressed(
                    bytes, stored->profile, &error)) {
                error = path + ": " + error;
                ok = false;
            }
        }
        if (ok)
            stored->totalRequests = stored->profile.totalRequests();
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (!ok) {
        if (telemetry::enabled())
            load_failures_metric_->add();
        // Failed loads are not cached: drop the Loading slot (waiters
        // re-resolve and observe the failure through load_errors_).
        load_errors_[id] =
            error.empty() ? ((path.empty() ? id : path) + ": load failed")
                          : error;
        entries_.erase(id);
        cv_.notify_all();
        return;
    }
    Entry &entry = entries_[id];
    entry.state = Entry::State::Ready;
    entry.value = std::move(stored);
    entry.lastUse = ++use_clock_;
    resident_bytes_ += entry.value->bytes;
    load_errors_.erase(id);
    enforceCapacityLocked();
    publishGaugesLocked();
    cv_.notify_all();
}

std::shared_ptr<const StoredProfile>
ProfileStore::get(const std::string &id, std::string *error)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        const auto it = entries_.find(id);
        if (it == entries_.end())
            break;
        if (it->second.state == Entry::State::Ready) {
            it->second.lastUse = ++use_clock_;
            hits_.fetch_add(1, std::memory_order_relaxed);
            if (telemetry::enabled())
                hits_metric_->add();
            return it->second.value;
        }
        // Another caller is loading this id; share its outcome.
        cv_.wait(lock);
        const auto done = entries_.find(id);
        if (done != entries_.end() &&
            done->second.state == Entry::State::Ready)
            continue; // loop re-reads as a hit
        const auto failed = load_errors_.find(id);
        if (failed != load_errors_.end()) {
            if (error != nullptr)
                *error = failed->second;
            return nullptr;
        }
        // Spurious wakeup or unrelated publication: retry from the top.
    }

    misses_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled())
        misses_metric_->add();
    Loader loader;
    const auto registered_loader = loaders_.find(id);
    if (registered_loader != loaders_.end())
        loader = registered_loader->second;
    const std::string path = loader ? std::string{} : resolvePath(id);
    if (!loader && path.empty()) {
        if (error != nullptr)
            *error = "unknown profile id '" + id + "'";
        return nullptr;
    }
    load_errors_.erase(id);
    entries_[id]; // default state: Loading — publishes the flight
    lock.unlock();

    // Single flight: this caller owns the load. It runs on the shared
    // pool unless we already *are* a pool worker (a server connection
    // handler), where queueing behind ourselves could deadlock a
    // 1-worker pool.
    if (util::ThreadPool::onWorkerThread()) {
        loadEntry(id, path, loader);
    } else {
        util::ThreadPool::global().submit(
            [this, id, path, loader] { loadEntry(id, path, loader); });
    }

    lock.lock();
    for (;;) {
        const auto it = entries_.find(id);
        if (it != entries_.end() &&
            it->second.state == Entry::State::Ready) {
            it->second.lastUse = ++use_clock_;
            return it->second.value;
        }
        const auto failed = load_errors_.find(id);
        if (failed != load_errors_.end()) {
            if (error != nullptr)
                *error = failed->second;
            return nullptr;
        }
        cv_.wait(lock);
    }
}

void
ProfileStore::enforceCapacityLocked()
{
    const auto overCapacity = [this](std::size_t ready) {
        return (options_.maxEntries != 0 &&
                ready > options_.maxEntries) ||
               (options_.maxBytes != 0 &&
                resident_bytes_ > options_.maxBytes);
    };
    for (;;) {
        std::size_t ready = 0;
        auto victim = entries_.end();
        std::uint64_t newest = 0;
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->second.state != Entry::State::Ready)
                continue;
            ++ready;
            newest = std::max(newest, it->second.lastUse);
            if (victim == entries_.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (!overCapacity(ready) || ready <= 1)
            return;
        // Never evict the most recently used entry: the profile that
        // just loaded must survive even when it alone busts the byte
        // budget, or a get() could evict its own result.
        if (victim->second.lastUse == newest)
            return;
        resident_bytes_ -= victim->second.value->bytes;
        entries_.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry::enabled())
            evictions_metric_->add();
    }
}

void
ProfileStore::publishGaugesLocked()
{
    if (!telemetry::enabled())
        return;
    std::size_t ready = 0;
    for (const auto &[id, entry] : entries_) {
        (void)id;
        if (entry.state == Entry::State::Ready)
            ++ready;
    }
    resident_profiles_metric_->set(static_cast<std::int64_t>(ready));
    resident_bytes_metric_->set(
        static_cast<std::int64_t>(resident_bytes_));
}

std::size_t
ProfileStore::residentCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t ready = 0;
    for (const auto &[id, entry] : entries_) {
        (void)id;
        if (entry.state == Entry::State::Ready)
            ++ready;
    }
    return ready;
}

std::size_t
ProfileStore::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resident_bytes_;
}

} // namespace mocktails::serve
