#include "serve/recorder.hpp"

#include <cerrno>
#include <cstring>

#include "telemetry/metrics.hpp"
#include "util/codec.hpp"

namespace mocktails::serve
{

namespace
{

constexpr char kRecorderMagic[4] = {'M', 'K', 'S', 'R'};
constexpr std::uint64_t kRecorderVersion = 1;

void
setError(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
}

} // namespace

const char *
toString(FrameDirection dir)
{
    return dir == FrameDirection::ClientToServer ? "c2s" : "s2c";
}

std::uint64_t
extractChannel(MsgType type, const std::uint8_t *body, std::size_t size)
{
    switch (type) {
      case MsgType::OpenChannel:
      case MsgType::Opened:
      case MsgType::ChannelOpened:
      case MsgType::ChannelError:
      case MsgType::SynthChunk:
      case MsgType::Chunk:
      case MsgType::Stat:
      case MsgType::Stats:
      case MsgType::Close:
      case MsgType::Closed: {
        // Session-carrying bodies lead with the channel varint.
        util::ByteReader r(body, size);
        const std::uint64_t channel = r.getVarint();
        return r.ok() ? channel : 0;
      }
      case MsgType::Hello:
      case MsgType::HelloOk:
      case MsgType::OpenProfile: // server assigns the id in the reply
      case MsgType::Error:
      case MsgType::ServerStat:
      case MsgType::ServerStats:
        return 0;
    }
    return 0;
}

ServeRecorder::~ServeRecorder()
{
    close();
}

bool
ServeRecorder::open(const std::string &path, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ != nullptr) {
        setError(error, "recorder already open");
        return false;
    }
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
        setError(error,
                 path + ": " + std::string(std::strerror(errno)));
        return false;
    }
    util::ByteWriter header;
    header.putBytes(
        reinterpret_cast<const std::uint8_t *>(kRecorderMagic),
        sizeof(kRecorderMagic));
    header.putVarint(kRecorderVersion);
    if (std::fwrite(header.bytes().data(), 1, header.size(), file) !=
        header.size()) {
        setError(error, path + ": header write failed");
        std::fclose(file);
        return false;
    }
    file_ = file;
    write_failed_ = false;
    bytes_.store(header.size(), std::memory_order_relaxed);
    frames_.store(0, std::memory_order_relaxed);
    last_ts_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_relaxed);
    return true;
}

void
ServeRecorder::recordSlow(FrameDirection dir, std::uint64_t conn,
                          MsgType type, const std::uint8_t *body,
                          std::size_t size)
{
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t channel = extractChannel(type, body, size);

    util::ByteWriter w;
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ == nullptr)
        return; // closed between the enabled check and here
    const auto delta =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - last_ts_)
            .count();
    last_ts_ = now;
    w.putByte(static_cast<std::uint8_t>(dir));
    w.putVarint(delta > 0 ? static_cast<std::uint64_t>(delta) : 0);
    w.putVarint(conn);
    w.putVarint(channel);
    w.putByte(static_cast<std::uint8_t>(type));
    w.putVarint(size);
    w.putBytes(body, size);
    if (std::fwrite(w.bytes().data(), 1, w.size(), file_) != w.size())
        write_failed_ = true;
    frames_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(w.size(), std::memory_order_relaxed);
    if (telemetry::enabled()) {
        auto &registry = telemetry::MetricsRegistry::global();
        registry.counter("recorder.frames").add(1);
        registry.counter("recorder.bytes").add(w.size());
    }
}

bool
ServeRecorder::close(std::string *error)
{
    enabled_.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ == nullptr)
        return true;
    const bool flush_ok = std::fflush(file_) == 0;
    const bool close_ok = std::fclose(file_) == 0;
    file_ = nullptr;
    if (write_failed_ || !flush_ok || !close_ok) {
        setError(error, "recording truncated by a write failure");
        return false;
    }
    return true;
}

bool
loadRecording(const std::string &path, Recording &out,
              std::string *error)
{
    std::vector<std::uint8_t> bytes;
    if (!util::loadBytes(path, bytes, error))
        return false;
    util::ByteReader r(bytes.data(), bytes.size());
    bool magic_ok = true;
    for (const char expected : kRecorderMagic)
        magic_ok &= static_cast<char>(r.getByte()) == expected;
    if (!r.ok() || !magic_ok) {
        setError(error, path + ": not a .mksr recording (bad magic)");
        return false;
    }
    const std::uint64_t version = r.getVarint();
    if (!r.ok() || version != kRecorderVersion) {
        setError(error, path + ": unsupported recording version " +
                            std::to_string(version));
        return false;
    }
    out.frames.clear();
    std::uint64_t ts = 0;
    while (!r.atEnd()) {
        RecordedFrame frame;
        const std::uint8_t dir = r.getByte();
        ts += r.getVarint();
        frame.tsNs = ts;
        frame.conn = r.getVarint();
        frame.channel = r.getVarint();
        frame.type = static_cast<MsgType>(r.getByte());
        const std::uint64_t length = r.getVarint();
        if (!r.ok() || dir > 1 || length > r.remaining()) {
            setError(error, path + ": truncated record " +
                                std::to_string(out.frames.size()));
            return false;
        }
        frame.dir = static_cast<FrameDirection>(dir);
        frame.body.resize(static_cast<std::size_t>(length));
        for (std::size_t i = 0; i < frame.body.size(); ++i)
            frame.body[i] = r.getByte();
        out.frames.push_back(std::move(frame));
    }
    return true;
}

bool
exportRecordingJsonl(const Recording &recording,
                     const std::string &path, std::string *error)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
        setError(error,
                 path + ": " + std::string(std::strerror(errno)));
        return false;
    }
    static const char hex[] = "0123456789abcdef";
    std::string line;
    bool ok = true;
    for (std::size_t i = 0; i < recording.frames.size() && ok; ++i) {
        const RecordedFrame &frame = recording.frames[i];
        line.clear();
        line += "{\"seq\":" + std::to_string(i);
        line += ",\"ts_ns\":" + std::to_string(frame.tsNs);
        line += ",\"dir\":\"";
        line += toString(frame.dir);
        line += "\",\"conn\":" + std::to_string(frame.conn);
        line += ",\"channel\":" + std::to_string(frame.channel);
        line += ",\"type\":\"";
        line += toString(frame.type);
        line += "\",\"size\":" + std::to_string(frame.body.size());
        line += ",\"payload\":\"";
        for (const std::uint8_t b : frame.body) {
            line += hex[b >> 4];
            line += hex[b & 0xf];
        }
        line += "\"}\n";
        ok = std::fwrite(line.data(), 1, line.size(), file) ==
             line.size();
    }
    if (std::fclose(file) != 0)
        ok = false;
    if (!ok)
        setError(error, path + ": write failed");
    return ok;
}

} // namespace mocktails::serve
