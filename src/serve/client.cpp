#include "serve/client.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mocktails::serve
{

namespace
{

void
setError(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
}

bool
setSocketTimeouts(int fd, int read_ms, int write_ms)
{
    const auto set = [fd](int option, int ms) {
        if (ms <= 0)
            return true;
        struct timeval tv;
        tv.tv_sec = ms / 1000;
        tv.tv_usec = (ms % 1000) * 1000;
        return ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) ==
               0;
    };
    return set(SO_RCVTIMEO, read_ms) && set(SO_SNDTIMEO, write_ms);
}

} // namespace

Client::~Client()
{
    disconnect();
}

void
Client::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::connect(const std::string &host, std::uint16_t port,
                ClientOptions options, std::string *error)
{
    disconnect();
    options_ = options;

    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *result = nullptr;
    const std::string service = std::to_string(port);
    const int rc =
        ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
    if (rc != 0) {
        setError(error, "resolve " + host + ": " + gai_strerror(rc));
        return false;
    }

    int last_errno = 0;
    for (struct addrinfo *ai = result; ai != nullptr;
         ai = ai->ai_next) {
        const int fd =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_errno = errno;
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            fd_ = fd;
            break;
        }
        last_errno = errno;
        ::close(fd);
    }
    ::freeaddrinfo(result);
    if (fd_ < 0) {
        setError(error, "connect " + host + ":" + service + ": " +
                            std::strerror(last_errno));
        return false;
    }
    setSocketTimeouts(fd_, options_.readTimeoutMs,
                      options_.writeTimeoutMs);

    HelloBody hello;
    util::ByteWriter w;
    hello.encode(w);
    Frame reply;
    if (!roundTrip(MsgType::Hello, w.bytes(), MsgType::HelloOk, reply,
                   error)) {
        disconnect();
        return false;
    }
    return true;
}

bool
Client::roundTrip(MsgType type, const std::vector<std::uint8_t> &body,
                  MsgType expect, Frame &reply, std::string *error)
{
    if (fd_ < 0) {
        setError(error, "not connected");
        return false;
    }
    if (!writeFrame(fd_, type, body)) {
        setError(error, "send failed: " +
                            std::string(std::strerror(errno)));
        return false;
    }
    const FrameResult result =
        readFrame(fd_, reply, options_.maxFrameBytes);
    switch (result) {
    case FrameResult::Ok:
        break;
    case FrameResult::Eof:
        setError(error, "server closed the connection");
        return false;
    case FrameResult::Timeout:
        setError(error, "timed out waiting for the server");
        return false;
    case FrameResult::TooLarge:
        setError(error, "server frame exceeds the client limit");
        return false;
    case FrameResult::Error:
        setError(error, "connection error: " +
                            std::string(std::strerror(errno)));
        return false;
    }
    if (reply.type == MsgType::Error) {
        ErrorBody err;
        util::ByteReader r(reply.body.data(), reply.body.size());
        if (err.decode(r))
            setError(error, std::string(toString(err.code)) + ": " +
                                err.message);
        else
            setError(error, "malformed Error frame from server");
        return false;
    }
    if (reply.type != expect) {
        setError(error,
                 "unexpected reply type " +
                     std::to_string(
                         static_cast<unsigned>(reply.type)));
        return false;
    }
    return true;
}

bool
Client::open(const std::string &id, std::uint64_t seed,
             RemoteSession &session, std::string *error)
{
    OpenProfileBody body;
    body.id = id;
    body.seed = seed;
    util::ByteWriter w;
    body.encode(w);
    Frame reply;
    if (!roundTrip(MsgType::OpenProfile, w.bytes(), MsgType::Opened,
                   reply, error))
        return false;
    OpenedBody opened;
    util::ByteReader r(reply.body.data(), reply.body.size());
    if (!opened.decode(r)) {
        setError(error, "malformed Opened frame");
        return false;
    }
    session = RemoteSession{};
    session.id = opened.session;
    session.name = opened.name;
    session.device = opened.device;
    session.leaves = opened.leaves;
    session.total = opened.total;
    session.done = opened.total == 0;
    return true;
}

bool
Client::next(RemoteSession &session, std::vector<mem::Request> &out,
             std::uint64_t maxRequests, std::string *error)
{
    SynthChunkBody body;
    body.session = session.id;
    body.maxRequests = maxRequests;
    util::ByteWriter w;
    body.encode(w);
    Frame reply;
    if (!roundTrip(MsgType::SynthChunk, w.bytes(), MsgType::Chunk,
                   reply, error))
        return false;
    ChunkBody chunk;
    util::ByteReader r(reply.body.data(), reply.body.size());
    if (!chunk.decode(r, out, session.codec)) {
        setError(error, "malformed Chunk frame");
        return false;
    }
    if (chunk.session != session.id ||
        chunk.firstSeq != session.received) {
        setError(error, "chunk out of sequence (expected seq " +
                            std::to_string(session.received) +
                            ", got " +
                            std::to_string(chunk.firstSeq) + ")");
        return false;
    }
    session.received += chunk.count;
    session.done = chunk.done;
    return true;
}

bool
Client::stat(RemoteSession &session, StatsBody &stats,
             std::string *error)
{
    StatBody body;
    body.session = session.id;
    util::ByteWriter w;
    body.encode(w);
    Frame reply;
    if (!roundTrip(MsgType::Stat, w.bytes(), MsgType::Stats, reply,
                   error))
        return false;
    util::ByteReader r(reply.body.data(), reply.body.size());
    if (!stats.decode(r)) {
        setError(error, "malformed Stats frame");
        return false;
    }
    return true;
}

bool
Client::close(RemoteSession &session, std::string *error)
{
    CloseBody body;
    body.session = session.id;
    util::ByteWriter w;
    body.encode(w);
    Frame reply;
    if (!roundTrip(MsgType::Close, w.bytes(), MsgType::Closed, reply,
                   error))
        return false;
    ClosedBody closed;
    util::ByteReader r(reply.body.data(), reply.body.size());
    if (!closed.decode(r)) {
        setError(error, "malformed Closed frame");
        return false;
    }
    return true;
}

bool
Client::fetch(RemoteSession &session, std::vector<mem::Request> &out,
              std::uint64_t chunkRequests, std::string *error)
{
    while (!session.done) {
        const std::uint64_t before = session.received;
        if (!next(session, out, chunkRequests, error))
            return false;
        if (!session.done && session.received == before) {
            setError(error, "server made no progress (empty chunk "
                            "before completion)");
            return false;
        }
    }
    return true;
}

bool
fetchTrace(const std::string &host, std::uint16_t port,
           const std::string &id, std::uint64_t seed, mem::Trace &trace,
           std::uint64_t chunkRequests, std::string *error)
{
    Client client;
    if (!client.connect(host, port, {}, error))
        return false;
    RemoteSession session;
    if (!client.open(id, seed, session, error))
        return false;
    std::vector<mem::Request> requests;
    requests.reserve(static_cast<std::size_t>(session.total));
    if (!client.fetch(session, requests, chunkRequests, error))
        return false;
    if (!client.close(session, error))
        return false;
    trace = mem::Trace(session.name, session.device);
    trace.requests() = std::move(requests);
    return true;
}

} // namespace mocktails::serve
