#include "serve/client.hpp"

#include <cerrno>
#include <cstring>
#include <queue>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/recorder.hpp"
#include "util/poller.hpp"

namespace mocktails::serve
{

namespace
{

void
setError(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
}

void
recordSent(const ClientOptions &options, std::uint64_t conn,
           MsgType type, const std::vector<std::uint8_t> &body)
{
    if (options.recorder != nullptr)
        options.recorder->record(FrameDirection::ClientToServer, conn,
                                 type, body.data(), body.size());
}

void
recordReceived(const ClientOptions &options, std::uint64_t conn,
               const Frame &frame)
{
    if (options.recorder != nullptr)
        options.recorder->record(FrameDirection::ServerToClient, conn,
                                 frame);
}

bool
setSocketTimeouts(int fd, int read_ms, int write_ms)
{
    const auto set = [fd](int option, int ms) {
        if (ms <= 0)
            return true;
        struct timeval tv;
        tv.tv_sec = ms / 1000;
        tv.tv_usec = (ms % 1000) * 1000;
        return ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) ==
               0;
    };
    return set(SO_RCVTIMEO, read_ms) && set(SO_SNDTIMEO, write_ms);
}

} // namespace

int
dialServer(const std::string &host, std::uint16_t port,
           const ClientOptions &options, std::string *error)
{
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *result = nullptr;
    const std::string service = std::to_string(port);
    const int rc =
        ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
    if (rc != 0) {
        setError(error, "resolve " + host + ": " + gai_strerror(rc));
        return -1;
    }

    int fd = -1;
    int last_errno = 0;
    for (struct addrinfo *ai = result; ai != nullptr;
         ai = ai->ai_next) {
        const int candidate =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (candidate < 0) {
            last_errno = errno;
            continue;
        }
        if (::connect(candidate, ai->ai_addr, ai->ai_addrlen) == 0) {
            fd = candidate;
            break;
        }
        last_errno = errno;
        ::close(candidate);
    }
    ::freeaddrinfo(result);
    if (fd < 0) {
        setError(error, "connect " + host + ":" + service + ": " +
                            std::strerror(last_errno));
        return -1;
    }
    util::setCloseOnExec(fd);
    // An unapplied timeout would silently turn every reap deadline
    // into "hang forever" — that is an error, not a default.
    if (!setSocketTimeouts(fd, options.readTimeoutMs,
                           options.writeTimeoutMs)) {
        setError(error, std::string("setsockopt timeouts: ") +
                            std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

namespace
{

/** Run the Hello handshake; fills @p negotiated on success. */
bool
handshake(int fd, const ClientOptions &options,
          std::uint64_t recorder_conn, std::uint32_t &negotiated,
          std::string *error)
{
    HelloBody hello;
    hello.version = options.protocolVersion;
    util::ByteWriter w;
    hello.encode(w);
    if (!writeFrame(fd, MsgType::Hello, w.bytes())) {
        setError(error, std::string("send failed: ") +
                            std::strerror(errno));
        return false;
    }
    recordSent(options, recorder_conn, MsgType::Hello, w.bytes());
    Frame reply;
    const FrameResult rc = readFrame(fd, reply, options.maxFrameBytes);
    if (rc != FrameResult::Ok) {
        setError(error, "handshake failed (no HelloOk)");
        return false;
    }
    recordReceived(options, recorder_conn, reply);
    if (reply.type == MsgType::Error) {
        ErrorBody err;
        util::ByteReader r(reply.body.data(), reply.body.size());
        setError(error, err.decode(r)
                            ? std::string(toString(err.code)) + ": " +
                                  err.message
                            : "malformed Error frame from server");
        return false;
    }
    if (reply.type != MsgType::HelloOk) {
        setError(error, "unexpected handshake reply type " +
                            std::to_string(static_cast<unsigned>(
                                reply.type)));
        return false;
    }
    HelloOkBody ok;
    util::ByteReader r(reply.body.data(), reply.body.size());
    if (!ok.decode(r)) {
        setError(error, "malformed HelloOk frame");
        return false;
    }
    negotiated = ok.version;
    return true;
}

/** Decode an Error or ChannelError frame into an error string. */
void
decodeErrorFrame(const Frame &reply, std::string *error)
{
    util::ByteReader r(reply.body.data(), reply.body.size());
    if (reply.type == MsgType::ChannelError) {
        ChannelErrorBody err;
        if (err.decode(r)) {
            setError(error, std::string(toString(err.code)) + ": " +
                                err.message);
            return;
        }
    } else {
        ErrorBody err;
        if (err.decode(r)) {
            setError(error, std::string(toString(err.code)) + ": " +
                                err.message);
            return;
        }
    }
    setError(error, "malformed error frame from server");
}

} // namespace

Client::~Client()
{
    disconnect();
}

void
Client::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    version_ = 0;
}

bool
Client::connect(const std::string &host, std::uint16_t port,
                ClientOptions options, std::string *error)
{
    disconnect();
    options_ = options;
    fd_ = dialServer(host, port, options_, error);
    if (fd_ < 0)
        return false;
    recorderConn_ = options_.recorder != nullptr
                        ? options_.recorder->nextConnectionId()
                        : 0;
    if (!handshake(fd_, options_, recorderConn_, version_, error)) {
        disconnect();
        return false;
    }
    return true;
}

bool
Client::roundTrip(MsgType type, const std::vector<std::uint8_t> &body,
                  MsgType expect, MsgType alt, Frame &reply,
                  std::string *error)
{
    if (fd_ < 0) {
        setError(error, "not connected");
        return false;
    }
    if (!writeFrame(fd_, type, body)) {
        setError(error, "send failed: " +
                            std::string(std::strerror(errno)));
        return false;
    }
    recordSent(options_, recorderConn_, type, body);
    const FrameResult result =
        readFrame(fd_, reply, options_.maxFrameBytes);
    switch (result) {
    case FrameResult::Ok:
        recordReceived(options_, recorderConn_, reply);
        break;
    case FrameResult::Eof:
        setError(error, "server closed the connection");
        return false;
    case FrameResult::Timeout:
        setError(error, "timed out waiting for the server");
        return false;
    case FrameResult::TooLarge:
        setError(error, "server frame exceeds the client limit");
        return false;
    case FrameResult::Error:
        setError(error, "connection error: " +
                            std::string(std::strerror(errno)));
        return false;
    }
    if (reply.type == MsgType::Error ||
        reply.type == MsgType::ChannelError) {
        decodeErrorFrame(reply, error);
        return false;
    }
    if (reply.type != expect &&
        !(alt != MsgType::Error && reply.type == alt)) {
        setError(error,
                 "unexpected reply type " +
                     std::to_string(
                         static_cast<unsigned>(reply.type)));
        return false;
    }
    return true;
}

bool
Client::open(const std::string &id, std::uint64_t seed,
             RemoteSession &session, std::string *error)
{
    OpenProfileBody body;
    body.id = id;
    body.seed = seed;
    util::ByteWriter w;
    body.encode(w);
    Frame reply;
    // A v2 server answers OpenProfile with ChannelOpened (same body).
    if (!roundTrip(MsgType::OpenProfile, w.bytes(), MsgType::Opened,
                   MsgType::ChannelOpened, reply, error))
        return false;
    OpenedBody opened;
    util::ByteReader r(reply.body.data(), reply.body.size());
    if (!opened.decode(r)) {
        setError(error, "malformed Opened frame");
        return false;
    }
    session = RemoteSession{};
    session.id = opened.session;
    session.name = opened.name;
    session.device = opened.device;
    session.leaves = opened.leaves;
    session.total = opened.total;
    session.done = opened.total == 0;
    return true;
}

bool
Client::next(RemoteSession &session, std::vector<mem::Request> &out,
             std::uint64_t maxRequests, std::string *error)
{
    SynthChunkBody body;
    body.session = session.id;
    body.maxRequests = maxRequests;
    util::ByteWriter w;
    body.encode(w);
    Frame reply;
    if (!roundTrip(MsgType::SynthChunk, w.bytes(), MsgType::Chunk,
                   MsgType::Error, reply, error))
        return false;
    ChunkBody chunk;
    util::ByteReader r(reply.body.data(), reply.body.size());
    if (!chunk.decode(r, out, session.codec)) {
        setError(error, "malformed Chunk frame");
        return false;
    }
    if (chunk.session != session.id ||
        chunk.firstSeq != session.received) {
        setError(error, "chunk out of sequence (expected seq " +
                            std::to_string(session.received) +
                            ", got " +
                            std::to_string(chunk.firstSeq) + ")");
        return false;
    }
    session.received += chunk.count;
    session.done = chunk.done;
    return true;
}

bool
Client::stat(RemoteSession &session, StatsBody &stats,
             std::string *error)
{
    StatBody body;
    body.session = session.id;
    util::ByteWriter w;
    body.encode(w);
    Frame reply;
    if (!roundTrip(MsgType::Stat, w.bytes(), MsgType::Stats,
                   MsgType::Error, reply, error))
        return false;
    util::ByteReader r(reply.body.data(), reply.body.size());
    if (!stats.decode(r)) {
        setError(error, "malformed Stats frame");
        return false;
    }
    return true;
}

bool
Client::serverStats(ServerStatsBody &stats, std::string *error)
{
    ServerStatBody body;
    util::ByteWriter w;
    body.encode(w);
    Frame reply;
    if (!roundTrip(MsgType::ServerStat, w.bytes(),
                   MsgType::ServerStats, MsgType::Error, reply, error))
        return false;
    util::ByteReader r(reply.body.data(), reply.body.size());
    if (!stats.decode(r)) {
        setError(error, "malformed ServerStats frame");
        return false;
    }
    return true;
}

bool
Client::close(RemoteSession &session, std::string *error)
{
    CloseBody body;
    body.session = session.id;
    util::ByteWriter w;
    body.encode(w);
    Frame reply;
    if (!roundTrip(MsgType::Close, w.bytes(), MsgType::Closed,
                   MsgType::Error, reply, error))
        return false;
    ClosedBody closed;
    util::ByteReader r(reply.body.data(), reply.body.size());
    if (!closed.decode(r)) {
        setError(error, "malformed Closed frame");
        return false;
    }
    return true;
}

bool
Client::fetch(RemoteSession &session, std::vector<mem::Request> &out,
              std::uint64_t chunkRequests, std::string *error)
{
    while (!session.done) {
        const std::uint64_t before = session.received;
        if (!next(session, out, chunkRequests, error))
            return false;
        if (!session.done && session.received == before) {
            setError(error, "server made no progress (empty chunk "
                            "before completion)");
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// MuxClient
// ---------------------------------------------------------------------

MuxClient::~MuxClient()
{
    disconnect();
}

void
MuxClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    version_ = 0;
    channels_.clear();
}

bool
MuxClient::connect(const std::string &host, std::uint16_t port,
                   ClientOptions options, std::string *error)
{
    disconnect();
    options_ = options;
    options_.protocolVersion = kVersion; // mux is a v2 feature
    fd_ = dialServer(host, port, options_, error);
    if (fd_ < 0)
        return false;
    recorderConn_ = options_.recorder != nullptr
                        ? options_.recorder->nextConnectionId()
                        : 0;
    if (!handshake(fd_, options_, recorderConn_, version_, error)) {
        disconnect();
        return false;
    }
    if (version_ < 2) {
        setError(error, "server only speaks protocol v" +
                            std::to_string(version_) +
                            " (multiplexing needs v2)");
        disconnect();
        return false;
    }
    return true;
}

bool
MuxClient::sendFrame(MsgType type,
                     const std::vector<std::uint8_t> &body,
                     std::string *error)
{
    if (fd_ < 0) {
        setError(error, "not connected");
        return false;
    }
    if (!writeFrame(fd_, type, body)) {
        setError(error, "send failed: " +
                            std::string(std::strerror(errno)));
        return false;
    }
    recordSent(options_, recorderConn_, type, body);
    return true;
}

bool
MuxClient::openChannel(std::uint64_t channel, const std::string &id,
                       std::uint64_t seed, std::string *error)
{
    if (channel == 0 || channels_.count(channel) != 0) {
        setError(error, "channel id 0 or already open");
        return false;
    }
    OpenChannelBody body;
    body.channel = channel;
    body.id = id;
    body.seed = seed;
    util::ByteWriter w;
    body.encode(w);
    if (!sendFrame(MsgType::OpenChannel, w.bytes(), error))
        return false;
    Channel &state = channels_[channel];
    state.id = channel;
    return true;
}

void
MuxClient::setSink(std::uint64_t channel, std::vector<mem::Request> *out)
{
    const auto it = channels_.find(channel);
    if (it != channels_.end())
        it->second.sink = out;
}

bool
MuxClient::pull(std::uint64_t channel, std::uint64_t maxRequests,
                std::string *error)
{
    const auto it = channels_.find(channel);
    if (it == channels_.end()) {
        setError(error, "channel " + std::to_string(channel) +
                            " is not open");
        return false;
    }
    SynthChunkBody body;
    body.session = channel;
    body.maxRequests = maxRequests;
    util::ByteWriter w;
    body.encode(w);
    if (!sendFrame(MsgType::SynthChunk, w.bytes(), error))
        return false;
    ++it->second.pullsOutstanding;
    return true;
}

bool
MuxClient::closeChannel(std::uint64_t channel, std::string *error)
{
    if (channels_.count(channel) == 0) {
        setError(error, "channel " + std::to_string(channel) +
                            " is not open");
        return false;
    }
    CloseBody body;
    body.session = channel;
    util::ByteWriter w;
    body.encode(w);
    return sendFrame(MsgType::Close, w.bytes(), error);
}

const MuxClient::Channel *
MuxClient::channel(std::uint64_t id) const
{
    const auto it = channels_.find(id);
    return it == channels_.end() ? nullptr : &it->second;
}

bool
MuxClient::nextEvent(Event &event, std::string *error)
{
    if (fd_ < 0) {
        setError(error, "not connected");
        return false;
    }
    Frame frame;
    const FrameResult rc = readFrame(fd_, frame, options_.maxFrameBytes);
    switch (rc) {
    case FrameResult::Ok:
        recordReceived(options_, recorderConn_, frame);
        break;
    case FrameResult::Eof: {
        // Name the channels the close cut off — "which stream, how
        // far along" is the first question a mid-stream EOF raises.
        std::string detail = "server closed the connection";
        std::string cut;
        for (const auto &[id, state] : channels_) {
            if (state.closed || (state.done && state.pullsOutstanding == 0))
                continue;
            if (!cut.empty())
                cut += "; ";
            cut += "channel " + std::to_string(id) + ": " +
                   std::to_string(state.received) + "/" +
                   std::to_string(state.total) +
                   " requests received, " +
                   std::to_string(state.pullsOutstanding) +
                   " pulls outstanding";
        }
        if (!cut.empty())
            detail += " mid-channel (" + cut + ")";
        setError(error, detail);
        return false;
    }
    case FrameResult::Timeout:
        setError(error, "timed out waiting for the server");
        return false;
    case FrameResult::TooLarge:
        setError(error, "server frame exceeds the client limit");
        return false;
    case FrameResult::Error:
        setError(error, "connection error: " +
                            std::string(std::strerror(errno)));
        return false;
    }

    util::ByteReader r(frame.body.data(), frame.body.size());
    event = Event{};
    switch (frame.type) {
    case MsgType::ChannelOpened:
    case MsgType::Opened: {
        OpenedBody opened;
        if (!opened.decode(r)) {
            setError(error, "malformed ChannelOpened frame");
            return false;
        }
        const auto it = channels_.find(opened.session);
        if (it == channels_.end()) {
            setError(error, "server opened unknown channel " +
                                std::to_string(opened.session));
            return false;
        }
        Channel &state = it->second;
        state.opened = true;
        state.total = opened.total;
        state.done = opened.total == 0;
        state.leaves = opened.leaves;
        state.name = opened.name;
        state.device = opened.device;
        event.kind = Event::Kind::Opened;
        event.channel = opened.session;
        return true;
    }
    case MsgType::Chunk: {
        // Peek the channel id to find the right carry state; the
        // decode then re-reads the full header.
        util::ByteReader peek(frame.body.data(), frame.body.size());
        const std::uint64_t id = peek.getVarint();
        const auto it = channels_.find(id);
        if (!peek.ok() || it == channels_.end()) {
            setError(error, "chunk for unknown channel " +
                                std::to_string(id));
            return false;
        }
        Channel &state = it->second;
        std::vector<mem::Request> scratch;
        std::vector<mem::Request> &out =
            state.sink != nullptr ? *state.sink : scratch;
        ChunkBody chunk;
        if (!chunk.decode(r, out, state.codec)) {
            setError(error, "malformed Chunk frame");
            return false;
        }
        if (chunk.firstSeq != state.received) {
            setError(error,
                     "chunk out of sequence on channel " +
                         std::to_string(id) + " (expected seq " +
                         std::to_string(state.received) + ", got " +
                         std::to_string(chunk.firstSeq) + ")");
            return false;
        }
        state.received += chunk.count;
        state.done = chunk.done;
        if (state.pullsOutstanding > 0)
            --state.pullsOutstanding;
        event.kind = Event::Kind::Chunk;
        event.channel = id;
        event.count = chunk.count;
        event.done = chunk.done;
        return true;
    }
    case MsgType::Closed: {
        ClosedBody closed;
        if (!closed.decode(r)) {
            setError(error, "malformed Closed frame");
            return false;
        }
        const auto it = channels_.find(closed.session);
        if (it != channels_.end()) {
            it->second.closed = true;
            // Close cancels queued pulls server-side; forget them.
            it->second.pullsOutstanding = 0;
        }
        event.kind = Event::Kind::Closed;
        event.channel = closed.session;
        return true;
    }
    case MsgType::ChannelError: {
        ChannelErrorBody err;
        if (!err.decode(r)) {
            setError(error, "malformed ChannelError frame");
            return false;
        }
        const auto it = channels_.find(err.channel);
        if (it != channels_.end()) {
            it->second.closed = true;
            it->second.pullsOutstanding = 0;
        }
        event.kind = Event::Kind::ChannelError;
        event.channel = err.channel;
        event.code = err.code;
        event.message = err.message;
        return true;
    }
    case MsgType::Error: {
        decodeErrorFrame(frame, error);
        return false;
    }
    default:
        setError(error, "unexpected frame type " +
                            std::to_string(static_cast<unsigned>(
                                frame.type)));
        return false;
    }
}

bool
MuxClient::fetchAll(const std::vector<FetchSpec> &specs,
                    std::vector<std::vector<mem::Request>> &outs,
                    std::uint64_t chunkRequests,
                    std::uint64_t pullDepth, std::string *error)
{
    if (pullDepth == 0)
        pullDepth = 1;
    outs.clear();
    outs.resize(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>(i) + 1;
        if (!openChannel(id, specs[i].id, specs[i].seed, error))
            return false;
        setSink(id, &outs[i]);
    }

    std::size_t live = specs.size();
    while (live > 0) {
        Event event;
        if (!nextEvent(event, error))
            return false;
        const auto it = channels_.find(event.channel);
        if (it == channels_.end())
            continue;
        Channel &state = it->second;
        switch (event.kind) {
        case Event::Kind::Opened:
        case Event::Kind::Chunk: {
            if (state.done) {
                if (state.pullsOutstanding == 0 && !state.closed) {
                    if (!closeChannel(event.channel, error))
                        return false;
                }
                break;
            }
            // Keep the pipeline full: top up to pullDepth credits.
            while (state.pullsOutstanding < pullDepth) {
                if (!pull(event.channel, chunkRequests, error))
                    return false;
            }
            break;
        }
        case Event::Kind::Closed:
            --live;
            break;
        case Event::Kind::ChannelError:
            setError(error, "channel " +
                                std::to_string(event.channel) + ": " +
                                std::string(toString(event.code)) +
                                ": " + event.message);
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// Convenience wrappers
// ---------------------------------------------------------------------

bool
fetchTrace(const std::string &host, std::uint16_t port,
           const std::string &id, std::uint64_t seed, mem::Trace &trace,
           std::uint64_t chunkRequests, std::string *error)
{
    Client client;
    if (!client.connect(host, port, {}, error))
        return false;
    RemoteSession session;
    if (!client.open(id, seed, session, error))
        return false;
    std::vector<mem::Request> requests;
    requests.reserve(static_cast<std::size_t>(session.total));
    if (!client.fetch(session, requests, chunkRequests, error))
        return false;
    if (!client.close(session, error))
        return false;
    trace = mem::Trace(session.name, session.device);
    trace.requests() = std::move(requests);
    return true;
}

namespace
{

/**
 * Deterministic k-way merge keyed (tick, stream index) — the same key
 * the scenario engine merges its device streams with, so the result is
 * byte-identical to the server's merged "scenario:<name>" stream.
 */
void
mergeStreams(const std::vector<std::vector<mem::Request>> &streams,
             std::vector<mem::Request> &out)
{
    struct Head
    {
        mem::Tick tick;
        std::size_t stream;

        bool
        operator>(const Head &other) const
        {
            if (tick != other.tick)
                return tick > other.tick;
            return stream > other.stream;
        }
    };
    std::priority_queue<Head, std::vector<Head>, std::greater<Head>>
        heap;
    std::vector<std::size_t> cursor(streams.size(), 0);
    std::size_t total = 0;
    for (std::size_t i = 0; i < streams.size(); ++i) {
        total += streams[i].size();
        if (!streams[i].empty())
            heap.push(Head{streams[i][0].tick, i});
    }
    out.clear();
    out.reserve(total);
    while (!heap.empty()) {
        const Head head = heap.top();
        heap.pop();
        out.push_back(streams[head.stream][cursor[head.stream]]);
        if (++cursor[head.stream] < streams[head.stream].size())
            heap.push(
                Head{streams[head.stream][cursor[head.stream]].tick,
                     head.stream});
    }
}

} // namespace

bool
fetchTraceMux(const std::string &host, std::uint16_t port,
              const std::string &id, std::uint64_t seed,
              mem::Trace &trace, std::uint64_t chunkRequests,
              std::string *error)
{
    // Composed scenarios stream one channel per device: probe the
    // merged id for its stream-part count (OpenedBody.leaves), then
    // fetch every "scenario:<name>#<k>" sub-stream concurrently and
    // reassemble with the engine's own merge key.
    const bool composed = id.rfind("scenario:", 0) == 0 &&
                          id.find('#') == std::string::npos;
    std::uint64_t parts = 0;
    std::string name;
    std::string device;
    if (composed) {
        Client probe;
        if (!probe.connect(host, port, {}, error))
            return false;
        RemoteSession session;
        if (!probe.open(id, seed, session, error))
            return false;
        parts = session.leaves;
        name = session.name;
        device = session.device;
        if (!probe.close(session, error))
            return false;
    }

    MuxClient client;
    if (!client.connect(host, port, {}, error))
        return false;
    if (parts == 0) {
        std::vector<FetchSpec> specs(1);
        specs[0].id = id;
        specs[0].seed = seed;
        std::vector<std::vector<mem::Request>> outs;
        if (!client.fetchAll(specs, outs, chunkRequests,
                             /*pullDepth=*/4, error))
            return false;
        const MuxClient::Channel *state = client.channel(1);
        trace = mem::Trace(state != nullptr ? state->name : "",
                           state != nullptr ? state->device : "");
        trace.requests() = std::move(outs[0]);
        return true;
    }

    std::vector<FetchSpec> specs(static_cast<std::size_t>(parts));
    for (std::uint64_t k = 0; k < parts; ++k) {
        specs[k].id = id + "#" + std::to_string(k);
        specs[k].seed = seed;
    }
    std::vector<std::vector<mem::Request>> outs;
    if (!client.fetchAll(specs, outs, chunkRequests, /*pullDepth=*/4,
                         error))
        return false;
    trace = mem::Trace(name, device);
    mergeStreams(outs, trace.requests());
    return true;
}

} // namespace mocktails::serve
