#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/recorder.hpp"
#include "telemetry/metrics.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::serve
{

using Clock = std::chrono::steady_clock;

namespace
{

void
countMetric(const char *name, std::uint64_t delta = 1)
{
    if (!telemetry::enabled())
        return;
    telemetry::MetricsRegistry::global().counter(name).add(delta);
}

void
gaugeMetric(const char *name, std::int64_t delta)
{
    if (!telemetry::enabled())
        return;
    telemetry::MetricsRegistry::global().gauge(name).add(delta);
}

std::vector<std::uint8_t>
packErrorFrame(ErrorCode code, const std::string &message)
{
    ErrorBody body;
    body.code = code;
    body.message = message;
    util::ByteWriter w;
    body.encode(w);
    return packFrame(MsgType::Error, w.bytes());
}

std::vector<std::uint8_t>
packChannelErrorFrame(std::uint64_t channel, ErrorCode code,
                      const std::string &message)
{
    ChannelErrorBody body;
    body.channel = channel;
    body.code = code;
    body.message = message;
    util::ByteWriter w;
    body.encode(w);
    return packFrame(MsgType::ChannelError, w.bytes());
}

} // namespace

AcceptAction
classifyAcceptError(int error)
{
    if (error == EINTR || error == ECONNABORTED || error == EAGAIN ||
        error == EWOULDBLOCK
#ifdef EPROTO
        || error == EPROTO
#endif
    )
        return AcceptAction::Skip;
    // EMFILE / ENFILE / ENOBUFS / ENOMEM — and anything unexpected:
    // back off and keep the listener alive.
    return AcceptAction::Backoff;
}

/** One channel (v2) / session (v1): a synthesis stream plus its wire
 *  carry state and queued pulls. Held by shared_ptr so an in-flight
 *  pool task keeps the session alive across a connection close. */
struct StreamServer::ChannelState
{
    std::uint64_t id = 0;
    /** Null while the open task is in flight. */
    std::unique_ptr<SynthesisSession> session;
    mem::RequestCodecState codec;
    std::deque<std::uint64_t> pulls; ///< queued pull sizes (credits)
    bool busy = false;   ///< a pool task (open or chunk) is in flight
    bool queued = false; ///< sitting in the connection's ready queue
    bool closeRequested = false; ///< Close arrived while busy
};

/** Per-connection state machine, owned by the event loop. */
struct StreamServer::Connection
{
    std::uint64_t id = 0;
    int fd = -1;
    std::uint32_t version = 0; ///< negotiated; 0 until Hello
    FrameParser parser;
    std::deque<std::vector<std::uint8_t>> writeQueue;
    std::size_t writeBytes = 0;  ///< unsent bytes across the queue
    std::size_t writeOffset = 0; ///< sent prefix of writeQueue.front()
    bool wantWrite = false;      ///< current poller write interest
    bool readOpen = true;  ///< still reading commands from the peer
    bool draining = false; ///< flush in-flight work, then close
    std::uint64_t nextChannel = 1;
    std::map<std::uint64_t, std::shared_ptr<ChannelState>> channels;
    std::deque<std::uint64_t> ready; ///< round-robin pull scheduling
    unsigned tasksInFlight = 0;
    Clock::time_point lastActivity;
    Clock::time_point writeStallSince{};
    bool writeStalled = false;

    explicit Connection(std::uint32_t max_frame_bytes)
        : parser(max_frame_bytes)
    {
    }
};

/** A pool task's result, posted back to the event loop. */
struct StreamServer::Completion
{
    std::uint64_t conn = 0;
    std::uint64_t channel = 0;
    /** Keeps the session alive until the loop has seen the result. */
    std::shared_ptr<ChannelState> state;
    std::vector<std::uint8_t> frame; ///< fully packed response frame
    bool openFailed = false; ///< open task failed; drop the channel
};

StreamServer::StreamServer(ProfileStore &store, ServerOptions options)
    : store_(&store), options_(std::move(options))
{
    if (options_.maxTasksPerConnection == 0)
        options_.maxTasksPerConnection = 1;
}

StreamServer::~StreamServer()
{
    stop();
}

util::ThreadPool &
StreamServer::pool()
{
    return options_.pool != nullptr ? *options_.pool
                                    : util::ThreadPool::global();
}

bool
StreamServer::start(std::string *error)
{
    const auto fail = [&](const std::string &what) {
        if (error != nullptr)
            *error = what;
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        return false;
    };

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (started_)
            return fail("server already started");
    }

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        return fail(std::string("socket: ") + std::strerror(errno));
    if (!util::setNonBlocking(listen_fd_) ||
        !util::setCloseOnExec(listen_fd_))
        return fail(std::string("fcntl: ") + std::strerror(errno));

    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bindAddress.c_str(),
                    &addr.sin_addr) != 1)
        return fail("bad bind address '" + options_.bindAddress + "'");

    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind " + options_.bindAddress + ":" +
                    std::to_string(options_.port) + ": " +
                    std::strerror(errno));

    if (::listen(listen_fd_, options_.backlog) != 0)
        return fail(std::string("listen: ") + std::strerror(errno));

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0)
        return fail(std::string("getsockname: ") +
                    std::strerror(errno));
    port_ = ntohs(addr.sin_port);

    poller_ = std::make_unique<util::Poller>(options_.pollerBackend);
    if (!poller_->valid() || !wake_.valid())
        return fail("cannot create poller/wake pipe");
    if (!poller_->add(listen_fd_, true, false) ||
        !poller_->add(wake_.fd(), true, false))
        return fail("cannot register listener with poller");

    listener_closed_ = false;
    accept_paused_ = false;
    drain_begun_ = false;
    accept_backoff_ms_ = 0;
    next_conn_id_ = 1;
    tasks_in_flight_ = 0;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_requested_ = false;
        started_ = true;
        loop_done_ = false;
    }
    loop_ = std::thread([this] { eventLoop(); });
    return true;
}

void
StreamServer::stop()
{
    bool stopper = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_)
            return;
        if (!stop_requested_) {
            stop_requested_ = true;
            stopper = true;
        }
    }
    wake_.notify();
    if (stopper) {
        if (loop_.joinable())
            loop_.join();
        std::lock_guard<std::mutex> lock(mutex_);
        started_ = false;
        drained_.notify_all();
    } else {
        // A concurrent stop() is tearing the loop down; wait for it.
        std::unique_lock<std::mutex> lock(mutex_);
        drained_.wait(lock, [this] { return loop_done_; });
    }
}

void
StreamServer::waitForConnections(std::uint64_t connections)
{
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this, connections] {
        return completed_ >= connections && active_ == 0;
    });
}

std::uint64_t
StreamServer::connectionsAccepted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return accepted_;
}

std::uint64_t
StreamServer::connectionsCompleted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

unsigned
StreamServer::connectionsActive() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return active_;
}

// ---------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------

void
StreamServer::eventLoop()
{
    std::vector<util::PollerEvent> events;
    for (;;) {
        bool stopping;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping = stop_requested_;
        }
        if (stopping && !drain_begun_)
            beginStopDrain();
        if (stopping && connections_.empty() &&
            tasks_in_flight_ == 0)
            break;

        resumeAcceptingIfDue();

        const int timeout = stopping ? 50 : computeTimeoutMs();
        poller_->wait(events, timeout);
        wake_.drain();

        processCompletions();

        for (const util::PollerEvent &ev : events) {
            if (ev.fd == wake_.fd())
                continue;
            if (ev.fd == listen_fd_ && !listener_closed_) {
                if (ev.readable)
                    acceptReady();
                continue;
            }
            const auto it = by_fd_.find(ev.fd);
            if (it == by_fd_.end())
                continue; // closed earlier in this batch
            const std::uint64_t conn_id = it->second;
            if (ev.error) {
                countMetric("serve.errors");
                closeConnection(conn_id, false);
                continue;
            }
            if (ev.writable) {
                Connection *conn = findConnection(conn_id);
                if (conn != nullptr && !flushWrites(*conn)) {
                    closeConnection(conn_id, false);
                    continue;
                }
            }
            if (ev.readable) {
                Connection *conn = findConnection(conn_id);
                if (conn != nullptr && conn->readOpen)
                    readInput(*conn);
            }
        }

        reapDeadlined();
    }

    // Drain any completions posted while the last connections closed,
    // *before* the loop joins: their shared_ptrs release sessions
    // here, on the loop thread, and each orphaned frame is counted as
    // serve.completions_dropped instead of vanishing.
    processCompletions();

    if (!listener_closed_ && listen_fd_ >= 0) {
        poller_->remove(listen_fd_);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    loop_done_ = true;
    drained_.notify_all();
}

void
StreamServer::beginStopDrain()
{
    drain_begun_ = true;
    if (!listener_closed_ && listen_fd_ >= 0) {
        poller_->remove(listen_fd_);
        ::close(listen_fd_);
        listen_fd_ = -1;
        listener_closed_ = true;
    }
    // Snapshot ids: closing mutates connections_.
    std::vector<std::uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto &[id, conn] : connections_)
        ids.push_back(id);
    for (const std::uint64_t id : ids) {
        Connection *conn = findConnection(id);
        if (conn == nullptr)
            continue;
        startDrain(*conn);
    }
}

int
StreamServer::computeTimeoutMs() const
{
    Clock::time_point deadline = Clock::time_point::max();
    if (accept_paused_)
        deadline = std::min(deadline, accept_resume_at_);
    for (const auto &[id, conn] : connections_) {
        if (options_.readTimeoutMs > 0 && conn->tasksInFlight == 0 &&
            conn->writeBytes == 0)
            deadline = std::min(
                deadline, conn->lastActivity +
                              std::chrono::milliseconds(
                                  options_.readTimeoutMs));
        if (options_.writeTimeoutMs > 0 && conn->writeStalled)
            deadline = std::min(
                deadline, conn->writeStallSince +
                              std::chrono::milliseconds(
                                  options_.writeTimeoutMs));
    }
    if (deadline == Clock::time_point::max())
        return -1;
    const auto delta =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now())
            .count();
    // +1 rounds up so a deadline is past, not re-polled, on wakeup.
    return delta <= 0 ? 0 : static_cast<int>(delta) + 1;
}

void
StreamServer::reapDeadlined()
{
    const Clock::time_point now = Clock::now();
    std::vector<std::uint64_t> victims;
    for (const auto &[id, conn] : connections_) {
        if (conn->draining)
            continue;
        if (options_.readTimeoutMs > 0 && conn->tasksInFlight == 0 &&
            conn->writeBytes == 0 &&
            now - conn->lastActivity >=
                std::chrono::milliseconds(options_.readTimeoutMs))
            victims.push_back(id);
        else if (options_.writeTimeoutMs > 0 && conn->writeStalled &&
                 now - conn->writeStallSince >=
                     std::chrono::milliseconds(options_.writeTimeoutMs))
            victims.push_back(id);
    }
    for (const std::uint64_t id : victims)
        closeConnection(id, true);
}

// ---------------------------------------------------------------------
// Accept path
// ---------------------------------------------------------------------

void
StreamServer::acceptReady()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            const int err = errno;
            if (err == EAGAIN || err == EWOULDBLOCK)
                return; // drained the backlog
            accept_errors_.fetch_add(1, std::memory_order_relaxed);
            countMetric("serve.accept_errors");
            if (classifyAcceptError(err) == AcceptAction::Backoff) {
                pauseAccepting();
                return;
            }
            continue; // ECONNABORTED and friends: skip this one
        }
        accept_backoff_ms_ = 0;

        if (!util::setNonBlocking(fd) || !util::setCloseOnExec(fd)) {
            sockopt_errors_.fetch_add(1, std::memory_order_relaxed);
            countMetric("serve.sockopt_errors");
            ::close(fd);
            continue;
        }
        const int one = 1;
        if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one)) != 0) {
            // Harmless (latency only); counted, not fatal.
            sockopt_errors_.fetch_add(1, std::memory_order_relaxed);
            countMetric("serve.sockopt_errors");
        }

        auto conn = std::make_unique<Connection>(options_.maxFrameBytes);
        conn->id = next_conn_id_++;
        conn->fd = fd;
        conn->lastActivity = Clock::now();
        if (!poller_->add(fd, true, false)) {
            ::close(fd);
            continue;
        }
        by_fd_[fd] = conn->id;
        connections_[conn->id] = std::move(conn);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++accepted_;
            ++active_;
        }
        countMetric("serve.connections");
        gaugeMetric("serve.connections_active", 1);
    }
}

void
StreamServer::pauseAccepting()
{
    if (accept_paused_ || listener_closed_)
        return;
    accept_backoff_ms_ = accept_backoff_ms_ == 0
                             ? std::max(1, options_.acceptBackoffMs)
                             : std::min(accept_backoff_ms_ * 2, 1000);
    accept_resume_at_ =
        Clock::now() + std::chrono::milliseconds(accept_backoff_ms_);
    poller_->remove(listen_fd_);
    accept_paused_ = true;
}

void
StreamServer::resumeAcceptingIfDue()
{
    if (!accept_paused_ || listener_closed_)
        return;
    if (Clock::now() < accept_resume_at_)
        return;
    accept_paused_ = false;
    poller_->add(listen_fd_, true, false);
    acceptReady(); // the backlog may be waiting already
}

// ---------------------------------------------------------------------
// Connection I/O
// ---------------------------------------------------------------------

StreamServer::Connection *
StreamServer::findConnection(std::uint64_t conn_id)
{
    const auto it = connections_.find(conn_id);
    return it == connections_.end() ? nullptr : it->second.get();
}

void
StreamServer::updateInterest(Connection &conn)
{
    const bool want_write = conn.writeBytes > 0;
    const bool want_read = conn.readOpen;
    if (want_write == conn.wantWrite && want_read)
        return; // common case: read-only interest, unchanged
    conn.wantWrite = want_write;
    poller_->modify(conn.fd, want_read, want_write);
}

void
StreamServer::enqueueFrame(Connection &conn,
                           std::vector<std::uint8_t> frame)
{
    // Frames arrive packed (length u32 + type + body); the recorder
    // wants the type and bare body.
    if (options_.recorder != nullptr && frame.size() >= 5)
        options_.recorder->record(
            FrameDirection::ServerToClient, conn.id,
            static_cast<MsgType>(frame[4]), frame.data() + 5,
            frame.size() - 5);
    conn.writeBytes += frame.size();
    conn.writeQueue.push_back(std::move(frame));
    countMetric("serve.frames_out");
    if (!flushWrites(conn))
        closeConnection(conn.id, false);
}

bool
StreamServer::flushWrites(Connection &conn)
{
    while (!conn.writeQueue.empty()) {
        const std::vector<std::uint8_t> &front =
            conn.writeQueue.front();
        const std::size_t pending = front.size() - conn.writeOffset;
        // MSG_NOSIGNAL: a peer that vanished mid-write must surface
        // as EPIPE, not kill the process with SIGPIPE.
        const ssize_t n =
            ::send(conn.fd, front.data() + conn.writeOffset, pending,
                   MSG_NOSIGNAL);
        if (n > 0) {
            conn.writeOffset += static_cast<std::size_t>(n);
            conn.writeBytes -= static_cast<std::size_t>(n);
            if (conn.writeOffset == front.size()) {
                conn.writeQueue.pop_front();
                conn.writeOffset = 0;
            }
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!conn.writeStalled) {
                conn.writeStalled = true;
                conn.writeStallSince = Clock::now();
                countMetric("serve.write_stalls");
            }
            updateInterest(conn);
            return true;
        }
        countMetric("serve.errors");
        return false; // fatal socket error
    }
    conn.writeStalled = false;
    updateInterest(conn);
    if (conn.draining)
        maybeFinishDrain(conn);
    else
        schedulePulls(conn); // buffer drained; backpressure may lift
    return true;
}

void
StreamServer::readInput(Connection &conn)
{
    std::uint8_t buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn.lastActivity = Clock::now();
            conn.parser.append(buf, static_cast<std::size_t>(n));
            Frame frame;
            for (;;) {
                const FrameParser::Next verdict =
                    conn.parser.next(frame);
                if (verdict == FrameParser::Next::NeedMore)
                    break;
                if (verdict == FrameParser::Next::TooLarge) {
                    sendConnError(
                        conn, ErrorCode::BadFrame,
                        "frame exceeds " +
                            std::to_string(options_.maxFrameBytes) +
                            " bytes");
                    startDrain(conn);
                    return;
                }
                if (verdict == FrameParser::Next::Malformed) {
                    countMetric("serve.errors");
                    closeConnection(conn.id, false);
                    return;
                }
                countMetric("serve.frames_in");
                if (options_.recorder != nullptr)
                    options_.recorder->record(
                        FrameDirection::ClientToServer, conn.id,
                        frame);
                if (!dispatchFrame(conn, frame)) {
                    startDrain(conn);
                    return;
                }
            }
            if (static_cast<std::size_t>(n) < sizeof(buf))
                return; // likely drained; wait for the next event
            continue;
        }
        if (n == 0) {
            // EOF. Mid-frame truncation is an error; either way stop
            // reading and wind the connection down once in-flight
            // work has flushed.
            if (conn.parser.buffered() > 0)
                countMetric("serve.errors");
            startDrain(conn);
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        countMetric("serve.errors");
        closeConnection(conn.id, false);
        return;
    }
}

void
StreamServer::startDrain(Connection &conn)
{
    if (conn.draining)
        return;
    conn.draining = true;
    conn.readOpen = false;
    // Queued-but-unscheduled pulls die with the drain; in-flight
    // tasks finish and their frames are flushed.
    conn.ready.clear();
    for (auto &[id, channel] : conn.channels)
        channel->pulls.clear();
    updateInterest(conn);
    maybeFinishDrain(conn);
}

void
StreamServer::maybeFinishDrain(Connection &conn)
{
    if (!conn.draining || conn.tasksInFlight > 0 ||
        conn.writeBytes > 0)
        return;
    closeConnection(conn.id, false);
}

void
StreamServer::closeConnection(std::uint64_t conn_id, bool timed_out)
{
    const auto it = connections_.find(conn_id);
    if (it == connections_.end())
        return;
    Connection &conn = *it->second;
    if (timed_out)
        countMetric("serve.timeouts");
    poller_->remove(conn.fd);
    by_fd_.erase(conn.fd);
    ::close(conn.fd);
    // Sessions close via their destructors unless a pool task still
    // holds the shared state — then the completion path drops the
    // last reference (still on this thread).
    connections_.erase(it);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
        ++completed_;
    }
    gaugeMetric("serve.connections_active", -1);
    drained_.notify_all();
}

// ---------------------------------------------------------------------
// Frame dispatch and scheduling
// ---------------------------------------------------------------------

void
StreamServer::sendConnError(Connection &conn, ErrorCode code,
                            const std::string &message)
{
    countMetric("serve.errors");
    enqueueFrame(conn, packErrorFrame(code, message));
}

void
StreamServer::sendChannelError(Connection &conn, std::uint64_t channel,
                               ErrorCode code,
                               const std::string &message)
{
    countMetric("serve.errors");
    if (conn.version >= 2)
        enqueueFrame(conn,
                     packChannelErrorFrame(channel, code, message));
    else
        enqueueFrame(conn, packErrorFrame(code, message));
}

bool
StreamServer::dispatchFrame(Connection &conn, const Frame &frame)
{
    util::ByteReader r(frame.body.data(), frame.body.size());

    if (conn.version == 0) {
        HelloBody hello;
        if (frame.type != MsgType::Hello || !hello.decode(r)) {
            sendConnError(conn, ErrorCode::BadFrame,
                          "expected Hello as the first frame");
            return false;
        }
        if (hello.magic != kMagic ||
            hello.version < kVersionLegacy ||
            hello.version > kVersion) {
            sendConnError(conn, ErrorCode::BadVersion,
                          "unsupported protocol magic/version");
            return false;
        }
        conn.version = hello.version;
        if (conn.version == kVersionLegacy) {
            enqueueFrame(conn, packFrame(MsgType::HelloOk, {}));
        } else {
            HelloOkBody ok;
            ok.version = conn.version;
            util::ByteWriter w;
            ok.encode(w);
            enqueueFrame(conn, packFrame(MsgType::HelloOk, w.bytes()));
        }
        return true;
    }

    switch (frame.type) {
    case MsgType::OpenProfile: {
        OpenProfileBody body;
        if (!body.decode(r)) {
            sendConnError(conn, ErrorCode::BadFrame,
                          "bad OpenProfile body");
            return false;
        }
        const std::uint64_t channel = conn.nextChannel++;
        startOpen(conn, channel, std::move(body.id), body.seed);
        return true;
    }
    case MsgType::OpenChannel: {
        if (conn.version < 2) {
            sendConnError(conn, ErrorCode::BadFrame,
                          "OpenChannel requires protocol v2");
            return false;
        }
        OpenChannelBody body;
        if (!body.decode(r)) {
            sendConnError(conn, ErrorCode::BadFrame,
                          "bad OpenChannel body");
            return false;
        }
        if (body.channel == 0 ||
            conn.channels.count(body.channel) != 0) {
            sendChannelError(conn, body.channel, ErrorCode::BadFrame,
                             "channel id 0 or already open");
            return true;
        }
        // Keep server-assigned v1 ids clear of client-chosen ones.
        conn.nextChannel =
            std::max(conn.nextChannel, body.channel + 1);
        startOpen(conn, body.channel, std::move(body.id), body.seed);
        return true;
    }
    case MsgType::SynthChunk: {
        SynthChunkBody body;
        if (!body.decode(r)) {
            sendConnError(conn, ErrorCode::BadFrame,
                          "bad SynthChunk body");
            return false;
        }
        const auto it = conn.channels.find(body.session);
        if (it == conn.channels.end()) {
            sendChannelError(conn, body.session,
                             ErrorCode::UnknownSession,
                             "no session " +
                                 std::to_string(body.session));
            return true;
        }
        std::uint64_t max = options_.maxChunkRequests;
        if (body.maxRequests != 0 && body.maxRequests < max)
            max = body.maxRequests;
        ChannelState &channel = *it->second;
        channel.pulls.push_back(max);
        if (!channel.busy && !channel.queued) {
            channel.queued = true;
            conn.ready.push_back(channel.id);
        }
        schedulePulls(conn);
        return true;
    }
    case MsgType::Stat: {
        StatBody body;
        if (!body.decode(r)) {
            sendConnError(conn, ErrorCode::BadFrame, "bad Stat body");
            return false;
        }
        const auto it = conn.channels.find(body.session);
        if (it == conn.channels.end() ||
            it->second->session == nullptr) {
            sendChannelError(conn, body.session,
                             ErrorCode::UnknownSession,
                             "no session " +
                                 std::to_string(body.session));
            return true;
        }
        StatsBody stats;
        stats.session = body.session;
        stats.emitted = it->second->session->emitted();
        stats.total = it->second->session->total();
        stats.buffered = it->second->session->buffered();
        util::ByteWriter w;
        stats.encode(w);
        enqueueFrame(conn, packFrame(MsgType::Stats, w.bytes()));
        return true;
    }
    case MsgType::Close: {
        CloseBody body;
        if (!body.decode(r)) {
            sendConnError(conn, ErrorCode::BadFrame, "bad Close body");
            return false;
        }
        const auto it = conn.channels.find(body.session);
        if (it == conn.channels.end()) {
            sendChannelError(conn, body.session,
                             ErrorCode::UnknownSession,
                             "no session " +
                                 std::to_string(body.session));
            return true;
        }
        const std::shared_ptr<ChannelState> channel = it->second;
        if (channel->busy) {
            // Defer: the in-flight task's completion finishes the
            // close. Queued pulls are cancelled now.
            channel->closeRequested = true;
            channel->pulls.clear();
            return true;
        }
        finishClose(conn, body.session, channel);
        return true;
    }
    case MsgType::ServerStat: {
        ServerStatBody body;
        if (!body.decode(r)) {
            sendConnError(conn, ErrorCode::BadFrame,
                          "bad ServerStat body");
            return false;
        }
        enqueueFrame(conn, packServerStatsFrame());
        return true;
    }
    default:
        sendConnError(conn, ErrorCode::BadFrame,
                      "unknown frame type " +
                          std::to_string(
                              static_cast<unsigned>(frame.type)));
        return false;
    }
}

std::vector<std::uint8_t>
StreamServer::packServerStatsFrame() const
{
    // Start from the telemetry snapshot (when collection is on), then
    // overwrite with the authoritative always-on counters — the
    // server's own atomics and the store's introspection do not
    // depend on telemetry::enabled().
    std::map<std::string, std::int64_t> values;
    if (telemetry::enabled()) {
        const telemetry::Snapshot snapshot =
            telemetry::MetricsRegistry::global().snapshot();
        for (const auto &counter : snapshot.counters)
            values[counter.name] =
                static_cast<std::int64_t>(counter.value);
        for (const auto &gauge : snapshot.gauges)
            values[gauge.name] = gauge.value;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        values["serve.connections_accepted"] =
            static_cast<std::int64_t>(accepted_);
        values["serve.connections_completed"] =
            static_cast<std::int64_t>(completed_);
        values["serve.connections_active"] =
            static_cast<std::int64_t>(active_);
    }
    values["serve.accept_errors"] =
        static_cast<std::int64_t>(accept_errors_.load());
    values["serve.sockopt_errors"] =
        static_cast<std::int64_t>(sockopt_errors_.load());
    values["serve.completions_dropped"] =
        static_cast<std::int64_t>(completions_dropped_.load());
    values["store.hits"] = static_cast<std::int64_t>(store_->hits());
    values["store.misses"] =
        static_cast<std::int64_t>(store_->misses());
    values["store.evictions"] =
        static_cast<std::int64_t>(store_->evictions());
    values["store.loads"] = static_cast<std::int64_t>(store_->loads());
    values["store.resident_profiles"] =
        static_cast<std::int64_t>(store_->residentCount());
    values["store.resident_bytes"] =
        static_cast<std::int64_t>(store_->residentBytes());
    values["recorder.enabled"] =
        options_.recorder != nullptr && options_.recorder->enabled()
            ? 1
            : 0;
    if (options_.recorder != nullptr) {
        values["recorder.frames"] =
            static_cast<std::int64_t>(options_.recorder->frames());
        values["recorder.bytes"] =
            static_cast<std::int64_t>(options_.recorder->bytes());
    }

    ServerStatsBody stats;
    stats.entries.reserve(values.size());
    for (const auto &[name, value] : values)
        stats.entries.push_back({name, value});
    util::ByteWriter w;
    stats.encode(w);
    return packFrame(MsgType::ServerStats, w.bytes());
}

void
StreamServer::finishClose(Connection &conn, std::uint64_t channel,
                          const std::shared_ptr<ChannelState> &state)
{
    ClosedBody closed;
    closed.session = channel;
    closed.emitted =
        state->session != nullptr ? state->session->emitted() : 0;
    if (state->session != nullptr)
        state->session->close();
    conn.channels.erase(channel);
    util::ByteWriter w;
    closed.encode(w);
    enqueueFrame(conn, packFrame(MsgType::Closed, w.bytes()));
}

void
StreamServer::startOpen(Connection &conn, std::uint64_t channel,
                        std::string id, std::uint64_t seed)
{
    auto state = std::make_shared<ChannelState>();
    state->id = channel;
    state->busy = true; // the open task is in flight
    conn.channels[channel] = state;
    ++conn.tasksInFlight;
    ++tasks_in_flight_;

    const std::uint64_t conn_id = conn.id;
    const std::uint32_t version = conn.version;
    ProfileStore *store = store_;
    const std::size_t session_buffer = options_.sessionBuffer;
    pool().submit([this, conn_id, channel, state, version, store,
                   session_buffer, id = std::move(id), seed] {
        Completion completion;
        completion.conn = conn_id;
        completion.channel = channel;
        completion.state = state;
        std::string error;
        auto stored = store->get(id, &error);
        if (stored == nullptr) {
            completion.openFailed = true;
            completion.frame =
                version >= 2
                    ? packChannelErrorFrame(
                          channel, ErrorCode::UnknownProfile, error)
                    : packErrorFrame(ErrorCode::UnknownProfile, error);
        } else {
            SessionOptions session_options;
            session_options.seed = seed;
            session_options.bufferCapacity = session_buffer;
            state->session = std::make_unique<SynthesisSession>(
                std::move(stored), session_options);
            OpenedBody opened;
            opened.session = channel;
            const StoredProfile &profile = state->session->profile();
            opened.name = profile.trace != nullptr
                              ? profile.trace->name()
                              : profile.profile.name;
            opened.device = profile.trace != nullptr
                                ? profile.trace->device()
                                : profile.profile.device;
            // Scenario entries advertise their device-stream count so
            // a mux fetch knows how many "#k" channels to open; plain
            // profiles keep reporting their leaf count.
            opened.leaves = profile.streamParts != 0
                                ? profile.streamParts
                                : profile.profile.leaves.size();
            opened.total = state->session->total();
            util::ByteWriter w;
            opened.encode(w);
            completion.frame =
                packFrame(version >= 2 ? MsgType::ChannelOpened
                                       : MsgType::Opened,
                          w.bytes());
        }
        postCompletion(std::move(completion));
    });
}

void
StreamServer::schedulePulls(Connection &conn)
{
    if (conn.draining)
        return;
    while (conn.tasksInFlight < options_.maxTasksPerConnection &&
           conn.writeBytes < options_.maxWriteBufferBytes &&
           !conn.ready.empty()) {
        const std::uint64_t channel_id = conn.ready.front();
        conn.ready.pop_front();
        const auto it = conn.channels.find(channel_id);
        if (it == conn.channels.end())
            continue;
        const std::shared_ptr<ChannelState> state = it->second;
        state->queued = false;
        if (state->busy || state->pulls.empty() ||
            state->session == nullptr)
            continue;
        const std::uint64_t max_requests = state->pulls.front();
        state->pulls.pop_front();
        state->busy = true;
        ++conn.tasksInFlight;
        ++tasks_in_flight_;

        const std::uint64_t conn_id = conn.id;
        pool().submit([this, conn_id, channel_id, state,
                       max_requests] {
            const std::size_t max =
                static_cast<std::size_t>(max_requests);
            Completion completion;
            completion.conn = conn_id;
            completion.channel = channel_id;
            completion.state = state;
            ChunkBody chunk;
            chunk.session = channel_id;
            chunk.firstSeq = state->session->emitted();
            std::vector<mem::Request> records;
            records.reserve(max);
            chunk.count = state->session->next(records, max);
            chunk.done = state->session->done();
            util::ByteWriter w;
            chunk.encode(w, records.data(), state->codec);
            completion.frame = packFrame(MsgType::Chunk, w.bytes());
            postCompletion(std::move(completion));
        });
    }
}

// ---------------------------------------------------------------------
// Completion queue
// ---------------------------------------------------------------------

void
StreamServer::postCompletion(Completion &&completion)
{
    {
        std::lock_guard<std::mutex> lock(completions_mutex_);
        completions_.push_back(std::move(completion));
    }
    wake_.notify();
}

void
StreamServer::processCompletions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(completions_mutex_);
        batch.swap(completions_);
    }
    for (Completion &completion : batch)
        handleCompletion(std::move(completion));
}

void
StreamServer::handleCompletion(Completion &&completion)
{
    --tasks_in_flight_;
    Connection *conn = findConnection(completion.conn);
    if (conn == nullptr) {
        // The connection died while the task was in flight (peer
        // reset, or a stop() drain beat the completion home). The
        // response frame has nowhere to go — drop it *visibly*: a
        // silent drop here cost a debugging session once.
        completions_dropped_.fetch_add(1, std::memory_order_relaxed);
        countMetric("serve.completions_dropped");
        return; // the shared channel state dies with us
    }
    --conn->tasksInFlight;
    conn->lastActivity = Clock::now();

    const std::shared_ptr<ChannelState> state = completion.state;
    state->busy = false;
    enqueueFrame(*conn, std::move(completion.frame));
    // enqueueFrame can close the connection on a fatal write error.
    conn = findConnection(completion.conn);
    if (conn == nullptr)
        return;

    if (completion.openFailed) {
        conn->channels.erase(completion.channel);
    } else if (state->closeRequested) {
        finishClose(*conn, completion.channel, state);
        conn = findConnection(completion.conn);
        if (conn == nullptr)
            return;
    } else if (!state->pulls.empty() && !state->queued) {
        state->queued = true;
        conn->ready.push_back(completion.channel);
    }

    if (conn->draining)
        maybeFinishDrain(*conn);
    else
        schedulePulls(*conn);
}

} // namespace mocktails::serve
