#include "serve/server.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "telemetry/metrics.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::serve
{

/** Per-connection protocol state, owned by the handler's stack. */
struct ConnectionState
{
    bool helloDone = false;
    std::uint64_t nextSession = 1;
    std::map<std::uint64_t, std::unique_ptr<SynthesisSession>> sessions;
    /// Delta-coding carry per session; must live as long as the
    /// session so chunk boundaries are free on the wire.
    std::map<std::uint64_t, mem::RequestCodecState> codecs;
};

namespace
{

void
countMetric(const char *name, std::uint64_t delta = 1)
{
    if (!telemetry::enabled())
        return;
    telemetry::MetricsRegistry::global().counter(name).add(delta);
}

void
gaugeMetric(const char *name, std::int64_t delta)
{
    if (!telemetry::enabled())
        return;
    telemetry::MetricsRegistry::global().gauge(name).add(delta);
}

bool
setSocketTimeouts(int fd, int read_ms, int write_ms)
{
    const auto set = [fd](int option, int ms) {
        if (ms <= 0)
            return true;
        struct timeval tv;
        tv.tv_sec = ms / 1000;
        tv.tv_usec = (ms % 1000) * 1000;
        return ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) ==
               0;
    };
    return set(SO_RCVTIMEO, read_ms) && set(SO_SNDTIMEO, write_ms);
}

} // namespace

StreamServer::StreamServer(ProfileStore &store, ServerOptions options)
    : store_(&store), options_(std::move(options))
{
}

StreamServer::~StreamServer()
{
    stop();
}

bool
StreamServer::start(std::string *error)
{
    const auto fail = [&](const std::string &what) {
        if (error != nullptr)
            *error = what;
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        return false;
    };

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        return fail(std::string("socket: ") + std::strerror(errno));

    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bindAddress.c_str(),
                    &addr.sin_addr) != 1)
        return fail("bad bind address '" + options_.bindAddress + "'");

    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind " + options_.bindAddress + ":" +
                    std::to_string(options_.port) + ": " +
                    std::strerror(errno));

    if (::listen(listen_fd_, options_.backlog) != 0)
        return fail(std::string("listen: ") + std::strerror(errno));

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0)
        return fail(std::string("getsockname: ") +
                    std::strerror(errno));
    port_ = ntohs(addr.sin_port);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = false;
        started_ = true;
    }
    listener_ =
        std::thread([this, fd = listen_fd_] { listenLoop(fd); });
    return true;
}

void
StreamServer::listenLoop(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // The listener socket was closed by stop(), or something
            // unrecoverable happened; either way, stop accepting.
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_) {
                ::close(fd);
                return;
            }
            live_fds_.push_back(fd);
            ++active_;
            ++accepted_;
        }
        countMetric("serve.connections");
        gaugeMetric("serve.connections_active", 1);
        setSocketTimeouts(fd, options_.readTimeoutMs,
                          options_.writeTimeoutMs);
        util::ThreadPool::global().submit(
            [this, fd] { handleConnection(fd); });
    }
}

bool
StreamServer::sendError(int fd, ErrorCode code,
                        const std::string &message)
{
    countMetric("serve.errors");
    ErrorBody body;
    body.code = code;
    body.message = message;
    util::ByteWriter w;
    body.encode(w);
    const bool ok = writeFrame(fd, MsgType::Error, w.bytes());
    if (ok)
        countMetric("serve.frames_out");
    return ok;
}

bool
StreamServer::dispatchFrame(int fd, const Frame &frame,
                            ConnectionState &conn)
{
    util::ByteReader r(frame.body.data(), frame.body.size());

    if (!conn.helloDone) {
        HelloBody hello;
        if (frame.type != MsgType::Hello || !hello.decode(r)) {
            sendError(fd, ErrorCode::BadFrame,
                      "expected Hello as the first frame");
            return false;
        }
        if (hello.magic != kMagic || hello.version != kVersion) {
            sendError(fd, ErrorCode::BadVersion,
                      "unsupported protocol magic/version");
            return false;
        }
        conn.helloDone = true;
        if (!writeFrame(fd, MsgType::HelloOk, {}))
            return false;
        countMetric("serve.frames_out");
        return true;
    }

    switch (frame.type) {
    case MsgType::OpenProfile: {
        OpenProfileBody body;
        if (!body.decode(r)) {
            sendError(fd, ErrorCode::BadFrame, "bad OpenProfile body");
            return false;
        }
        std::string error;
        auto stored = store_->get(body.id, &error);
        if (stored == nullptr)
            return sendError(fd, ErrorCode::UnknownProfile, error);

        SessionOptions session_options;
        session_options.seed = body.seed;
        session_options.bufferCapacity = options_.sessionBuffer;
        auto session = std::make_unique<SynthesisSession>(
            std::move(stored), session_options);

        OpenedBody opened;
        opened.session = conn.nextSession++;
        opened.name = session->profile().profile.name;
        opened.device = session->profile().profile.device;
        opened.leaves = session->profile().profile.leaves.size();
        opened.total = session->total();
        conn.codecs[opened.session] = mem::RequestCodecState{};
        conn.sessions[opened.session] = std::move(session);

        util::ByteWriter w;
        opened.encode(w);
        if (!writeFrame(fd, MsgType::Opened, w.bytes()))
            return false;
        countMetric("serve.frames_out");
        return true;
    }
    case MsgType::SynthChunk: {
        SynthChunkBody body;
        if (!body.decode(r)) {
            sendError(fd, ErrorCode::BadFrame, "bad SynthChunk body");
            return false;
        }
        const auto it = conn.sessions.find(body.session);
        if (it == conn.sessions.end())
            return sendError(fd, ErrorCode::UnknownSession,
                             "no session " +
                                 std::to_string(body.session));
        SynthesisSession &session = *it->second;

        std::size_t max = options_.maxChunkRequests;
        if (body.maxRequests != 0 && body.maxRequests < max)
            max = static_cast<std::size_t>(body.maxRequests);

        ChunkBody chunk;
        chunk.session = body.session;
        chunk.firstSeq = session.emitted();
        std::vector<mem::Request> records;
        records.reserve(max);
        chunk.count = session.next(records, max);
        chunk.done = session.done();

        util::ByteWriter w;
        chunk.encode(w, records.data(), conn.codecs[body.session]);
        if (!writeFrame(fd, MsgType::Chunk, w.bytes()))
            return false;
        countMetric("serve.frames_out");
        return true;
    }
    case MsgType::Stat: {
        StatBody body;
        if (!body.decode(r)) {
            sendError(fd, ErrorCode::BadFrame, "bad Stat body");
            return false;
        }
        const auto it = conn.sessions.find(body.session);
        if (it == conn.sessions.end())
            return sendError(fd, ErrorCode::UnknownSession,
                             "no session " +
                                 std::to_string(body.session));
        StatsBody stats;
        stats.session = body.session;
        stats.emitted = it->second->emitted();
        stats.total = it->second->total();
        stats.buffered = it->second->buffered();
        util::ByteWriter w;
        stats.encode(w);
        if (!writeFrame(fd, MsgType::Stats, w.bytes()))
            return false;
        countMetric("serve.frames_out");
        return true;
    }
    case MsgType::Close: {
        CloseBody body;
        if (!body.decode(r)) {
            sendError(fd, ErrorCode::BadFrame, "bad Close body");
            return false;
        }
        const auto it = conn.sessions.find(body.session);
        if (it == conn.sessions.end())
            return sendError(fd, ErrorCode::UnknownSession,
                             "no session " +
                                 std::to_string(body.session));
        ClosedBody closed;
        closed.session = body.session;
        closed.emitted = it->second->emitted();
        it->second->close();
        conn.sessions.erase(it);
        conn.codecs.erase(body.session);
        util::ByteWriter w;
        closed.encode(w);
        if (!writeFrame(fd, MsgType::Closed, w.bytes()))
            return false;
        countMetric("serve.frames_out");
        return true;
    }
    default:
        sendError(fd, ErrorCode::BadFrame,
                  "unknown frame type " +
                      std::to_string(
                          static_cast<unsigned>(frame.type)));
        return false;
    }
}

void
StreamServer::handleConnection(int fd)
{
    ConnectionState conn;
    for (;;) {
        Frame frame;
        const FrameResult result =
            readFrame(fd, frame, options_.maxFrameBytes);
        if (result == FrameResult::Ok) {
            countMetric("serve.frames_in");
            if (!dispatchFrame(fd, frame, conn))
                break;
            continue;
        }
        if (result == FrameResult::Timeout) {
            // Idle reap: the peer went silent for longer than the
            // receive timeout. Close without ceremony.
            countMetric("serve.timeouts");
            break;
        }
        if (result == FrameResult::TooLarge) {
            sendError(fd, ErrorCode::BadFrame,
                      "frame exceeds " +
                          std::to_string(options_.maxFrameBytes) +
                          " bytes");
            break;
        }
        // Eof (clean close) or Error (torn frame / socket error).
        if (result == FrameResult::Error)
            countMetric("serve.errors");
        break;
    }

    // Sessions close via their destructors (drains producer threads).
    conn.sessions.clear();

    // Deregister BEFORE closing: once closed the fd number can be
    // recycled, and stop() must never shutdown() somebody else's fd.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = live_fds_.begin(); it != live_fds_.end(); ++it) {
            if (*it == fd) {
                live_fds_.erase(it);
                break;
            }
        }
    }
    ::close(fd);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
        ++completed_;
    }
    gaugeMetric("serve.connections_active", -1);
    drained_.notify_all();
}

void
StreamServer::stop()
{
    int listen_fd = -1;
    bool stopper = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_)
            return;
        if (!stopping_) {
            stopping_ = true;
            stopper = true;
            listen_fd = listen_fd_;
            listen_fd_ = -1;
        }
        // Nudge every live connection: the handler finishes the frame
        // in flight, then sees EOF on its next read and winds down.
        for (const int fd : live_fds_)
            ::shutdown(fd, SHUT_RD);
    }

    if (stopper) {
        if (listen_fd >= 0) {
            // Closing the listener pops the accept() in listenLoop.
            ::shutdown(listen_fd, SHUT_RDWR);
            ::close(listen_fd);
        }
        if (listener_.joinable())
            listener_.join();
    }

    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] { return active_ == 0; });
    if (stopper)
        started_ = false;
}

void
StreamServer::waitForConnections(std::uint64_t connections)
{
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this, connections] {
        return completed_ >= connections && active_ == 0;
    });
}

std::uint64_t
StreamServer::connectionsAccepted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return accepted_;
}

std::uint64_t
StreamServer::connectionsCompleted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

unsigned
StreamServer::connectionsActive() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return active_;
}

} // namespace mocktails::serve
