/**
 * @file
 * The Mocktails serve wire protocol (see DESIGN.md "Serving").
 *
 * A connection is a sequence of length-prefixed frames over TCP:
 *
 *   frame := length u32 little-endian   (type byte + body, <= limit)
 *            type   u8                  (MsgType)
 *            body   bytes               (per-type, varint-packed)
 *
 * The client speaks first with Hello{magic, version}; the server
 * answers HelloOk or Error{BadVersion} and closes. After the
 * handshake the client drives a simple command/response cycle:
 *
 *   OpenProfile{id, seed}   -> Opened{session, name, device, leaves,
 *                                     total} | Error
 *   SynthChunk{session,max} -> Chunk{session, firstSeq, count, done,
 *                                    records...} | Error
 *   Stat{session}           -> Stats{session, emitted, total,
 *                                    buffered} | Error
 *   Close{session}          -> Closed{session, emitted} | Error
 *
 * Chunk records use the mem::Request wire codec (mem/wire.hpp) with a
 * per-session carry state on both ends, so chunk boundaries cost no
 * bytes. Every body integer is a varint from util/varint.hpp — the
 * same dialect as the on-disk trace/profile/MKTE formats.
 *
 * Robustness rules: a frame longer than the receiver's limit, an
 * unknown type, or a body that fails to decode is answered with
 * Error{BadFrame} (best effort) and the connection is closed; the
 * receiver never trusts a length field further than its limit.
 */

#ifndef MOCKTAILS_SERVE_PROTOCOL_HPP
#define MOCKTAILS_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mem/request.hpp"
#include "mem/wire.hpp"
#include "util/codec.hpp"

namespace mocktails::serve
{

/// "MKSV" — the serve protocol magic, sent in Hello.
constexpr std::uint32_t kMagic = 0x4d4b5356;

/// Protocol version; bumped on any incompatible frame change.
constexpr std::uint32_t kVersion = 1;

/// Server-side inbound frame limit: client commands are tiny, so
/// anything bigger is hostile or corrupt.
constexpr std::uint32_t kMaxCommandFrameBytes = 64 * 1024;

/// Client-side inbound frame limit; bounds a Chunk response.
constexpr std::uint32_t kMaxFrameBytes = 8u * 1024 * 1024;

/** Frame/message type tags. */
enum class MsgType : std::uint8_t {
    Hello = 1,
    HelloOk = 2,
    OpenProfile = 3,
    Opened = 4,
    SynthChunk = 5,
    Chunk = 6,
    Stat = 7,
    Stats = 8,
    Close = 9,
    Closed = 10,
    Error = 15,
};

/** Error codes carried by Error frames. */
enum class ErrorCode : std::uint8_t {
    BadFrame = 1,       ///< malformed/oversized frame or body
    BadVersion = 2,     ///< Hello magic/version mismatch
    UnknownProfile = 3, ///< OpenProfile id the store cannot resolve
    UnknownSession = 4, ///< session id not open on this connection
    Overloaded = 5,     ///< server refuses new work (shutdown/limits)
    Internal = 6,       ///< unexpected server-side failure
};

/** Human-readable error-code name (for diagnostics). */
const char *toString(ErrorCode code);

/** One parsed frame: the type byte plus the raw body bytes. */
struct Frame
{
    MsgType type = MsgType::Error;
    std::vector<std::uint8_t> body;
};

/** Serialise a frame: length prefix + type byte + body. */
std::vector<std::uint8_t> packFrame(MsgType type,
                                    const std::vector<std::uint8_t> &body);

/// @name Message bodies
/// Each body struct encodes itself onto a ByteWriter and decodes from
/// a ByteReader, returning false on malformed input. Decoders must
/// consume the body exactly.
/// @{

struct HelloBody
{
    std::uint32_t magic = kMagic;
    std::uint32_t version = kVersion;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct OpenProfileBody
{
    std::string id;          ///< profile id resolved by the store
    std::uint64_t seed = 1;  ///< synthesis seed for the session

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct OpenedBody
{
    std::uint64_t session = 0;
    std::string name;
    std::string device;
    std::uint64_t leaves = 0;
    std::uint64_t total = 0; ///< requests the session will emit

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct SynthChunkBody
{
    std::uint64_t session = 0;
    std::uint64_t maxRequests = 0; ///< server clamps to its own limit

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

/**
 * Chunk header; the records follow in the same body, packed with
 * mem::encodeRequests against the session's carry state.
 */
struct ChunkBody
{
    std::uint64_t session = 0;
    std::uint64_t firstSeq = 0; ///< stream index of the first record
    std::uint64_t count = 0;
    bool done = false; ///< no further requests after this chunk

    /** Encode header + @p count records, advancing @p state. */
    void encode(util::ByteWriter &w, const mem::Request *records,
                mem::RequestCodecState &state) const;

    /**
     * Decode header + records (appended to @p out, advancing
     * @p state). Rejects counts that cannot fit the remaining body.
     */
    bool decode(util::ByteReader &r, std::vector<mem::Request> &out,
                mem::RequestCodecState &state);
};

struct StatBody
{
    std::uint64_t session = 0;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct StatsBody
{
    std::uint64_t session = 0;
    std::uint64_t emitted = 0;  ///< session cursor
    std::uint64_t total = 0;
    std::uint64_t buffered = 0; ///< requests staged in the session

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct CloseBody
{
    std::uint64_t session = 0;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct ClosedBody
{
    std::uint64_t session = 0;
    std::uint64_t emitted = 0;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct ErrorBody
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

/// @}

/// @name Blocking socket I/O
/// Frame transport over a connected socket. Partial reads/writes and
/// EINTR are handled; SO_RCVTIMEO/SO_SNDTIMEO timeouts surface as
/// FrameResult::Timeout so callers can reap idle peers.
/// @{

enum class FrameResult {
    Ok,
    Eof,      ///< peer closed cleanly between frames
    Timeout,  ///< socket timeout expired
    TooLarge, ///< announced length exceeds @p max_bytes
    Error,    ///< I/O error or malformed prefix
};

/** Read one frame (blocking, honours the socket receive timeout). */
FrameResult readFrame(int fd, Frame &frame, std::uint32_t max_bytes);

/** Write one frame (blocking). @return false on error/timeout. */
bool writeFrame(int fd, MsgType type,
                const std::vector<std::uint8_t> &body);

/// @}

} // namespace mocktails::serve

#endif // MOCKTAILS_SERVE_PROTOCOL_HPP
