/**
 * @file
 * The Mocktails serve wire protocol (see DESIGN.md "Serving").
 *
 * A connection is a sequence of length-prefixed frames over TCP:
 *
 *   frame := length u32 little-endian   (type byte + body, <= limit)
 *            type   u8                  (MsgType)
 *            body   bytes               (per-type, varint-packed)
 *
 * The client speaks first with Hello{magic, version}; the server
 * answers HelloOk (v2+: carrying the negotiated version) or
 * Error{BadVersion} and closes. Version 1 is the strict
 * command/response cycle of PR 5:
 *
 *   OpenProfile{id, seed}   -> Opened{session, name, device, leaves,
 *                                     total} | Error
 *   SynthChunk{session,max} -> Chunk{session, firstSeq, count, done,
 *                                    records...} | Error
 *   Stat{session}           -> Stats{session, emitted, total,
 *                                    buffered} | Error
 *   Close{session}          -> Closed{session, emitted} | Error
 *
 * Version 2 multiplexes many interleaved sessions over one
 * connection. The session id doubles as the *channel id* carried by
 * every frame, and the strict alternation is relaxed:
 *
 *  - OpenChannel{channel, id, seed} opens a session under a
 *    client-chosen channel id (ChannelOpened echoes it). Collisions
 *    are answered with ChannelError{channel, BadFrame}.
 *  - The client may pipeline any number of SynthChunk pulls across
 *    channels without waiting; the server answers each pull with
 *    exactly one Chunk, in order *per channel*, but chunks of
 *    different channels interleave arbitrarily. Each pull is one unit
 *    of credit — a channel with no outstanding pull is never sent
 *    data, which is what gives per-channel backpressure: a slow
 *    channel simply stops pulling and its siblings keep streaming.
 *  - Channel-scoped failures use ChannelError{channel, code, message}
 *    and leave the connection (and other channels) intact;
 *    connection-fatal problems still use Error and close.
 *  - Close{channel} cancels that channel's queued pulls; Closed is
 *    the final frame for the channel.
 *
 * A v1 Hello against a v2 server gets exact v1 behaviour (the strict
 * cycle is a subset of the relaxed one). Versions other than 1 and 2
 * are rejected with Error{BadVersion}.
 *
 * Chunk records use the mem::Request wire codec (mem/wire.hpp) with a
 * per-channel carry state on both ends, so chunk boundaries cost no
 * bytes. Every body integer is a varint from util/varint.hpp — the
 * same dialect as the on-disk trace/profile/MKTE formats.
 *
 * Robustness rules: a frame longer than the receiver's limit, an
 * unknown type, or a body that fails to decode is answered with
 * Error{BadFrame} (best effort) and the connection is closed; the
 * receiver never trusts a length field further than its limit.
 */

#ifndef MOCKTAILS_SERVE_PROTOCOL_HPP
#define MOCKTAILS_SERVE_PROTOCOL_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/request.hpp"
#include "mem/wire.hpp"
#include "util/codec.hpp"

namespace mocktails::serve
{

/// "MKSV" — the serve protocol magic, sent in Hello.
constexpr std::uint32_t kMagic = 0x4d4b5356;

/// Protocol version; bumped on any incompatible frame change.
/// v2 added channel multiplexing (OpenChannel/ChannelError, pipelined
/// pulls); v1 connections are still served bug-for-bug.
constexpr std::uint32_t kVersion = 2;

/// The PR 5 strict command/response protocol, still accepted.
constexpr std::uint32_t kVersionLegacy = 1;

/// Server-side inbound frame limit: client commands are tiny, so
/// anything bigger is hostile or corrupt.
constexpr std::uint32_t kMaxCommandFrameBytes = 64 * 1024;

/// Client-side inbound frame limit; bounds a Chunk response.
constexpr std::uint32_t kMaxFrameBytes = 8u * 1024 * 1024;

/** Frame/message type tags. */
enum class MsgType : std::uint8_t {
    Hello = 1,
    HelloOk = 2,
    OpenProfile = 3,
    Opened = 4,
    SynthChunk = 5,
    Chunk = 6,
    Stat = 7,
    Stats = 8,
    Close = 9,
    Closed = 10,
    OpenChannel = 11,   ///< v2: open under a client-chosen channel id
    ChannelOpened = 12, ///< v2: OpenedBody echoing the channel id
    ChannelError = 13,  ///< v2: channel-scoped error, connection lives
    Error = 15,
    ServerStat = 16,  ///< query server-wide counters (empty body)
    ServerStats = 17, ///< name/value snapshot of live server counters
};

/** Human-readable frame-type name (diagnostics, JSONL export). */
const char *toString(MsgType type);

/** Error codes carried by Error frames. */
enum class ErrorCode : std::uint8_t {
    BadFrame = 1,       ///< malformed/oversized frame or body
    BadVersion = 2,     ///< Hello magic/version mismatch
    UnknownProfile = 3, ///< OpenProfile id the store cannot resolve
    UnknownSession = 4, ///< session id not open on this connection
    Overloaded = 5,     ///< server refuses new work (shutdown/limits)
    Internal = 6,       ///< unexpected server-side failure
};

/** Human-readable error-code name (for diagnostics). */
const char *toString(ErrorCode code);

/** One parsed frame: the type byte plus the raw body bytes. */
struct Frame
{
    MsgType type = MsgType::Error;
    std::vector<std::uint8_t> body;
};

/** Serialise a frame: length prefix + type byte + body. */
std::vector<std::uint8_t> packFrame(MsgType type,
                                    const std::vector<std::uint8_t> &body);

/// @name Message bodies
/// Each body struct encodes itself onto a ByteWriter and decodes from
/// a ByteReader, returning false on malformed input. Decoders must
/// consume the body exactly.
/// @{

struct HelloBody
{
    std::uint32_t magic = kMagic;
    std::uint32_t version = kVersion;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

/**
 * HelloOk body. v1 servers sent an empty body; an empty body
 * therefore decodes as "negotiated v1", keeping old peers readable.
 */
struct HelloOkBody
{
    std::uint32_t version = kVersionLegacy;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

/** v2: open a session under the client-chosen @ref channel. */
struct OpenChannelBody
{
    std::uint64_t channel = 0; ///< must be non-zero and unused
    std::string id;            ///< profile id resolved by the store
    std::uint64_t seed = 1;    ///< synthesis seed for the session

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

/** v2: a channel-scoped error; the connection stays up. */
struct ChannelErrorBody
{
    std::uint64_t channel = 0;
    ErrorCode code = ErrorCode::Internal;
    std::string message;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct OpenProfileBody
{
    std::string id;          ///< profile id resolved by the store
    std::uint64_t seed = 1;  ///< synthesis seed for the session

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct OpenedBody
{
    std::uint64_t session = 0;
    std::string name;
    std::string device;
    std::uint64_t leaves = 0;
    std::uint64_t total = 0; ///< requests the session will emit

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct SynthChunkBody
{
    std::uint64_t session = 0;
    std::uint64_t maxRequests = 0; ///< server clamps to its own limit

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

/**
 * Chunk header; the records follow in the same body, packed with
 * mem::encodeRequests against the session's carry state.
 */
struct ChunkBody
{
    std::uint64_t session = 0;
    std::uint64_t firstSeq = 0; ///< stream index of the first record
    std::uint64_t count = 0;
    bool done = false; ///< no further requests after this chunk

    /** Encode header + @p count records, advancing @p state. */
    void encode(util::ByteWriter &w, const mem::Request *records,
                mem::RequestCodecState &state) const;

    /**
     * Decode header + records (appended to @p out, advancing
     * @p state). Rejects counts that cannot fit the remaining body.
     */
    bool decode(util::ByteReader &r, std::vector<mem::Request> &out,
                mem::RequestCodecState &state);
};

struct StatBody
{
    std::uint64_t session = 0;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct StatsBody
{
    std::uint64_t session = 0;
    std::uint64_t emitted = 0;  ///< session cursor
    std::uint64_t total = 0;
    std::uint64_t buffered = 0; ///< requests staged in the session

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct CloseBody
{
    std::uint64_t session = 0;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct ClosedBody
{
    std::uint64_t session = 0;
    std::uint64_t emitted = 0;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

struct ErrorBody
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

/** ServerStat query body (empty; kept for the decode discipline). */
struct ServerStatBody
{
    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

/**
 * ServerStats reply: a name/value snapshot of the server's live
 * counters and gauges ("serve.*", "store.*", "recorder.*", plus the
 * full telemetry snapshot when collection is on), sorted by name.
 */
struct ServerStatsBody
{
    struct Entry
    {
        std::string name;
        std::int64_t value = 0;
    };

    std::vector<Entry> entries;

    void encode(util::ByteWriter &w) const;
    bool decode(util::ByteReader &r);
};

/// @}

/**
 * Incremental frame parser for non-blocking transports.
 *
 * Feed raw bytes with append() as they arrive; next() extracts
 * complete frames without copying partial input back and forth. The
 * oversized/malformed verdicts mirror readFrame(): a length beyond
 * the limit is TooLarge (detected from the prefix alone, before any
 * body arrives) and a zero length is Malformed, since every frame
 * carries at least its type byte.
 */
class FrameParser
{
  public:
    explicit FrameParser(std::uint32_t max_bytes)
        : max_bytes_(max_bytes)
    {
    }

    /** Buffer @p size raw bytes from the transport. */
    void append(const std::uint8_t *data, std::size_t size);

    enum class Next {
        Frame,     ///< @p out holds one complete frame
        NeedMore,  ///< no complete frame buffered yet
        TooLarge,  ///< announced length exceeds the limit
        Malformed, ///< zero-length frame
    };

    /** Extract the next complete frame, if any. */
    Next next(Frame &out);

    /** Unconsumed bytes (> 0 at EOF means a torn frame). */
    std::size_t buffered() const { return buffer_.size() - pos_; }

  private:
    std::uint32_t max_bytes_;
    std::vector<std::uint8_t> buffer_;
    std::size_t pos_ = 0;
};

/// @name Blocking socket I/O
/// Frame transport over a connected socket. Partial reads/writes and
/// EINTR are handled; SO_RCVTIMEO/SO_SNDTIMEO timeouts surface as
/// FrameResult::Timeout so callers can reap idle peers.
/// @{

enum class FrameResult {
    Ok,
    Eof,      ///< peer closed cleanly between frames
    Timeout,  ///< socket timeout expired
    TooLarge, ///< announced length exceeds @p max_bytes
    Error,    ///< I/O error or malformed prefix
};

/** Read one frame (blocking, honours the socket receive timeout). */
FrameResult readFrame(int fd, Frame &frame, std::uint32_t max_bytes);

/** Write one frame (blocking). @return false on error/timeout. */
bool writeFrame(int fd, MsgType type,
                const std::vector<std::uint8_t> &body);

/// @}

} // namespace mocktails::serve

#endif // MOCKTAILS_SERVE_PROTOCOL_HPP
