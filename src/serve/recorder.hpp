/**
 * @file
 * Wire-level flight recorder for the serve protocol (.mksr files).
 *
 * A ServeRecorder logs every frame that crosses a recording point —
 * the server's event loop (ServerOptions::recorder) or a client
 * (ClientOptions::recorder) — with a monotonic timestamp, connection
 * id, channel id, frame type and raw body, to a compact varint binary
 * format. Recordings replay deterministically (replay.hpp) and export
 * losslessly to JSONL for grepping.
 *
 * File format (all integers LEB128 varints, util/varint.hpp):
 *
 *   header := "MKSR"                 (4 raw bytes)
 *             version varint         (currently 1)
 *   record := dir      u8            (0 = client->server, 1 = s->c)
 *             tsDelta  varint        (ns since the previous record;
 *                                     the first record since open)
 *             conn     varint        (recording-local connection id)
 *             channel  varint        (0 for connection-scoped frames)
 *             type     u8            (MsgType)
 *             length   varint        (body bytes)
 *             body     bytes         (frame body, without type byte)
 *
 * The channel id is derived from the body (extractChannel) at record
 * time so replays and exports can group per-channel work without
 * decoding every body again.
 *
 * Overhead discipline (mirrors telemetry::enabled): record() is an
 * inline relaxed-bool check that returns immediately while disabled —
 * no locks, no allocation, no syscalls on the hot path. Recording is
 * off until open() succeeds. When enabled, records are serialised
 * under a mutex and written through to stdio (the server's loop
 * thread is the only producer in the common case).
 *
 * Telemetry (when enabled): "recorder.frames" / "recorder.bytes"
 * counters.
 */

#ifndef MOCKTAILS_SERVE_RECORDER_HPP
#define MOCKTAILS_SERVE_RECORDER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace mocktails::serve
{

/// Which way a recorded frame crossed the wire.
enum class FrameDirection : std::uint8_t {
    ClientToServer = 0,
    ServerToClient = 1,
};

/** Human-readable direction tag ("c2s" / "s2c"). */
const char *toString(FrameDirection dir);

/**
 * Derive the channel/session id a frame body is scoped to (the
 * leading varint of session-carrying bodies), or 0 for
 * connection-scoped frames (Hello, HelloOk, Error, ServerStat[s]) and
 * OpenProfile (the server assigns the id in its reply).
 */
std::uint64_t extractChannel(MsgType type, const std::uint8_t *body,
                             std::size_t size);

class ServeRecorder
{
  public:
    ServeRecorder() = default;

    /** Flushes and closes the sink (write errors are lost; call
     *  close() for a verdict). */
    ~ServeRecorder();

    ServeRecorder(const ServeRecorder &) = delete;
    ServeRecorder &operator=(const ServeRecorder &) = delete;

    /**
     * Open @p path for writing, emit the header and enable recording.
     * @return false with @p error set on I/O failure.
     */
    bool open(const std::string &path, std::string *error = nullptr);

    /** True between a successful open() and close(). */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Record one frame. The disabled path is the hot one: a single
     * relaxed load and out.
     */
    void
    record(FrameDirection dir, std::uint64_t conn, MsgType type,
           const std::uint8_t *body, std::size_t size)
    {
        if (!enabled_.load(std::memory_order_relaxed))
            return;
        recordSlow(dir, conn, type, body, size);
    }

    /** record() an already-parsed frame. */
    void
    record(FrameDirection dir, std::uint64_t conn, const Frame &frame)
    {
        record(dir, conn, frame.type, frame.body.data(),
               frame.body.size());
    }

    /**
     * Disable recording, flush and close the file.
     * @return false with @p error set if any write failed (the
     *         recording is then incomplete). Idempotent.
     */
    bool close(std::string *error = nullptr);

    /**
     * Allocate a recording-local connection id (client-side recording
     * points call this once per connection; the server uses its own
     * connection ids).
     */
    std::uint64_t
    nextConnectionId()
    {
        return next_conn_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /// @name Introspection
    /// @{
    std::uint64_t frames() const
    {
        return frames_.load(std::memory_order_relaxed);
    }
    /** Bytes written to the sink, header included. */
    std::uint64_t bytes() const
    {
        return bytes_.load(std::memory_order_relaxed);
    }
    /// @}

  private:
    void recordSlow(FrameDirection dir, std::uint64_t conn,
                    MsgType type, const std::uint8_t *body,
                    std::size_t size);

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> frames_{0};
    std::atomic<std::uint64_t> bytes_{0};
    std::atomic<std::uint64_t> next_conn_{0};

    std::mutex mutex_;
    std::FILE *file_ = nullptr;
    bool write_failed_ = false;
    std::chrono::steady_clock::time_point last_ts_{};
};

/** One frame of a loaded recording. */
struct RecordedFrame
{
    FrameDirection dir = FrameDirection::ClientToServer;
    std::uint64_t tsNs = 0; ///< ns since the recording started
    std::uint64_t conn = 0;
    std::uint64_t channel = 0;
    MsgType type = MsgType::Error;
    std::vector<std::uint8_t> body;
};

/** A fully loaded .mksr recording, in record order. */
struct Recording
{
    std::vector<RecordedFrame> frames;
};

/** Load a .mksr file. @return false with @p error on malformed input. */
bool loadRecording(const std::string &path, Recording &out,
                   std::string *error = nullptr);

/**
 * Export a recording to JSONL: one object per frame with seq, ts_ns,
 * dir, conn, channel, type, size and the payload as lowercase hex —
 * lossless (the .mksr can be reconstructed from the export).
 */
bool exportRecordingJsonl(const Recording &recording,
                          const std::string &path,
                          std::string *error = nullptr);

} // namespace mocktails::serve

#endif // MOCKTAILS_SERVE_RECORDER_HPP
