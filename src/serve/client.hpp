/**
 * @file
 * Blocking client for the serve wire protocol.
 *
 * A Client owns one TCP connection (Hello handshake performed by
 * connect()) and any number of open sessions on it. Streaming follows
 * the command/response cycle of protocol.hpp; fetch() drives a whole
 * session to completion and fetchTrace() wraps the common
 * open-stream-close case into one call.
 *
 * Server Error frames surface as `false` returns with the decoded
 * "code: message" diagnostic in the caller's error string — the same
 * convention as core::loadProfile.
 */

#ifndef MOCKTAILS_SERVE_CLIENT_HPP
#define MOCKTAILS_SERVE_CLIENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mem/request.hpp"
#include "mem/trace.hpp"
#include "mem/wire.hpp"
#include "serve/protocol.hpp"

namespace mocktails::serve
{

struct ClientOptions
{
    /** Socket receive/send timeouts, ms; 0 = none. */
    int readTimeoutMs = 30000;
    int writeTimeoutMs = 30000;

    /** Inbound frame limit (bounds one Chunk response). */
    std::uint32_t maxFrameBytes = kMaxFrameBytes;
};

/** A remote session handle returned by Client::open(). */
struct RemoteSession
{
    std::uint64_t id = 0;
    std::string name;       ///< profile workload name
    std::string device;     ///< profile device class
    std::uint64_t leaves = 0;
    std::uint64_t total = 0; ///< requests the stream will emit
    std::uint64_t received = 0;
    bool done = false;
    mem::RequestCodecState codec; ///< wire carry state (client side)
};

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to host:port and run the Hello handshake. */
    bool connect(const std::string &host, std::uint16_t port,
                 ClientOptions options = {},
                 std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }

    /** Close the connection (open sessions die with it). */
    void disconnect();

    /** Open a synthesis session for @p id with @p seed. */
    bool open(const std::string &id, std::uint64_t seed,
              RemoteSession &session, std::string *error = nullptr);

    /**
     * Request one chunk of up to @p maxRequests (0 = server's limit);
     * records are appended to @p out and the session cursor advances.
     * After the final chunk session.done is true and next() appends
     * nothing.
     */
    bool next(RemoteSession &session, std::vector<mem::Request> &out,
              std::uint64_t maxRequests, std::string *error = nullptr);

    /** Query server-side session counters. */
    bool stat(RemoteSession &session, StatsBody &stats,
              std::string *error = nullptr);

    /** Close the remote session. */
    bool close(RemoteSession &session, std::string *error = nullptr);

    /**
     * Stream the whole session into @p out (repeated next() of
     * @p chunkRequests, 0 = server's limit).
     */
    bool fetch(RemoteSession &session, std::vector<mem::Request> &out,
               std::uint64_t chunkRequests = 0,
               std::string *error = nullptr);

  private:
    /** Send @p type+@p body, read the reply; Error frames -> false. */
    bool roundTrip(MsgType type, const std::vector<std::uint8_t> &body,
                   MsgType expect, Frame &reply, std::string *error);

    int fd_ = -1;
    ClientOptions options_;
};

/**
 * One-call remote synthesis: connect, open @p id with @p seed, stream
 * everything into @p trace (name/device filled from the profile),
 * close, disconnect.
 */
bool fetchTrace(const std::string &host, std::uint16_t port,
                const std::string &id, std::uint64_t seed,
                mem::Trace &trace, std::uint64_t chunkRequests = 0,
                std::string *error = nullptr);

} // namespace mocktails::serve

#endif // MOCKTAILS_SERVE_CLIENT_HPP
