/**
 * @file
 * Clients for the serve wire protocol.
 *
 * Client owns one TCP connection (Hello handshake performed by
 * connect()) and any number of open sessions on it, driven through
 * the strict command/response cycle — one outstanding command at a
 * time. It negotiates protocol v2 by default and transparently
 * accepts the v2 reply types (ChannelOpened / ChannelError) the
 * event-driven server answers with; pass
 * ClientOptions::protocolVersion = kVersionLegacy to exercise the v1
 * wire format end to end. fetch() drives a whole session to
 * completion and fetchTrace() wraps the common open-stream-close case
 * into one call.
 *
 * MuxClient multiplexes many concurrent sessions over ONE connection
 * (protocol v2 only): opens and pulls are fire-and-forget sends, and
 * nextEvent() pumps whatever the server interleaves back, routing
 * each Chunk to its channel's sink with per-channel wire carry state.
 * Keeping up to pullDepth pulls outstanding per channel is what turns
 * the protocol's pull-credit scheme into streaming throughput;
 * fetchAll() packages that loop for the common
 * open-everything-drain-everything case.
 *
 * Server Error frames surface as `false` returns with the decoded
 * "code: message" diagnostic in the caller's error string — the same
 * convention as core::loadProfile.
 */

#ifndef MOCKTAILS_SERVE_CLIENT_HPP
#define MOCKTAILS_SERVE_CLIENT_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mem/request.hpp"
#include "mem/trace.hpp"
#include "mem/wire.hpp"
#include "serve/protocol.hpp"

namespace mocktails::serve
{

class ServeRecorder;

struct ClientOptions
{
    /** Socket receive/send timeouts, ms; 0 = none. */
    int readTimeoutMs = 30000;
    int writeTimeoutMs = 30000;

    /** Inbound frame limit (bounds one Chunk response). */
    std::uint32_t maxFrameBytes = kMaxFrameBytes;

    /** Hello version to offer (kVersion or kVersionLegacy). */
    std::uint32_t protocolVersion = kVersion;

    /**
     * Client-side flight recorder (recorder.hpp); nullptr = off. Must
     * outlive the client. Every frame this client sends or receives is
     * recorded under a recording-local connection id.
     */
    ServeRecorder *recorder = nullptr;
};

/**
 * Dial host:port; on success the fd is close-on-exec with the
 * options' socket timeouts applied (and the application of both is
 * verified). No handshake is performed — Client/MuxClient::connect
 * layer it on top; the replayer (replay.hpp) sends its own recorded
 * Hello.
 */
int dialServer(const std::string &host, std::uint16_t port,
               const ClientOptions &options, std::string *error);

/** A remote session handle returned by Client::open(). */
struct RemoteSession
{
    std::uint64_t id = 0;
    std::string name;       ///< profile workload name
    std::string device;     ///< profile device class
    std::uint64_t leaves = 0;
    std::uint64_t total = 0; ///< requests the stream will emit
    std::uint64_t received = 0;
    bool done = false;
    mem::RequestCodecState codec; ///< wire carry state (client side)
};

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to host:port and run the Hello handshake. */
    bool connect(const std::string &host, std::uint16_t port,
                 ClientOptions options = {},
                 std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }

    /** Version the server agreed to (valid after connect()). */
    std::uint32_t negotiatedVersion() const { return version_; }

    /** Close the connection (open sessions die with it). */
    void disconnect();

    /** Open a synthesis session for @p id with @p seed. */
    bool open(const std::string &id, std::uint64_t seed,
              RemoteSession &session, std::string *error = nullptr);

    /**
     * Request one chunk of up to @p maxRequests (0 = server's limit);
     * records are appended to @p out and the session cursor advances.
     * After the final chunk session.done is true and next() appends
     * nothing.
     */
    bool next(RemoteSession &session, std::vector<mem::Request> &out,
              std::uint64_t maxRequests, std::string *error = nullptr);

    /** Query server-side session counters. */
    bool stat(RemoteSession &session, StatsBody &stats,
              std::string *error = nullptr);

    /**
     * Query server-wide live counters (ServerStat/ServerStats): the
     * store, serve and recorder counters plus the server's telemetry
     * snapshot, sorted by name.
     */
    bool serverStats(ServerStatsBody &stats,
                     std::string *error = nullptr);

    /** Close the remote session. */
    bool close(RemoteSession &session, std::string *error = nullptr);

    /**
     * Stream the whole session into @p out (repeated next() of
     * @p chunkRequests, 0 = server's limit).
     */
    bool fetch(RemoteSession &session, std::vector<mem::Request> &out,
               std::uint64_t chunkRequests = 0,
               std::string *error = nullptr);

  private:
    /**
     * Send @p type+@p body, read the reply; Error / ChannelError
     * frames -> false. @p alt is a second acceptable reply type (the
     * v2 spelling of @p expect), or MsgType::Error for none.
     */
    bool roundTrip(MsgType type, const std::vector<std::uint8_t> &body,
                   MsgType expect, MsgType alt, Frame &reply,
                   std::string *error);

    int fd_ = -1;
    std::uint32_t version_ = 0;
    ClientOptions options_;
    std::uint64_t recorderConn_ = 0; ///< recording-local connection id
};

/** One stream to open through MuxClient::fetchAll. */
struct FetchSpec
{
    std::string id;         ///< profile id resolved by the store
    std::uint64_t seed = 1; ///< synthesis seed
};

/**
 * Multiplexing client: many concurrent sessions over one connection
 * (protocol v2). Not thread-safe; one thread drives opens, pulls and
 * the event pump.
 */
class MuxClient
{
  public:
    MuxClient() = default;
    ~MuxClient();

    MuxClient(const MuxClient &) = delete;
    MuxClient &operator=(const MuxClient &) = delete;

    /** Connect and handshake; fails unless the server speaks v2. */
    bool connect(const std::string &host, std::uint16_t port,
                 ClientOptions options = {},
                 std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }

    /** Version the server agreed to (valid after connect()). */
    std::uint32_t negotiatedVersion() const { return version_; }

    void disconnect();

    /** Per-channel state visible to callers. */
    struct Channel
    {
        std::uint64_t id = 0;
        bool opened = false; ///< ChannelOpened seen
        bool closed = false; ///< Closed seen
        std::uint64_t total = 0;
        std::uint64_t received = 0;
        bool done = false; ///< final chunk seen
        std::uint64_t pullsOutstanding = 0;
        std::uint64_t leaves = 0; ///< OpenedBody.leaves (stream parts)
        std::string name;
        std::string device;
        mem::RequestCodecState codec;
        std::vector<mem::Request> *sink = nullptr;
    };

    /**
     * Fire-and-forget: ask the server to open @p id under the
     * client-chosen non-zero @p channel. The ChannelOpened (or
     * ChannelError) answer arrives through nextEvent().
     */
    bool openChannel(std::uint64_t channel, const std::string &id,
                     std::uint64_t seed, std::string *error = nullptr);

    /** Where decoded Chunk records for @p channel are appended. */
    void setSink(std::uint64_t channel, std::vector<mem::Request> *out);

    /** Fire-and-forget: queue one pull (one chunk of credit). */
    bool pull(std::uint64_t channel, std::uint64_t maxRequests = 0,
              std::string *error = nullptr);

    /** Fire-and-forget: close the channel (Closed arrives later). */
    bool closeChannel(std::uint64_t channel,
                      std::string *error = nullptr);

    struct Event
    {
        enum class Kind {
            Opened,       ///< channel open; total/name/device filled
            Chunk,        ///< records appended to the channel's sink
            Closed,       ///< channel closed by the server
            ChannelError, ///< channel failed; code/message filled
        };
        Kind kind = Kind::ChannelError;
        std::uint64_t channel = 0;
        std::uint64_t count = 0; ///< Chunk: records in this chunk
        bool done = false;       ///< Chunk: stream complete
        ErrorCode code = ErrorCode::Internal;
        std::string message;
    };

    /**
     * Block for the next server frame and apply it to the channel
     * table (sequencing checks included). Connection-fatal problems
     * (Error frame, EOF, torn chunk) return false.
     */
    bool nextEvent(Event &event, std::string *error = nullptr);

    /** Channel table lookup (nullptr when never opened). */
    const Channel *channel(std::uint64_t id) const;

    /**
     * Open one channel per spec (ids 1..n), keep @p pullDepth pulls
     * outstanding per channel, pump events until every stream is done
     * and closed. outs[i] receives spec i's records; outs is resized.
     */
    bool fetchAll(const std::vector<FetchSpec> &specs,
                  std::vector<std::vector<mem::Request>> &outs,
                  std::uint64_t chunkRequests = 0,
                  std::uint64_t pullDepth = 2,
                  std::string *error = nullptr);

  private:
    bool sendFrame(MsgType type, const std::vector<std::uint8_t> &body,
                   std::string *error);

    int fd_ = -1;
    std::uint32_t version_ = 0;
    ClientOptions options_;
    std::uint64_t recorderConn_ = 0; ///< recording-local connection id
    std::map<std::uint64_t, Channel> channels_;
};

/**
 * One-call remote synthesis: connect, open @p id with @p seed, stream
 * everything into @p trace (name/device filled from the profile),
 * close, disconnect.
 */
bool fetchTrace(const std::string &host, std::uint16_t port,
                const std::string &id, std::uint64_t seed,
                mem::Trace &trace, std::uint64_t chunkRequests = 0,
                std::string *error = nullptr);

/**
 * fetchTrace over a MuxClient channel — same result, multiplexed
 * wire path (what `profile_tool fetch --mux` uses).
 *
 * Composed-scenario ids ("scenario:<name>") stream one channel per
 * device: the merged id is probed for its device count, each
 * "scenario:<name>#<k>" sub-stream is fetched concurrently, and the
 * client reassembles the merged order with the engine's (tick, device)
 * merge key — byte-identical to fetching the merged id directly.
 */
bool fetchTraceMux(const std::string &host, std::uint16_t port,
                   const std::string &id, std::uint64_t seed,
                   mem::Trace &trace, std::uint64_t chunkRequests = 0,
                   std::string *error = nullptr);

} // namespace mocktails::serve

#endif // MOCKTAILS_SERVE_CLIENT_HPP
