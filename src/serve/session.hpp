/**
 * @file
 * A resumable, incrementally-consumed synthesis stream.
 *
 * One SynthesisSession wraps one SynthesisEngine (the priority-queue
 * merge of paper Sec. III-C) and hands its output out chunk by chunk:
 * next(out, max) appends up to max requests and advances the cursor.
 * The emitted sequence is bit-identical to one-shot
 * core::synthesize(profile, seed) regardless of how the calls are
 * chunked — the engine is deterministic and the session never reorders
 * or drops.
 *
 * Two staging modes:
 *  - Synchronous (bufferCapacity == 0): next() pulls straight from the
 *    engine on the calling thread. Zero overhead, zero extra threads.
 *  - Buffered (bufferCapacity > 0): a dedicated producer thread runs
 *    the merge ahead of the consumer into a bounded buffer, so network
 *    writes and synthesis overlap. Backpressure is the bound: the
 *    producer blocks once the buffer holds bufferCapacity requests and
 *    resumes as the consumer drains it. The producer is a dedicated
 *    thread, not a pool task, because sessions are consumed *from*
 *    pool workers (server connection handlers) and a pool task queued
 *    behind its own consumer would deadlock a 1-worker pool.
 *
 * Session state machine (see DESIGN.md "Serving"):
 *
 *   Streaming --next() drains engine--> Done
 *   Streaming --close()-------------> Closed
 *   Done      --close()-------------> Closed
 *
 * close() is idempotent, wakes and joins the producer, and is called
 * by the destructor.
 */

#ifndef MOCKTAILS_SERVE_SESSION_HPP
#define MOCKTAILS_SERVE_SESSION_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/synthesis.hpp"
#include "mem/request.hpp"
#include "serve/profile_store.hpp"

namespace mocktails::serve
{

struct SessionOptions
{
    /** Seed of the wrapped engine; equal seeds give equal streams. */
    std::uint64_t seed = 1;

    /**
     * Requests staged ahead of the consumer. 0 = synchronous pull
     * (no producer thread); > 0 = bounded-buffer producer.
     */
    std::size_t bufferCapacity = 0;
};

class SynthesisSession
{
  public:
    /**
     * @param profile Shared ownership: the session keeps the profile
     *        alive even if the store evicts it mid-stream.
     *
     * When the StoredProfile carries a pre-materialised trace (a
     * composed scenario), the session streams that trace verbatim
     * instead of synthesising — same chunking contract, and the
     * stream is then seed-invariant by construction.
     */
    SynthesisSession(std::shared_ptr<const StoredProfile> profile,
                     SessionOptions options = {});

    ~SynthesisSession();

    SynthesisSession(const SynthesisSession &) = delete;
    SynthesisSession &operator=(const SynthesisSession &) = delete;

    /**
     * Append up to @p max requests to @p out.
     *
     * @return The number appended. 0 with done() true means the stream
     *         is exhausted; 0 with closed() true means the session was
     *         cancelled.
     */
    std::size_t next(std::vector<mem::Request> &out, std::size_t max);

    /** Every request has been emitted. */
    bool done() const;

    /** close() was called before the stream drained (cancellation). */
    bool closed() const;

    /** Cancel/finish the session; idempotent, joins the producer. */
    void close();

    /** Cursor: requests emitted to the consumer so far. */
    std::uint64_t emitted() const;

    /** Requests the full stream produces. */
    std::uint64_t total() const { return total_; }

    /** Requests currently staged in the buffer (0 when synchronous). */
    std::size_t buffered() const;

    /** Times the producer blocked on a full buffer (backpressure). */
    std::uint64_t backpressureWaits() const;

    const StoredProfile &profile() const { return *profile_; }
    std::uint64_t seed() const { return options_.seed; }

  private:
    void producerLoop();

    /// Stream one request / a batch from the engine or the trace
    /// cursor. Callers serialise access (lock or producer thread).
    bool pullOne(mem::Request &out);
    std::size_t pullBatch(std::vector<mem::Request> &out,
                          std::size_t max);

    std::shared_ptr<const StoredProfile> profile_;
    SessionOptions options_;
    /// The synthesis merge; null when streaming profile_->trace.
    std::unique_ptr<core::SynthesisEngine> engine_;
    std::size_t trace_pos_ = 0; ///< cursor when streaming a trace
    std::uint64_t total_ = 0;

    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<mem::Request> buffer_;
    std::thread producer_;
    bool producer_done_ = false;
    bool closed_ = false;
    std::uint64_t emitted_ = 0;
    std::uint64_t backpressure_waits_ = 0;
};

} // namespace mocktails::serve

#endif // MOCKTAILS_SERVE_SESSION_HPP
