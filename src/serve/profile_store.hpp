/**
 * @file
 * A concurrent, LRU-bounded store of loaded profiles.
 *
 * The serving layer's working set: profiles are loaded from disk once,
 * shared by every session that streams from them (shared_ptr, so an
 * eviction never yanks a profile out from under a live session), and
 * evicted least-recently-used when the store exceeds its byte or entry
 * capacity.
 *
 * Concurrent misses on the same id are single-flighted: the first
 * caller schedules exactly one load (on the shared PR-1 thread pool
 * when called from outside it, inline when the caller already *is* a
 * pool worker — a server connection handler — so a 1-worker pool can
 * never deadlock on itself); every other caller blocks on the entry's
 * condition variable and shares the result, success or failure.
 *
 * Telemetry (when enabled): "store.hits" / "store.misses" /
 * "store.evictions" / "store.load_failures" counters and
 * "store.resident_profiles" / "store.resident_bytes" gauges.
 */

#ifndef MOCKTAILS_SERVE_PROFILE_STORE_HPP
#define MOCKTAILS_SERVE_PROFILE_STORE_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/profile.hpp"
#include "mem/trace.hpp"

namespace mocktails::telemetry
{
class Counter;
class Gauge;
} // namespace mocktails::telemetry

namespace mocktails::serve
{

/** One resident profile plus its accounting metadata. */
struct StoredProfile
{
    std::string id;
    std::string path;     ///< "" for in-memory inserts
    core::Profile profile;
    std::size_t bytes = 0; ///< eviction cost (compressed file size)
    std::uint64_t totalRequests = 0;

    /**
     * When set, sessions stream this pre-materialised trace instead of
     * synthesising from `profile` — how composed scenarios (and any
     * other custom Loader) serve deterministic request streams under a
     * profile id. Sessions hold the StoredProfile shared_ptr, so the
     * trace survives eviction like everything else here.
     */
    std::shared_ptr<const mem::Trace> trace;

    /**
     * Sub-stream count advertised to clients in OpenedBody (0 = plain
     * profile; the server reports leaf count instead). A scenario's
     * merged entry reports its device count so `fetch --mux` knows how
     * many per-device channels "scenario:<name>#<k>" to open.
     */
    std::uint64_t streamParts = 0;
};

struct StoreOptions
{
    /**
     * Directory for implicit id -> path resolution ("" = only ids
     * registered via registerProfile/insert resolve). Ids containing
     * path separators or ".." are rejected, so a remote peer cannot
     * escape the root.
     */
    std::string root;

    /** Resident-byte capacity (compressed sizes); 0 = unbounded. */
    std::size_t maxBytes = 256u << 20;

    /** Resident-entry capacity; 0 = unbounded. */
    std::size_t maxEntries = 64;
};

class ProfileStore
{
  public:
    explicit ProfileStore(StoreOptions options = {});

    ProfileStore(const ProfileStore &) = delete;
    ProfileStore &operator=(const ProfileStore &) = delete;

    /** Map @p id to an explicit file path (overrides the root rule). */
    void registerProfile(const std::string &id, const std::string &path);

    /** Insert an already-built profile (tests, local serving). */
    void insert(const std::string &id, core::Profile profile);

    /**
     * Custom population: fill a StoredProfile for @p id on demand
     * (return false with a diagnostic on failure). Loaders run under
     * the same single-flight/LRU machinery as disk loads — this is how
     * scenario ids become first-class citizens of the store without
     * the store knowing what a scenario is.
     */
    using Loader =
        std::function<bool(StoredProfile &out, std::string *error)>;

    /** Register @p loader for @p id (overrides path resolution). */
    void registerLoader(const std::string &id, Loader loader);

    /**
     * Fetch a profile, loading it on first use.
     *
     * @return The resident profile, or nullptr with @p error (when
     *         non-null) set to the load diagnostic. The returned
     *         shared_ptr stays valid across evictions.
     */
    std::shared_ptr<const StoredProfile>
    get(const std::string &id, std::string *error = nullptr);

    /// @name Introspection (tests / STAT handling)
    /// @{
    std::size_t residentCount() const;
    std::size_t residentBytes() const;
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    /** Disk loads actually performed (single-flight dedupes these). */
    std::uint64_t loads() const { return loads_; }
    /// @}

  private:
    struct Entry
    {
        enum class State { Loading, Ready };
        State state = State::Loading;
        std::shared_ptr<const StoredProfile> value;
        std::uint64_t lastUse = 0;
    };

    /** id -> path under the root rule; "" when unresolvable. */
    std::string resolvePath(const std::string &id) const;

    /** Load @p id (disk or custom loader) and publish the result. */
    void loadEntry(const std::string &id, const std::string &path,
                   const Loader &loader);

    /** Evict LRU Ready entries until within capacity. Lock held. */
    void enforceCapacityLocked();

    /** Refresh the resident gauges. Lock held. */
    void publishGaugesLocked();

    StoreOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<std::string, Entry> entries_;
    std::map<std::string, std::string> registered_;
    std::map<std::string, Loader> loaders_;
    /// Last failure per id (failed loads are not cached as entries;
    /// waiters of the failed flight read the diagnostic from here).
    std::map<std::string, std::string> load_errors_;
    std::size_t resident_bytes_ = 0;
    std::uint64_t use_clock_ = 0;

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> loads_{0};

    telemetry::Counter *hits_metric_ = nullptr;
    telemetry::Counter *misses_metric_ = nullptr;
    telemetry::Counter *evictions_metric_ = nullptr;
    telemetry::Counter *load_failures_metric_ = nullptr;
    telemetry::Gauge *resident_profiles_metric_ = nullptr;
    telemetry::Gauge *resident_bytes_metric_ = nullptr;
};

} // namespace mocktails::serve

#endif // MOCKTAILS_SERVE_PROFILE_STORE_HPP
