#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>

namespace mocktails::serve
{

const char *
toString(ErrorCode code)
{
    switch (code) {
      case ErrorCode::BadFrame:
        return "bad frame";
      case ErrorCode::BadVersion:
        return "bad version";
      case ErrorCode::UnknownProfile:
        return "unknown profile";
      case ErrorCode::UnknownSession:
        return "unknown session";
      case ErrorCode::Overloaded:
        return "overloaded";
      case ErrorCode::Internal:
        return "internal error";
    }
    return "unknown error";
}

const char *
toString(MsgType type)
{
    switch (type) {
      case MsgType::Hello:
        return "Hello";
      case MsgType::HelloOk:
        return "HelloOk";
      case MsgType::OpenProfile:
        return "OpenProfile";
      case MsgType::Opened:
        return "Opened";
      case MsgType::SynthChunk:
        return "SynthChunk";
      case MsgType::Chunk:
        return "Chunk";
      case MsgType::Stat:
        return "Stat";
      case MsgType::Stats:
        return "Stats";
      case MsgType::Close:
        return "Close";
      case MsgType::Closed:
        return "Closed";
      case MsgType::OpenChannel:
        return "OpenChannel";
      case MsgType::ChannelOpened:
        return "ChannelOpened";
      case MsgType::ChannelError:
        return "ChannelError";
      case MsgType::Error:
        return "Error";
      case MsgType::ServerStat:
        return "ServerStat";
      case MsgType::ServerStats:
        return "ServerStats";
    }
    return "Unknown";
}

std::vector<std::uint8_t>
packFrame(MsgType type, const std::vector<std::uint8_t> &body)
{
    const std::uint32_t length =
        static_cast<std::uint32_t>(body.size()) + 1;
    std::vector<std::uint8_t> out;
    out.reserve(4 + length);
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(length >> (8 * i)));
    out.push_back(static_cast<std::uint8_t>(type));
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

void
HelloBody::encode(util::ByteWriter &w) const
{
    w.putVarint(magic);
    w.putVarint(version);
}

bool
HelloBody::decode(util::ByteReader &r)
{
    magic = static_cast<std::uint32_t>(r.getVarint());
    version = static_cast<std::uint32_t>(r.getVarint());
    return r.ok() && r.atEnd();
}

void
HelloOkBody::encode(util::ByteWriter &w) const
{
    w.putVarint(version);
}

bool
HelloOkBody::decode(util::ByteReader &r)
{
    if (r.atEnd()) {
        version = kVersionLegacy; // v1 servers sent an empty body
        return true;
    }
    version = static_cast<std::uint32_t>(r.getVarint());
    return r.ok() && r.atEnd();
}

void
OpenChannelBody::encode(util::ByteWriter &w) const
{
    w.putVarint(channel);
    w.putString(id);
    w.putVarint(seed);
}

bool
OpenChannelBody::decode(util::ByteReader &r)
{
    channel = r.getVarint();
    id = r.getString();
    seed = r.getVarint();
    return r.ok() && r.atEnd();
}

void
ChannelErrorBody::encode(util::ByteWriter &w) const
{
    w.putVarint(channel);
    w.putByte(static_cast<std::uint8_t>(code));
    w.putString(message);
}

bool
ChannelErrorBody::decode(util::ByteReader &r)
{
    channel = r.getVarint();
    code = static_cast<ErrorCode>(r.getByte());
    message = r.getString();
    return r.ok() && r.atEnd();
}

void
OpenProfileBody::encode(util::ByteWriter &w) const
{
    w.putString(id);
    w.putVarint(seed);
}

bool
OpenProfileBody::decode(util::ByteReader &r)
{
    id = r.getString();
    seed = r.getVarint();
    return r.ok() && r.atEnd();
}

void
OpenedBody::encode(util::ByteWriter &w) const
{
    w.putVarint(session);
    w.putString(name);
    w.putString(device);
    w.putVarint(leaves);
    w.putVarint(total);
}

bool
OpenedBody::decode(util::ByteReader &r)
{
    session = r.getVarint();
    name = r.getString();
    device = r.getString();
    leaves = r.getVarint();
    total = r.getVarint();
    return r.ok() && r.atEnd();
}

void
SynthChunkBody::encode(util::ByteWriter &w) const
{
    w.putVarint(session);
    w.putVarint(maxRequests);
}

bool
SynthChunkBody::decode(util::ByteReader &r)
{
    session = r.getVarint();
    maxRequests = r.getVarint();
    return r.ok() && r.atEnd();
}

void
ChunkBody::encode(util::ByteWriter &w, const mem::Request *records,
                  mem::RequestCodecState &state) const
{
    w.putVarint(session);
    w.putVarint(firstSeq);
    w.putVarint(count);
    w.putByte(done ? 1 : 0);
    mem::encodeRequests(w, records, count, state);
}

bool
ChunkBody::decode(util::ByteReader &r, std::vector<mem::Request> &out,
                  mem::RequestCodecState &state)
{
    session = r.getVarint();
    firstSeq = r.getVarint();
    count = r.getVarint();
    done = r.getByte() != 0;
    // A count the remaining body cannot hold is corrupt (and would
    // otherwise drive a huge reserve in decodeRequests).
    if (!r.ok() ||
        count > r.remaining() / mem::kMinEncodedRequestBytes + 1)
        return false;
    if (!mem::decodeRequests(r, count, out, state))
        return false;
    return r.ok() && r.atEnd();
}

void
StatBody::encode(util::ByteWriter &w) const
{
    w.putVarint(session);
}

bool
StatBody::decode(util::ByteReader &r)
{
    session = r.getVarint();
    return r.ok() && r.atEnd();
}

void
StatsBody::encode(util::ByteWriter &w) const
{
    w.putVarint(session);
    w.putVarint(emitted);
    w.putVarint(total);
    w.putVarint(buffered);
}

bool
StatsBody::decode(util::ByteReader &r)
{
    session = r.getVarint();
    emitted = r.getVarint();
    total = r.getVarint();
    buffered = r.getVarint();
    return r.ok() && r.atEnd();
}

void
CloseBody::encode(util::ByteWriter &w) const
{
    w.putVarint(session);
}

bool
CloseBody::decode(util::ByteReader &r)
{
    session = r.getVarint();
    return r.ok() && r.atEnd();
}

void
ClosedBody::encode(util::ByteWriter &w) const
{
    w.putVarint(session);
    w.putVarint(emitted);
}

bool
ClosedBody::decode(util::ByteReader &r)
{
    session = r.getVarint();
    emitted = r.getVarint();
    return r.ok() && r.atEnd();
}

void
ErrorBody::encode(util::ByteWriter &w) const
{
    w.putByte(static_cast<std::uint8_t>(code));
    w.putString(message);
}

bool
ErrorBody::decode(util::ByteReader &r)
{
    code = static_cast<ErrorCode>(r.getByte());
    message = r.getString();
    return r.ok() && r.atEnd();
}

void
ServerStatBody::encode(util::ByteWriter &) const
{
}

bool
ServerStatBody::decode(util::ByteReader &r)
{
    return r.ok() && r.atEnd();
}

void
ServerStatsBody::encode(util::ByteWriter &w) const
{
    w.putVarint(entries.size());
    for (const Entry &entry : entries) {
        w.putString(entry.name);
        w.putSigned(entry.value);
    }
}

bool
ServerStatsBody::decode(util::ByteReader &r)
{
    const std::uint64_t count = r.getVarint();
    // Every entry is at least two bytes (length prefix + value), so a
    // count beyond half the remaining body is malformed, not huge.
    if (!r.ok() || count > r.remaining() / 2)
        return false;
    entries.clear();
    entries.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        Entry entry;
        entry.name = r.getString();
        entry.value = r.getSigned();
        if (!r.ok())
            return false;
        entries.push_back(std::move(entry));
    }
    return r.ok() && r.atEnd();
}

namespace
{

/**
 * recv() exactly @p size bytes.
 * @param any_read Set when at least one byte arrived (distinguishes a
 *        clean inter-frame EOF from a mid-frame truncation).
 */
FrameResult
readAll(int fd, std::uint8_t *data, std::size_t size, bool &any_read)
{
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd, data + got, size - got, 0);
        if (n > 0) {
            any_read = true;
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0)
            return got == 0 && !any_read ? FrameResult::Eof
                                         : FrameResult::Error;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return FrameResult::Timeout;
        return FrameResult::Error;
    }
    return FrameResult::Ok;
}

} // namespace

void
FrameParser::append(const std::uint8_t *data, std::size_t size)
{
    // Compact lazily: only when the consumed prefix dominates, so a
    // busy connection is not copying its buffer on every frame.
    if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + size);
}

FrameParser::Next
FrameParser::next(Frame &out)
{
    if (buffered() < 4)
        return Next::NeedMore;
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i)
        length |= static_cast<std::uint32_t>(buffer_[pos_ + static_cast<std::size_t>(i)])
                  << (8 * i);
    if (length == 0)
        return Next::Malformed; // a frame always has a type byte
    if (length > max_bytes_)
        return Next::TooLarge;
    if (buffered() < 4u + length)
        return Next::NeedMore;
    out.type = static_cast<MsgType>(buffer_[pos_ + 4]);
    out.body.assign(buffer_.begin() +
                        static_cast<std::ptrdiff_t>(pos_ + 5),
                    buffer_.begin() +
                        static_cast<std::ptrdiff_t>(pos_ + 4 + length));
    pos_ += 4u + length;
    return Next::Frame;
}

FrameResult
readFrame(int fd, Frame &frame, std::uint32_t max_bytes)
{
    std::uint8_t prefix[4];
    bool any_read = false;
    FrameResult rc = readAll(fd, prefix, sizeof(prefix), any_read);
    if (rc != FrameResult::Ok)
        return rc;

    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i)
        length |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
    if (length == 0)
        return FrameResult::Error; // a frame always has a type byte
    if (length > max_bytes)
        return FrameResult::TooLarge;

    std::uint8_t type = 0;
    rc = readAll(fd, &type, 1, any_read);
    if (rc != FrameResult::Ok)
        return rc == FrameResult::Eof ? FrameResult::Error : rc;
    frame.type = static_cast<MsgType>(type);
    frame.body.resize(length - 1);
    if (!frame.body.empty()) {
        rc = readAll(fd, frame.body.data(), frame.body.size(),
                     any_read);
        if (rc != FrameResult::Ok)
            return rc == FrameResult::Eof ? FrameResult::Error : rc;
    }
    return FrameResult::Ok;
}

bool
writeFrame(int fd, MsgType type, const std::vector<std::uint8_t> &body)
{
    const std::vector<std::uint8_t> frame = packFrame(type, body);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        // MSG_NOSIGNAL: a peer that vanished mid-write must surface
        // as EPIPE, not kill the process with SIGPIPE.
        const ssize_t n = ::send(fd, frame.data() + sent,
                                 frame.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace mocktails::serve
