/**
 * @file
 * A two-level cache hierarchy driven in atomic mode.
 *
 * Reproduces the Sec. V platform: a configurable write-back L1 in
 * front of a 256 KiB 8-way L2, 64-byte blocks, LRU. Also tracks the
 * footprint (unique blocks touched by the request stream), one of the
 * fidelity metrics the paper reports.
 */

#ifndef MOCKTAILS_CACHE_HIERARCHY_HPP
#define MOCKTAILS_CACHE_HIERARCHY_HPP

#include <cstdint>

#include "cache/cache.hpp"
#include "mem/trace.hpp"
#include "util/flat_set.hpp"

namespace mocktails::cache
{

/**
 * L1 + L2 configuration for an atomic simulation.
 */
struct HierarchyConfig
{
    CacheConfig l1{32 * 1024, 4, 64};
    CacheConfig l2{256 * 1024, 8, 64};
};

/**
 * Atomic-mode two-level hierarchy.
 */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &config);

    /** Run one request through L1 (and transitively L2). */
    void access(const mem::Request &request);

    /** Run an entire trace in order. */
    void run(const mem::Trace &trace);

    /** Invalidate everything and clear statistics. */
    void reset();

    const CacheStats &l1Stats() const { return l1_.stats(); }
    const CacheStats &l2Stats() const { return l2_.stats(); }

    /** Unique 64-byte blocks touched by the request stream. */
    std::uint64_t footprintBlocks() const { return touched_.size(); }

    /** Footprint in bytes. */
    std::uint64_t
    footprintBytes() const
    {
        return footprintBlocks() * l1_.config().blockSize;
    }

  private:
    Cache l1_;
    Cache l2_;
    util::FlatSet64 touched_;
};

} // namespace mocktails::cache

#endif // MOCKTAILS_CACHE_HIERARCHY_HPP
