#include "cache/cache.hpp"

#include <bit>
#include <cassert>

namespace mocktails::cache
{

bool
CacheConfig::isValid()
    const
{
    return std::has_single_bit(blockSize) && associativity > 0 &&
           size % (static_cast<std::uint64_t>(associativity) * blockSize) ==
               0 &&
           numSets() > 0 && std::has_single_bit(numSets());
}

Cache::Cache(const CacheConfig &config)
    : config_(config),
      block_shift_(std::countr_zero(config.blockSize)),
      sets_(config.numSets()),
      set_shift_(std::countr_zero(config.numSets()))
{
    assert(config.isValid());
    lines_.resize(static_cast<std::size_t>(sets_) * config_.associativity);
}

void
Cache::reset()
{
    for (Line &line : lines_)
        line = Line{};
    use_clock_ = 0;
    victim_seed_ = 0x243f6a8885a308d3ull;
    stats_ = CacheStats{};
}

void
Cache::access(const mem::Request &request)
{
    assert(request.size > 0);
    const mem::Addr first = request.addr >> block_shift_;
    const mem::Addr last = (request.end() - 1) >> block_shift_;
    for (mem::Addr block = first; block <= last; ++block)
        accessBlock(block << block_shift_, request.op);
}

void
Cache::accessBlock(mem::Addr addr, mem::Op op)
{
    const std::uint64_t block = addr >> block_shift_;
    const std::uint32_t set = static_cast<std::uint32_t>(block & (sets_ - 1));
    const std::uint64_t tag = block >> set_shift_;

    ++stats_.accesses;
    if (op == mem::Op::Read)
        ++stats_.readAccesses;
    else
        ++stats_.writeAccesses;

    Line *const base = &lines_[static_cast<std::size_t>(set) *
                               config_.associativity];
    ++use_clock_;

    // Hit path.
    for (std::uint32_t way = 0; way < config_.associativity; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.lastUse = use_clock_;
            if (op == mem::Op::Write)
                line.dirty = true;
            return;
        }
    }

    // Miss path (write-allocate).
    ++stats_.misses;
    if (op == mem::Op::Read)
        ++stats_.readMisses;
    else
        ++stats_.writeMisses;

    Line *const victim = selectVictim(base);

    if (victim->valid) {
        ++stats_.replacements;
        if (victim->dirty) {
            ++stats_.writebacks;
            if (next_) {
                const std::uint64_t victim_block =
                    (victim->tag << set_shift_) | set;
                next_->accessBlock(victim_block << block_shift_,
                                   mem::Op::Write);
            }
        }
    }

    // Fetch the block from the next level (the fill is a read there).
    if (next_)
        next_->accessBlock(addr, mem::Op::Read);

    victim->valid = true;
    victim->tag = tag;
    victim->dirty = (op == mem::Op::Write);
    victim->lastUse = use_clock_;
    victim->filledAt = use_clock_;
}

Cache::Line *
Cache::selectVictim(Line *base)
{
    // Invalid ways are always filled first, regardless of policy.
    for (std::uint32_t way = 0; way < config_.associativity; ++way) {
        if (!base[way].valid)
            return &base[way];
    }

    switch (config_.replacement) {
      case Replacement::Lru: {
        Line *victim = base;
        for (std::uint32_t way = 1; way < config_.associativity;
             ++way) {
            if (base[way].lastUse < victim->lastUse)
                victim = &base[way];
        }
        return victim;
      }
      case Replacement::Fifo: {
        Line *victim = base;
        for (std::uint32_t way = 1; way < config_.associativity;
             ++way) {
            if (base[way].filledAt < victim->filledAt)
                victim = &base[way];
        }
        return victim;
      }
      case Replacement::Random: {
        // splitmix64 step keeps the choice deterministic per cache.
        victim_seed_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = victim_seed_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        return &base[z % config_.associativity];
      }
    }
    return base;
}

} // namespace mocktails::cache
