/**
 * @file
 * A set-associative write-back cache for atomic (order-only) simulation.
 *
 * Matches the platform of the paper's Sec. V: gem5 atomic mode, LRU
 * replacement, write-back write-allocate caches. Timing is ignored —
 * only the order of accesses matters, which is exactly what the cache
 * metrics (miss rate, footprint, replacements, write-backs) depend on.
 */

#ifndef MOCKTAILS_CACHE_CACHE_HPP
#define MOCKTAILS_CACHE_CACHE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mem/request.hpp"

namespace mocktails::cache
{

/**
 * Victim-selection policy.
 *
 * The paper's evaluation uses LRU (Sec. V-A); the alternatives enable
 * the replacement-policy studies Sec. VI proposes as a use case.
 */
enum class Replacement : std::uint8_t
{
    Lru = 0,    ///< least recently used
    Fifo = 1,   ///< oldest-filled line first
    Random = 2, ///< uniformly random victim (deterministic seed)
};

/**
 * Cache geometry and policy.
 */
struct CacheConfig
{
    std::uint64_t size = 32 * 1024; ///< bytes
    std::uint32_t associativity = 4;
    std::uint32_t blockSize = 64;   ///< bytes
    Replacement replacement = Replacement::Lru;

    std::uint32_t
    numSets() const
    {
        return static_cast<std::uint32_t>(
            size / (static_cast<std::uint64_t>(associativity) * blockSize));
    }

    bool isValid() const;
};

/**
 * Counters exposed by each cache level.
 */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t readAccesses = 0;
    std::uint64_t writeAccesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;

    /** Evictions of a valid line to make room. */
    std::uint64_t replacements = 0;

    /** Dirty evictions written back to the next level. */
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(misses) /
                                   static_cast<double>(accesses);
    }
};

/**
 * One cache level. Levels chain via setNextLevel(); misses propagate
 * down as block-sized reads and dirty evictions as block-sized writes.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Perform one access, splitting it into block-sized probes.
     * Probes to distinct blocks each count as one access.
     */
    void access(const mem::Request &request);

    /** Probe a single block. @param addr Any byte within the block. */
    void accessBlock(mem::Addr addr, mem::Op op);

    /** Chain to the next level (nullptr = main memory). */
    void setNextLevel(Cache *next) { next_ = next; }

    /** Invalidate everything and clear statistics. */
    void reset();

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;  ///< LRU recency stamp
        std::uint64_t filledAt = 0; ///< FIFO insertion stamp
        bool valid = false;
        bool dirty = false;
    };

    Line *selectVictim(Line *base);

    CacheConfig config_;
    Cache *next_ = nullptr;
    std::vector<Line> lines_; ///< sets * associativity, set-major
    std::uint64_t use_clock_ = 0;
    std::uint64_t victim_seed_ = 0x243f6a8885a308d3ull;
    std::uint32_t block_shift_;
    std::uint32_t sets_;
    std::uint32_t set_shift_; ///< countr_zero(sets_), hoisted
    CacheStats stats_;
};

} // namespace mocktails::cache

#endif // MOCKTAILS_CACHE_CACHE_HPP
