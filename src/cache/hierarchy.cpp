#include "cache/hierarchy.hpp"

#include <string>

#include "obs/trace_event.hpp"
#include "telemetry/span.hpp"

namespace mocktails::cache
{

namespace
{

/**
 * Publish the delta between a level's stats at run() entry and exit,
 * so back-to-back runs on one hierarchy each contribute their own
 * traffic (the registry accumulates across runs).
 */
void
publishLevelDelta(const char *level, const CacheStats &before,
                  const CacheStats &after)
{
    auto &registry = telemetry::MetricsRegistry::global();
    const std::string prefix = std::string("cache.") + level + ".";
    registry.counter(prefix + "accesses")
        .add(after.accesses - before.accesses);
    registry.counter(prefix + "misses")
        .add(after.misses - before.misses);
    registry.counter(prefix + "writebacks")
        .add(after.writebacks - before.writebacks);
    registry.counter(prefix + "replacements")
        .add(after.replacements - before.replacements);
}

} // namespace

Hierarchy::Hierarchy(const HierarchyConfig &config)
    : l1_(config.l1), l2_(config.l2)
{
    l1_.setNextLevel(&l2_);
}

void
Hierarchy::access(const mem::Request &request)
{
    const std::uint32_t block_size = l1_.config().blockSize;
    const mem::Addr first = request.addr / block_size;
    const mem::Addr last = (request.end() - 1) / block_size;
    for (mem::Addr block = first; block <= last; ++block)
        touched_.insert(block);

    // Observability: miss instants per level (the common all-hit case
    // emits nothing, which keeps the event budget for the anomalies).
    if (obs::TraceEventWriter *trace = obs::collector()) {
        const std::uint64_t l1_before = l1_.stats().misses;
        const std::uint64_t l2_before = l2_.stats().misses;
        l1_.access(request);
        if (l1_.stats().misses != l1_before) {
            trace->instant(
                "l1_miss", "cache", request.tick, obs::track::kCacheL1,
                {{"addr", static_cast<std::int64_t>(request.addr)}});
        }
        if (l2_.stats().misses != l2_before) {
            trace->instant(
                "l2_miss", "cache", request.tick, obs::track::kCacheL2,
                {{"addr", static_cast<std::int64_t>(request.addr)}});
        }
        return;
    }
    l1_.access(request);
}

void
Hierarchy::run(const mem::Trace &trace)
{
    if (obs::TraceEventWriter *events = obs::collector()) {
        events->nameTrack(obs::track::kCacheL1, "cache L1 misses");
        events->nameTrack(obs::track::kCacheL2, "cache L2 misses");
    }
    if (!telemetry::enabled()) {
        for (const mem::Request &r : trace)
            access(r);
        return;
    }

    telemetry::Span span("cache.run");
    const CacheStats l1_before = l1_.stats();
    const CacheStats l2_before = l2_.stats();
    for (const mem::Request &r : trace)
        access(r);
    publishLevelDelta("l1", l1_before, l1_.stats());
    publishLevelDelta("l2", l2_before, l2_.stats());
    telemetry::MetricsRegistry::global()
        .gauge("cache.footprint_blocks")
        .set(static_cast<std::int64_t>(footprintBlocks()));
}

void
Hierarchy::reset()
{
    l1_.reset();
    l2_.reset();
    touched_.clear();
}

} // namespace mocktails::cache
