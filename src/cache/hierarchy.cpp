#include "cache/hierarchy.hpp"

namespace mocktails::cache
{

Hierarchy::Hierarchy(const HierarchyConfig &config)
    : l1_(config.l1), l2_(config.l2)
{
    l1_.setNextLevel(&l2_);
}

void
Hierarchy::access(const mem::Request &request)
{
    const std::uint32_t block_size = l1_.config().blockSize;
    const mem::Addr first = request.addr / block_size;
    const mem::Addr last = (request.end() - 1) / block_size;
    for (mem::Addr block = first; block <= last; ++block)
        touched_.insert(block);
    l1_.access(request);
}

void
Hierarchy::run(const mem::Trace &trace)
{
    for (const mem::Request &r : trace)
        access(r);
}

void
Hierarchy::reset()
{
    l1_.reset();
    l2_.reset();
    touched_.clear();
}

} // namespace mocktails::cache
