/**
 * @file
 * Trace persistence.
 *
 * The binary format delta-encodes ticks and zigzag-encodes address
 * strides before varint packing, then runs the byte stream through the
 * LZ compressor — the same treatment profiles get, so trace-vs-profile
 * size comparisons (paper Fig. 17) are apples to apples. A plain CSV
 * form is provided for interoperability with external tools.
 */

#ifndef MOCKTAILS_MEM_TRACE_IO_HPP
#define MOCKTAILS_MEM_TRACE_IO_HPP

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "mem/trace.hpp"

namespace mocktails::mem
{

/** Serialise a trace to compressed binary bytes. */
std::vector<std::uint8_t> encodeTrace(const Trace &trace);

/**
 * Reconstruct a trace from encodeTrace() bytes.
 * @return false when the buffer is corrupt.
 */
bool decodeTrace(const std::vector<std::uint8_t> &bytes, Trace &trace);

/** Write a trace to a binary file. @return true on success. */
bool saveTrace(const Trace &trace, const std::string &path);

/** Load a trace from a binary file. @return true on success. */
bool loadTrace(const std::string &path, Trace &trace);

/** Write "tick,addr,op,size" CSV with a header line. */
bool saveTraceCsv(const Trace &trace, const std::string &path);

/**
 * Parse CSV produced by saveTraceCsv. @return true on success.
 *
 * Malformed input fails loudly: @p error (when non-null) receives a
 * "path:line: message" diagnostic naming the offending line; lines of
 * any length are handled (no fixed buffer). The two-argument overload
 * prints the diagnostic to stderr instead of swallowing it.
 */
bool loadTraceCsv(const std::string &path, Trace &trace,
                  std::string *error);
bool loadTraceCsv(const std::string &path, Trace &trace);

/// @name CSV plumbing shared with mem::TraceReader
/// @{

/**
 * Read one full line of any length into the reusable buffer @p line
 * (fgets into a fixed buffer would silently split long lines into two
 * bogus records). Strips the trailing newline / CRLF.
 * @return false at end of file with nothing read.
 */
bool readCsvLine(std::FILE *f, std::string &line);

/**
 * Parse one "tick,0xaddr,op,size" record. On failure @p message
 * receives what was wrong (without file/line context).
 */
bool parseCsvRecord(const std::string &line, Request &out,
                    std::string &message);

/** Format the loud "path:line: message in 'head...'" diagnostic. */
std::string csvParseDiagnostic(const std::string &path,
                               std::uint64_t line_number,
                               const std::string &message,
                               const std::string &line);

/// @}

} // namespace mocktails::mem

#endif // MOCKTAILS_MEM_TRACE_IO_HPP
