#include "mem/trace_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/codec.hpp"
#include "util/compress.hpp"

namespace mocktails::mem
{

namespace
{

constexpr std::uint64_t traceMagic = 0x4d4b5452; // "MKTR"
constexpr std::uint64_t traceVersion = 1;

} // namespace

std::vector<std::uint8_t>
encodeTrace(const Trace &trace)
{
    util::ByteWriter w;
    w.putVarint(traceMagic);
    w.putVarint(traceVersion);
    w.putString(trace.name());
    w.putString(trace.device());
    w.putVarint(trace.size());

    Tick last_tick = 0;
    Addr last_addr = 0;
    for (const Request &r : trace) {
        w.putSigned(static_cast<std::int64_t>(r.tick - last_tick));
        w.putSigned(static_cast<std::int64_t>(r.addr - last_addr));
        w.putVarint(r.size);
        w.putByte(static_cast<std::uint8_t>(r.op));
        last_tick = r.tick;
        last_addr = r.addr;
    }

    return util::compress(w.bytes());
}

bool
decodeTrace(const std::vector<std::uint8_t> &bytes, Trace &trace)
{
    std::vector<std::uint8_t> raw;
    if (!util::decompress(bytes, raw))
        return false;

    util::ByteReader r(raw);
    if (r.getVarint() != traceMagic || r.getVarint() != traceVersion)
        return false;

    // Sequence the two reads explicitly (argument evaluation order is
    // unspecified).
    std::string name = r.getString();
    std::string device = r.getString();
    trace = Trace(std::move(name), std::move(device));
    const std::uint64_t count = r.getVarint();
    // Each encoded request needs at least 4 bytes; larger claims are
    // corrupt (and would over-allocate).
    if (count > r.remaining() / 4 + 1)
        return false;
    trace.requests().reserve(count);

    Tick tick = 0;
    Addr addr = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        tick += static_cast<Tick>(r.getSigned());
        addr += static_cast<Addr>(r.getSigned());
        const auto size = static_cast<std::uint32_t>(r.getVarint());
        const auto op = static_cast<Op>(r.getByte());
        if (!r.ok())
            return false;
        trace.add(tick, addr, size, op);
    }
    return r.ok();
}

bool
saveTrace(const Trace &trace, const std::string &path)
{
    return util::saveBytes(path, encodeTrace(trace));
}

bool
loadTrace(const std::string &path, Trace &trace)
{
    std::vector<std::uint8_t> bytes;
    return util::loadBytes(path, bytes) && decodeTrace(bytes, trace);
}

bool
saveTraceCsv(const Trace &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "tick,addr,op,size\n");
    for (const Request &r : trace) {
        std::fprintf(f, "%" PRIu64 ",0x%" PRIx64 ",%s,%u\n", r.tick, r.addr,
                     toString(r.op), r.size);
    }
    return std::fclose(f) == 0;
}

bool
readCsvLine(std::FILE *f, std::string &line)
{
    line.clear();
    char chunk[256];
    while (std::fgets(chunk, sizeof(chunk), f)) {
        line += chunk;
        if (!line.empty() && line.back() == '\n') {
            line.pop_back();
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return true;
        }
    }
    return !line.empty();
}

bool
parseCsvRecord(const std::string &line, Request &out,
               std::string &message)
{
    std::uint64_t tick = 0, addr = 0;
    unsigned size = 0;
    char op = 0;
    int consumed = 0;
    if (std::sscanf(line.c_str(), "%" SCNu64 ",0x%" SCNx64 ",%c,%u%n",
                    &tick, &addr, &op, &size, &consumed) != 4) {
        message = "expected 'tick,0xaddr,op,size'";
        return false;
    }
    if (static_cast<std::size_t>(consumed) != line.size()) {
        message = "trailing garbage after record";
        return false;
    }
    if (op != 'R' && op != 'W') {
        message = std::string("unknown op '") + op +
                  "' (expected R or W)";
        return false;
    }
    out = Request{tick, addr, size, op == 'W' ? Op::Write : Op::Read};
    return true;
}

std::string
csvParseDiagnostic(const std::string &path, std::uint64_t line_number,
                   const std::string &message, const std::string &line)
{
    std::string out =
        path + ":" + std::to_string(line_number) + ": " + message;
    if (!line.empty()) {
        // Quote at most the head of the line; enough to recognise it.
        const std::string head = line.substr(0, 64);
        out += " in '" + head + (line.size() > head.size() ? "...'" : "'");
    }
    return out;
}

namespace
{

/**
 * Count the newlines of a seekable stream in one buffered sweep, then
 * rewind. The row count lets the caller reserve its request vector
 * once instead of doubling through reallocations; a byte scan is an
 * order of magnitude cheaper than the sscanf parse that follows.
 * @return 0 when the stream is not seekable (e.g. a pipe) or empty.
 */
std::uint64_t
countLines(std::FILE *f)
{
    if (std::fseek(f, 0, SEEK_SET) != 0)
        return 0;
    char buf[1 << 16];
    std::uint64_t lines = 0;
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        const char *p = buf;
        const char *end = buf + n;
        while ((p = static_cast<const char *>(
                    std::memchr(p, '\n', static_cast<std::size_t>(
                                             end - p)))) != nullptr) {
            ++lines;
            ++p;
        }
    }
    if (std::fseek(f, 0, SEEK_SET) != 0)
        return 0; // cannot rewind: caller must not have consumed input
    return lines;
}

} // namespace

bool
loadTraceCsv(const std::string &path, Trace &trace, std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        if (error != nullptr)
            *error = path + ": cannot open file";
        return false;
    }

    trace = Trace();
    if (const std::uint64_t rows = countLines(f))
        trace.requests().reserve(rows); // includes the header: 1 slack

    std::string line; // reused across rows; capacity persists
    std::string message;
    std::uint64_t line_number = 0;
    Request request;
    while (readCsvLine(f, line)) {
        ++line_number;
        if (line_number == 1 && line.compare(0, 4, "tick") == 0)
            continue; // header
        if (line.empty())
            continue;
        if (!parseCsvRecord(line, request, message)) {
            if (error != nullptr) {
                *error =
                    csvParseDiagnostic(path, line_number, message, line);
            }
            std::fclose(f);
            return false;
        }
        trace.add(request);
    }
    std::fclose(f);
    return true;
}

bool
loadTraceCsv(const std::string &path, Trace &trace)
{
    std::string error;
    if (loadTraceCsv(path, trace, &error))
        return true;
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
}

} // namespace mocktails::mem
