#include "mem/trace_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/codec.hpp"
#include "util/compress.hpp"

namespace mocktails::mem
{

namespace
{

constexpr std::uint64_t traceMagic = 0x4d4b5452; // "MKTR"
constexpr std::uint64_t traceVersion = 1;

} // namespace

std::vector<std::uint8_t>
encodeTrace(const Trace &trace)
{
    util::ByteWriter w;
    w.putVarint(traceMagic);
    w.putVarint(traceVersion);
    w.putString(trace.name());
    w.putString(trace.device());
    w.putVarint(trace.size());

    Tick last_tick = 0;
    Addr last_addr = 0;
    for (const Request &r : trace) {
        w.putSigned(static_cast<std::int64_t>(r.tick - last_tick));
        w.putSigned(static_cast<std::int64_t>(r.addr - last_addr));
        w.putVarint(r.size);
        w.putByte(static_cast<std::uint8_t>(r.op));
        last_tick = r.tick;
        last_addr = r.addr;
    }

    return util::compress(w.bytes());
}

bool
decodeTrace(const std::vector<std::uint8_t> &bytes, Trace &trace)
{
    std::vector<std::uint8_t> raw;
    if (!util::decompress(bytes, raw))
        return false;

    util::ByteReader r(raw);
    if (r.getVarint() != traceMagic || r.getVarint() != traceVersion)
        return false;

    // Sequence the two reads explicitly (argument evaluation order is
    // unspecified).
    std::string name = r.getString();
    std::string device = r.getString();
    trace = Trace(std::move(name), std::move(device));
    const std::uint64_t count = r.getVarint();
    // Each encoded request needs at least 4 bytes; larger claims are
    // corrupt (and would over-allocate).
    if (count > r.remaining() / 4 + 1)
        return false;
    trace.requests().reserve(count);

    Tick tick = 0;
    Addr addr = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        tick += static_cast<Tick>(r.getSigned());
        addr += static_cast<Addr>(r.getSigned());
        const auto size = static_cast<std::uint32_t>(r.getVarint());
        const auto op = static_cast<Op>(r.getByte());
        if (!r.ok())
            return false;
        trace.add(tick, addr, size, op);
    }
    return r.ok();
}

bool
saveTrace(const Trace &trace, const std::string &path)
{
    return util::saveBytes(path, encodeTrace(trace));
}

bool
loadTrace(const std::string &path, Trace &trace)
{
    std::vector<std::uint8_t> bytes;
    return util::loadBytes(path, bytes) && decodeTrace(bytes, trace);
}

bool
saveTraceCsv(const Trace &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "tick,addr,op,size\n");
    for (const Request &r : trace) {
        std::fprintf(f, "%" PRIu64 ",0x%" PRIx64 ",%s,%u\n", r.tick, r.addr,
                     toString(r.op), r.size);
    }
    return std::fclose(f) == 0;
}

bool
loadTraceCsv(const std::string &path, Trace &trace)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;

    trace = Trace();
    char line[256];
    bool first = true;
    while (std::fgets(line, sizeof(line), f)) {
        if (first) {
            first = false;
            if (std::strncmp(line, "tick", 4) == 0)
                continue; // header
        }
        std::uint64_t tick = 0, addr = 0;
        unsigned size = 0;
        char op = 0;
        if (std::sscanf(line, "%" SCNu64 ",0x%" SCNx64 ",%c,%u", &tick,
                        &addr, &op, &size) != 4) {
            std::fclose(f);
            return false;
        }
        trace.add(tick, addr, size, op == 'W' ? Op::Write : Op::Read);
    }
    std::fclose(f);
    return true;
}

} // namespace mocktails::mem
