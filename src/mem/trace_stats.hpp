/**
 * @file
 * Whole-trace summary statistics.
 */

#ifndef MOCKTAILS_MEM_TRACE_STATS_HPP
#define MOCKTAILS_MEM_TRACE_STATS_HPP

#include <cstdint>

#include "mem/trace.hpp"

namespace mocktails::mem
{

/**
 * Aggregate features of a trace, for reporting and sanity checks.
 */
struct TraceStats
{
    std::uint64_t requests = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;

    /** Smallest and largest byte addresses touched. */
    Addr minAddr = 0;
    Addr maxAddr = 0;

    /** Number of distinct 4 KiB pages touched (the footprint proxy). */
    std::uint64_t touched4k = 0;

    /** First and last request ticks. */
    Tick firstTick = 0;
    Tick lastTick = 0;

    double readFraction() const;

    /** Mean injected requests per kilocycle over the active window. */
    double requestRate() const;
};

/** Compute TraceStats over @p trace. */
TraceStats computeStats(const Trace &trace);

} // namespace mocktails::mem

#endif // MOCKTAILS_MEM_TRACE_STATS_HPP
