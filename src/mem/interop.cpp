#include "mem/interop.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace mocktails::mem
{

bool
saveRamulatorTrace(const Trace &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    for (const Request &r : trace) {
        std::fprintf(f, "0x%" PRIx64 " %s\n", r.addr,
                     r.isRead() ? "R" : "W");
    }
    return std::fclose(f) == 0;
}

bool
loadRamulatorTrace(const std::string &path, Trace &trace,
                   std::uint32_t request_size, Tick gap)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;

    trace = Trace();
    char line[128];
    Tick tick = 0;
    while (std::fgets(line, sizeof(line), f)) {
        std::uint64_t addr = 0;
        char op[16] = {};
        if (std::sscanf(line, "0x%" SCNx64 " %15s", &addr, op) != 2) {
            if (line[0] == '\n' || line[0] == '#')
                continue; // blank lines / comments
            std::fclose(f);
            return false;
        }
        trace.add(tick, addr, request_size,
                  op[0] == 'W' ? Op::Write : Op::Read);
        tick += gap;
    }
    std::fclose(f);
    return true;
}

bool
saveDramsim3Trace(const Trace &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    for (const Request &r : trace) {
        std::fprintf(f, "0x%" PRIx64 " %s %" PRIu64 "\n", r.addr,
                     r.isRead() ? "READ" : "WRITE", r.tick);
    }
    return std::fclose(f) == 0;
}

bool
loadDramsim3Trace(const std::string &path, Trace &trace,
                  std::uint32_t request_size)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;

    trace = Trace();
    char line[128];
    while (std::fgets(line, sizeof(line), f)) {
        std::uint64_t addr = 0;
        std::uint64_t cycle = 0;
        char op[16] = {};
        if (std::sscanf(line, "0x%" SCNx64 " %15s %" SCNu64, &addr, op,
                        &cycle) != 3) {
            if (line[0] == '\n' || line[0] == '#')
                continue;
            std::fclose(f);
            return false;
        }
        trace.add(cycle, addr, request_size,
                  std::strncmp(op, "WRITE", 5) == 0 ? Op::Write
                                                    : Op::Read);
    }
    std::fclose(f);
    return true;
}

} // namespace mocktails::mem
