/**
 * @file
 * Chunked, bounded-memory trace streaming.
 *
 * The out-of-core profile build never materialises a full
 * vector<Request>; it pulls fixed-size SoA batches from a TraceReader
 * instead. Readers exist for the two persisted formats and for an
 * in-memory trace:
 *
 *  - CSV streams truly: one buffered pass, O(batch) resident memory
 *    regardless of file size.
 *  - The binary .mkt format is whole-file LZ-compressed (see
 *    trace_io.hpp), so the *encoded* bytes must be decompressed up
 *    front; the reader then decodes requests incrementally. Resident
 *    memory is the encoded stream (typically 5-8x smaller than the
 *    materialised trace), not O(batch) — the format trades streaming
 *    for compression ratio.
 *  - MemoryTraceReader adapts an existing Trace for tests and benches.
 *
 * Errors are loud: read() returning 0 means end-of-stream only when
 * error() is empty; a parse/decode failure stops the stream and
 * leaves the diagnostic (with file/line context for CSV) in error().
 */

#ifndef MOCKTAILS_MEM_TRACE_READER_HPP
#define MOCKTAILS_MEM_TRACE_READER_HPP

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "mem/request_batch.hpp"
#include "util/codec.hpp"

namespace mocktails::mem
{

/**
 * Pull-style source of request batches.
 */
class TraceReader
{
  public:
    virtual ~TraceReader() = default;

    /**
     * Clear @p out and refill it with up to @p max requests, in trace
     * order.
     *
     * @return The number of requests delivered; 0 at end of stream or
     *         on error (distinguished by error()).
     */
    virtual std::size_t read(RequestBatch &out, std::size_t max) = 0;

    /** Trace name from the source's metadata ("" when absent). */
    const std::string &name() const { return name_; }

    /** Device class from the source's metadata ("" when absent). */
    const std::string &device() const { return device_; }

    /** Total request count when known up front; 0 when unknown. */
    std::uint64_t sizeHint() const { return size_hint_; }

    /** Non-empty once the stream failed; read() returns 0 forever. */
    const std::string &error() const { return error_; }

  protected:
    std::string name_;
    std::string device_;
    std::uint64_t size_hint_ = 0;
    std::string error_;
};

/**
 * Streams an in-memory trace (tests, benches, already-loaded data).
 * The trace must outlive the reader.
 */
class MemoryTraceReader : public TraceReader
{
  public:
    explicit MemoryTraceReader(const Trace &trace);

    std::size_t read(RequestBatch &out, std::size_t max) override;

  private:
    const Trace *trace_;
    std::size_t pos_ = 0;
};

/**
 * Streams a "tick,addr,op,size" CSV file in bounded memory.
 */
class CsvTraceReader : public TraceReader
{
  public:
    /** Opens @p path; a failure is reported through error(). */
    explicit CsvTraceReader(const std::string &path);
    ~CsvTraceReader() override;

    CsvTraceReader(const CsvTraceReader &) = delete;
    CsvTraceReader &operator=(const CsvTraceReader &) = delete;

    std::size_t read(RequestBatch &out, std::size_t max) override;

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::string line_; // reused across rows
    std::uint64_t line_number_ = 0;
};

/**
 * Streams a binary .mkt trace: the compressed file is inflated to its
 * encoded byte stream once, then requests decode incrementally.
 */
class BinaryTraceReader : public TraceReader
{
  public:
    /** Loads and validates @p path; failures land in error(). */
    explicit BinaryTraceReader(const std::string &path);

    std::size_t read(RequestBatch &out, std::size_t max) override;

  private:
    std::vector<std::uint8_t> raw_; ///< decompressed encoded stream
    util::ByteReader reader_{nullptr, 0};
    std::uint64_t remaining_ = 0;
    Tick tick_ = 0; ///< delta-decode accumulators
    Addr addr_ = 0;
};

/**
 * Open the right reader for @p path: ".csv" streams as CSV, anything
 * else as binary. @return nullptr (with @p error set when non-null)
 * when the file cannot be opened or its header is invalid.
 */
std::unique_ptr<TraceReader> openTraceReader(const std::string &path,
                                             std::string *error);

} // namespace mocktails::mem

#endif // MOCKTAILS_MEM_TRACE_READER_HPP
