#include "mem/trace_ops.hpp"

#include <cassert>
#include <queue>

namespace mocktails::mem
{

Trace
sliceTime(const Trace &trace, Tick from, Tick to)
{
    Trace out(trace.name(), trace.device());
    for (const Request &r : trace) {
        if (r.tick >= from && r.tick < to)
            out.add(r);
    }
    return out;
}

Trace
sliceAddresses(const Trace &trace, Addr lo, Addr hi)
{
    Trace out(trace.name(), trace.device());
    for (const Request &r : trace) {
        if (r.addr < hi && r.end() > lo)
            out.add(r);
    }
    return out;
}

Trace
filterOp(const Trace &trace, Op op)
{
    Trace out(trace.name(), trace.device());
    for (const Request &r : trace) {
        if (r.op == op)
            out.add(r);
    }
    return out;
}

Trace
merge(const std::vector<const Trace *> &traces)
{
    Trace out;

    struct Cursor
    {
        Tick tick;
        std::size_t trace;
        std::size_t index;

        bool
        operator>(const Cursor &other) const
        {
            if (tick != other.tick)
                return tick > other.tick;
            return trace > other.trace;
        }
    };

    std::priority_queue<Cursor, std::vector<Cursor>,
                        std::greater<Cursor>>
        heap;
    std::size_t total = 0;
    for (std::size_t t = 0; t < traces.size(); ++t) {
        assert(traces[t]->isTimeOrdered());
        total += traces[t]->size();
        if (!traces[t]->empty())
            heap.push(Cursor{(*traces[t])[0].tick, t, 0});
    }
    out.requests().reserve(total);

    while (!heap.empty()) {
        const Cursor cursor = heap.top();
        heap.pop();
        const Trace &source = *traces[cursor.trace];
        out.add(source[cursor.index]);
        if (cursor.index + 1 < source.size()) {
            heap.push(Cursor{source[cursor.index + 1].tick,
                             cursor.trace, cursor.index + 1});
        }
    }
    return out;
}

Trace
shiftTime(const Trace &trace, std::int64_t offset)
{
    Trace out(trace.name(), trace.device());
    out.requests().reserve(trace.size());
    for (const Request &r : trace) {
        const std::int64_t shifted =
            static_cast<std::int64_t>(r.tick) + offset;
        assert(shifted >= 0 && "tick underflow in shiftTime");
        out.add(static_cast<Tick>(shifted), r.addr, r.size, r.op);
    }
    return out;
}

} // namespace mocktails::mem
