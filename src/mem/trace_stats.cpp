#include "mem/trace_stats.hpp"

#include <unordered_set>

namespace mocktails::mem
{

double
TraceStats::readFraction()
    const
{
    return requests == 0
               ? 0.0
               : static_cast<double>(reads) / static_cast<double>(requests);
}

double
TraceStats::requestRate() const
{
    const Tick span = lastTick - firstTick;
    if (span == 0)
        return 0.0;
    return static_cast<double>(requests) * 1000.0 /
           static_cast<double>(span);
}

TraceStats
computeStats(const Trace &trace)
{
    TraceStats s;
    s.requests = trace.size();
    if (trace.empty())
        return s;

    s.minAddr = trace[0].addr;
    s.maxAddr = trace[0].end();
    s.firstTick = trace[0].tick;
    s.lastTick = trace[0].tick;

    std::unordered_set<Addr> pages;
    for (const Request &r : trace) {
        if (r.isRead()) {
            ++s.reads;
            s.bytesRead += r.size;
        } else {
            ++s.writes;
            s.bytesWritten += r.size;
        }
        s.minAddr = std::min(s.minAddr, r.addr);
        s.maxAddr = std::max(s.maxAddr, r.end());
        s.firstTick = std::min(s.firstTick, r.tick);
        s.lastTick = std::max(s.lastTick, r.tick);
        for (Addr page = r.addr >> 12; page <= (r.end() - 1) >> 12; ++page)
            pages.insert(page);
    }
    s.touched4k = pages.size();
    return s;
}

} // namespace mocktails::mem
