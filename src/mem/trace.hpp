/**
 * @file
 * A trace: an ordered sequence of memory requests.
 */

#ifndef MOCKTAILS_MEM_TRACE_HPP
#define MOCKTAILS_MEM_TRACE_HPP

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "mem/request.hpp"

namespace mocktails::mem
{

/**
 * An ordered sequence of memory requests plus identifying metadata.
 *
 * Requests are kept in injection order; for well-formed traces the tick
 * sequence is non-decreasing (sortByTime() restores this after any bulk
 * edit). The class is a thin container: heavy analysis lives in
 * trace_stats.hpp and in the modelling code.
 */
class Trace
{
  public:
    Trace() = default;

    /** Construct with a name (e.g., "HEVC1") and device class. */
    Trace(std::string name, std::string device)
        : name_(std::move(name)), device_(std::move(device))
    {}

    const std::string &name() const { return name_; }
    const std::string &device() const { return device_; }
    void setName(std::string name) { name_ = std::move(name); }
    void setDevice(std::string device) { device_ = std::move(device); }

    /** Append one request. */
    void add(const Request &request) { requests_.push_back(request); }

    /** Append a request built from its features. */
    void
    add(Tick tick, Addr addr, std::uint32_t size, Op op)
    {
        requests_.push_back(Request{tick, addr, size, op});
    }

    std::size_t size() const { return requests_.size(); }
    bool empty() const { return requests_.empty(); }

    const Request &operator[](std::size_t i) const { return requests_[i]; }
    Request &operator[](std::size_t i) { return requests_[i]; }

    const std::vector<Request> &requests() const { return requests_; }
    std::vector<Request> &requests() { return requests_; }

    auto begin() const { return requests_.begin(); }
    auto end() const { return requests_.end(); }

    /** Stable sort by tick (preserves order of simultaneous requests). */
    void sortByTime();

    /** True when ticks never decrease along the trace. */
    bool isTimeOrdered() const;

    /** Tick of the last request (0 when empty). */
    Tick duration() const;

    /** Keep only the first @p count requests. */
    void truncate(std::size_t count);

  private:
    std::string name_;
    std::string device_;
    std::vector<Request> requests_;
};

} // namespace mocktails::mem

#endif // MOCKTAILS_MEM_TRACE_HPP
