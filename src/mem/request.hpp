/**
 * @file
 * The memory request abstraction shared by every layer of the library.
 *
 * Mocktails deliberately restricts itself to the four request features
 * observable at the interface between a compute device and the memory
 * system (paper Sec. III): timestamp, address, operation and size. No
 * PC, instruction or thread information is ever attached, which is what
 * lets the methodology treat devices as black boxes.
 */

#ifndef MOCKTAILS_MEM_REQUEST_HPP
#define MOCKTAILS_MEM_REQUEST_HPP

#include <cstdint>

namespace mocktails::mem
{

/** Simulation time, in cycles of the device/interconnect clock. */
using Tick = std::uint64_t;

/** A physical byte address. */
using Addr = std::uint64_t;

/** The operation of a memory request. */
enum class Op : std::uint8_t { Read = 0, Write = 1 };

/** Short human-readable name ("R"/"W"). */
const char *toString(Op op);

/**
 * One memory request as seen on the device's memory interface.
 */
struct Request
{
    /** Injection time. */
    Tick tick = 0;

    /** First byte accessed. */
    Addr addr = 0;

    /** Number of bytes accessed. Always >= 1 for a valid request. */
    std::uint32_t size = 0;

    /** Read or write. */
    Op op = Op::Read;

    /** Last byte address + 1 (the exclusive end of the byte range). */
    Addr end() const { return addr + size; }

    bool isRead() const { return op == Op::Read; }
    bool isWrite() const { return op == Op::Write; }

    friend bool
    operator==(const Request &a, const Request &b)
    {
        return a.tick == b.tick && a.addr == b.addr && a.size == b.size &&
               a.op == b.op;
    }
};

} // namespace mocktails::mem

#endif // MOCKTAILS_MEM_REQUEST_HPP
