/**
 * @file
 * Trace manipulation utilities.
 *
 * Practical operations for working with traces: slicing a time
 * window (e.g. isolating one frame of a display trace before
 * profiling it), filtering by address range or operation, merging
 * per-IP traces into one interleaved stream, and shifting time.
 * All functions return new traces; inputs are never modified.
 */

#ifndef MOCKTAILS_MEM_TRACE_OPS_HPP
#define MOCKTAILS_MEM_TRACE_OPS_HPP

#include <vector>

#include "mem/trace.hpp"

namespace mocktails::mem
{

/** Requests with tick in [from, to). Preserves order and metadata. */
Trace sliceTime(const Trace &trace, Tick from, Tick to);

/** Requests whose byte range intersects [lo, hi). */
Trace sliceAddresses(const Trace &trace, Addr lo, Addr hi);

/** Requests of one operation only. */
Trace filterOp(const Trace &trace, Op op);

/**
 * Merge several time-ordered traces into one time-ordered stream
 * (stable: equal ticks keep input order by trace index).
 */
Trace merge(const std::vector<const Trace *> &traces);

/** Copy with all ticks shifted by @p offset (may be negative only if
 *  no tick underflows; asserts otherwise). */
Trace shiftTime(const Trace &trace, std::int64_t offset);

} // namespace mocktails::mem

#endif // MOCKTAILS_MEM_TRACE_OPS_HPP
