#include "mem/wire.hpp"

namespace mocktails::mem
{

void
encodeRequests(util::ByteWriter &writer, const Request *requests,
               std::size_t count, RequestCodecState &state)
{
    for (std::size_t i = 0; i < count; ++i) {
        const Request &r = requests[i];
        writer.putSigned(static_cast<std::int64_t>(r.tick) -
                         static_cast<std::int64_t>(state.prevTick));
        writer.putSigned(static_cast<std::int64_t>(r.addr) -
                         static_cast<std::int64_t>(state.prevAddr));
        // Fold the 1-bit op into the size varint: synthetic sizes are
        // small powers of two, so the combined value still packs into
        // one or two bytes.
        writer.putVarint((static_cast<std::uint64_t>(r.size) << 1) |
                         (r.isWrite() ? 1u : 0u));
        state.prevTick = r.tick;
        state.prevAddr = r.addr;
    }
}

bool
decodeRequests(util::ByteReader &reader, std::size_t count,
               std::vector<Request> &out, RequestCodecState &state)
{
    out.reserve(out.size() + count);
    for (std::size_t i = 0; i < count; ++i) {
        Request r;
        r.tick = static_cast<Tick>(
            static_cast<std::int64_t>(state.prevTick) +
            reader.getSigned());
        r.addr = static_cast<Addr>(
            static_cast<std::int64_t>(state.prevAddr) +
            reader.getSigned());
        const std::uint64_t packed = reader.getVarint();
        if (!reader.ok())
            return false;
        r.op = (packed & 1) ? Op::Write : Op::Read;
        const std::uint64_t size = packed >> 1;
        if (size == 0 || size > 0xffffffffull)
            return false; // a valid request accesses >= 1 byte
        r.size = static_cast<std::uint32_t>(size);
        out.push_back(r);
        state.prevTick = r.tick;
        state.prevAddr = r.addr;
    }
    return true;
}

} // namespace mocktails::mem
