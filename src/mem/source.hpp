/**
 * @file
 * Pull-style request sources.
 *
 * The replay machinery (trace player, crossbar, DRAM) consumes requests
 * from a RequestSource so that a recorded trace and a Mocktails
 * synthesis engine are interchangeable (paper Fig. 1, options A and B).
 */

#ifndef MOCKTAILS_MEM_SOURCE_HPP
#define MOCKTAILS_MEM_SOURCE_HPP

#include <cstddef>

#include "mem/trace.hpp"

namespace mocktails::mem
{

/**
 * An ordered stream of memory requests.
 */
class RequestSource
{
  public:
    virtual ~RequestSource() = default;

    /**
     * Produce the next request.
     *
     * @param out Receives the request when one is available.
     * @return false when the stream is exhausted.
     */
    virtual bool next(Request &out) = 0;
};

/**
 * Adapts a Trace into a RequestSource.
 */
class TraceSource : public RequestSource
{
  public:
    /** The trace must outlive the source. */
    explicit TraceSource(const Trace &trace) : trace_(&trace) {}

    bool
    next(Request &out) override
    {
        if (pos_ >= trace_->size())
            return false;
        out = (*trace_)[pos_++];
        return true;
    }

    /** Restart from the beginning. */
    void reset() { pos_ = 0; }

  private:
    const Trace *trace_;
    std::size_t pos_ = 0;
};

} // namespace mocktails::mem

#endif // MOCKTAILS_MEM_SOURCE_HPP
