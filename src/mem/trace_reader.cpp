#include "mem/trace_reader.hpp"

#include <algorithm>

#include "mem/trace_io.hpp"
#include "util/compress.hpp"

namespace mocktails::mem
{

namespace
{

// Mirrors trace_io.cpp; the format constants stay private to mem.
constexpr std::uint64_t traceMagic = 0x4d4b5452; // "MKTR"
constexpr std::uint64_t traceVersion = 1;

} // namespace

MemoryTraceReader::MemoryTraceReader(const Trace &trace) : trace_(&trace)
{
    name_ = trace.name();
    device_ = trace.device();
    size_hint_ = trace.size();
}

std::size_t
MemoryTraceReader::read(RequestBatch &out, std::size_t max)
{
    out.clear();
    const std::size_t n = std::min(max, trace_->size() - pos_);
    for (std::size_t i = 0; i < n; ++i)
        out.push((*trace_)[pos_ + i]);
    pos_ += n;
    return n;
}

CsvTraceReader::CsvTraceReader(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "r");
    if (file_ == nullptr)
        error_ = path + ": cannot open file";
}

CsvTraceReader::~CsvTraceReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

std::size_t
CsvTraceReader::read(RequestBatch &out, std::size_t max)
{
    out.clear();
    if (file_ == nullptr || !error_.empty())
        return 0;
    std::string message;
    Request request;
    while (out.size() < max && readCsvLine(file_, line_)) {
        ++line_number_;
        if (line_number_ == 1 && line_.compare(0, 4, "tick") == 0)
            continue; // header
        if (line_.empty())
            continue;
        if (!parseCsvRecord(line_, request, message)) {
            error_ =
                csvParseDiagnostic(path_, line_number_, message, line_);
            out.clear();
            return 0;
        }
        out.push(request);
    }
    return out.size();
}

BinaryTraceReader::BinaryTraceReader(const std::string &path)
{
    std::vector<std::uint8_t> compressed;
    if (!util::loadBytes(path, compressed, &error_))
        return;
    if (!util::decompress(compressed, raw_)) {
        error_ = path + ": corrupt compression envelope";
        return;
    }
    reader_ = util::ByteReader(raw_.data(), raw_.size());
    if (reader_.getVarint() != traceMagic ||
        reader_.getVarint() != traceVersion) {
        error_ = path + ": not a mocktails trace (bad magic/version)";
        return;
    }
    // Sequence the two reads explicitly (argument evaluation order is
    // unspecified).
    name_ = reader_.getString();
    device_ = reader_.getString();
    remaining_ = reader_.getVarint();
    // Each encoded request needs at least 4 bytes; larger claims are
    // corrupt.
    if (!reader_.ok() || remaining_ > reader_.remaining() / 4 + 1) {
        error_ = path + ": corrupt trace header";
        remaining_ = 0;
        return;
    }
    size_hint_ = remaining_;
}

std::size_t
BinaryTraceReader::read(RequestBatch &out, std::size_t max)
{
    out.clear();
    if (!error_.empty())
        return 0;
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(max, remaining_));
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        tick_ += static_cast<Tick>(reader_.getSigned());
        addr_ += static_cast<Addr>(reader_.getSigned());
        const auto size = static_cast<std::uint32_t>(reader_.getVarint());
        const auto op = static_cast<Op>(reader_.getByte());
        if (!reader_.ok()) {
            error_ = "corrupt trace record at byte offset " +
                     std::to_string(reader_.position()) + " of " +
                     std::to_string(raw_.size());
            remaining_ = 0;
            out.clear();
            return 0;
        }
        out.push(tick_, addr_, size, op);
    }
    remaining_ -= n;
    return n;
}

std::unique_ptr<TraceReader>
openTraceReader(const std::string &path, std::string *error)
{
    std::unique_ptr<TraceReader> reader;
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
        reader = std::make_unique<CsvTraceReader>(path);
    else
        reader = std::make_unique<BinaryTraceReader>(path);
    if (!reader->error().empty()) {
        if (error != nullptr)
            *error = reader->error();
        return nullptr;
    }
    return reader;
}

} // namespace mocktails::mem
