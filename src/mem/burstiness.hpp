/**
 * @file
 * Injection-process analytics.
 *
 * Quantifies the burst/idle structure the paper's Figs. 2-3 describe
 * qualitatively: a *burst* is a maximal run of requests whose inter-
 * arrival gaps stay below a threshold; everything between bursts is
 * idle. These statistics characterise device classes (GPUs issue long
 * dense bursts; VPUs alternate frame bursts with long idles) and let
 * tests assert that synthetic streams keep the structure.
 */

#ifndef MOCKTAILS_MEM_BURSTINESS_HPP
#define MOCKTAILS_MEM_BURSTINESS_HPP

#include <cstdint>

#include "mem/trace.hpp"

namespace mocktails::mem
{

/**
 * Burst/idle structure of a trace.
 */
struct BurstinessStats
{
    Tick gapThreshold = 0; ///< the threshold used

    std::uint64_t bursts = 0;       ///< number of bursts
    double meanBurstLength = 0.0;   ///< requests per burst
    std::uint64_t maxBurstLength = 0;
    double meanIdleGap = 0.0;       ///< cycles between bursts
    Tick maxIdleGap = 0;

    /** Fraction of the trace duration spent inside bursts. */
    double activeFraction = 0.0;

    /**
     * Burstiness coefficient (sigma - mu) / (sigma + mu) of the
     * inter-arrival gaps: -1 = perfectly periodic, 0 = Poisson,
     * towards +1 = heavily bursty (Goh & Barabasi).
     */
    double coefficient = 0.0;
};

/**
 * Analyse @p trace with inter-arrival gaps above @p gap_threshold
 * splitting bursts.
 *
 * @pre trace.isTimeOrdered()
 */
BurstinessStats analyzeBurstiness(const Trace &trace,
                                  Tick gap_threshold = 1000);

} // namespace mocktails::mem

#endif // MOCKTAILS_MEM_BURSTINESS_HPP
