/**
 * @file
 * A structure-of-arrays batch of memory requests.
 *
 * The hot inner loops — synthesis merge, trace streaming, the DRAM
 * front-end schedule — touch one feature at a time (usually the tick
 * column), but an AoS vector<Request> forces them to stride over
 * 24-byte structs and drag the other three features through the cache.
 * RequestBatch keeps the four features in separate columns so a
 * tick-only scan reads 8 bytes per request, and a full batch costs
 * 21 bytes per request instead of 24 (no padding).
 */

#ifndef MOCKTAILS_MEM_REQUEST_BATCH_HPP
#define MOCKTAILS_MEM_REQUEST_BATCH_HPP

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/request.hpp"
#include "mem/source.hpp"
#include "mem/trace.hpp"

namespace mocktails::mem
{

/**
 * SoA request storage: index i across the four columns is request i.
 * The columns are public — hot loops index them directly.
 */
struct RequestBatch
{
    std::vector<Tick> ticks;
    std::vector<Addr> addrs;
    std::vector<std::uint32_t> sizes;
    std::vector<Op> ops;

    std::size_t size() const { return ticks.size(); }
    bool empty() const { return ticks.empty(); }

    void
    clear()
    {
        ticks.clear();
        addrs.clear();
        sizes.clear();
        ops.clear();
    }

    void
    reserve(std::size_t n)
    {
        ticks.reserve(n);
        addrs.reserve(n);
        sizes.reserve(n);
        ops.reserve(n);
    }

    void
    resize(std::size_t n)
    {
        ticks.resize(n);
        addrs.resize(n);
        sizes.resize(n);
        ops.resize(n);
    }

    /** Append one request, column by column. */
    void
    push(Tick tick, Addr addr, std::uint32_t size, Op op)
    {
        ticks.push_back(tick);
        addrs.push_back(addr);
        sizes.push_back(size);
        ops.push_back(op);
    }

    void push(const Request &r) { push(r.tick, r.addr, r.size, r.op); }

    /** Overwrite row @p i. */
    void
    set(std::size_t i, const Request &r)
    {
        ticks[i] = r.tick;
        addrs[i] = r.addr;
        sizes[i] = r.size;
        ops[i] = r.op;
    }

    /** Gather row @p i back into an AoS request. */
    Request
    get(std::size_t i) const
    {
        assert(i < size());
        return Request{ticks[i], addrs[i], sizes[i], ops[i]};
    }

    /** Exclusive end of request @p i's byte range. */
    Addr end(std::size_t i) const { return addrs[i] + sizes[i]; }

    /** Append every row to @p trace in order. */
    void
    appendTo(Trace &trace) const
    {
        trace.requests().reserve(trace.size() + size());
        for (std::size_t i = 0; i < size(); ++i)
            trace.add(ticks[i], addrs[i], sizes[i], ops[i]);
    }

    /** Build a batch from an AoS request span. */
    static RequestBatch
    fromTrace(const Trace &trace)
    {
        RequestBatch batch;
        batch.reserve(trace.size());
        for (const Request &r : trace)
            batch.push(r);
        return batch;
    }
};

/**
 * Adapts a RequestBatch into a pull-style RequestSource (the SoA
 * counterpart of TraceSource).
 */
class BatchSource : public RequestSource
{
  public:
    /** The batch must outlive the source. */
    explicit BatchSource(const RequestBatch &batch) : batch_(&batch) {}

    bool
    next(Request &out) override
    {
        if (pos_ >= batch_->size())
            return false;
        out = batch_->get(pos_++);
        return true;
    }

    /** Restart from the beginning. */
    void reset() { pos_ = 0; }

  private:
    const RequestBatch *batch_;
    std::size_t pos_ = 0;
};

} // namespace mocktails::mem

#endif // MOCKTAILS_MEM_REQUEST_BATCH_HPP
