/**
 * @file
 * Compact wire codec for mem::Request records.
 *
 * The serving protocol (src/serve) streams synthetic requests over TCP
 * in chunks; this codec packs each record with the same varint dialect
 * as the on-disk trace format (util/varint.hpp):
 *
 *   record := zigzag(tick - prevTick)        signed varint
 *             zigzag(addr - prevAddr)        signed varint
 *             (size << 1) | op               unsigned varint
 *
 * Deltas are taken against the previous record *of the stream*, not of
 * the chunk, so the caller threads one RequestCodecState through the
 * whole stream — one per session in the v1 serve protocol, one per
 * *channel* under v2 multiplexing, where chunks of many channels
 * interleave on a single connection and each channel carries its own
 * independent carry state on both ends. A chunk boundary costs
 * nothing and decoding chunk k requires having decoded chunks 0..k-1
 * of the same channel (which a streaming session does by
 * construction). The first record of a stream is delta-coded against
 * the zero state.
 */

#ifndef MOCKTAILS_MEM_WIRE_HPP
#define MOCKTAILS_MEM_WIRE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/request.hpp"
#include "util/codec.hpp"

namespace mocktails::mem
{

/**
 * Delta-coding carry state of one request stream. Value-semantic and
 * identical on both ends: the encoder and decoder each keep one per
 * session and advance it record by record.
 */
struct RequestCodecState
{
    Tick prevTick = 0;
    Addr prevAddr = 0;
};

/**
 * Smallest possible encoded record (three one-byte varints); lets
 * decoders reject record counts their input cannot possibly hold
 * before reserving memory for them.
 */
constexpr std::size_t kMinEncodedRequestBytes = 3;

/**
 * Append @p count records starting at @p requests to @p writer,
 * advancing @p state.
 */
void encodeRequests(util::ByteWriter &writer, const Request *requests,
                    std::size_t count, RequestCodecState &state);

/**
 * Decode @p count records from @p reader, appending to @p out and
 * advancing @p state.
 * @return false when the input is truncated or malformed (a record
 *         with size 0 is malformed; @p out and @p state are then in an
 *         unspecified intermediate state and the stream must be
 *         abandoned).
 */
bool decodeRequests(util::ByteReader &reader, std::size_t count,
                    std::vector<Request> &out, RequestCodecState &state);

} // namespace mocktails::mem

#endif // MOCKTAILS_MEM_WIRE_HPP
