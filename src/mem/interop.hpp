/**
 * @file
 * Trace interchange with external memory-system simulators.
 *
 * Mocktails' value is plugging synthetic request streams into "your
 * simulator of choice" (paper Fig. 1). Besides our own binary format,
 * this module reads and writes the plain-text trace formats used by
 * two widely used DRAM simulators:
 *
 *  - ramulator memory traces: one request per line,
 *    "0x<addr> R|W" (ticks are not represented; requests are
 *    back-to-back). On import, a fixed request size is assumed.
 *
 *  - DRAMsim3-style traces: "0x<addr> READ|WRITE <cycle>".
 *
 * gem5's native packet traces are protobuf-encoded and are therefore
 * out of scope here; gem5 users can replay the CSV form
 * (mem/trace_io.hpp) with a custom injector, or couple the
 * SynthesisEngine directly.
 */

#ifndef MOCKTAILS_MEM_INTEROP_HPP
#define MOCKTAILS_MEM_INTEROP_HPP

#include <cstdint>
#include <string>

#include "mem/trace.hpp"

namespace mocktails::mem
{

/** Write a ramulator memory trace ("0xADDR R|W" per line). */
bool saveRamulatorTrace(const Trace &trace, const std::string &path);

/**
 * Read a ramulator memory trace.
 *
 * @param request_size Size assigned to every request (the format does
 *                     not carry one); typically the DRAM burst or
 *                     cache-line size.
 * @param gap Ticks between consecutive requests.
 */
bool loadRamulatorTrace(const std::string &path, Trace &trace,
                        std::uint32_t request_size = 64,
                        Tick gap = 1);

/** Write a DRAMsim3-style trace ("0xADDR READ|WRITE cycle"). */
bool saveDramsim3Trace(const Trace &trace, const std::string &path);

/** Read a DRAMsim3-style trace. */
bool loadDramsim3Trace(const std::string &path, Trace &trace,
                       std::uint32_t request_size = 64);

} // namespace mocktails::mem

#endif // MOCKTAILS_MEM_INTEROP_HPP
