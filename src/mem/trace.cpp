#include "mem/trace.hpp"

#include <algorithm>

namespace mocktails::mem
{

const char *
toString(Op op)
{
    return op == Op::Read ? "R" : "W";
}

void
Trace::sortByTime()
{
    std::stable_sort(requests_.begin(), requests_.end(),
                     [](const Request &a, const Request &b) {
                         return a.tick < b.tick;
                     });
}

bool
Trace::isTimeOrdered() const
{
    for (std::size_t i = 1; i < requests_.size(); ++i) {
        if (requests_[i].tick < requests_[i - 1].tick)
            return false;
    }
    return true;
}

Tick
Trace::duration() const
{
    return requests_.empty() ? 0 : requests_.back().tick;
}

void
Trace::truncate(std::size_t count)
{
    if (count < requests_.size())
        requests_.resize(count);
}

} // namespace mocktails::mem
