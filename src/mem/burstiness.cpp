#include "mem/burstiness.hpp"

#include <cassert>
#include <cmath>

#include "util/stats.hpp"

namespace mocktails::mem
{

BurstinessStats
analyzeBurstiness(const Trace &trace, Tick gap_threshold)
{
    assert(trace.isTimeOrdered());

    BurstinessStats stats;
    stats.gapThreshold = gap_threshold;
    if (trace.empty())
        return stats;

    util::RunningStats gaps;
    util::RunningStats burst_lengths;
    util::RunningStats idle_gaps;

    std::uint64_t current_length = 1;
    Tick active_cycles = 0;
    Tick burst_start = trace[0].tick;

    for (std::size_t i = 1; i < trace.size(); ++i) {
        const Tick gap = trace[i].tick - trace[i - 1].tick;
        gaps.add(static_cast<double>(gap));
        if (gap > gap_threshold) {
            // Close the current burst.
            burst_lengths.add(static_cast<double>(current_length));
            stats.maxBurstLength =
                std::max(stats.maxBurstLength, current_length);
            active_cycles += trace[i - 1].tick - burst_start;

            idle_gaps.add(static_cast<double>(gap));
            stats.maxIdleGap = std::max(stats.maxIdleGap, gap);

            current_length = 1;
            burst_start = trace[i].tick;
        } else {
            ++current_length;
        }
    }
    burst_lengths.add(static_cast<double>(current_length));
    stats.maxBurstLength =
        std::max(stats.maxBurstLength, current_length);
    active_cycles += trace[trace.size() - 1].tick - burst_start;

    stats.bursts = burst_lengths.count();
    stats.meanBurstLength = burst_lengths.mean();
    stats.meanIdleGap = idle_gaps.mean();

    const Tick span = trace[trace.size() - 1].tick - trace[0].tick;
    stats.activeFraction =
        span == 0 ? 1.0
                  : static_cast<double>(active_cycles) /
                        static_cast<double>(span);

    const double mu = gaps.mean();
    const double sigma = gaps.stddev();
    stats.coefficient =
        (sigma + mu) == 0.0 ? 0.0 : (sigma - mu) / (sigma + mu);
    return stats;
}

} // namespace mocktails::mem
