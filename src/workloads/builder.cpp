#include "workloads/builder.hpp"

namespace mocktails::workloads
{

void
TraceBuilder::linearRun(mem::Addr base, std::uint32_t count,
                        std::int64_t stride, std::uint32_t size,
                        mem::Op op, mem::Tick gap, mem::Tick jitter)
{
    mem::Addr addr = base;
    for (std::uint32_t i = 0; i < count; ++i) {
        emit(addr, size, op);
        addr = static_cast<mem::Addr>(static_cast<std::int64_t>(addr) +
                                      stride);
        mem::Tick step = gap;
        if (jitter > 0) {
            // Symmetric jitter in [-min(jitter, gap), +jitter].
            const mem::Tick down = std::min(jitter, gap);
            step = gap - down + rng_.below(down + jitter + 1);
        }
        advance(step);
    }
}

mem::Trace
TraceBuilder::take()
{
    trace_.sortByTime();
    return std::move(trace_);
}

} // namespace mocktails::workloads
