#include "workloads/spec.hpp"

#include <array>
#include <stdexcept>

#include "util/rng.hpp"

namespace mocktails::workloads
{

namespace
{

constexpr mem::Addr specBase = 0x10000000;

// Parameters per benchmark. Footprints/working sets are scaled to the
// cache sizes of Sec. V (16-32 KiB L1, 256 KiB L2): hot sets around or
// below L1 size create associativity sensitivity; sweeps slightly
// above capacity create LRU thrash; large streams defeat both caches.
constexpr std::array<SpecParams, 23> specTable = {{
    // name          footprint   hot      sweep    pHot pStr pChase rdF strms
    {"astar",        32u << 20,  24576,   0,       0.35, 0.05, 0.45, 0.72, 2},
    {"bzip2",        16u << 20,  32768,   0,       0.45, 0.30, 0.10, 0.68, 3},
    {"cactusADM",    48u << 20,  16384,   0,       0.25, 0.60, 0.05, 0.62, 6},
    {"calculix",     8u << 20,   20480,   0,       0.70, 0.25, 0.02, 0.75, 1},
    {"gcc",          24u << 20,  40960,   0,       0.40, 0.15, 0.35, 0.70, 4},
    {"GemsFDTD",     64u << 20,  8192,    0,       0.10, 0.80, 0.05, 0.60, 8},
    {"gobmk",        12u << 20,  49152,   0,       0.60, 0.10, 0.20, 0.74, 2},
    {"gromacs",      6u << 20,   12288,   0,       0.65, 0.25, 0.05, 0.71, 2},
    {"h264ref",      10u << 20,  16384,   0,       0.50, 0.35, 0.05, 0.58, 4},
    {"hmmer",        2u << 20,   8192,    0,       0.80, 0.18, 0.01, 0.76, 1},
    {"lbm",          56u << 20,  4096,    0,       0.05, 0.85, 0.02, 0.52, 4},
    {"leslie3d",     40u << 20,  12288,   0,       0.20, 0.65, 0.05, 0.64, 6},
    {"libquantum",   32u << 20,  4096,    0,       0.04, 0.92, 0.01, 0.66, 1},
    {"mcf",          96u << 20,  32768,   0,       0.25, 0.05, 0.60, 0.78, 1},
    {"milc",         48u << 20,  24576,   0,       0.30, 0.45, 0.15, 0.63, 4},
    {"namd",         8u << 20,   16384,   0,       0.60, 0.30, 0.05, 0.70, 3},
    {"omnetpp",      28u << 20,  36864,   0,       0.35, 0.10, 0.45, 0.69, 2},
    {"perlbench",    20u << 20,  28672,   0,       0.50, 0.15, 0.25, 0.73, 3},
    {"povray",       4u << 20,   12288,   0,       0.70, 0.22, 0.04, 0.77, 2},
    {"sjeng",        14u << 20,  24576,   0,       0.45, 0.05, 0.40, 0.75, 1},
    {"soplex",       44u << 20,  20480,   0,       0.30, 0.35, 0.30, 0.80, 3},
    {"tonto",        12u << 20,  16384,   0,       0.55, 0.30, 0.08, 0.72, 2},
    {"zeusmp",       36u << 20,  8192,    49152,   0.15, 0.30, 0.05, 0.61, 4},
}};

} // namespace

const std::vector<std::string> &
specBenchmarks()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        out.reserve(specTable.size());
        for (const SpecParams &p : specTable)
            out.emplace_back(p.name);
        return out;
    }();
    return names;
}

const SpecParams &
specParams(const std::string &name)
{
    for (const SpecParams &p : specTable) {
        if (name == p.name)
            return p;
    }
    throw std::invalid_argument("unknown SPEC benchmark: " + name);
}

mem::Trace
makeSpecTrace(const std::string &name, std::size_t requests,
              std::uint64_t seed)
{
    const SpecParams &p = specParams(name);
    mem::Trace trace(name, "CPU");
    trace.requests().reserve(requests);

    util::Rng rng(seed ^ std::hash<std::string>{}(name));

    // Region layout within the benchmark's footprint.
    const mem::Addr hot_base = specBase;
    const mem::Addr sweep_base = specBase + 0x4000000;
    const mem::Addr stream_base = specBase + 0x8000000;
    const mem::Addr chase_base = specBase + 0x8000000;

    // Per-stream sequential cursors, spread across the footprint.
    std::vector<std::uint64_t> cursors(p.streams);
    for (std::uint32_t s = 0; s < p.streams; ++s)
        cursors[s] = s * (p.footprint / p.streams);
    std::uint32_t next_stream = 0;

    // Hot-set movement: a walk over cache lines with a small,
    // benchmark-specific stride alphabet (loops over structs/arrays),
    // with occasional random re-seeds (function calls). Accesses
    // dwell within a line before moving on.
    const std::uint64_t hot_lines = p.hotBytes / 64;
    const std::array<std::int64_t, 4> hot_deltas = {
        1, -1, static_cast<std::int64_t>(2 + seed % 3),
        static_cast<std::int64_t>(7 + (seed >> 2) % 9)};
    std::uint64_t hot_line = 0;
    std::uint32_t hot_off = 0;

    // Pointer chasing: a walk over a fixed random graph of nodes laid
    // out at a constant spacing across the footprint. The node set
    // and successor edges are fixed per benchmark, so the observed
    // stride alphabet is limited, as for real linked structures.
    const std::uint32_t chase_nodes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(p.footprint / 4096, 16384));
    const std::uint64_t chase_spacing =
        (p.footprint / std::max(1u, chase_nodes)) & ~std::uint64_t{7};
    std::vector<std::uint32_t> chase_succ(2 *
                                          std::max(1u, chase_nodes));
    for (auto &s : chase_succ)
        s = static_cast<std::uint32_t>(rng.below(
            std::max<std::uint64_t>(1, chase_nodes)));
    std::uint32_t chase_node = 0;

    std::uint64_t sweep_cursor = 0;
    mem::Tick tick = 0;

    for (std::size_t i = 0; i < requests; ++i) {
        const double pick = rng.uniform();
        const std::uint32_t size = rng.chance(0.6) ? 8 : 4;
        mem::Addr addr;

        if (pick < p.pHot) {
            // Hot working set: within-line dwell, then walk.
            if (hot_off + size > 64 || rng.chance(0.2)) {
                if (rng.chance(0.05)) {
                    hot_line = rng.below(hot_lines);
                } else {
                    const std::int64_t delta =
                        hot_deltas[rng.below(hot_deltas.size())];
                    hot_line = static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(
                                       hot_line + hot_lines) +
                                   delta) %
                               hot_lines;
                }
                hot_off = 0;
            }
            addr = hot_base + hot_line * 64 + hot_off;
            hot_off += size;
        } else if (pick < p.pHot + p.pStream) {
            // Round-robin sequential streams over the footprint.
            std::uint64_t &cursor = cursors[next_stream];
            next_stream = (next_stream + 1) % p.streams;
            addr = stream_base + cursor;
            cursor = (cursor + size) % p.footprint;
        } else if (pick < p.pHot + p.pStream + p.pChase) {
            // Pointer chase along the fixed graph.
            addr = chase_base + chase_node * chase_spacing;
            chase_node =
                chase_succ[2 * chase_node + rng.below(2)];
        } else if (p.sweepBytes > 0) {
            // Cyclic sweep slightly above cache capacity (LRU
            // thrash).
            addr = sweep_base + sweep_cursor;
            sweep_cursor = (sweep_cursor + 64) % p.sweepBytes;
        } else {
            addr = hot_base + (rng.below(p.hotBytes) & ~mem::Addr{7});
        }

        const mem::Op op = rng.chance(p.readFraction) ? mem::Op::Read
                                                      : mem::Op::Write;
        trace.add(tick, addr, size, op);
        tick += 1 + rng.below(4);
    }
    return trace;
}

} // namespace mocktails::workloads
