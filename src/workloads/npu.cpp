/**
 * @file
 * NPU tiled-GEMM traces.
 *
 * Neural accelerators spend their memory bandwidth on tiled matrix
 * multiply: for each output tile, a row-major run of A-tile reads, a
 * large-stride run of B-tile reads (column panels), heavy weight reuse
 * from a resident region, and a read-modify-write of the C
 * accumulator tile. The mix is strongly read-dominant with two very
 * different stride populations — the pattern AutoModel reports for
 * NN-accelerator communication traces and a deliberate stress for the
 * per-feature Markov models.
 */

#include "workloads/devices.hpp"

#include "workloads/builder.hpp"

namespace mocktails::workloads
{

namespace
{

constexpr mem::Addr aBase = 0x180000000;
constexpr mem::Addr bBase = 0x190000000;
constexpr mem::Addr cBase = 0x1a0000000;
constexpr mem::Addr weightBase = 0x1b0000000;

} // namespace

mem::Trace
makeNpuGemm(std::size_t target, std::uint64_t seed)
{
    TraceBuilder b("NPU-GEMM", "NPU", seed ^ 0x4e50);
    util::Rng &rng = b.rng();

    // Tile geometry: 32x32 tiles of 4-byte elements -> 128-byte rows,
    // B panels live k_stride bytes apart (the matrix leading
    // dimension), so B reads carry a large constant stride.
    const std::uint32_t tile_rows = 32;
    const std::uint32_t row_bytes = 128;
    const mem::Addr k_stride = 16384;
    const mem::Tick gap = 3;

    std::uint32_t tile = 0;
    while (b.size() < target) {
        const mem::Addr a_tile =
            aBase + static_cast<mem::Addr>(tile % 64) * 0x20000;
        const mem::Addr b_tile =
            bBase + static_cast<mem::Addr>(tile % 48) * 0x800;
        const mem::Addr c_tile =
            cBase + static_cast<mem::Addr>(tile % 64) * 0x1000;

        // A tile: dense row-major streaming reads.
        b.linearRun(a_tile, tile_rows, row_bytes, row_bytes,
                    mem::Op::Read, gap);

        // B panel: one row per k step, k_stride apart (column walk).
        b.linearRun(b_tile, tile_rows,
                    static_cast<std::int64_t>(k_stride), row_bytes,
                    mem::Op::Read, gap);

        // Weights mostly hit the resident window; a miss refetches a
        // fresh cache-line-sized block.
        for (std::uint32_t w = 0; w < 8 && b.size() < target; ++w) {
            if (rng.chance(0.25))
                b.emitThen(weightBase +
                               static_cast<mem::Addr>(rng.below(4096)) *
                                   64,
                           64, mem::Op::Read, gap);
        }

        // C accumulator: read-modify-write of the output tile.
        for (std::uint32_t row = 0;
             row < tile_rows / 4 && b.size() < target; ++row) {
            const mem::Addr addr =
                c_tile + static_cast<mem::Addr>(row) * row_bytes;
            b.emitThen(addr, row_bytes, mem::Op::Read, gap);
            b.emitThen(addr, row_bytes, mem::Op::Write, gap);
        }

        // Tile switch: double-buffer swap latency.
        b.advance(200 + rng.below(300));
        ++tile;
    }

    mem::Trace trace = b.take();
    trace.truncate(target);
    return trace;
}

} // namespace mocktails::workloads
