/**
 * @file
 * DMA / copy-engine traces.
 *
 * Copy engines are the purest memory-to-memory devices on an SoC
 * (AutoModel's SoC communication models treat them as first-class
 * traffic sources): a descriptor ring is fetched, then each descriptor
 * drives a long burst-read run from the source buffer followed by the
 * matching burst-write run to the destination. The result is near-50%
 * read/write mix, maximal row locality inside a transfer, and abrupt
 * region switches between transfers — the opposite corner of the
 * behaviour space from the cache-filtered CPU traces.
 */

#include "workloads/devices.hpp"

#include "workloads/builder.hpp"

namespace mocktails::workloads
{

namespace
{

constexpr mem::Addr ringBase = 0x140000000;
constexpr mem::Addr srcPool = 0x150000000;
constexpr mem::Addr dstPool = 0x160000000;

} // namespace

mem::Trace
makeDmaCopy(std::size_t target, std::uint64_t seed)
{
    TraceBuilder b("DMA-Copy", "DMA", seed ^ 0xd3a);
    util::Rng &rng = b.rng();

    const mem::Tick burst_gap = 4;
    std::uint32_t descriptor = 0;
    while (b.size() < target) {
        // Fetch the next descriptor from the ring (wraps at 256).
        b.emitThen(ringBase + (descriptor % 256) * 32, 32,
                   mem::Op::Read, 30);

        // Transfer length: mostly page-ish copies, occasionally a
        // large frame-sized one.
        const std::uint32_t blocks =
            rng.chance(0.15) ? 256 + rng.below(256)
                             : 32 + rng.below(96);
        const mem::Addr src =
            srcPool + static_cast<mem::Addr>(rng.below(512)) * 0x40000;
        const mem::Addr dst =
            dstPool + static_cast<mem::Addr>(rng.below(512)) * 0x40000;

        // The engine pipelines: read a burst, write it out, advance.
        for (std::uint32_t i = 0; i < blocks && b.size() < target;
             ++i) {
            b.emitThen(src + static_cast<mem::Addr>(i) * 128, 128,
                       mem::Op::Read, burst_gap);
            b.emitThen(dst + static_cast<mem::Addr>(i) * 128, 128,
                       mem::Op::Write, burst_gap);
        }

        // Completion-status write-back, then idle until the next
        // descriptor is queued.
        if (b.size() < target)
            b.emitThen(ringBase + 0x2000 + (descriptor % 256) * 32, 32,
                       mem::Op::Write, 10);
        b.advance(500 + rng.below(2000));
        ++descriptor;
    }

    mem::Trace trace = b.take();
    trace.truncate(target);
    return trace;
}

} // namespace mocktails::workloads
