/**
 * @file
 * VPU traces: HEVC decode.
 *
 * Video decoders work frame by frame with long idle gaps in between
 * (the burst/idle structure of paper Fig. 3). Within a frame, motion
 * compensation reads scatter small chunks across reference-frame
 * regions — sparse, irregular accesses inside 4 KiB blocks with mixed
 * 64/128-byte sizes, as in paper Fig. 2 — while the decoded frame is
 * written out in near-linear CTU order and the bitstream is read
 * slowly and linearly.
 */

#include "workloads/devices.hpp"

#include "workloads/builder.hpp"

namespace mocktails::workloads
{

namespace
{

constexpr mem::Addr refBase = 0x300000000;
constexpr mem::Addr decBase = 0x310000000;
constexpr mem::Addr bitstreamBase = 0x320000000;

} // namespace

mem::Trace
makeHevc(std::size_t target, std::uint64_t seed, int variant)
{
    std::string name = "HEVC" + std::to_string(variant);
    TraceBuilder b(std::move(name), "VPU",
                   seed ^ (0x48455643ull + variant));
    util::Rng &rng = b.rng();

    // Down-scaled inputs (as the paper notes for its own traces):
    // small CTU grids, two reference frames.
    const std::uint32_t ctus_per_row = 16 + 4 * variant;
    const std::uint32_t ctu_rows = 8 + 2 * variant;
    const std::uint64_t frame_bytes =
        static_cast<std::uint64_t>(ctus_per_row) * ctu_rows * 4096;
    const mem::Tick frame_gap = 150000000 + variant * 50000000;

    std::uint64_t bitstream_cursor = 0;
    std::uint32_t frame = 0;
    while (b.size() < target) {
        // The frame's motion vectors: a small set of scattered
        // offsets reused across CTUs, covering the whole 4 KiB
        // reference window (the sparse irregular pattern of Fig. 2).
        mem::Addr mv_offsets[8];
        for (auto &mv : mv_offsets)
            mv = rng.below(56) * 64 + rng.below(8) * 8;
        const mem::Addr ref =
            refBase + (frame & 1) * (frame_bytes + 0x100000);
        const mem::Addr dec =
            decBase + (frame & 1) * (frame_bytes + 0x100000);

        for (std::uint32_t ctu = 0;
             ctu < ctus_per_row * ctu_rows && b.size() < target;
             ++ctu) {
            // Bitstream read for this CTU (slow linear stream).
            if (ctu % 4 == 0) {
                b.emitThen(bitstreamBase + bitstream_cursor, 64,
                           mem::Op::Read, 200);
                bitstream_cursor += 64;
            }

            // Motion compensation: a few scattered chunks from the
            // collocated reference window. Offsets reuse a small set
            // of motion vectors, so patterns repeat within a region
            // (cf. Fig. 2's partitions).
            const mem::Addr window =
                ref + static_cast<mem::Addr>(ctu) * 4096;
            const std::uint32_t chunks =
                2 + static_cast<std::uint32_t>(rng.below(4));
            for (std::uint32_t c = 0;
                 c < chunks && b.size() < target; ++c) {
                const mem::Addr mv = mv_offsets[rng.below(8)];
                const std::uint32_t size = rng.chance(0.25) ? 128 : 64;
                b.emitThen(window + mv + c * 64, size, mem::Op::Read,
                           30 + rng.below(40));
            }

            // Decoded CTU write-out: near-linear, 64/128B chunks.
            const mem::Addr out =
                dec + static_cast<mem::Addr>(ctu) * 4096;
            const std::uint32_t writes =
                4 + static_cast<std::uint32_t>(rng.below(3));
            for (std::uint32_t w = 0;
                 w < writes && b.size() < target; ++w) {
                const std::uint32_t size = rng.chance(0.3) ? 128 : 64;
                b.emitThen(out + w * 128, size, mem::Op::Write,
                           20 + rng.below(20));
            }

            // Inter-CTU decode latency.
            b.advance(500 + rng.below(500));
        }

        // Idle until the next frame arrives (Fig. 3's gaps).
        b.advance(frame_gap + rng.below(frame_gap / 4));
        ++frame;
    }

    mem::Trace trace = b.take();
    trace.truncate(target);
    return trace;
}

} // namespace mocktails::workloads
