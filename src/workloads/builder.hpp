/**
 * @file
 * Helpers for constructing synthetic device traces.
 *
 * The proprietary traces of the paper's Table II are unavailable, so
 * the workloads library synthesises traces with the per-device
 * characteristics the paper documents (see DESIGN.md, substitutions).
 * TraceBuilder provides the shared mechanics: a clock, deterministic
 * randomness, and common access-pattern idioms (linear runs, tiled
 * scans, scattered region accesses).
 */

#ifndef MOCKTAILS_WORKLOADS_BUILDER_HPP
#define MOCKTAILS_WORKLOADS_BUILDER_HPP

#include <cstdint>

#include "mem/trace.hpp"
#include "util/rng.hpp"

namespace mocktails::workloads
{

/**
 * Incrementally builds a time-ordered trace.
 */
class TraceBuilder
{
  public:
    TraceBuilder(std::string name, std::string device,
                 std::uint64_t seed)
        : trace_(std::move(name), std::move(device)), rng_(seed)
    {}

    util::Rng &rng() { return rng_; }
    mem::Tick now() const { return now_; }

    /** Advance the clock. */
    void advance(mem::Tick cycles) { now_ += cycles; }

    /** Emit one request at the current time. */
    void
    emit(mem::Addr addr, std::uint32_t size, mem::Op op)
    {
        trace_.add(now_, addr, size, op);
    }

    /** Emit and then advance by @p gap cycles. */
    void
    emitThen(mem::Addr addr, std::uint32_t size, mem::Op op,
             mem::Tick gap)
    {
        emit(addr, size, op);
        advance(gap);
    }

    /**
     * Emit @p count requests with a constant stride, one every @p gap
     * cycles (with +/- jitter cycles of uniform noise).
     */
    void linearRun(mem::Addr base, std::uint32_t count,
                   std::int64_t stride, std::uint32_t size, mem::Op op,
                   mem::Tick gap, mem::Tick jitter = 0);

    std::size_t size() const { return trace_.size(); }

    /** Finish: sorts by time and returns the trace. */
    mem::Trace take();

  private:
    mem::Trace trace_;
    util::Rng rng_;
    mem::Tick now_ = 0;
};

} // namespace mocktails::workloads

#endif // MOCKTAILS_WORKLOADS_BUILDER_HPP
