/**
 * @file
 * DPU (display processing unit) traces.
 *
 * Displays read framebuffers at a fixed refresh cadence. The FBC
 * (frame buffer compression) traces differ in scan order — linear
 * raster vs. tiled — which changes the stride sequence while keeping
 * volume similar, exactly the contrast the paper exploits in Figs. 10
 * and 11. A modest write stream (rotation/composition scratch) gives
 * the controller write traffic with high row locality.
 */

#include "workloads/devices.hpp"

#include "workloads/builder.hpp"

namespace mocktails::workloads
{

namespace
{

constexpr mem::Addr fb0 = 0x100000000;
constexpr mem::Addr fb1 = 0x110000000;
constexpr mem::Addr scratch = 0x120000000;
constexpr mem::Addr headerBase = 0x128000000;

} // namespace

mem::Trace
makeFbcLinear(std::size_t target, std::uint64_t seed, int variant)
{
    TraceBuilder b(variant == 1 ? "FBC-Linear1" : "FBC-Linear2", "DPU",
                   seed ^ static_cast<std::uint64_t>(variant * 17));
    util::Rng &rng = b.rng();

    // Variant 2 displays a higher resolution at the same refresh.
    const std::uint32_t width_lines = variant == 1 ? 1280 * 4 : 1920 * 4;
    const std::uint32_t rows = variant == 1 ? 192 : 256;
    const mem::Tick read_gap = 6;

    std::uint32_t frame = 0;
    while (b.size() < target) {
        const mem::Addr base = (frame & 1) ? fb1 : fb0;

        for (std::uint32_t row = 0; row < rows && b.size() < target;
             ++row) {
            // Compressed-row header.
            b.emitThen(headerBase + row * 64, 64, mem::Op::Read, 20);

            // Pipelined decompress-and-write-back: each line keeps
            // its compressed payload and decompressed output in
            // adjacent halves of one contiguous region, and the DPU
            // alternates strictly between reading a compressed block
            // and writing the decoded block. Reads stream through one
            // set of DRAM rows and writes through another, with a
            // deterministic R/W alternation — a pattern a Markov
            // operation chain captures exactly, while a memoryless
            // operation probability scrambles which rows the writes
            // land in (the paper's Fig. 10 contrast).
            const mem::Addr line_addr =
                base + static_cast<mem::Addr>(row) * 2 * width_lines;
            mem::Addr read_cursor = line_addr;
            mem::Addr write_cursor = line_addr + width_lines;
            const mem::Addr read_end = line_addr + width_lines;
            while (read_cursor < read_end && b.size() < target) {
                // Fully-compressed blocks skip the read but still
                // produce decoded output.
                if (!rng.chance(0.12)) {
                    b.emitThen(read_cursor, 64, mem::Op::Read,
                               read_gap);
                }
                read_cursor += 64;
                b.emitThen(write_cursor, 64, mem::Op::Write, read_gap);
                write_cursor += 64;
            }

            // Horizontal blanking.
            b.advance(2000 + rng.below(500));
        }

        // Vertical blanking between frames.
        b.advance(300000 + rng.below(50000));
        ++frame;
    }

    mem::Trace trace = b.take();
    trace.truncate(target);
    return trace;
}

mem::Trace
makeFbcTiled(std::size_t target, std::uint64_t seed, int variant)
{
    TraceBuilder b(variant == 1 ? "FBC-Tiled1" : "FBC-Tiled2", "DPU",
                   seed ^ static_cast<std::uint64_t>(variant * 31));
    util::Rng &rng = b.rng();

    // A tile is 4 lines of 64 bytes; consecutive tiles sit pitch bytes
    // apart per line, so the scan alternates +pitch strides inside a
    // tile with a back-jump between tiles.
    const std::uint32_t pitch = variant == 1 ? 4096 : 8192;
    const std::uint32_t tiles_per_row = variant == 1 ? 40 : 64;
    const std::uint32_t tile_rows = variant == 1 ? 48 : 40;
    const mem::Tick read_gap = 6;

    std::uint32_t frame = 0;
    while (b.size() < target) {
        const mem::Addr base = (frame & 1) ? fb1 : fb0;

        for (std::uint32_t trow = 0;
             trow < tile_rows && b.size() < target; ++trow) {
            b.emitThen(headerBase + trow * 64, 64, mem::Op::Read, 20);

            for (std::uint32_t tile = 0;
                 tile < tiles_per_row && b.size() < target; ++tile) {
                // Occasionally a fully compressed tile is skipped.
                if (rng.chance(0.1))
                    continue;
                const mem::Addr tile_base =
                    base +
                    static_cast<mem::Addr>(trow) * 4 * pitch +
                    static_cast<mem::Addr>(tile) * 64;
                for (std::uint32_t line = 0; line < 4; ++line) {
                    b.emitThen(tile_base + line * pitch, 64,
                               mem::Op::Read, read_gap);
                }
                // Every fourth tile's header line is updated in place
                // after decompression, interleaving writes into the
                // read stream of the same region.
                if (tile % 4 == 0 && b.size() < target) {
                    b.emitThen(tile_base, 64, mem::Op::Write,
                               read_gap);
                    b.emitThen(tile_base + pitch, 64, mem::Op::Write,
                               read_gap);
                }
            }

            b.advance(2000 + rng.below(500));
        }

        b.advance(300000 + rng.below(50000));
        ++frame;
    }

    mem::Trace trace = b.take();
    trace.truncate(target);
    return trace;
}

mem::Trace
makeMultiLayer(std::size_t target, std::uint64_t seed)
{
    TraceBuilder b("Multi-layer", "DPU", seed ^ 0x4d4c);
    util::Rng &rng = b.rng();

    // Four VGA layers with different bases and pixel sizes, read
    // interleaved line by line, plus a composited output write stream.
    struct Layer
    {
        mem::Addr base;
        std::uint32_t bytes_per_line;
        std::uint32_t size;
    };
    const Layer layers[4] = {
        {fb0, 640 * 4, 64},
        {fb0 + 0x400000, 640 * 2, 64},
        {fb1, 640 * 4, 128},
        {fb1 + 0x800000, 320 * 4, 64},
    };

    std::uint32_t frame = 0;
    while (b.size() < target) {
        for (std::uint32_t row = 0; row < 120 && b.size() < target;
             ++row) {
            // Interleave the four layer fetches for this line.
            for (std::uint32_t chunk = 0; chunk < 10; ++chunk) {
                for (const Layer &layer : layers) {
                    const mem::Addr addr =
                        layer.base +
                        static_cast<mem::Addr>(row) *
                            layer.bytes_per_line +
                        chunk * layer.size *
                            (layer.bytes_per_line / (10 * layer.size));
                    b.emitThen(addr, layer.size, mem::Op::Read, 4);
                }
            }
            // Composited line out.
            for (std::uint32_t i = 0; i < 8 && b.size() < target; ++i) {
                b.emitThen(scratch + 0x100000 +
                               static_cast<mem::Addr>(row) * 2560 +
                               i * 128,
                           128, mem::Op::Write, 6);
            }
            b.advance(1500 + rng.below(400));
        }
        b.advance(250000 + rng.below(50000));
        ++frame;
    }

    mem::Trace trace = b.take();
    trace.truncate(target);
    return trace;
}

} // namespace mocktails::workloads
