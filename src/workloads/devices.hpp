/**
 * @file
 * Synthetic device workload generators (paper Table II).
 *
 * Each generator produces a trace with the memory-interface behaviour
 * the paper attributes to that device class; see DESIGN.md for the
 * substitution rationale. All generators are deterministic in
 * (target_requests, seed).
 */

#ifndef MOCKTAILS_WORKLOADS_DEVICES_HPP
#define MOCKTAILS_WORKLOADS_DEVICES_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/trace.hpp"

namespace mocktails::workloads
{

/// @name CPU traces (cache-filtered, coherent interconnect)
/// @{

/** Cryptography workload: streaming blocks + scattered table reads. */
mem::Trace makeCrypto(std::size_t target_requests, std::uint64_t seed,
                      int variant = 1);

/** CPU workload that interacts with a DPU (buffer preparation). */
mem::Trace makeCpuD(std::size_t target_requests, std::uint64_t seed);

/** CPU workload that interacts with a GPU (command/scene updates). */
mem::Trace makeCpuG(std::size_t target_requests, std::uint64_t seed);

/** CPU workload that interacts with a VPU (bitstream feeding). */
mem::Trace makeCpuV(std::size_t target_requests, std::uint64_t seed);

/// @}
/// @name DPU traces (non-coherent interconnect)
/// @{

/** Display of compressed frames, linear scan order. */
mem::Trace makeFbcLinear(std::size_t target_requests,
                         std::uint64_t seed, int variant = 1);

/** Display of compressed frames, tiled scan order. */
mem::Trace makeFbcTiled(std::size_t target_requests, std::uint64_t seed,
                        int variant = 1);

/** Composition of multiple VGA layers. */
mem::Trace makeMultiLayer(std::size_t target_requests,
                          std::uint64_t seed);

/// @}
/// @name GPU traces
/// @{

/** GFXBench T-Rex style rendering. */
mem::Trace makeTRex(std::size_t target_requests, std::uint64_t seed,
                    int variant = 1);

/** GFXBench Manhattan style rendering. */
mem::Trace makeManhattan(std::size_t target_requests,
                         std::uint64_t seed);

/** OpenCL streaming-compute stress test. */
mem::Trace makeOpenCl(std::size_t target_requests, std::uint64_t seed,
                      int variant = 1);

/// @}
/// @name VPU traces
/// @{

/** HEVC video decode: motion compensation + frame writes. */
mem::Trace makeHevc(std::size_t target_requests, std::uint64_t seed,
                    int variant = 1);

/// @}
/// @name Scenario-space extensions (beyond Table II)
/// @{

/** DMA copy engine: descriptor ring + paired read/write burst runs. */
mem::Trace makeDmaCopy(std::size_t target_requests, std::uint64_t seed);

/** NPU tiled GEMM: A/B tile reads, weight reuse, C read-modify-write. */
mem::Trace makeNpuGemm(std::size_t target_requests, std::uint64_t seed);

/// @}

/**
 * One entry of the trace inventory (paper Table II).
 */
struct DeviceTraceSpec
{
    std::string name;        ///< e.g. "HEVC1"
    std::string device;      ///< CPU / DPU / GPU / VPU
    std::string description; ///< Table II description
    std::function<mem::Trace(std::size_t, std::uint64_t)> make;
};

/**
 * The trace inventory: the 18 traces of paper Table II (Crypto x2,
 * CPU-D/G/V, FBC-Linear x2, FBC-Tiled x2, Multi-layer, T-Rex x2,
 * Manhattan, OpenCL x2, HEVC x3) plus the scenario-space extensions
 * (DMA-Copy, NPU-GEMM) — 20 in total.
 */
const std::vector<DeviceTraceSpec> &deviceTraces();

/** Look up a Table II trace by name and build it. */
mem::Trace makeDeviceTrace(const std::string &name,
                           std::size_t target_requests,
                           std::uint64_t seed = 0);

} // namespace mocktails::workloads

#endif // MOCKTAILS_WORKLOADS_DEVICES_HPP
