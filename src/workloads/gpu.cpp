/**
 * @file
 * GPU traces: bursty, high-volume, many concurrent streams.
 *
 * GPUs issue large requests in short intervals (paper Sec. IV-B
 * attributes their long controller queues to exactly this), mixing
 * texture fetches, vertex/attribute reads and framebuffer writes from
 * many in-flight warps.
 */

#include "workloads/devices.hpp"

#include "workloads/builder.hpp"

namespace mocktails::workloads
{

namespace
{

constexpr mem::Addr textureBase = 0x200000000;
constexpr mem::Addr vertexBase = 0x210000000;
constexpr mem::Addr colorBase = 0x220000000;
constexpr mem::Addr depthBase = 0x228000000;
constexpr mem::Addr uboBase = 0x230000000;

/**
 * One render burst: interleaved texture/vertex reads and color/depth
 * traffic issued back to back (deltas of a few cycles).
 */
void
renderBurst(TraceBuilder &b, std::size_t target, std::uint32_t quads,
            double texture_bias, std::uint32_t tex_size)
{
    util::Rng &rng = b.rng();
    mem::Addr vertex_cursor =
        vertexBase + (rng.below(64) << 16);
    mem::Addr color_cursor =
        colorBase + (rng.below(256) & ~mem::Addr{1}) * 4096;

    for (std::uint32_t q = 0; q < quads && b.size() < target; ++q) {
        // Texture fetches: tiled locality — a hot tile is reused for
        // several quads before moving on.
        if (rng.chance(texture_bias)) {
            const mem::Addr tile =
                textureBase + (rng.below(4096) << 12);
            for (std::uint32_t i = 0;
                 i < 4 && b.size() < target; ++i) {
                b.emitThen(tile + rng.below(64) * 64, tex_size,
                           mem::Op::Read, 1 + rng.below(2));
            }
        }
        // Vertex attributes: linear.
        b.emitThen(vertex_cursor, 64, mem::Op::Read, 1);
        vertex_cursor += 64;

        // Color writes + depth read-modify-write.
        b.emitThen(color_cursor + (q % 64) * 128, 128, mem::Op::Write,
                   1 + rng.below(2));
        if (rng.chance(0.5)) {
            const mem::Addr z = depthBase + (q % 64) * 64 +
                                ((q / 64) << 12);
            b.emitThen(z, 64, mem::Op::Read, 1);
            b.emitThen(z, 64, mem::Op::Write, 1);
        }
    }
}

mem::Trace
makeRenderTrace(const char *name, std::size_t target,
                std::uint64_t seed, std::uint32_t bursts_per_pass,
                std::uint32_t quads_per_burst, double texture_bias,
                std::uint32_t tex_size, mem::Tick burst_gap,
                mem::Tick pass_gap)
{
    TraceBuilder b(name, "GPU", seed);
    util::Rng &rng = b.rng();

    while (b.size() < target) {
        // Uniform/constant reads at pass start.
        for (std::uint32_t i = 0; i < 16 && b.size() < target; ++i)
            b.emitThen(uboBase + i * 64, 64, mem::Op::Read, 2);

        for (std::uint32_t burst = 0;
             burst < bursts_per_pass && b.size() < target; ++burst) {
            renderBurst(b, target, quads_per_burst, texture_bias,
                        tex_size);
            b.advance(burst_gap + rng.below(burst_gap));
        }
        b.advance(pass_gap + rng.below(pass_gap / 2));
    }

    mem::Trace trace = b.take();
    trace.truncate(target);
    return trace;
}

} // namespace

mem::Trace
makeTRex(std::size_t target, std::uint64_t seed, int variant)
{
    // Variant 2 renders at a lower resolution: shorter bursts.
    return makeRenderTrace(variant == 1 ? "T-Rex1" : "T-Rex2", target,
                           seed ^ static_cast<std::uint64_t>(variant),
                           24, variant == 1 ? 160 : 96, 0.8, 64, 4000,
                           400000);
}

mem::Trace
makeManhattan(std::size_t target, std::uint64_t seed)
{
    // Heavier shading: more texture traffic, larger fetches, denser
    // passes.
    return makeRenderTrace("Manhattan", target, seed ^ 0x6d68, 32, 224,
                           0.9, 128, 3000, 300000);
}

mem::Trace
makeOpenCl(std::size_t target, std::uint64_t seed, int variant)
{
    TraceBuilder b(variant == 1 ? "OpenCL1" : "OpenCL2", "GPU",
                   seed ^ static_cast<std::uint64_t>(variant * 7));
    util::Rng &rng = b.rng();

    constexpr mem::Addr in_a = 0x240000000;
    constexpr mem::Addr in_b = 0x248000000;
    constexpr mem::Addr out_c = 0x250000000;
    const std::uint64_t array_bytes = variant == 1 ? (1u << 24)
                                                   : (1u << 22);

    while (b.size() < target) {
        // Streaming kernel: wavefronts read both inputs and write the
        // output, back to back.
        for (std::uint64_t offset = 0;
             offset < array_bytes && b.size() < target; offset += 128) {
            b.emitThen(in_a + offset, 128, mem::Op::Read, 1);
            b.emitThen(in_b + offset, 128, mem::Op::Read, 1);
            b.emitThen(out_c + offset, 128, mem::Op::Write,
                       1 + rng.below(2));
        }
        if (variant == 2) {
            // Variant 2 adds a gather/reduction kernel with random
            // reads.
            for (std::uint32_t i = 0;
                 i < 20000 && b.size() < target; ++i) {
                b.emitThen(out_c + (rng.below(array_bytes) &
                                    ~mem::Addr{127}),
                           128, mem::Op::Read, 2);
            }
        }
        // Kernel launch overhead.
        b.advance(150000 + rng.below(50000));
    }

    mem::Trace trace = b.take();
    trace.truncate(target);
    return trace;
}

} // namespace mocktails::workloads
