/**
 * @file
 * CPU device traces: cache-filtered request streams.
 *
 * CPU requests reach the interconnect only after the cache hierarchy
 * filters them, so the streams are sparser and more irregular than
 * raw load/store streams: miss clusters, whole-cache-line sizes, and
 * phase changes in which memory regions are active (the behaviour the
 * paper's Fig. 13 discusses for CPUs).
 */

#include "workloads/devices.hpp"

#include "workloads/builder.hpp"

namespace mocktails::workloads
{

namespace
{

constexpr mem::Addr cryptoSrc = 0x80000000;
constexpr mem::Addr cryptoDst = 0x88000000;
constexpr mem::Addr cryptoTbl = 0x90000000;
constexpr mem::Addr heapBase = 0xa0000000;
constexpr mem::Addr stagingBase = 0xa8000000;
constexpr mem::Addr ioBase = 0xb0000000;

/**
 * Shared skeleton for the CPU-D/G/V host workloads: alternating
 * compute phases (scattered cache-line misses over a heap working
 * set) and transfer phases (linear copies into a device buffer), with
 * per-device parameters.
 */
mem::Trace
makeHostWorkload(const char *name, std::size_t target,
                 std::uint64_t seed, std::uint64_t heap_bytes,
                 std::uint64_t buffer_bytes, std::uint32_t copy_size,
                 mem::Tick compute_gap, mem::Tick transfer_gap,
                 double compute_write_fraction)
{
    TraceBuilder b(name, "CPU", seed);
    util::Rng &rng = b.rng();

    std::uint32_t phase = 0;
    while (b.size() < target) {
        // Compute phase: irregular misses over a phase-local slice of
        // the heap; regions shift between phases.
        const mem::Addr slice =
            heapBase + (phase % 8) * (heap_bytes / 4);
        const std::uint32_t misses =
            2000 + static_cast<std::uint32_t>(rng.below(2000));
        for (std::uint32_t i = 0; i < misses && b.size() < target; ++i) {
            // Miss clusters: short runs of nearby lines.
            const mem::Addr line =
                slice + (rng.below(heap_bytes / 2) & ~mem::Addr{63});
            const std::uint32_t run =
                1 + static_cast<std::uint32_t>(rng.below(4));
            for (std::uint32_t j = 0; j < run; ++j) {
                const mem::Op op = rng.chance(compute_write_fraction)
                                       ? mem::Op::Write
                                       : mem::Op::Read;
                // Reads sometimes fetch an adjacent-line prefetch
                // pair (128B); writes evict single lines (64B). The
                // op-size correlation inside mixed regions is what
                // independent feature models mis-pair (the paper's
                // Fig. 6 error source).
                const std::uint32_t size =
                    op == mem::Op::Read && rng.chance(0.3) ? 128 : 64;
                b.emitThen(line + j * 64, size, op,
                           4 + rng.below(compute_gap));
            }
            b.advance(rng.below(compute_gap * 4));
        }

        // Transfer phase: stream the marshalled staging buffer into
        // the device buffer. The staging region is distinct from the
        // compute heap — the dense copy burst forms its own dynamic
        // partitions rather than smearing into the miss-cluster
        // regions.
        const mem::Addr src =
            stagingBase + (phase % 2) * buffer_bytes;
        const mem::Addr dst = ioBase + (phase % 2) * buffer_bytes;
        const std::uint32_t lines =
            static_cast<std::uint32_t>(buffer_bytes / copy_size);
        for (std::uint32_t i = 0; i < lines && b.size() < target; ++i) {
            b.emitThen(src + i * copy_size, copy_size, mem::Op::Read,
                       transfer_gap);
            b.emitThen(dst + i * copy_size, copy_size, mem::Op::Write,
                       transfer_gap);
        }

        // Idle until the next iteration (device busy).
        b.advance(200000 + rng.below(100000));
        ++phase;
    }

    mem::Trace trace = b.take();
    trace.truncate(target);
    return trace;
}

} // namespace

mem::Trace
makeCrypto(std::size_t target, std::uint64_t seed, int variant)
{
    TraceBuilder b(variant == 1 ? "Crypto1" : "Crypto2", "CPU",
                   seed ^ static_cast<std::uint64_t>(variant));
    util::Rng &rng = b.rng();

    // Variant 2 uses larger blocks and a bigger table (e.g. a
    // different cipher configuration).
    const std::uint32_t chunk = variant == 1 ? 64 : 128;
    const std::uint64_t table_bytes = variant == 1 ? 8192 : 32768;
    const mem::Tick gap = variant == 1 ? 24 : 32;

    std::uint64_t offset = 0;
    while (b.size() < target) {
        // One buffer's worth of encryption: read plaintext lines,
        // write ciphertext lines, with occasional table lookups that
        // missed the cache.
        const std::uint32_t lines =
            512 + static_cast<std::uint32_t>(rng.below(256));
        for (std::uint32_t i = 0; i < lines && b.size() < target; ++i) {
            b.emitThen(cryptoSrc + offset, chunk, mem::Op::Read, gap);
            if (rng.chance(0.15)) {
                b.emitThen(cryptoTbl + (rng.below(table_bytes) &
                                        ~mem::Addr{63}),
                           64, mem::Op::Read, gap / 2);
            }
            b.emitThen(cryptoDst + offset, chunk, mem::Op::Write, gap);
            offset += chunk;
        }
        // Key schedule / buffer management pause.
        b.advance(50000 + rng.below(50000));
    }

    mem::Trace trace = b.take();
    trace.truncate(target);
    return trace;
}

mem::Trace
makeCpuD(std::size_t target, std::uint64_t seed)
{
    // Prepares display layers: medium heap, frame-sized buffers,
    // write-leaning compute (software composition).
    return makeHostWorkload("CPU-D", target, seed, 1 << 22, 1 << 16, 64,
                            40, 8, 0.45);
}

mem::Trace
makeCpuG(std::size_t target, std::uint64_t seed)
{
    // Builds GPU command streams: larger heap, small command buffers,
    // read-leaning compute (scene traversal).
    return makeHostWorkload("CPU-G", target, seed, 1 << 23, 1 << 14, 64,
                            24, 4, 0.3);
}

mem::Trace
makeCpuV(std::size_t target, std::uint64_t seed)
{
    // Feeds a video decoder: smaller heap, large bitstream buffers
    // copied with bigger chunks.
    return makeHostWorkload("CPU-V", target, seed, 1 << 21, 1 << 17,
                            128, 48, 12, 0.35);
}

} // namespace mocktails::workloads
