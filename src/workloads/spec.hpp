/**
 * @file
 * SPEC CPU2006-like workload generators (paper Sec. V).
 *
 * The paper collects CPU-to-L1 request traces of 23 SPEC CPU2006
 * benchmarks with Pin. Those traces cannot be redistributed, so this
 * module provides 23 deterministic generators whose locality profiles
 * span the same behavioural space — streaming, pointer chasing, hot
 * working sets, cyclic sweeps — with per-benchmark parameters chosen
 * to produce distinct cache behaviour (see DESIGN.md).
 *
 * Requests model the CPU-L1 port: byte-granularity addresses, 4/8-byte
 * sizes, unfiltered by any cache.
 */

#ifndef MOCKTAILS_WORKLOADS_SPEC_HPP
#define MOCKTAILS_WORKLOADS_SPEC_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/trace.hpp"

namespace mocktails::workloads
{

/**
 * The behavioural parameters of one SPEC-like benchmark.
 */
struct SpecParams
{
    const char *name;

    std::uint64_t footprint;  ///< total bytes ever touched
    std::uint64_t hotBytes;   ///< hot working-set size
    std::uint64_t sweepBytes; ///< cyclic-sweep region (0 = none)

    double pHot;    ///< P(access hot set, uniform)
    double pStream; ///< P(sequential stream access)
    double pChase;  ///< P(random access in full footprint)
    // Remaining probability: cyclic sweep (or hot if sweepBytes==0).

    double readFraction;
    std::uint32_t streams; ///< interleaved sequential streams
};

/** Names of the 23 benchmarks (Fig. 17's x-axis). */
const std::vector<std::string> &specBenchmarks();

/** Parameters of a benchmark. @throws std::invalid_argument. */
const SpecParams &specParams(const std::string &name);

/** Generate a CPU-L1 trace for a benchmark. */
mem::Trace makeSpecTrace(const std::string &name,
                         std::size_t requests, std::uint64_t seed = 0);

} // namespace mocktails::workloads

#endif // MOCKTAILS_WORKLOADS_SPEC_HPP
