/**
 * @file
 * The Table II trace inventory.
 */

#include "workloads/devices.hpp"

#include <stdexcept>

namespace mocktails::workloads
{

const std::vector<DeviceTraceSpec> &
deviceTraces()
{
    static const std::vector<DeviceTraceSpec> specs = {
        {"Crypto1", "CPU", "A cryptography workload (trace 1 of 2)",
         [](std::size_t n, std::uint64_t s) { return makeCrypto(n, s, 1); }},
        {"Crypto2", "CPU", "A cryptography workload (trace 2 of 2)",
         [](std::size_t n, std::uint64_t s) { return makeCrypto(n, s, 2); }},
        {"CPU-D", "CPU", "A workload that interacts with a DPU",
         [](std::size_t n, std::uint64_t s) { return makeCpuD(n, s); }},
        {"CPU-G", "CPU", "A workload that interacts with a GPU",
         [](std::size_t n, std::uint64_t s) { return makeCpuG(n, s); }},
        {"CPU-V", "CPU", "A workload that interacts with a VPU",
         [](std::size_t n, std::uint64_t s) { return makeCpuV(n, s); }},
        {"FBC-Linear1", "DPU",
         "Display compressed frames (linear mode, trace 1 of 2)",
         [](std::size_t n, std::uint64_t s) {
             return makeFbcLinear(n, s, 1);
         }},
        {"FBC-Linear2", "DPU",
         "Display compressed frames (linear mode, trace 2 of 2)",
         [](std::size_t n, std::uint64_t s) {
             return makeFbcLinear(n, s, 2);
         }},
        {"FBC-Tiled1", "DPU",
         "Display compressed frames (tiled mode, trace 1 of 2)",
         [](std::size_t n, std::uint64_t s) {
             return makeFbcTiled(n, s, 1);
         }},
        {"FBC-Tiled2", "DPU",
         "Display compressed frames (tiled mode, trace 2 of 2)",
         [](std::size_t n, std::uint64_t s) {
             return makeFbcTiled(n, s, 2);
         }},
        {"Multi-layer", "DPU", "Display multiple VGA layers",
         [](std::size_t n, std::uint64_t s) {
             return makeMultiLayer(n, s);
         }},
        {"T-Rex1", "GPU", "T-Rex from GFXBench (trace 1 of 2)",
         [](std::size_t n, std::uint64_t s) { return makeTRex(n, s, 1); }},
        {"T-Rex2", "GPU", "T-Rex from GFXBench (trace 2 of 2)",
         [](std::size_t n, std::uint64_t s) { return makeTRex(n, s, 2); }},
        {"Manhattan", "GPU", "Manhattan from GFXBench",
         [](std::size_t n, std::uint64_t s) {
             return makeManhattan(n, s);
         }},
        {"OpenCL1", "GPU", "An OpenCL stress test (trace 1 of 2)",
         [](std::size_t n, std::uint64_t s) { return makeOpenCl(n, s, 1); }},
        {"OpenCL2", "GPU", "An OpenCL stress test (trace 2 of 2)",
         [](std::size_t n, std::uint64_t s) { return makeOpenCl(n, s, 2); }},
        {"HEVC1", "VPU", "Decoding compressed video (trace 1 of 3)",
         [](std::size_t n, std::uint64_t s) { return makeHevc(n, s, 1); }},
        {"HEVC2", "VPU", "Decoding compressed video (trace 2 of 3)",
         [](std::size_t n, std::uint64_t s) { return makeHevc(n, s, 2); }},
        {"HEVC3", "VPU", "Decoding compressed video (trace 3 of 3)",
         [](std::size_t n, std::uint64_t s) { return makeHevc(n, s, 3); }},
        {"DMA-Copy", "DMA",
         "A DMA copy engine moving buffers between memory regions",
         [](std::size_t n, std::uint64_t s) { return makeDmaCopy(n, s); }},
        {"NPU-GEMM", "NPU",
         "A neural accelerator running tiled matrix multiplies",
         [](std::size_t n, std::uint64_t s) { return makeNpuGemm(n, s); }},
    };
    return specs;
}

mem::Trace
makeDeviceTrace(const std::string &name, std::size_t target_requests,
                std::uint64_t seed)
{
    for (const DeviceTraceSpec &spec : deviceTraces()) {
        if (spec.name == name)
            return spec.make(target_requests, seed);
    }
    throw std::invalid_argument("unknown device trace: " + name);
}

} // namespace mocktails::workloads
