/**
 * @file
 * Higher-order Markov feature models (an extension beyond the paper).
 *
 * The paper's McC uses first-order chains and argues hierarchical
 * partitioning makes deeper history unnecessary (Sec. IV-B: "the need
 * for modeling stride history is diminished thanks to dynamic spatial
 * partitioning"). This module makes that claim testable: an order-k
 * model conditions each value on the previous k values, with the same
 * strict-convergence budget, so `bench/ablation_order` can measure
 * what extra history buys (and what it costs in metadata).
 */

#ifndef MOCKTAILS_CORE_HISTORY_MARKOV_HPP
#define MOCKTAILS_CORE_HISTORY_MARKOV_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "core/mcc.hpp"
#include "core/model_generator.hpp"

namespace mocktails::core
{

/**
 * An order-k Markov model over integer feature values.
 *
 * Rows are keyed by the previous min(k, position) values; lookups
 * fall back from the longest matching suffix to the global value
 * budget, and every emission consumes the strict-convergence budget,
 * so the generated multiset always equals the observed one.
 */
class HistoryMarkovModel : public FeatureModel
{
  public:
    static constexpr std::uint8_t kTag = 5;

    using History = std::vector<std::int64_t>;
    using Row = std::vector<std::pair<std::int64_t, std::uint64_t>>;

    /** Fit from a value sequence. @pre !values.empty(), order >= 1. */
    HistoryMarkovModel(const std::vector<std::int64_t> &values,
                       std::uint32_t order);

    /** Direct construction (decoding). */
    HistoryMarkovModel(std::map<History, Row> table, Row budget,
                       std::int64_t initial, std::uint32_t order);

    std::uint32_t order() const { return order_; }
    std::size_t numRows() const { return table_.size(); }

    std::uint64_t sequenceLength() const override;
    std::unique_ptr<FeatureSampler>
    makeSampler(util::Rng &rng) const override;
    std::uint8_t tag() const override { return kTag; }
    void encodePayload(util::ByteWriter &writer) const override;

    static FeatureModelPtr decodePayload(util::ByteReader &reader);

  private:
    friend class HistoryMarkovSampler;

    std::map<History, Row> table_;
    Row budget_; ///< global (value, count) multiset
    std::int64_t initial_;
    std::uint32_t order_;
};

/**
 * Build an order-k McC model: Constant when the sequence never
 * varies, an order-k chain otherwise (nullptr for empty input).
 * Order 1 is equivalent in power to the paper's MarkovModel.
 */
FeatureModelPtr buildMccK(const std::vector<std::int64_t> &values,
                          std::uint32_t order);

/**
 * Leaf modeler hooks using order-k chains for every feature.
 */
LeafModelerHooks mccKHooks(std::uint32_t order);

/** Register the decoder with the profile codec (idempotent). */
void registerHistoryMarkov();

} // namespace mocktails::core

#endif // MOCKTAILS_CORE_HISTORY_MARKOV_HPP
