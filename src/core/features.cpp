#include "core/features.hpp"

namespace mocktails::core
{

std::vector<std::int64_t>
deltaTimes(const RequestSeq &requests)
{
    std::vector<std::int64_t> out;
    if (requests.size() < 2)
        return out;
    out.reserve(requests.size() - 1);
    for (std::size_t i = 1; i < requests.size(); ++i) {
        out.push_back(static_cast<std::int64_t>(requests[i].tick) -
                      static_cast<std::int64_t>(requests[i - 1].tick));
    }
    return out;
}

std::vector<std::int64_t>
strides(const RequestSeq &requests)
{
    std::vector<std::int64_t> out;
    if (requests.size() < 2)
        return out;
    out.reserve(requests.size() - 1);
    for (std::size_t i = 1; i < requests.size(); ++i) {
        out.push_back(static_cast<std::int64_t>(requests[i].addr) -
                      static_cast<std::int64_t>(requests[i - 1].addr));
    }
    return out;
}

std::vector<std::int64_t>
operations(const RequestSeq &requests)
{
    std::vector<std::int64_t> out;
    out.reserve(requests.size());
    for (const auto &r : requests)
        out.push_back(static_cast<std::int64_t>(r.op));
    return out;
}

std::vector<std::int64_t>
sizes(const RequestSeq &requests)
{
    std::vector<std::int64_t> out;
    out.reserve(requests.size());
    for (const auto &r : requests)
        out.push_back(static_cast<std::int64_t>(r.size));
    return out;
}

} // namespace mocktails::core
