#include "core/mcc.hpp"

namespace mocktails::core
{

namespace
{

/** Sampler that repeats a single value. */
class ConstantSampler : public FeatureSampler
{
  public:
    explicit ConstantSampler(std::int64_t value) : value_(value) {}
    std::int64_t next() override { return value_; }

  private:
    std::int64_t value_;
};

/** Sampler wrapping StrictConvergenceSampler. */
class MarkovSampler : public FeatureSampler
{
  public:
    MarkovSampler(const MarkovChain &chain, util::Rng &rng)
        : sampler_(chain, rng)
    {}

    std::int64_t next() override { return sampler_.next(); }

    std::int64_t
    lastState() const override
    {
        return static_cast<std::int64_t>(sampler_.currentState());
    }

  private:
    StrictConvergenceSampler sampler_;
};

} // namespace

std::unique_ptr<FeatureSampler>
ConstantModel::makeSampler(util::Rng &rng) const
{
    (void)rng;
    return std::make_unique<ConstantSampler>(value_);
}

void
ConstantModel::encodePayload(util::ByteWriter &writer) const
{
    writer.putSigned(value_);
    writer.putVarint(length_);
}

FeatureModelPtr
ConstantModel::decodePayload(util::ByteReader &reader)
{
    const std::int64_t value = reader.getSigned();
    const std::uint64_t length = reader.getVarint();
    if (!reader.ok())
        return nullptr;
    return std::make_unique<ConstantModel>(value, length);
}

std::unique_ptr<FeatureSampler>
MarkovModel::makeSampler(util::Rng &rng) const
{
    return std::make_unique<MarkovSampler>(chain_, rng);
}

void
MarkovModel::encodePayload(util::ByteWriter &writer) const
{
    const std::size_t n = chain_.numStates();
    writer.putVarint(n);
    for (std::size_t s = 0; s < n; ++s)
        writer.putSigned(chain_.stateValue(s));
    writer.putVarint(chain_.initialState());
    for (std::size_t s = 0; s < n; ++s)
        writer.putVarint(chain_.valueCounts()[s]);
    for (std::size_t s = 0; s < n; ++s) {
        const auto &row = chain_.transitions(s);
        writer.putVarint(row.size());
        for (const auto &[to, count] : row) {
            writer.putVarint(to);
            writer.putVarint(count);
        }
    }
}

FeatureModelPtr
MarkovModel::decodePayload(util::ByteReader &reader)
{
    const std::uint64_t n = reader.getVarint();
    // Each state needs at least one byte of payload.
    if (!reader.ok() || n == 0 || n > reader.remaining() + 1)
        return nullptr;

    std::vector<std::int64_t> states(n);
    for (auto &v : states)
        v = reader.getSigned();
    const std::size_t initial = reader.getVarint();

    std::vector<std::uint64_t> counts(n);
    for (auto &c : counts)
        c = reader.getVarint();

    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
        transitions(n);
    for (auto &row : transitions) {
        const std::uint64_t row_size = reader.getVarint();
        if (!reader.ok() || row_size > n)
            return nullptr;
        row.reserve(row_size);
        for (std::uint64_t i = 0; i < row_size; ++i) {
            const auto to = static_cast<std::uint32_t>(reader.getVarint());
            const std::uint64_t count = reader.getVarint();
            if (to >= n)
                return nullptr;
            row.emplace_back(to, count);
        }
    }

    if (!reader.ok() || initial >= n)
        return nullptr;
    return std::make_unique<MarkovModel>(MarkovChain::fromParts(
        std::move(states), initial, std::move(counts),
        std::move(transitions)));
}

void
McCBuilder::add(std::int64_t value)
{
    if (count_ == 0)
        first_ = value;
    if (constant_ && value != first_) {
        // Second distinct value: leave the constant regime. Replay the
        // all-equal prefix so the chain sees the full sequence.
        for (std::uint64_t i = 0; i < count_; ++i)
            chain_.add(first_);
        constant_ = false;
    }
    if (!constant_)
        chain_.add(value);
    ++count_;
}

FeatureModelPtr
McCBuilder::finish()
{
    FeatureModelPtr model;
    if (count_ == 0)
        model = nullptr;
    else if (constant_)
        model = std::make_unique<ConstantModel>(first_, count_);
    else
        model = std::make_unique<MarkovModel>(chain_.finish());
    first_ = 0;
    count_ = 0;
    constant_ = true;
    return model;
}

FeatureModelPtr
buildMcc(const std::vector<std::int64_t> &values)
{
    McCBuilder builder;
    for (const std::int64_t v : values)
        builder.add(v);
    return builder.finish();
}

} // namespace mocktails::core
