/**
 * @file
 * Builds a statistical profile from a trace.
 *
 * The generator partitions the trace per the hierarchy configuration
 * and fits one model per feature per leaf. Which model family is used
 * per feature is pluggable via LeafModelerHooks so the STM baseline
 * can replace the stride and operation models, exactly as the paper's
 * 2L-TS (STM) configuration does (Sec. IV-A).
 */

#ifndef MOCKTAILS_CORE_MODEL_GENERATOR_HPP
#define MOCKTAILS_CORE_MODEL_GENERATOR_HPP

#include <functional>

#include "core/partition.hpp"
#include "core/profile.hpp"
#include "mem/trace.hpp"

namespace mocktails::core
{

/**
 * Per-feature model builders. Each hook receives the feature's value
 * sequence for one leaf and returns the fitted model (nullptr for an
 * empty sequence). Defaults fit McC models.
 */
struct LeafModelerHooks
{
    using Builder =
        std::function<FeatureModelPtr(const std::vector<std::int64_t> &)>;

    Builder deltaTime = buildMcc;
    Builder stride = buildMcc;
    Builder op = buildMcc;
    Builder size = buildMcc;
};

/** Fit the models of a single leaf. */
LeafModel modelLeaf(const Leaf &leaf,
                    const LeafModelerHooks &hooks = LeafModelerHooks{});

/**
 * Build a full profile: partition @p trace per @p config and fit every
 * leaf.
 *
 * Leaves are independent after partitioning, so fitting fans out over
 * the thread pool (util/thread_pool.hpp) and results are collected in
 * leaf order: the profile is bit-identical at every thread count. The
 * hook builders are called concurrently and must be thread-safe (the
 * built-in McC, McC-k and STM builders are pure functions).
 *
 * @param threads Worker cap; 0 = one per hardware thread, 1 = the
 *                exact sequential legacy path.
 * @pre trace.isTimeOrdered()
 */
Profile buildProfile(const mem::Trace &trace,
                     const PartitionConfig &config,
                     const LeafModelerHooks &hooks = LeafModelerHooks{},
                     unsigned threads = 0);

} // namespace mocktails::core

#endif // MOCKTAILS_CORE_MODEL_GENERATOR_HPP
