/**
 * @file
 * Request synthesis from a statistical profile.
 *
 * Each leaf model independently generates its partial order of
 * requests; a priority queue keyed on timestamp merges the concurrent
 * leaf streams into the total order (paper Sec. III-C, Fig. 5). Bursts
 * emerge naturally when leaves have overlapping start times. The
 * engine is a RequestSource, so it can feed the trace player directly
 * (Fig. 1 Option B) or materialise a synthetic trace (Option A).
 */

#ifndef MOCKTAILS_CORE_SYNTHESIS_HPP
#define MOCKTAILS_CORE_SYNTHESIS_HPP

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "core/profile.hpp"
#include "mem/request_batch.hpp"
#include "mem/source.hpp"
#include "mem/trace.hpp"
#include "obs/provenance.hpp"
#include "util/rng.hpp"

namespace mocktails::core
{

/**
 * Generates the request sequence of a single leaf.
 */
class LeafSynthesizer
{
  public:
    /** The leaf model must outlive the synthesizer. */
    LeafSynthesizer(const LeafModel &leaf, util::Rng &rng);

    /**
     * Produce the leaf's next request.
     * @return false once count requests have been generated.
     */
    bool next(mem::Request &out);

    /**
     * Generate all remaining requests straight into the SoA columns of
     * @p out (appending). Same sampler draw order as repeated next()
     * calls, so the emitted rows are bit-identical; the batch is what
     * the sharded synthesize() workers fill, keeping the k-way merge a
     * tick-column scan instead of a 24-byte-struct stride.
     *
     * @return Rows appended.
     */
    std::size_t run(mem::RequestBatch &out);

    std::uint64_t generated() const { return generated_; }

    /** Candidates wrapped/pinned back into the leaf's region. */
    std::uint64_t addressWraps() const { return wraps_; }

    /**
     * Provenance: the Markov state that emitted the inter-arrival
     * delta of the last next() request, or -1 when the delta model is
     * constant/absent or for the leaf's first request (no delta).
     */
    std::int64_t lastDeltaState() const { return last_delta_state_; }

  private:
    /**
     * Wrap a candidate start address into [addrLo, addrHi - size] so
     * the request's whole byte range stays inside the leaf's region.
     * Degenerate regions (addrLo == addrHi, or smaller than the
     * request) pin to addrLo. Counts every modified candidate in
     * wraps_ (the "synthesis.address_wraps" telemetry observable).
     */
    mem::Addr wrapAddress(std::int64_t candidate, std::uint32_t size);

    const LeafModel *leaf_;
    std::unique_ptr<FeatureSampler> delta_;
    std::unique_ptr<FeatureSampler> stride_;
    std::unique_ptr<FeatureSampler> op_;
    std::unique_ptr<FeatureSampler> size_;

    mem::Tick time_ = 0;
    mem::Addr addr_ = 0;
    std::uint64_t generated_ = 0;
    std::uint64_t wraps_ = 0;
    std::int64_t last_delta_state_ = -1;
};

/**
 * The full synthesis engine: all leaves merged through a priority
 * queue into one time-ordered request stream.
 */
class SynthesisEngine : public mem::RequestSource
{
  public:
    /**
     * @param profile Must outlive the engine.
     * @param seed Seed for all stochastic choices; equal seeds give
     *             identical streams.
     * @param provenance Optional side channel (must outlive the
     *             engine): one RequestOrigin is appended per emitted
     *             request, index-aligned with the output order, and
     *             the per-leaf metadata is filled at construction.
     *             The request stream itself is bit-identical with and
     *             without a table attached.
     */
    explicit SynthesisEngine(const Profile &profile,
                             std::uint64_t seed = 1,
                             obs::ProvenanceTable *provenance = nullptr);

    bool next(mem::Request &out) override;

    /**
     * Streaming hook: append up to @p max requests to @p out.
     *
     * Equivalent to calling next() @p max times — the emitted sequence
     * is bit-identical for every batching of the same engine — but
     * shaped for incremental consumers (serve::SynthesisSession) that
     * hand out the trace chunk by chunk instead of materialising it.
     *
     * @return The number of requests appended; < @p max only when the
     *         engine drained.
     */
    std::size_t nextBatch(std::vector<mem::Request> &out,
                          std::size_t max);

    /** SoA overload: append up to @p max requests to the batch's
     *  columns. Row sequence identical to the AoS overload. */
    std::size_t nextBatch(mem::RequestBatch &out, std::size_t max);

    /** Requests produced so far. */
    std::uint64_t generated() const { return generated_; }

    /** Requests this engine will produce in total. */
    std::uint64_t total() const { return total_; }

    /** Leaves currently competing in the merge heap. */
    std::size_t heapDepth() const { return heap_.size(); }

    /** Sum of the leaves' address-wrap counts so far. */
    std::uint64_t addressWraps() const;

  private:
    struct HeapEntry
    {
        mem::Tick tick;
        std::uint32_t leaf;

        bool
        operator>(const HeapEntry &other) const
        {
            if (tick != other.tick)
                return tick > other.tick;
            return leaf > other.leaf;
        }
    };

    util::Rng rng_;
    std::vector<util::Rng> leaf_rngs_;
    std::vector<LeafSynthesizer> leaves_;
    std::vector<mem::Request> pending_;
    /// Delta-state provenance of each leaf's pending request (the
    /// engine prefetches, so the state must be captured at generation
    /// time, not at emission).
    std::vector<std::int64_t> pending_state_;
    obs::ProvenanceTable *provenance_ = nullptr;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap_;
    std::uint64_t generated_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Convenience: synthesise the complete trace for a profile.
 *
 * With threads != 1 the leaves are sharded across the thread pool:
 * each worker generates whole per-leaf request runs (using the same
 * per-leaf forked RNG streams as SynthesisEngine) and a deterministic
 * k-way merge with the engine's (tick, leaf) tie-break produces the
 * total order. The result is bit-identical to the sequential engine
 * for the same seed at every thread count.
 *
 * @param threads Worker cap; 0 = one per hardware thread, 1 = the
 *                exact sequential engine loop.
 * @param provenance Optional request-provenance side channel; filled
 *                index-aligned with the returned trace (identical at
 *                every thread count, like the trace itself).
 */
mem::Trace synthesize(const Profile &profile, std::uint64_t seed = 1,
                      unsigned threads = 1,
                      obs::ProvenanceTable *provenance = nullptr);

/**
 * Provenance metadata of one leaf model: McC feature modes, range and
 * count, with the placeholder path "leaf<index>" (callers that know
 * the hierarchy overwrite it with the real path).
 */
obs::LeafProvenance describeLeaf(const LeafModel &leaf,
                                 std::uint32_t index);

/**
 * Replays a profile repeatedly to drive simulations longer than the
 * original trace.
 *
 * A profile synthesises exactly the request count it was built from.
 * For longer runs, LoopedSynthesis restarts the engine each time it
 * drains, shifting all timestamps so iteration k begins one inter-
 * iteration gap after iteration k-1 ended, and reseeding so the
 * iterations are not byte-identical. The per-iteration behaviour
 * (bursts, footprints, mixes) is preserved — this emulates a workload
 * that processes its input repeatedly (e.g. a display refreshing or a
 * decoder looping a clip).
 */
class LoopedSynthesis : public mem::RequestSource
{
  public:
    /**
     * @param profile Must outlive the source.
     * @param iterations Number of full passes to generate.
     * @param gap Idle ticks inserted between passes.
     */
    LoopedSynthesis(const Profile &profile, std::uint64_t iterations,
                    mem::Tick gap = 0, std::uint64_t seed = 1);

    bool next(mem::Request &out) override;

    std::uint64_t iterationsDone() const { return iteration_; }
    std::uint64_t total() const;

  private:
    const Profile *profile_;
    std::uint64_t iterations_;
    mem::Tick gap_;
    std::uint64_t seed_;
    std::uint64_t iteration_ = 0;
    mem::Tick offset_ = 0;
    mem::Tick last_tick_ = 0;
    std::unique_ptr<SynthesisEngine> engine_;
};

} // namespace mocktails::core

#endif // MOCKTAILS_CORE_SYNTHESIS_HPP
