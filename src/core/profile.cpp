#include "core/profile.hpp"

#include <array>

#include "util/compress.hpp"

namespace mocktails::core
{

namespace
{

constexpr std::uint64_t profileMagic = 0x4d4b5046; // "MKPF"
constexpr std::uint64_t profileVersion = 1;

std::array<FeatureModelDecoder, 256> &
decoderRegistry()
{
    static std::array<FeatureModelDecoder, 256> registry = [] {
        std::array<FeatureModelDecoder, 256> r{};
        r[ConstantModel::kTag] = &ConstantModel::decodePayload;
        r[MarkovModel::kTag] = &MarkovModel::decodePayload;
        return r;
    }();
    return registry;
}

} // namespace

void
registerFeatureModelDecoder(std::uint8_t tag, FeatureModelDecoder decoder)
{
    decoderRegistry()[tag] = decoder;
}

void
encodeFeatureModel(util::ByteWriter &writer, const FeatureModelPtr &model)
{
    if (!model) {
        writer.putByte(0);
        return;
    }
    writer.putByte(model->tag());
    model->encodePayload(writer);
}

FeatureModelPtr
decodeFeatureModel(util::ByteReader &reader, bool &ok)
{
    const std::uint8_t tag = reader.getByte();
    if (!reader.ok()) {
        ok = false;
        return nullptr;
    }
    if (tag == 0)
        return nullptr;

    const FeatureModelDecoder decoder = decoderRegistry()[tag];
    if (!decoder) {
        ok = false;
        return nullptr;
    }
    FeatureModelPtr model = decoder(reader);
    if (!model)
        ok = false;
    return model;
}

std::uint64_t
Profile::totalRequests() const
{
    std::uint64_t total = 0;
    for (const LeafModel &leaf : leaves)
        total += leaf.count;
    return total;
}

std::vector<std::uint8_t>
Profile::encode() const
{
    util::ByteWriter w;
    w.putVarint(profileMagic);
    w.putVarint(profileVersion);
    w.putString(name);
    w.putString(device);
    config.encode(w);
    w.putVarint(leaves.size());

    for (const LeafModel &leaf : leaves) {
        w.putVarint(leaf.startTime);
        w.putVarint(leaf.startAddr);
        w.putVarint(leaf.addrLo);
        w.putVarint(leaf.addrHi);
        w.putVarint(leaf.count);
        encodeFeatureModel(w, leaf.deltaTime);
        encodeFeatureModel(w, leaf.stride);
        encodeFeatureModel(w, leaf.op);
        encodeFeatureModel(w, leaf.size);
    }
    return w.take();
}

std::vector<std::uint8_t>
Profile::encodeCompressed() const
{
    return util::compress(encode());
}

bool
Profile::decode(const std::vector<std::uint8_t> &bytes, Profile &profile)
{
    util::ByteReader r(bytes);
    if (r.getVarint() != profileMagic || r.getVarint() != profileVersion)
        return false;

    profile.name = r.getString();
    profile.device = r.getString();
    if (!PartitionConfig::decode(r, profile.config))
        return false;

    const std::uint64_t count = r.getVarint();
    // Each encoded leaf needs at least 9 bytes (5 varints + 4 tags);
    // larger claims are corrupt.
    if (!r.ok() || count > r.remaining() / 9 + 1)
        return false;

    profile.leaves.clear();
    profile.leaves.reserve(count);
    bool ok = true;
    for (std::uint64_t i = 0; i < count && ok && r.ok(); ++i) {
        LeafModel leaf;
        leaf.startTime = r.getVarint();
        leaf.startAddr = r.getVarint();
        leaf.addrLo = r.getVarint();
        leaf.addrHi = r.getVarint();
        leaf.count = r.getVarint();
        leaf.deltaTime = decodeFeatureModel(r, ok);
        leaf.stride = decodeFeatureModel(r, ok);
        leaf.op = decodeFeatureModel(r, ok);
        leaf.size = decodeFeatureModel(r, ok);
        profile.leaves.push_back(std::move(leaf));
    }
    return ok && r.ok();
}

bool
Profile::decodeCompressed(const std::vector<std::uint8_t> &bytes,
                          Profile &profile)
{
    std::vector<std::uint8_t> raw;
    return util::decompress(bytes, raw) && decode(raw, profile);
}

bool
saveProfile(const Profile &profile, const std::string &path)
{
    return util::saveBytes(path, profile.encodeCompressed());
}

bool
loadProfile(const std::string &path, Profile &profile)
{
    std::vector<std::uint8_t> bytes;
    return util::loadBytes(path, bytes) &&
           Profile::decodeCompressed(bytes, profile);
}

} // namespace mocktails::core
