#include "core/profile.hpp"

#include <array>

#include "util/compress.hpp"

namespace mocktails::core
{

namespace
{

constexpr std::uint64_t profileMagic = 0x4d4b5046; // "MKPF"
constexpr std::uint64_t profileVersion = 1;

std::array<FeatureModelDecoder, 256> &
decoderRegistry()
{
    static std::array<FeatureModelDecoder, 256> registry = [] {
        std::array<FeatureModelDecoder, 256> r{};
        r[ConstantModel::kTag] = &ConstantModel::decodePayload;
        r[MarkovModel::kTag] = &MarkovModel::decodePayload;
        return r;
    }();
    return registry;
}

} // namespace

void
registerFeatureModelDecoder(std::uint8_t tag, FeatureModelDecoder decoder)
{
    decoderRegistry()[tag] = decoder;
}

void
encodeFeatureModel(util::ByteWriter &writer, const FeatureModelPtr &model)
{
    if (!model) {
        writer.putByte(0);
        return;
    }
    writer.putByte(model->tag());
    model->encodePayload(writer);
}

FeatureModelPtr
decodeFeatureModel(util::ByteReader &reader, bool &ok)
{
    const std::uint8_t tag = reader.getByte();
    if (!reader.ok()) {
        ok = false;
        return nullptr;
    }
    if (tag == 0)
        return nullptr;

    const FeatureModelDecoder decoder = decoderRegistry()[tag];
    if (!decoder) {
        ok = false;
        return nullptr;
    }
    FeatureModelPtr model = decoder(reader);
    if (!model)
        ok = false;
    return model;
}

std::uint64_t
Profile::totalRequests() const
{
    std::uint64_t total = 0;
    for (const LeafModel &leaf : leaves)
        total += leaf.count;
    return total;
}

std::vector<std::uint8_t>
Profile::encode() const
{
    util::ByteWriter w;
    w.putVarint(profileMagic);
    w.putVarint(profileVersion);
    w.putString(name);
    w.putString(device);
    config.encode(w);
    w.putVarint(leaves.size());

    for (const LeafModel &leaf : leaves) {
        w.putVarint(leaf.startTime);
        w.putVarint(leaf.startAddr);
        w.putVarint(leaf.addrLo);
        w.putVarint(leaf.addrHi);
        w.putVarint(leaf.count);
        encodeFeatureModel(w, leaf.deltaTime);
        encodeFeatureModel(w, leaf.stride);
        encodeFeatureModel(w, leaf.op);
        encodeFeatureModel(w, leaf.size);
    }
    return w.take();
}

std::vector<std::uint8_t>
Profile::encodeCompressed() const
{
    return util::compress(encode());
}

namespace
{

/** "<what> at byte offset <pos> of <size>" into @p error (nullable). */
void
setDecodeError(std::string *error, const char *what,
               const util::ByteReader &reader, std::size_t total)
{
    if (error == nullptr)
        return;
    *error = std::string(what) + " at byte offset " +
             std::to_string(reader.position()) + " of " +
             std::to_string(total);
}

} // namespace

bool
Profile::decode(const std::vector<std::uint8_t> &bytes, Profile &profile,
                std::string *error)
{
    util::ByteReader r(bytes);
    if (r.getVarint() != profileMagic ||
        r.getVarint() != profileVersion) {
        setDecodeError(error, "bad profile magic/version", r,
                       bytes.size());
        return false;
    }

    profile.name = r.getString();
    profile.device = r.getString();
    if (!r.ok()) {
        setDecodeError(error, "truncated profile header", r,
                       bytes.size());
        return false;
    }
    if (!PartitionConfig::decode(r, profile.config)) {
        setDecodeError(error, "bad partition config", r, bytes.size());
        return false;
    }

    const std::uint64_t count = r.getVarint();
    // Each encoded leaf needs at least 9 bytes (5 varints + 4 tags);
    // larger claims are corrupt.
    if (!r.ok() || count > r.remaining() / 9 + 1) {
        setDecodeError(error, "implausible leaf count", r,
                       bytes.size());
        return false;
    }

    profile.leaves.clear();
    profile.leaves.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        LeafModel leaf;
        leaf.startTime = r.getVarint();
        leaf.startAddr = r.getVarint();
        leaf.addrLo = r.getVarint();
        leaf.addrHi = r.getVarint();
        leaf.count = r.getVarint();
        if (!r.ok()) {
            setDecodeError(error, "truncated leaf metadata", r,
                           bytes.size());
            return false;
        }
        bool ok = true;
        leaf.deltaTime = decodeFeatureModel(r, ok);
        leaf.stride = decodeFeatureModel(r, ok);
        leaf.op = decodeFeatureModel(r, ok);
        leaf.size = decodeFeatureModel(r, ok);
        if (!ok || !r.ok()) {
            setDecodeError(error, "bad feature model", r,
                           bytes.size());
            return false;
        }
        profile.leaves.push_back(std::move(leaf));
    }
    return true;
}

bool
Profile::decode(const std::vector<std::uint8_t> &bytes, Profile &profile)
{
    return decode(bytes, profile, nullptr);
}

bool
Profile::decodeCompressed(const std::vector<std::uint8_t> &bytes,
                          Profile &profile, std::string *error)
{
    std::vector<std::uint8_t> raw;
    if (!util::decompress(bytes, raw)) {
        if (error != nullptr)
            *error = "corrupt compression envelope (not a .mkp "
                     "profile?)";
        return false;
    }
    return decode(raw, profile, error);
}

bool
Profile::decodeCompressed(const std::vector<std::uint8_t> &bytes,
                          Profile &profile)
{
    return decodeCompressed(bytes, profile, nullptr);
}

bool
saveProfile(const Profile &profile, const std::string &path,
            std::string *error)
{
    return util::saveBytes(path, profile.encodeCompressed(), error);
}

bool
saveProfile(const Profile &profile, const std::string &path)
{
    return saveProfile(profile, path, nullptr);
}

bool
loadProfile(const std::string &path, Profile &profile,
            std::string *error)
{
    std::vector<std::uint8_t> bytes;
    if (!util::loadBytes(path, bytes, error))
        return false;
    if (!Profile::decodeCompressed(bytes, profile, error)) {
        if (error != nullptr)
            *error = path + ": " + *error;
        return false;
    }
    return true;
}

bool
loadProfile(const std::string &path, Profile &profile)
{
    return loadProfile(path, profile, nullptr);
}

} // namespace mocktails::core
