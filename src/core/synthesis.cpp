#include "core/synthesis.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace_event.hpp"
#include "telemetry/span.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::core
{

LeafSynthesizer::LeafSynthesizer(const LeafModel &leaf, util::Rng &rng)
    : leaf_(&leaf)
{
    if (leaf.deltaTime)
        delta_ = leaf.deltaTime->makeSampler(rng);
    if (leaf.stride)
        stride_ = leaf.stride->makeSampler(rng);
    if (leaf.op)
        op_ = leaf.op->makeSampler(rng);
    if (leaf.size)
        size_ = leaf.size->makeSampler(rng);
}

mem::Addr
LeafSynthesizer::wrapAddress(std::int64_t candidate, std::uint32_t size)
{
    const auto lo = static_cast<std::int64_t>(leaf_->addrLo);
    const auto hi = static_cast<std::int64_t>(leaf_->addrHi);

    // Highest start address whose byte range still fits the region.
    // Single-address leaves (addrLo == addrHi) and requests larger
    // than the whole region pin to the base — the old modulo-by-span
    // was UB for a zero span and let ranges spill past addrHi.
    const std::int64_t limit = hi - static_cast<std::int64_t>(size);
    if (limit <= lo) {
        if (candidate != lo)
            ++wraps_;
        return leaf_->addrLo;
    }

    if (candidate >= lo && candidate <= limit)
        return static_cast<mem::Addr>(candidate);

    // Modulo the address back into [addrLo, addrHi - size] to
    // preserve spatial locality (paper Sec. III-C) without the byte
    // range crossing the region's end.
    ++wraps_;
    const std::int64_t span = limit - lo + 1;
    std::int64_t rel = (candidate - lo) % span;
    if (rel < 0)
        rel += span;
    return static_cast<mem::Addr>(lo + rel);
}

bool
LeafSynthesizer::next(mem::Request &out)
{
    if (generated_ >= leaf_->count)
        return false;

    std::int64_t candidate;
    if (generated_ == 0) {
        time_ = leaf_->startTime;
        candidate = static_cast<std::int64_t>(leaf_->startAddr);
        last_delta_state_ = -1; // the first request has no delta
    } else {
        const std::int64_t dt = delta_ ? delta_->next() : 0;
        last_delta_state_ = delta_ ? delta_->lastState() : -1;
        time_ = static_cast<mem::Tick>(
            static_cast<std::int64_t>(time_) + dt);
        const std::int64_t stride = stride_ ? stride_->next() : 0;
        candidate = static_cast<std::int64_t>(addr_) + stride;
    }

    out.tick = time_;
    out.op = (op_ && op_->next() != 0) ? mem::Op::Write : mem::Op::Read;
    out.size = size_ ? static_cast<std::uint32_t>(size_->next()) : 1;
    // Wrapping is size-aware, so the size must be sampled before the
    // address is finalised (sampler draw order is unchanged: delta,
    // stride, op, size).
    addr_ = wrapAddress(candidate, out.size);
    out.addr = addr_;
    ++generated_;
    return true;
}

std::size_t
LeafSynthesizer::run(mem::RequestBatch &out)
{
    const std::uint64_t remaining = leaf_->count - generated_;
    out.reserve(out.size() + remaining);
    std::size_t made = 0;
    mem::Request request;
    while (next(request)) {
        out.push(request);
        ++made;
    }
    return made;
}

SynthesisEngine::SynthesisEngine(const Profile &profile,
                                 std::uint64_t seed,
                                 obs::ProvenanceTable *provenance)
    : rng_(seed), provenance_(provenance)
{
    const std::size_t n = profile.leaves.size();
    // Reserve up front: samplers keep references into leaf_rngs_, so
    // the vector must never reallocate after leaves_ are built.
    leaf_rngs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        leaf_rngs_.push_back(rng_.fork());

    leaves_.reserve(n);
    pending_.resize(n);
    if (provenance_) {
        pending_state_.assign(n, -1);
        provenance_->leaves().reserve(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
        leaves_.emplace_back(profile.leaves[i], leaf_rngs_[i]);
        total_ += profile.leaves[i].count;
        if (provenance_) {
            provenance_->leaves().push_back(describeLeaf(
                profile.leaves[i], static_cast<std::uint32_t>(i)));
        }
        if (leaves_.back().next(pending_[i])) {
            if (provenance_)
                pending_state_[i] = leaves_.back().lastDeltaState();
            heap_.push(HeapEntry{pending_[i].tick,
                                 static_cast<std::uint32_t>(i)});
        }
    }
    if (provenance_)
        provenance_->origins().reserve(total_);

    if (obs::TraceEventWriter *events = obs::collector()) {
        events->nameTrack(obs::track::kMerge, "synthesis merge");
        // Label the leaf tracks, capped so profiles with thousands of
        // leaves don't fill the metadata (unnamed tracks stay usable
        // through their numeric tid).
        const std::size_t named = std::min<std::size_t>(n, 256);
        for (std::size_t i = 0; i < named; ++i) {
            events->nameTrack(
                obs::track::kLeafBase + static_cast<std::uint32_t>(i),
                "leaf " + std::to_string(i));
        }
    }
}

std::uint64_t
SynthesisEngine::addressWraps() const
{
    std::uint64_t wraps = 0;
    for (const LeafSynthesizer &leaf : leaves_)
        wraps += leaf.addressWraps();
    return wraps;
}

bool
SynthesisEngine::next(mem::Request &out)
{
    if (heap_.empty())
        return false;

    const HeapEntry entry = heap_.top();
    heap_.pop();
    out = pending_[entry.leaf];
    ++generated_;

    if (provenance_) {
        provenance_->origins().push_back(obs::RequestOrigin{
            entry.leaf,
            static_cast<std::int32_t>(pending_state_[entry.leaf])});
    }
    if (obs::TraceEventWriter *trace = obs::collector()) {
        trace->instant("req", "synthesis", out.tick,
                       obs::track::kLeafBase + entry.leaf,
                       {{"leaf", entry.leaf},
                        {"op", out.isWrite() ? 1 : 0}});
    }

    if (leaves_[entry.leaf].next(pending_[entry.leaf])) {
        if (provenance_) {
            pending_state_[entry.leaf] =
                leaves_[entry.leaf].lastDeltaState();
        }
        heap_.push(
            HeapEntry{pending_[entry.leaf].tick, entry.leaf});
    }
    return true;
}

std::size_t
SynthesisEngine::nextBatch(std::vector<mem::Request> &out,
                           std::size_t max)
{
    std::size_t made = 0;
    mem::Request request;
    while (made < max && next(request)) {
        out.push_back(request);
        ++made;
    }
    return made;
}

std::size_t
SynthesisEngine::nextBatch(mem::RequestBatch &out, std::size_t max)
{
    std::size_t made = 0;
    mem::Request request;
    while (made < max && next(request)) {
        out.push(request);
        ++made;
    }
    return made;
}

LoopedSynthesis::LoopedSynthesis(const Profile &profile,
                                 std::uint64_t iterations,
                                 mem::Tick gap, std::uint64_t seed)
    : profile_(&profile), iterations_(iterations), gap_(gap),
      seed_(seed)
{
    if (iterations_ > 0)
        engine_ = std::make_unique<SynthesisEngine>(profile, seed_);
}

std::uint64_t
LoopedSynthesis::total() const
{
    return iterations_ * profile_->totalRequests();
}

bool
LoopedSynthesis::next(mem::Request &out)
{
    while (engine_) {
        if (engine_->next(out)) {
            out.tick += offset_;
            last_tick_ = out.tick;
            return true;
        }
        // This pass drained; start the next one (if any) after the
        // configured idle gap, with a derived seed.
        ++iteration_;
        if (iteration_ >= iterations_) {
            engine_.reset();
            break;
        }
        offset_ = last_tick_ + gap_;
        engine_ = std::make_unique<SynthesisEngine>(
            *profile_, seed_ + iteration_);
    }
    return false;
}

namespace
{

/** McC family of a fitted feature model (see obs::FeatureMode). */
obs::FeatureMode
modeOf(const FeatureModelPtr &model)
{
    if (!model)
        return obs::FeatureMode::Absent;
    switch (model->tag()) {
      case ConstantModel::kTag:
        return obs::FeatureMode::Constant;
      case MarkovModel::kTag:
        return obs::FeatureMode::Markov;
      default:
        return obs::FeatureMode::Other;
    }
}

} // namespace

obs::LeafProvenance
describeLeaf(const LeafModel &leaf, std::uint32_t index)
{
    obs::LeafProvenance out;
    out.path = "leaf" + std::to_string(index);
    out.count = leaf.count;
    out.addrLo = leaf.addrLo;
    out.addrHi = leaf.addrHi;
    out.deltaTime = modeOf(leaf.deltaTime);
    out.stride = modeOf(leaf.stride);
    out.op = modeOf(leaf.op);
    out.size = modeOf(leaf.size);
    return out;
}

namespace
{

/**
 * Telemetry for one completed synthesis run. The merge-depth
 * distribution is sampled every kMergeSampleStride emitted requests
 * (not per request) so the observable stays cheap on long traces.
 */
constexpr std::uint64_t kMergeSampleStride = 1024;

void
publishSynthesisRun(std::uint64_t requests, std::uint64_t wraps)
{
    auto &registry = telemetry::MetricsRegistry::global();
    registry.counter("synthesis.requests").add(requests);
    registry.counter("synthesis.address_wraps").add(wraps);
}

telemetry::FixedHistogram &
mergeDepthHistogram()
{
    return telemetry::MetricsRegistry::global().histogram(
        "synthesis.merge_depth",
        telemetry::FixedHistogram::exponentialEdges(1, 4096));
}

/** Head-of-leaf entry of the sharded k-way merge; same (tick, leaf)
 *  order as SynthesisEngine's heap. */
struct MergeEntry
{
    mem::Tick tick;
    std::uint32_t leaf;

    bool
    operator>(const MergeEntry &other) const
    {
        if (tick != other.tick)
            return tick > other.tick;
        return leaf > other.leaf;
    }
};

} // namespace

mem::Trace
synthesize(const Profile &profile, std::uint64_t seed, unsigned threads,
           obs::ProvenanceTable *provenance)
{
    const unsigned want =
        threads == 0 ? util::ThreadPool::defaultThreadCount() : threads;
    mem::Trace trace(profile.name + "-synth", profile.device);
    telemetry::Span span("synthesis.run");
    const bool collect = telemetry::enabled();
    if (provenance)
        provenance->clear();

    if (want <= 1 || profile.leaves.size() < 2) {
        SynthesisEngine engine(profile, seed, provenance);
        trace.requests().reserve(engine.total());
        mem::Request request;
        obs::TraceEventWriter *events = obs::collector();
        if (collect) {
            auto &depth = mergeDepthHistogram();
            while (engine.next(request)) {
                trace.add(request);
                if (engine.generated() % kMergeSampleStride == 1) {
                    depth.record(static_cast<std::int64_t>(
                        engine.heapDepth()));
                    if (events) {
                        events->counter(
                            "merge_depth", "synthesis", request.tick,
                            static_cast<std::int64_t>(
                                engine.heapDepth()),
                            obs::track::kMerge);
                    }
                }
            }
            publishSynthesisRun(engine.generated(),
                                engine.addressWraps());
        } else {
            while (engine.next(request)) {
                trace.add(request);
                if (events &&
                    engine.generated() % kMergeSampleStride == 1) {
                    events->counter(
                        "merge_depth", "synthesis", request.tick,
                        static_cast<std::int64_t>(engine.heapDepth()),
                        obs::track::kMerge);
                }
            }
        }
        return trace;
    }

    // Sharded path: fork the per-leaf RNG streams exactly as the
    // sequential engine does (one fork per leaf, in leaf order), then
    // generate whole per-leaf runs in parallel.
    const std::size_t n = profile.leaves.size();
    util::Rng root(seed);
    std::vector<util::Rng> rngs;
    rngs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        rngs.push_back(root.fork());

    // Per-leaf runs in SoA form: the merge below only compares the
    // tick column, so the heap refill reads 8 bytes per request
    // instead of striding over 24-byte structs.
    std::vector<mem::RequestBatch> runs(n);
    // Per-leaf wrap counts: each worker writes only its own slot, so
    // the parallel loop needs no shared counters and stays
    // deterministic; the slots are summed after the join.
    std::vector<std::uint64_t> wraps(n, 0);
    // Per-leaf delta-state provenance, recorded at generation time in
    // each worker and mapped to the merged order afterwards.
    std::vector<std::vector<std::int32_t>> states(
        provenance ? n : std::size_t{0});
    if (provenance) {
        provenance->leaves().reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            provenance->leaves().push_back(describeLeaf(
                profile.leaves[i], static_cast<std::uint32_t>(i)));
        }
    }
    util::parallelFor(
        n,
        [&](std::size_t i) {
            const LeafModel &leaf = profile.leaves[i];
            LeafSynthesizer synth(leaf, rngs[i]);
            mem::RequestBatch &run = runs[i];
            if (provenance) {
                auto &leaf_states = states[i];
                leaf_states.reserve(leaf.count);
                run.reserve(leaf.count);
                mem::Request request;
                while (synth.next(request)) {
                    run.push(request);
                    leaf_states.push_back(static_cast<std::int32_t>(
                        synth.lastDeltaState()));
                }
            } else {
                synth.run(run);
            }
            wraps[i] = synth.addressWraps();
        },
        want);

    // Deterministic k-way timestamp merge. Each leaf's run is already
    // in generation order, so merging the heads under the engine's
    // (tick, leaf) tie-break reproduces its output bit for bit.
    std::uint64_t total = 0;
    for (const auto &run : runs)
        total += run.size();
    trace.requests().reserve(total);

    std::priority_queue<MergeEntry, std::vector<MergeEntry>,
                        std::greater<MergeEntry>>
        heap;
    std::vector<std::size_t> pos(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (!runs[i].empty()) {
            heap.push(MergeEntry{runs[i].ticks.front(),
                                 static_cast<std::uint32_t>(i)});
        }
    }
    if (provenance)
        provenance->origins().reserve(total);
    telemetry::FixedHistogram *depth =
        collect ? &mergeDepthHistogram() : nullptr;
    obs::TraceEventWriter *events = obs::collector();
    if (events) {
        events->nameTrack(obs::track::kMerge, "synthesis merge");
        const std::size_t named = std::min<std::size_t>(n, 256);
        for (std::size_t i = 0; i < named; ++i) {
            events->nameTrack(
                obs::track::kLeafBase + static_cast<std::uint32_t>(i),
                "leaf " + std::to_string(i));
        }
    }
    std::uint64_t emitted = 0;
    while (!heap.empty()) {
        const MergeEntry entry = heap.top();
        heap.pop();
        const mem::RequestBatch &run = runs[entry.leaf];
        const std::size_t at = pos[entry.leaf];
        trace.add(run.ticks[at], run.addrs[at], run.sizes[at],
                  run.ops[at]);
        if (provenance) {
            provenance->origins().push_back(obs::RequestOrigin{
                entry.leaf, states[entry.leaf][at]});
        }
        if (events) {
            events->instant(
                "req", "synthesis", run.ticks[at],
                obs::track::kLeafBase + entry.leaf,
                {{"leaf", entry.leaf},
                 {"op", run.ops[at] == mem::Op::Write ? 1 : 0}});
        }
        ++emitted;
        if (emitted % kMergeSampleStride == 1) {
            if (depth)
                depth->record(
                    static_cast<std::int64_t>(heap.size() + 1));
            if (events) {
                events->counter(
                    "merge_depth", "synthesis", run.ticks[at],
                    static_cast<std::int64_t>(heap.size() + 1),
                    obs::track::kMerge);
            }
        }
        if (at + 1 < run.size()) {
            pos[entry.leaf] = at + 1;
            heap.push(MergeEntry{run.ticks[at + 1], entry.leaf});
        }
    }
    if (collect) {
        std::uint64_t total_wraps = 0;
        for (std::uint64_t w : wraps)
            total_wraps += w;
        publishSynthesisRun(trace.requests().size(), total_wraps);
    }
    return trace;
}

} // namespace mocktails::core
