#include "core/synthesis.hpp"

#include <cassert>

namespace mocktails::core
{

LeafSynthesizer::LeafSynthesizer(const LeafModel &leaf, util::Rng &rng)
    : leaf_(&leaf)
{
    if (leaf.deltaTime)
        delta_ = leaf.deltaTime->makeSampler(rng);
    if (leaf.stride)
        stride_ = leaf.stride->makeSampler(rng);
    if (leaf.op)
        op_ = leaf.op->makeSampler(rng);
    if (leaf.size)
        size_ = leaf.size->makeSampler(rng);
}

mem::Addr
LeafSynthesizer::wrapAddress(std::int64_t candidate) const
{
    const auto lo = static_cast<std::int64_t>(leaf_->addrLo);
    const auto hi = static_cast<std::int64_t>(leaf_->addrHi);
    const std::int64_t span = hi - lo;
    assert(span > 0);

    if (candidate >= lo && candidate < hi)
        return static_cast<mem::Addr>(candidate);

    // Modulo the address back into the leaf's memory region to
    // preserve spatial locality (paper Sec. III-C).
    std::int64_t rel = (candidate - lo) % span;
    if (rel < 0)
        rel += span;
    return static_cast<mem::Addr>(lo + rel);
}

bool
LeafSynthesizer::next(mem::Request &out)
{
    if (generated_ >= leaf_->count)
        return false;

    if (generated_ == 0) {
        time_ = leaf_->startTime;
        addr_ = leaf_->startAddr;
    } else {
        const std::int64_t dt = delta_ ? delta_->next() : 0;
        time_ = static_cast<mem::Tick>(
            static_cast<std::int64_t>(time_) + dt);
        const std::int64_t stride = stride_ ? stride_->next() : 0;
        addr_ = wrapAddress(static_cast<std::int64_t>(addr_) + stride);
    }

    out.tick = time_;
    out.addr = addr_;
    out.op = (op_ && op_->next() != 0) ? mem::Op::Write : mem::Op::Read;
    out.size = size_ ? static_cast<std::uint32_t>(size_->next()) : 1;
    ++generated_;
    return true;
}

SynthesisEngine::SynthesisEngine(const Profile &profile,
                                 std::uint64_t seed)
    : rng_(seed)
{
    const std::size_t n = profile.leaves.size();
    // Reserve up front: samplers keep references into leaf_rngs_, so
    // the vector must never reallocate after leaves_ are built.
    leaf_rngs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        leaf_rngs_.push_back(rng_.fork());

    leaves_.reserve(n);
    pending_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        leaves_.emplace_back(profile.leaves[i], leaf_rngs_[i]);
        total_ += profile.leaves[i].count;
        if (leaves_.back().next(pending_[i])) {
            heap_.push(HeapEntry{pending_[i].tick,
                                 static_cast<std::uint32_t>(i)});
        }
    }
}

bool
SynthesisEngine::next(mem::Request &out)
{
    if (heap_.empty())
        return false;

    const HeapEntry entry = heap_.top();
    heap_.pop();
    out = pending_[entry.leaf];
    ++generated_;

    if (leaves_[entry.leaf].next(pending_[entry.leaf])) {
        heap_.push(
            HeapEntry{pending_[entry.leaf].tick, entry.leaf});
    }
    return true;
}

LoopedSynthesis::LoopedSynthesis(const Profile &profile,
                                 std::uint64_t iterations,
                                 mem::Tick gap, std::uint64_t seed)
    : profile_(&profile), iterations_(iterations), gap_(gap),
      seed_(seed)
{
    if (iterations_ > 0)
        engine_ = std::make_unique<SynthesisEngine>(profile, seed_);
}

std::uint64_t
LoopedSynthesis::total() const
{
    return iterations_ * profile_->totalRequests();
}

bool
LoopedSynthesis::next(mem::Request &out)
{
    while (engine_) {
        if (engine_->next(out)) {
            out.tick += offset_;
            last_tick_ = out.tick;
            return true;
        }
        // This pass drained; start the next one (if any) after the
        // configured idle gap, with a derived seed.
        ++iteration_;
        if (iteration_ >= iterations_) {
            engine_.reset();
            break;
        }
        offset_ = last_tick_ + gap_;
        engine_ = std::make_unique<SynthesisEngine>(
            *profile_, seed_ + iteration_);
    }
    return false;
}

mem::Trace
synthesize(const Profile &profile, std::uint64_t seed)
{
    SynthesisEngine engine(profile, seed);
    mem::Trace trace(profile.name + "-synth", profile.device);
    trace.requests().reserve(engine.total());

    mem::Request request;
    while (engine.next(request))
        trace.add(request);
    return trace;
}

} // namespace mocktails::core
