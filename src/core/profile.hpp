/**
 * @file
 * The Mocktails statistical profile.
 *
 * A profile is the shareable artefact of the methodology (paper
 * Fig. 1): a collection of per-leaf models plus the metadata needed to
 * synthesise — start time, start address, address range and request
 * count per leaf (Sec. III-B). Profiles serialise to a compact binary
 * form and are compressed with the same codec as traces, enabling the
 * size comparison of Fig. 17.
 */

#ifndef MOCKTAILS_CORE_PROFILE_HPP
#define MOCKTAILS_CORE_PROFILE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/mcc.hpp"
#include "core/partition.hpp"
#include "mem/request.hpp"

namespace mocktails::core
{

/**
 * The model of one hierarchy leaf: four independent feature models
 * plus synthesis metadata.
 */
struct LeafModel
{
    /// Tick at which the leaf starts injecting.
    mem::Tick startTime = 0;

    /// Address of the leaf's first request.
    mem::Addr startAddr = 0;

    /// Synthesised addresses are wrapped into [addrLo, addrHi).
    mem::Addr addrLo = 0;
    mem::Addr addrHi = 0;

    /// Number of requests the leaf synthesises.
    std::uint64_t count = 0;

    /// Feature models. deltaTime/stride are null when count < 2.
    FeatureModelPtr deltaTime;
    FeatureModelPtr stride;
    FeatureModelPtr op;
    FeatureModelPtr size;
};

/**
 * A statistical profile: every leaf model of a partitioned trace.
 */
struct Profile
{
    std::string name;   ///< workload name (e.g. "HEVC1")
    std::string device; ///< device class (e.g. "VPU")
    PartitionConfig config;
    std::vector<LeafModel> leaves;

    /** Total requests synthesised by all leaves. */
    std::uint64_t totalRequests() const;

    /** Serialise to (uncompressed) bytes. */
    std::vector<std::uint8_t> encode() const;

    /** Serialise and compress — the distributable artefact. */
    std::vector<std::uint8_t> encodeCompressed() const;

    /**
     * Decode from encode() bytes. @return false on corrupt input.
     *
     * The @p error overloads fail loudly: on corrupt input @p error
     * (when non-null) receives a diagnostic naming what broke and the
     * byte offset it broke at (e.g. "bad feature model at byte offset
     * 117 of 204").
     */
    static bool decode(const std::vector<std::uint8_t> &bytes,
                       Profile &profile);
    static bool decode(const std::vector<std::uint8_t> &bytes,
                       Profile &profile, std::string *error);

    /** Decode from encodeCompressed() bytes. */
    static bool decodeCompressed(const std::vector<std::uint8_t> &bytes,
                                 Profile &profile);
    static bool decodeCompressed(const std::vector<std::uint8_t> &bytes,
                                 Profile &profile, std::string *error);
};

/**
 * Save a compressed profile to a file.
 *
 * The @p error overload reports failures with file and errno context
 * ("path: cannot open for writing (Permission denied)") instead of a
 * silent false — the same loud-error contract as loadTraceCsv.
 */
bool saveProfile(const Profile &profile, const std::string &path);
bool saveProfile(const Profile &profile, const std::string &path,
                 std::string *error);

/**
 * Load a compressed profile from a file.
 *
 * The @p error overload distinguishes I/O failures (errno context),
 * a corrupt compression envelope, and structural decode failures
 * (with the offending byte offset).
 */
bool loadProfile(const std::string &path, Profile &profile);
bool loadProfile(const std::string &path, Profile &profile,
                 std::string *error);

/**
 * Register a decoder for a custom FeatureModel tag (used by the STM
 * baseline). Core tags 1 (constant) and 2 (Markov) are pre-registered.
 */
using FeatureModelDecoder = FeatureModelPtr (*)(util::ByteReader &);
void registerFeatureModelDecoder(std::uint8_t tag,
                                 FeatureModelDecoder decoder);

/** Encode a nullable feature model (tag 0 = absent). */
void encodeFeatureModel(util::ByteWriter &writer,
                        const FeatureModelPtr &model);

/** Decode a nullable feature model. Sets @p ok false on failure. */
FeatureModelPtr decodeFeatureModel(util::ByteReader &reader, bool &ok);

} // namespace mocktails::core

#endif // MOCKTAILS_CORE_PROFILE_HPP
