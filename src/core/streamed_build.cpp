#include "core/streamed_build.hpp"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <queue>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include "telemetry/span.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::core
{

namespace
{

/// Streaming chunk defaults. An explicit chunkRequests is honoured
/// verbatim (tests use pathological sizes like 1); a derived chunk is
/// clamped so tiny memory bounds stay functional.
constexpr std::size_t kDefaultChunk = std::size_t(1) << 20;
constexpr std::size_t kMinDerivedChunk = 4096;

/// Transient bytes per in-flight request during the spill build: the
/// SoA batch, the spill record, the byte-range sort buffer and stdio
/// buffering, with headroom for the merge cursors.
constexpr std::uint64_t kBytesPerRequest = 64;

std::size_t
chunkFor(const StreamedBuildOptions &options)
{
    if (options.chunkRequests != 0)
        return options.chunkRequests;
    if (options.maxMemoryBytes != 0) {
        const std::uint64_t derived =
            options.maxMemoryBytes / kBytesPerRequest;
        return static_cast<std::size_t>(
            std::max<std::uint64_t>(kMinDerivedChunk, derived));
    }
    return kDefaultChunk;
}

std::string
errnoSuffix()
{
    return std::string(" (") + std::strerror(errno) + ")";
}

/**
 * On-disk request record, packed so a segment can be re-read with one
 * sequential fread pass. 24 bytes, no padding.
 */
struct SpillRecord
{
    std::uint64_t tick;
    std::uint64_t addr;
    std::uint32_t size;
    std::uint32_t op;
};
static_assert(sizeof(SpillRecord) == 24, "spill record must be packed");

/** One request's byte range with its segment-local time index. */
struct RangeRecord
{
    std::uint64_t lo;
    std::uint64_t hi;
    std::uint64_t index;
};
static_assert(sizeof(RangeRecord) == 24, "range record must be packed");

/// The Alg. 1 sweep order — mirrors partitionSpatialDynamic exactly.
bool
rangeLess(const RangeRecord &a, const RangeRecord &b)
{
    if (a.lo != b.lo)
        return a.lo < b.lo;
    if (a.hi != b.hi)
        return a.hi < b.hi;
    return a.index < b.index;
}

/**
 * The spill directory: caller-provided (created if missing, left in
 * place) or a fresh mkdtemp directory (removed on destruction). Spill
 * files themselves are always deleted.
 */
class SpillDir
{
  public:
    ~SpillDir()
    {
        for (const std::string &f : files_)
            std::remove(f.c_str());
        if (owns_ && !path_.empty())
            ::rmdir(path_.c_str());
    }

    bool
    init(const std::string &requested, std::string *error)
    {
        if (!requested.empty()) {
            if (::mkdir(requested.c_str(), 0700) != 0 &&
                errno != EEXIST) {
                if (error != nullptr) {
                    *error = requested +
                             ": cannot create spill directory" +
                             errnoSuffix();
                }
                return false;
            }
            path_ = requested;
            return true;
        }
        const char *tmp = std::getenv("TMPDIR");
        std::string templ = std::string(tmp != nullptr ? tmp : "/tmp") +
                            "/mocktails-spill-XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        if (::mkdtemp(buf.data()) == nullptr) {
            if (error != nullptr) {
                *error = templ + ": cannot create spill directory" +
                         errnoSuffix();
            }
            return false;
        }
        path_ = buf.data();
        owns_ = true;
        return true;
    }

    /** Register @p name for deletion and return its full path. */
    std::string
    file(const std::string &name)
    {
        files_.push_back(path_ + "/" + name);
        return files_.back();
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::vector<std::string> files_;
    bool owns_ = false;
};

/**
 * Buffered spill writer that fails loudly: a short write (disk full,
 * quota) poisons the writer and surfaces path + errno.
 */
class SpillWriter
{
  public:
    ~SpillWriter()
    {
        if (file_ != nullptr)
            std::fclose(file_);
    }

    bool
    open(const std::string &path)
    {
        path_ = path;
        file_ = std::fopen(path.c_str(), "wb");
        if (file_ == nullptr) {
            error_ = path + ": cannot create spill file" + errnoSuffix();
            return false;
        }
        return true;
    }

    bool
    write(const void *data, std::size_t bytes)
    {
        if (file_ == nullptr)
            return false;
        if (std::fwrite(data, 1, bytes, file_) != bytes) {
            error_ = path_ + ": spill write failed" + errnoSuffix() +
                     " — is the spill disk full?";
            std::fclose(file_);
            file_ = nullptr;
            return false;
        }
        return true;
    }

    bool
    close()
    {
        if (file_ == nullptr)
            return error_.empty();
        const int rc = std::fclose(file_);
        file_ = nullptr;
        if (rc != 0) {
            error_ = path_ + ": spill flush failed" + errnoSuffix();
            return false;
        }
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::string error_;
};

/**
 * Detects temporal leaf-segment boundaries in a time-ordered stream.
 *
 * One state per temporal layer, shallowest first. A request-count
 * layer rolls when its current part is full; a cycle-count layer rolls
 * when the request's window number differs from the part's current
 * window (windows are anchored at the part's first tick, matching
 * partitionByCycleCount on a time-ordered subset, where the minimum
 * tick is the first). Rolling any layer starts a new leaf segment and
 * resets every deeper layer, exactly like the recursive split.
 */
class TemporalRouter
{
  public:
    explicit TemporalRouter(const std::vector<PartitionLayer> &layers)
    {
        for (const PartitionLayer &layer : layers)
            states_.push_back({layer.kind, layer.value, 0, 0, 0});
    }

    /** @return true when @p tick starts a new segment (never for the
     *  very first request). */
    bool
    advance(mem::Tick tick)
    {
        if (first_) {
            first_ = false;
            for (State &s : states_) {
                s.count = 0;
                s.base = tick;
                s.window = 0;
            }
            account(tick);
            return false;
        }
        std::size_t roll = states_.size();
        for (std::size_t i = 0; i < states_.size(); ++i) {
            const State &s = states_[i];
            if (s.kind == PartitionLayer::Kind::TemporalRequestCount) {
                if (s.count == s.value) {
                    roll = i;
                    break;
                }
            } else if ((tick - s.base) / s.value != s.window) {
                roll = i;
                break;
            }
        }
        const bool boundary = roll < states_.size();
        // The rolled layer continues its own part sequence: a full
        // request-count part restarts its counter, and a cycle layer
        // keeps its window anchor (windows are fixed offsets from the
        // *parent* part's first tick, not from each window's first).
        // Layers deeper than the roll sit inside a brand-new parent
        // part and re-anchor at this tick.
        if (boundary &&
            states_[roll].kind ==
                PartitionLayer::Kind::TemporalRequestCount) {
            states_[roll].count = 0;
        }
        for (std::size_t i = roll + 1; i < states_.size(); ++i) {
            State &s = states_[i];
            s.count = 0;
            s.base = tick;
            s.window = 0;
        }
        account(tick);
        return boundary;
    }

  private:
    struct State
    {
        PartitionLayer::Kind kind;
        std::uint64_t value;
        std::uint64_t count;  ///< requests in the current part
        std::uint64_t base;   ///< first tick of the current parent part
        std::uint64_t window; ///< current cycle-window number
    };

    void
    account(mem::Tick tick)
    {
        for (State &s : states_) {
            if (s.kind == PartitionLayer::Kind::TemporalRequestCount)
                ++s.count;
            else
                s.window = (tick - s.base) / s.value;
        }
    }

    std::vector<State> states_;
    bool first_ = true;
};

/**
 * Fits one leaf incrementally: the streaming twin of modelLeaf() with
 * default McC hooks, fed one request at a time in leaf time order.
 */
class LeafBuilder
{
  public:
    void
    add(mem::Tick tick, mem::Addr addr, std::uint32_t size, mem::Op op)
    {
        const mem::Addr end = addr + size;
        if (count_ == 0) {
            start_tick_ = tick;
            start_addr_ = addr;
            min_lo_ = addr;
            max_hi_ = end;
        } else {
            delta_.add(static_cast<std::int64_t>(tick) -
                       static_cast<std::int64_t>(prev_tick_));
            stride_.add(static_cast<std::int64_t>(addr) -
                        static_cast<std::int64_t>(prev_addr_));
            min_lo_ = std::min(min_lo_, addr);
            max_hi_ = std::max(max_hi_, end);
        }
        op_.add(static_cast<std::int64_t>(op));
        size_.add(static_cast<std::int64_t>(size));
        prev_tick_ = tick;
        prev_addr_ = addr;
        ++count_;
    }

    std::uint64_t count() const { return count_; }

    /**
     * Finish the model. Spatial leaves pass their region bounds via
     * @p has_bounds; purely temporal leaves use the tracked min/max,
     * as buildLeaves does. Resets the builder.
     */
    LeafModel
    finish(bool has_bounds, mem::Addr lo, mem::Addr hi)
    {
        assert(count_ > 0);
        LeafModel model;
        model.startTime = start_tick_;
        model.startAddr = start_addr_;
        model.addrLo = has_bounds ? lo : min_lo_;
        model.addrHi = has_bounds ? hi : max_hi_;
        model.count = count_;
        model.deltaTime = delta_.finish();
        model.stride = stride_.finish();
        model.op = op_.finish();
        model.size = size_.finish();
        count_ = 0;
        return model;
    }

  private:
    McCBuilder delta_;
    McCBuilder stride_;
    McCBuilder op_;
    McCBuilder size_;
    mem::Tick start_tick_ = 0;
    mem::Addr start_addr_ = 0;
    mem::Tick prev_tick_ = 0;
    mem::Addr prev_addr_ = 0;
    mem::Addr min_lo_ = 0;
    mem::Addr max_hi_ = 0;
    std::uint64_t count_ = 0;
};

/** The optional trailing spatial layer of a streamable config. */
struct SpatialPlan
{
    bool present = false;
    PartitionLayer::Kind kind = PartitionLayer::Kind::SpatialDynamic;
    std::uint64_t blockSize = 0;
};

/**
 * Single-pass build: no spatial layer, or a trailing SpatialFixed
 * layer. Leaves of the current segment are fitted as requests arrive;
 * nothing is spilled.
 */
bool
buildSinglePass(mem::TraceReader &reader,
                const std::vector<PartitionLayer> &temporal,
                const SpatialPlan &spatial, std::size_t chunk,
                Profile &profile, std::string *error)
{
    struct FixedCell
    {
        LeafBuilder builder;
        mem::Addr maxEnd = 0;
    };

    TemporalRouter router(temporal);
    LeafBuilder flat;                   // used when !spatial.present
    std::map<mem::Addr, FixedCell> blocks; // used for SpatialFixed

    const auto closeSegment = [&]() {
        if (!spatial.present) {
            profile.leaves.push_back(flat.finish(false, 0, 0));
            return;
        }
        // partitionSpatialFixed: ascending block order; the block is
        // stretched past requests that span its upper boundary.
        for (auto &[block, cell] : blocks) {
            const mem::Addr lo = block * spatial.blockSize;
            const mem::Addr hi =
                std::max(lo + spatial.blockSize, cell.maxEnd);
            profile.leaves.push_back(cell.builder.finish(true, lo, hi));
        }
        blocks.clear();
    };

    mem::RequestBatch batch;
    mem::Tick prev_tick = 0;
    bool any = false;
    std::size_t got;
    while ((got = reader.read(batch, chunk)) > 0) {
        for (std::size_t i = 0; i < got; ++i) {
            const mem::Tick tick = batch.ticks[i];
            if (any && tick < prev_tick) {
                if (error != nullptr) {
                    *error = "trace is not time-ordered: tick " +
                             std::to_string(tick) + " after " +
                             std::to_string(prev_tick);
                }
                return false;
            }
            if (router.advance(tick))
                closeSegment();
            if (!spatial.present) {
                flat.add(tick, batch.addrs[i], batch.sizes[i],
                         batch.ops[i]);
            } else {
                FixedCell &cell =
                    blocks[batch.addrs[i] / spatial.blockSize];
                cell.builder.add(tick, batch.addrs[i], batch.sizes[i],
                                 batch.ops[i]);
                cell.maxEnd = std::max(
                    cell.maxEnd,
                    batch.addrs[i] + batch.sizes[i]);
            }
            prev_tick = tick;
            any = true;
        }
    }
    if (!reader.error().empty()) {
        if (error != nullptr)
            *error = reader.error();
        return false;
    }
    if (any)
        closeSegment();
    return true;
}

/// @name Two-pass build (trailing SpatialDynamic layer)
/// @{

/** Phase-1 product: one temporal segment's spill extents. */
struct SegmentMeta
{
    std::uint64_t count = 0;    ///< requests in the segment
    std::uint64_t begin = 0;    ///< first record in segments.dat
    std::size_t runBegin = 0;   ///< first sorted run (index into runs)
    std::size_t runEnd = 0;     ///< one past the last sorted run
};

/** One sorted run of RangeRecords inside ranges.dat. */
struct RunMeta
{
    std::uint64_t offset = 0; ///< first record
    std::uint64_t count = 0;
};

/** A merged (Alg. 1) region summary from the sweep. */
struct CoreRegion
{
    mem::Addr lo = 0;
    mem::Addr hi = 0;
    std::uint64_t count = 0;
    std::uint64_t firstIndex = 0; ///< first swept member (sort tiebreak)
};

/**
 * Buffered cursor over one sorted run. Cursors share the run file's
 * FILE* and reposition with fseek on refill, so merging k runs costs
 * k small buffers, not k file descriptors.
 */
class RunCursor
{
  public:
    RunCursor(std::FILE *file, const RunMeta &run, std::size_t cap)
        : file_(file), next_(run.offset), remaining_(run.count)
    {
        buf_.reserve(cap);
        cap_ = cap;
    }

    bool
    refill()
    {
        if (remaining_ == 0)
            return false;
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(cap_, remaining_));
        buf_.resize(n);
        if (std::fseek(file_,
                       static_cast<long>(next_ * sizeof(RangeRecord)),
                       SEEK_SET) != 0 ||
            std::fread(buf_.data(), sizeof(RangeRecord), n, file_) != n) {
            failed_ = true;
            return false;
        }
        next_ += n;
        remaining_ -= n;
        pos_ = 0;
        return true;
    }

    /** @return false at end of run (or on I/O failure; see failed()). */
    bool
    next(RangeRecord &out)
    {
        if (pos_ == buf_.size() && !refill())
            return false;
        out = buf_[pos_++];
        return true;
    }

    bool failed() const { return failed_; }

  private:
    std::FILE *file_;
    std::uint64_t next_;
    std::uint64_t remaining_;
    std::size_t cap_;
    std::vector<RangeRecord> buf_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/** A final leaf region of one segment, in leaf order after sorting. */
struct FinalRegion
{
    mem::Addr lo = 0;
    mem::Addr hi = 0;
    std::uint64_t front = 0; ///< indices.front() at sort time
    bool core = false;
    std::size_t aux = 0; ///< core ordinal or lonely-run ordinal
};

/**
 * Process one spilled segment: merge its sorted runs into the Alg. 1
 * sweep, replicate the lonely-region grouping, then re-read the
 * segment in time order and fit one LeafBuilder per region.
 */
bool
processSegment(const SegmentMeta &segment,
               const std::vector<RunMeta> &runs,
               const std::string &segPath, const std::string &runPath,
               std::size_t chunk, std::vector<LeafModel> &out,
               std::string &error)
{
    std::FILE *seg_f = std::fopen(segPath.c_str(), "rb");
    std::FILE *run_f = std::fopen(runPath.c_str(), "rb");
    if (seg_f == nullptr || run_f == nullptr) {
        error = "cannot reopen spill files in " + segPath;
        if (seg_f != nullptr)
            std::fclose(seg_f);
        if (run_f != nullptr)
            std::fclose(run_f);
        return false;
    }
    const std::size_t cap =
        std::max<std::size_t>(1, std::min<std::size_t>(chunk, 4096));

    // --- Merge the runs and sweep into regions (paper Alg. 1). ---
    std::vector<RunCursor> cursors;
    cursors.reserve(segment.runEnd - segment.runBegin);
    for (std::size_t r = segment.runBegin; r < segment.runEnd; ++r)
        cursors.emplace_back(run_f, runs[r], cap);

    struct HeapItem
    {
        RangeRecord record;
        std::size_t cursor;
    };
    const auto heapGreater = [](const HeapItem &a, const HeapItem &b) {
        return rangeLess(b.record, a.record);
    };
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        decltype(heapGreater)>
        heap(heapGreater);
    for (std::size_t c = 0; c < cursors.size(); ++c) {
        RangeRecord record;
        if (cursors[c].next(record))
            heap.push({record, c});
    }

    std::vector<CoreRegion> cores;
    std::vector<RangeRecord> lonely; // single-member regions, addr order
    CoreRegion open;
    bool has_open = false;
    const auto emit = [&]() {
        if (open.count == 1)
            lonely.push_back({open.lo, open.hi, open.firstIndex});
        else
            cores.push_back(open);
    };
    std::uint64_t merged = 0;
    while (!heap.empty()) {
        const HeapItem item = heap.top();
        heap.pop();
        const RangeRecord &r = item.record;
        ++merged;
        if (!has_open) {
            open = {r.lo, r.hi, 1, r.index};
            has_open = true;
        } else if (r.lo <= open.hi) {
            open.hi = std::max<mem::Addr>(open.hi, r.hi);
            ++open.count;
        } else {
            emit();
            open = {r.lo, r.hi, 1, r.index};
        }
        RangeRecord next;
        if (cursors[item.cursor].next(next))
            heap.push({next, item.cursor});
    }
    if (has_open)
        emit();
    for (const RunCursor &cursor : cursors) {
        if (cursor.failed()) {
            error = runPath + ": spill read failed during merge";
            std::fclose(seg_f);
            std::fclose(run_f);
            return false;
        }
    }
    if (merged != segment.count) {
        error = runPath + ": spill is truncated (merged " +
                std::to_string(merged) + " of " +
                std::to_string(segment.count) + " ranges)";
        std::fclose(seg_f);
        std::fclose(run_f);
        return false;
    }

    // --- Group lonely regions (mergeLonelyRegions, summarised). ---
    // Maximal runs of equal address spacing become shared partitions;
    // a trailing unpaired request forms its own. Spans are consecutive
    // in the (address-ordered) lonely list.
    std::vector<FinalRegion> regions;
    regions.reserve(cores.size() + lonely.size() / 2 + 1);
    for (std::size_t c = 0; c < cores.size(); ++c) {
        regions.push_back(
            {cores[c].lo, cores[c].hi, cores[c].firstIndex, true, c});
    }
    std::vector<std::size_t> lonelySpan; // span start per lonely run
    {
        std::size_t i = 0;
        while (i < lonely.size()) {
            std::size_t j;
            if (i + 1 >= lonely.size()) {
                j = i; // trailing leftover: a run of one
            } else {
                const std::int64_t stride =
                    static_cast<std::int64_t>(lonely[i + 1].lo) -
                    static_cast<std::int64_t>(lonely[i].lo);
                j = i + 1;
                while (j + 1 < lonely.size() &&
                       static_cast<std::int64_t>(lonely[j + 1].lo) -
                               static_cast<std::int64_t>(lonely[j].lo) ==
                           stride) {
                    ++j;
                }
            }
            FinalRegion region;
            region.lo = lonely[i].lo; // members ascend by address
            region.hi = lonely[i].hi;
            region.front = lonely[i].index;
            region.core = false;
            region.aux = lonelySpan.size();
            for (std::size_t k = i; k <= j; ++k) {
                region.hi = std::max<mem::Addr>(region.hi, lonely[k].hi);
                region.front = std::min(region.front, lonely[k].index);
            }
            regions.push_back(region);
            lonelySpan.push_back(i);
            i = j + 1;
        }
        lonelySpan.push_back(lonely.size()); // end sentinel
    }

    // Deterministic leaf order: by start address, then first member.
    std::sort(regions.begin(), regions.end(),
              [](const FinalRegion &a, const FinalRegion &b) {
                  return a.lo != b.lo ? a.lo < b.lo : a.front < b.front;
              });

    // --- Routing tables for the time-order pass. ---
    // Core regions are disjoint, non-touching intervals: route by
    // binary search on the start address. Everything else is a lonely
    // request whose (unique) address locates it in the lonely list;
    // its span locates the run region.
    struct CoreLookup
    {
        mem::Addr lo;
        mem::Addr hi;
        std::uint32_t ordinal;
    };
    std::vector<CoreLookup> coreLookup;
    coreLookup.reserve(cores.size());
    std::vector<std::uint32_t> runOrdinal(
        lonelySpan.empty() ? 0 : lonelySpan.size() - 1);
    for (std::size_t o = 0; o < regions.size(); ++o) {
        if (regions[o].core) {
            coreLookup.push_back({regions[o].lo, regions[o].hi,
                                  static_cast<std::uint32_t>(o)});
        } else {
            runOrdinal[regions[o].aux] = static_cast<std::uint32_t>(o);
        }
    }
    std::vector<std::uint32_t> lonelyOrdinal(lonely.size());
    for (std::size_t run = 0; run + 1 < lonelySpan.size(); ++run) {
        for (std::size_t k = lonelySpan[run]; k < lonelySpan[run + 1];
             ++k) {
            lonelyOrdinal[k] = runOrdinal[run];
        }
    }

    const auto route = [&](mem::Addr addr,
                           std::uint32_t &ordinal) -> bool {
        auto it = std::upper_bound(
            coreLookup.begin(), coreLookup.end(), addr,
            [](mem::Addr a, const CoreLookup &c) { return a < c.lo; });
        if (it != coreLookup.begin()) {
            const CoreLookup &c = *(it - 1);
            if (addr <= c.hi) {
                ordinal = c.ordinal;
                return true;
            }
        }
        auto lo_it = std::lower_bound(
            lonely.begin(), lonely.end(), addr,
            [](const RangeRecord &r, mem::Addr a) { return r.lo < a; });
        if (lo_it == lonely.end() || lo_it->lo != addr)
            return false;
        ordinal = lonelyOrdinal[static_cast<std::size_t>(
            lo_it - lonely.begin())];
        return true;
    };

    // --- Re-read the segment in time order and fit the leaves. ---
    std::vector<LeafBuilder> builders(regions.size());
    if (std::fseek(seg_f,
                   static_cast<long>(segment.begin *
                                     sizeof(SpillRecord)),
                   SEEK_SET) != 0) {
        error = segPath + ": spill seek failed";
        std::fclose(seg_f);
        std::fclose(run_f);
        return false;
    }
    std::vector<SpillRecord> records(cap);
    std::uint64_t left = segment.count;
    while (left > 0) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(cap, left));
        if (std::fread(records.data(), sizeof(SpillRecord), n, seg_f) !=
            n) {
            error = segPath + ": spill read failed";
            std::fclose(seg_f);
            std::fclose(run_f);
            return false;
        }
        for (std::size_t i = 0; i < n; ++i) {
            std::uint32_t ordinal = 0;
            if (!route(records[i].addr, ordinal)) {
                error = segPath +
                        ": spill is inconsistent (unroutable address)";
                std::fclose(seg_f);
                std::fclose(run_f);
                return false;
            }
            builders[ordinal].add(records[i].tick, records[i].addr,
                                  records[i].size,
                                  static_cast<mem::Op>(records[i].op));
        }
        left -= n;
    }
    std::fclose(seg_f);
    std::fclose(run_f);

    out.reserve(regions.size());
    for (std::size_t o = 0; o < regions.size(); ++o)
        out.push_back(
            builders[o].finish(true, regions[o].lo, regions[o].hi));
    return true;
}

/**
 * Two-pass build for a trailing SpatialDynamic layer. Phase 1 streams
 * the trace once, spilling each segment's requests (time order) and
 * chunk-sorted byte-range runs; phase 2 fans the segments out across
 * workers, each merging, sweeping and fitting independently. Results
 * land in per-segment slots, so the leaf order — and the encoded
 * profile — is identical at every thread count.
 */
bool
buildTwoPass(mem::TraceReader &reader,
             const std::vector<PartitionLayer> &temporal,
             const StreamedBuildOptions &options, std::size_t chunk,
             Profile &profile, std::string *error)
{
    SpillDir dir;
    if (!dir.init(options.spillDir, error))
        return false;
    const std::string segPath = dir.file("segments.dat");
    const std::string runPath = dir.file("ranges.dat");
    SpillWriter seg_w, run_w;
    if (!seg_w.open(segPath) || !run_w.open(runPath)) {
        if (error != nullptr) {
            *error = !seg_w.error().empty() ? seg_w.error()
                                            : run_w.error();
        }
        return false;
    }

    std::vector<SegmentMeta> segments;
    std::vector<RunMeta> runs;
    std::vector<SpillRecord> rec_buf;
    std::vector<RangeRecord> range_buf;
    rec_buf.reserve(std::min<std::size_t>(chunk, 1 << 16));
    range_buf.reserve(std::min<std::size_t>(chunk, 1 << 16));
    std::uint64_t rec_written = 0;
    std::uint64_t range_written = 0;
    std::uint64_t local_index = 0;

    const auto fail = [&](const std::string &message) {
        if (error != nullptr)
            *error = message;
        return false;
    };
    const auto flushRecords = [&]() {
        if (rec_buf.empty())
            return true;
        if (!seg_w.write(rec_buf.data(),
                         rec_buf.size() * sizeof(SpillRecord)))
            return false;
        rec_written += rec_buf.size();
        rec_buf.clear();
        return true;
    };
    const auto flushRun = [&]() {
        if (range_buf.empty())
            return true;
        std::sort(range_buf.begin(), range_buf.end(), rangeLess);
        if (!run_w.write(range_buf.data(),
                         range_buf.size() * sizeof(RangeRecord)))
            return false;
        runs.push_back({range_written, range_buf.size()});
        range_written += range_buf.size();
        range_buf.clear();
        return true;
    };
    const auto closeSegment = [&]() {
        if (!flushRun())
            return false;
        segments.back().count = local_index;
        segments.back().runEnd = runs.size();
        return true;
    };
    const auto openSegment = [&]() {
        SegmentMeta meta;
        meta.begin = rec_written + rec_buf.size();
        meta.runBegin = runs.size();
        segments.push_back(meta);
        local_index = 0;
    };

    TemporalRouter router(temporal);
    mem::RequestBatch batch;
    mem::Tick prev_tick = 0;
    bool any = false;
    std::size_t got;
    while ((got = reader.read(batch, chunk)) > 0) {
        for (std::size_t i = 0; i < got; ++i) {
            const mem::Tick tick = batch.ticks[i];
            if (any && tick < prev_tick) {
                return fail("trace is not time-ordered: tick " +
                            std::to_string(tick) + " after " +
                            std::to_string(prev_tick));
            }
            const bool boundary = router.advance(tick);
            if (!any) {
                openSegment();
            } else if (boundary) {
                if (!closeSegment())
                    return fail(run_w.error());
                openSegment();
            }
            const mem::Addr addr = batch.addrs[i];
            const std::uint32_t size = batch.sizes[i];
            rec_buf.push_back(
                {tick, addr, size,
                 static_cast<std::uint32_t>(batch.ops[i])});
            if (rec_buf.size() == chunk && !flushRecords())
                return fail(seg_w.error());
            range_buf.push_back({addr, addr + size, local_index});
            if (range_buf.size() == chunk && !flushRun())
                return fail(run_w.error());
            ++local_index;
            prev_tick = tick;
            any = true;
        }
    }
    if (!reader.error().empty())
        return fail(reader.error());
    if (any) {
        if (!flushRecords())
            return fail(seg_w.error());
        if (!closeSegment())
            return fail(run_w.error());
    }
    if (!seg_w.close())
        return fail(seg_w.error());
    if (!run_w.close())
        return fail(run_w.error());

    // Phase 2: segments are independent; each worker re-reads its own
    // slices of the spill through private file handles.
    std::vector<std::vector<LeafModel>> seg_leaves(segments.size());
    std::vector<std::string> seg_errors(segments.size());
    util::parallelFor(
        segments.size(),
        [&](std::size_t s) {
            processSegment(segments[s], runs, segPath, runPath, chunk,
                           seg_leaves[s], seg_errors[s]);
        },
        options.threads);
    for (const std::string &message : seg_errors) {
        if (!message.empty())
            return fail(message);
    }

    std::size_t total = 0;
    for (const auto &leaves : seg_leaves)
        total += leaves.size();
    profile.leaves.reserve(total);
    for (auto &leaves : seg_leaves) {
        for (LeafModel &leaf : leaves)
            profile.leaves.push_back(std::move(leaf));
    }
    return true;
}

/// @}

} // namespace

bool
canStreamConfig(const PartitionConfig &config)
{
    bool seen_spatial = false;
    for (const PartitionLayer &layer : config.layers) {
        if (seen_spatial)
            return false; // nothing may follow the spatial layer
        if (layer.isSpatial()) {
            if (layer.kind == PartitionLayer::Kind::SpatialFixed &&
                layer.value == 0)
                return false;
            seen_spatial = true;
        } else if (layer.value == 0) {
            return false; // in-memory partitioners assert on this too
        }
    }
    return true;
}

Profile
buildProfileStreamed(mem::TraceReader &reader,
                     const PartitionConfig &config,
                     const StreamedBuildOptions &options,
                     std::string *error)
{
    telemetry::Span span("profile.build_streamed");

    Profile profile;
    if (!canStreamConfig(config)) {
        if (error != nullptr) {
            *error = "configuration is not streamable: " +
                     config.describe();
        }
        return Profile{};
    }

    profile.name = reader.name();
    profile.device = reader.device();
    profile.config = config;

    std::vector<PartitionLayer> temporal;
    SpatialPlan spatial;
    for (const PartitionLayer &layer : config.layers) {
        if (layer.isSpatial()) {
            spatial.present = true;
            spatial.kind = layer.kind;
            spatial.blockSize = layer.value;
        } else {
            temporal.push_back(layer);
        }
    }

    const std::size_t chunk = std::max<std::size_t>(1, chunkFor(options));
    bool ok;
    if (spatial.present &&
        spatial.kind == PartitionLayer::Kind::SpatialDynamic) {
        ok = buildTwoPass(reader, temporal, options, chunk, profile,
                          error);
    } else {
        ok = buildSinglePass(reader, temporal, spatial, chunk, profile,
                             error);
    }
    return ok ? std::move(profile) : Profile{};
}

} // namespace mocktails::core
