/**
 * @file
 * Feature models: the McC (Markov chain or Constant) scheme.
 *
 * Every leaf in the Mocktails hierarchy models its four request
 * features — delta time, stride, operation, size — independently
 * (paper Sec. III-B). A feature with no variability inside the leaf is
 * stored as a single constant; anything else becomes a Markov chain
 * sampled under strict convergence. The FeatureModel interface also
 * lets alternative leaf models (e.g. the STM baseline) be swapped in
 * for individual features, as the paper does in Sec. IV.
 */

#ifndef MOCKTAILS_CORE_MCC_HPP
#define MOCKTAILS_CORE_MCC_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/markov.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace mocktails::core
{

/**
 * A stateful generator for one feature of one leaf.
 */
class FeatureSampler
{
  public:
    virtual ~FeatureSampler() = default;

    /** Produce the next feature value. */
    virtual std::int64_t next() = 0;

    /**
     * Provenance: the Markov state index that emitted the last
     * next() value, or -1 for stateless samplers (constant, custom).
     */
    virtual std::int64_t lastState() const { return -1; }
};

/**
 * An immutable statistical model of one feature of one leaf.
 */
class FeatureModel
{
  public:
    virtual ~FeatureModel() = default;

    /** Length of the training sequence the model reproduces. */
    virtual std::uint64_t sequenceLength() const = 0;

    /** Create a fresh sampler; @p rng must outlive it. */
    virtual std::unique_ptr<FeatureSampler>
    makeSampler(util::Rng &rng) const = 0;

    /** Wire-format tag (see profile.hpp for the registry). */
    virtual std::uint8_t tag() const = 0;

    /** Serialise the model body (everything after the tag). */
    virtual void encodePayload(util::ByteWriter &writer) const = 0;
};

using FeatureModelPtr = std::unique_ptr<FeatureModel>;

/**
 * A feature that never varies within the leaf.
 */
class ConstantModel : public FeatureModel
{
  public:
    static constexpr std::uint8_t kTag = 1;

    ConstantModel(std::int64_t value, std::uint64_t length)
        : value_(value), length_(length)
    {}

    std::int64_t value() const { return value_; }

    std::uint64_t sequenceLength() const override { return length_; }
    std::unique_ptr<FeatureSampler>
    makeSampler(util::Rng &rng) const override;
    std::uint8_t tag() const override { return kTag; }
    void encodePayload(util::ByteWriter &writer) const override;

    static FeatureModelPtr decodePayload(util::ByteReader &reader);

  private:
    std::int64_t value_;
    std::uint64_t length_;
};

/**
 * A feature modelled by a first-order Markov chain with strict
 * convergence.
 */
class MarkovModel : public FeatureModel
{
  public:
    static constexpr std::uint8_t kTag = 2;

    explicit MarkovModel(MarkovChain chain) : chain_(std::move(chain)) {}

    const MarkovChain &chain() const { return chain_; }

    std::uint64_t sequenceLength() const override
    {
        return chain_.sequenceLength();
    }
    std::unique_ptr<FeatureSampler>
    makeSampler(util::Rng &rng) const override;
    std::uint8_t tag() const override { return kTag; }
    void encodePayload(util::ByteWriter &writer) const override;

    static FeatureModelPtr decodePayload(util::ByteReader &reader);

  private:
    MarkovChain chain_;
};

/**
 * Build a McC model for a value sequence: Constant when every value is
 * identical, a Markov chain otherwise. Returns nullptr for an empty
 * sequence (e.g. the delta/stride features of a single-request leaf).
 */
FeatureModelPtr buildMcc(const std::vector<std::int64_t> &values);

/**
 * Incremental McC fitting: feed values one at a time, get the same
 * model buildMcc would produce for the full sequence (buildMcc is in
 * fact implemented on top of this builder, so the equivalence holds by
 * construction). The out-of-core profile build uses this to fit leaves
 * from a stream without ever materialising the value vectors.
 *
 * The builder stays in the cheap constant regime until a second
 * distinct value arrives; only then does it start a MarkovChainBuilder
 * and replay the constant prefix into it.
 */
class McCBuilder
{
  public:
    /** Append the next value of the sequence. */
    void add(std::int64_t value);

    /** Number of values fed so far. */
    std::uint64_t length() const { return count_; }

    /**
     * Finish the model: nullptr when no values were fed, Constant when
     * all were equal, Markov otherwise. Resets the builder for reuse.
     */
    FeatureModelPtr finish();

  private:
    MarkovChainBuilder chain_;
    std::int64_t first_ = 0;
    std::uint64_t count_ = 0;
    bool constant_ = true;
};

} // namespace mocktails::core

#endif // MOCKTAILS_CORE_MCC_HPP
