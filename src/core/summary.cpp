#include "core/summary.hpp"

namespace mocktails::core
{

namespace
{

void
census(const FeatureModelPtr &model, FeatureCensus &out)
{
    if (!model) {
        ++out.absent;
        return;
    }
    switch (model->tag()) {
      case ConstantModel::kTag:
        ++out.constant;
        break;
      case MarkovModel::kTag:
        ++out.markov;
        out.markovStates +=
            static_cast<const MarkovModel &>(*model).chain().numStates();
        break;
      default:
        ++out.other;
        break;
    }
}

} // namespace

double
ProfileSummary::constantFraction() const
{
    const std::uint64_t constants = deltaTime.constant +
                                    stride.constant + op.constant +
                                    size.constant;
    const std::uint64_t total =
        constants + deltaTime.markov + stride.markov + op.markov +
        size.markov + deltaTime.other + stride.other + op.other +
        size.other;
    return total == 0 ? 0.0
                      : static_cast<double>(constants) /
                            static_cast<double>(total);
}

ProfileSummary
summarize(const Profile &profile)
{
    ProfileSummary summary;
    summary.leaves = profile.leaves.size();
    summary.requests = profile.totalRequests();
    summary.compressedBytes = profile.encodeCompressed().size();

    for (const LeafModel &leaf : profile.leaves) {
        if (leaf.count == 1)
            ++summary.singletonLeaves;
        census(leaf.deltaTime, summary.deltaTime);
        census(leaf.stride, summary.stride);
        census(leaf.op, summary.op);
        census(leaf.size, summary.size);
    }
    return summary;
}

} // namespace mocktails::core
