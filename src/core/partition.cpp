#include "core/partition.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "telemetry/metrics.hpp"

namespace mocktails::core
{

std::string
pathString(const std::vector<std::uint32_t> &path)
{
    if (path.empty())
        return "root";
    std::string out;
    for (const std::uint32_t component : path) {
        if (!out.empty())
            out += '/';
        out += std::to_string(component);
    }
    return out;
}

std::string
PartitionLayer::describe() const
{
    switch (kind) {
      case Kind::TemporalRequestCount:
        return "temporal(request_count=" + std::to_string(value) + ")";
      case Kind::TemporalCycleCount:
        return "temporal(cycle_count=" + std::to_string(value) + ")";
      case Kind::SpatialFixed:
        return "spatial(fixed=" + std::to_string(value) + "B)";
      case Kind::SpatialDynamic:
        return "spatial(dynamic)";
    }
    return "unknown";
}

PartitionConfig
PartitionConfig::twoLevelTs(std::uint64_t cycles)
{
    return PartitionConfig{
        {{PartitionLayer::Kind::TemporalCycleCount, cycles},
         {PartitionLayer::Kind::SpatialDynamic, 0}}};
}

PartitionConfig
PartitionConfig::twoLevelTsByRequests(std::uint64_t requests)
{
    return PartitionConfig{
        {{PartitionLayer::Kind::TemporalRequestCount, requests},
         {PartitionLayer::Kind::SpatialDynamic, 0}}};
}

PartitionConfig
PartitionConfig::twoLevelTsFixed(std::uint64_t requests,
                                 std::uint64_t block_size)
{
    return PartitionConfig{
        {{PartitionLayer::Kind::TemporalRequestCount, requests},
         {PartitionLayer::Kind::SpatialFixed, block_size}}};
}

std::string
PartitionConfig::describe() const
{
    std::string out;
    for (const auto &layer : layers) {
        if (!out.empty())
            out += " -> ";
        out += layer.describe();
    }
    return out.empty() ? "flat" : out;
}

void
PartitionConfig::encode(util::ByteWriter &writer) const
{
    writer.putVarint(layers.size());
    for (const auto &layer : layers) {
        writer.putByte(static_cast<std::uint8_t>(layer.kind));
        writer.putVarint(layer.value);
    }
}

bool
PartitionConfig::decode(util::ByteReader &reader, PartitionConfig &config)
{
    const std::uint64_t n = reader.getVarint();
    if (!reader.ok() || n > 16)
        return false;
    config.layers.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint8_t kind = reader.getByte();
        const std::uint64_t value = reader.getVarint();
        if (kind > 3)
            return false;
        config.layers.push_back(
            {static_cast<PartitionLayer::Kind>(kind), value});
    }
    return reader.ok();
}

std::vector<IndexList>
partitionByRequestCount(const IndexList &indices,
                        std::uint64_t per_interval)
{
    assert(per_interval > 0);
    std::vector<IndexList> out;
    for (std::size_t start = 0; start < indices.size();
         start += per_interval) {
        const std::size_t end =
            std::min(indices.size(),
                     start + static_cast<std::size_t>(per_interval));
        out.emplace_back(indices.begin() +
                             static_cast<std::ptrdiff_t>(start),
                         indices.begin() +
                             static_cast<std::ptrdiff_t>(end));
    }
    return out;
}

std::vector<IndexList>
partitionByCycleCount(const mem::Trace &trace, const IndexList &indices,
                      std::uint64_t cycles)
{
    assert(cycles > 0);
    std::vector<IndexList> out;
    if (indices.empty())
        return out;

    // The subset is not guaranteed to arrive tick-sorted — a spatial
    // layer above this one hands down address-ordered subsets — so
    // anchor the windows at the earliest tick and bin by window
    // number instead of cutting wherever the window value changes.
    mem::Tick base = trace[indices.front()].tick;
    for (const std::uint32_t idx : indices)
        base = std::min(base, trace[idx].tick);

    // Empty windows produce no partitions; the map emits the rest in
    // ascending window order.
    std::map<std::uint64_t, IndexList> windows;
    for (const std::uint32_t idx : indices)
        windows[(trace[idx].tick - base) / cycles].push_back(idx);

    out.reserve(windows.size());
    for (auto &[window, members] : windows) {
        // Restore time order inside the window regardless of the
        // arrival order (index order == time order for a time-ordered
        // trace).
        std::sort(members.begin(), members.end());
        out.push_back(std::move(members));
    }
    return out;
}

std::vector<SpatialRegion>
partitionSpatialFixed(const mem::Trace &trace, const IndexList &indices,
                      std::uint64_t block_size)
{
    assert(block_size > 0);
    std::map<mem::Addr, IndexList> blocks;
    for (const std::uint32_t idx : indices)
        blocks[trace[idx].addr / block_size].push_back(idx);

    std::vector<SpatialRegion> out;
    out.reserve(blocks.size());
    for (auto &[block, members] : blocks) {
        SpatialRegion region;
        region.lo = block * block_size;
        region.hi = region.lo + block_size;
        // Requests are assigned by start address (as in HALO); one
        // that spans the block boundary stretches the region so every
        // member's byte range stays inside it.
        for (const std::uint32_t idx : members)
            region.hi = std::max(region.hi, trace[idx].end());
        region.indices = std::move(members);
        out.push_back(std::move(region));
    }
    return out;
}

namespace
{

/** One request's byte range, used by the Alg. 1 sweep. */
struct ByteRange
{
    mem::Addr lo;
    mem::Addr hi;
    std::uint32_t index;
};

/** Group the lonely (single-request) regions per paper Sec. III-A. */
void
mergeLonelyRegions(const mem::Trace &trace,
                   std::vector<SpatialRegion> &regions)
{
    std::vector<SpatialRegion> keep;
    std::vector<std::uint32_t> lonely; // request indices, addr order
    for (auto &region : regions) {
        if (region.indices.size() == 1)
            lonely.push_back(region.indices.front());
        else
            keep.push_back(std::move(region));
    }
    regions = std::move(keep);
    if (telemetry::enabled()) {
        telemetry::MetricsRegistry::global()
            .counter("partition.lonely_requests")
            .add(lonely.size());
    }
    if (lonely.empty())
        return;

    // Lonely regions were produced in ascending address order, so the
    // lonely list is already sorted by address. Group maximal runs of
    // equal address spacing ("the same stride between them"); whatever
    // does not form a run merges into one shared partition.
    std::vector<std::vector<std::uint32_t>> runs;
    std::vector<std::uint32_t> leftovers;

    std::size_t i = 0;
    while (i < lonely.size()) {
        if (i + 1 >= lonely.size()) {
            leftovers.push_back(lonely[i]);
            break;
        }
        const std::int64_t stride =
            static_cast<std::int64_t>(trace[lonely[i + 1]].addr) -
            static_cast<std::int64_t>(trace[lonely[i]].addr);
        std::size_t j = i + 1;
        while (j + 1 < lonely.size() &&
               static_cast<std::int64_t>(trace[lonely[j + 1]].addr) -
                       static_cast<std::int64_t>(trace[lonely[j]].addr) ==
                   stride) {
            ++j;
        }
        // Run of >= 2 equally spaced lonely requests becomes one
        // partition.
        runs.emplace_back(lonely.begin() + static_cast<std::ptrdiff_t>(i),
                          lonely.begin() +
                              static_cast<std::ptrdiff_t>(j + 1));
        i = j + 1;
    }

    if (!leftovers.empty())
        runs.push_back(std::move(leftovers));

    if (telemetry::enabled()) {
        telemetry::MetricsRegistry::global()
            .counter("partition.lonely_merges")
            .add(runs.size());
    }

    for (auto &run : runs) {
        SpatialRegion region;
        region.lo = trace[run.front()].addr;
        region.hi = trace[run.front()].end();
        for (const std::uint32_t idx : run) {
            region.lo = std::min(region.lo, trace[idx].addr);
            region.hi = std::max(region.hi, trace[idx].end());
        }
        std::sort(run.begin(), run.end());
        region.indices = std::move(run);
        regions.push_back(std::move(region));
    }

    // Keep a deterministic region order (by start address).
    std::sort(regions.begin(), regions.end(),
              [](const SpatialRegion &a, const SpatialRegion &b) {
                  return a.lo != b.lo ? a.lo < b.lo
                                      : a.indices.front() <
                                            b.indices.front();
              });
}

} // namespace

std::vector<SpatialRegion>
partitionSpatialDynamic(const mem::Trace &trace, const IndexList &indices)
{
    std::vector<SpatialRegion> out;
    if (indices.empty())
        return out;

    // Algorithm 1: sort request byte-ranges, sweep and merge ranges
    // that intersect or touch.
    std::vector<ByteRange> ranges;
    ranges.reserve(indices.size());
    for (const std::uint32_t idx : indices)
        ranges.push_back({trace[idx].addr, trace[idx].end(), idx});
    std::sort(ranges.begin(), ranges.end(),
              [](const ByteRange &a, const ByteRange &b) {
                  if (a.lo != b.lo)
                      return a.lo < b.lo;
                  if (a.hi != b.hi)
                      return a.hi < b.hi;
                  return a.index < b.index;
              });

    SpatialRegion group;
    group.lo = ranges.front().lo;
    group.hi = ranges.front().hi;
    group.indices.push_back(ranges.front().index);
    for (std::size_t i = 1; i < ranges.size(); ++i) {
        if (ranges[i].lo <= group.hi) {
            group.hi = std::max(group.hi, ranges[i].hi);
            group.indices.push_back(ranges[i].index);
        } else {
            out.push_back(std::move(group));
            group = SpatialRegion{};
            group.lo = ranges[i].lo;
            group.hi = ranges[i].hi;
            group.indices.push_back(ranges[i].index);
        }
    }
    out.push_back(std::move(group));

    mergeLonelyRegions(trace, out);

    if (telemetry::enabled()) {
        telemetry::MetricsRegistry::global()
            .counter("partition.dynamic_regions")
            .add(out.size());
    }

    // Restore time order inside each region.
    for (auto &region : out)
        std::sort(region.indices.begin(), region.indices.end());
    return out;
}

std::vector<Leaf>
buildLeaves(const mem::Trace &trace, const PartitionConfig &config)
{
    assert(trace.isTimeOrdered());

    struct Node
    {
        IndexList indices;
        bool hasBounds = false;
        mem::Addr lo = 0;
        mem::Addr hi = 0;
        /// Child ordinal at each layer above (see Leaf::path).
        std::vector<std::uint32_t> path;
    };

    IndexList all(trace.size());
    for (std::uint32_t i = 0; i < trace.size(); ++i)
        all[i] = i;

    std::vector<Node> nodes;
    nodes.push_back({std::move(all), false, 0, 0, {}});

    const bool collect = telemetry::enabled();
    telemetry::FixedHistogram *fanout = nullptr;
    if (collect) {
        // Children produced per node per layer, in power-of-two
        // buckets 1..4096.
        fanout = &telemetry::MetricsRegistry::global().histogram(
            "partition.fanout",
            telemetry::FixedHistogram::exponentialEdges(1, 4096));
    }

    std::size_t layer_number = 0;
    for (const PartitionLayer &layer : config.layers) {
        std::vector<Node> next;
        for (Node &node : nodes) {
            if (node.indices.empty())
                continue;
            const std::size_t before = next.size();
            switch (layer.kind) {
              case PartitionLayer::Kind::TemporalRequestCount:
                for (auto &part :
                     partitionByRequestCount(node.indices, layer.value)) {
                    next.push_back({std::move(part), node.hasBounds,
                                    node.lo, node.hi});
                }
                break;
              case PartitionLayer::Kind::TemporalCycleCount:
                for (auto &part : partitionByCycleCount(
                         trace, node.indices, layer.value)) {
                    next.push_back({std::move(part), node.hasBounds,
                                    node.lo, node.hi});
                }
                break;
              case PartitionLayer::Kind::SpatialFixed:
                for (auto &region : partitionSpatialFixed(
                         trace, node.indices, layer.value)) {
                    next.push_back({std::move(region.indices), true,
                                    region.lo, region.hi});
                }
                break;
              case PartitionLayer::Kind::SpatialDynamic:
                for (auto &region :
                     partitionSpatialDynamic(trace, node.indices)) {
                    next.push_back({std::move(region.indices), true,
                                    region.lo, region.hi});
                }
                break;
            }
            // Stamp each child's hierarchy path: the parent's path
            // plus the child's ordinal within this node's split.
            for (std::size_t k = before; k < next.size(); ++k) {
                next[k].path = node.path;
                next[k].path.push_back(
                    static_cast<std::uint32_t>(k - before));
            }
            if (collect) {
                fanout->record(static_cast<std::int64_t>(next.size() -
                                                         before));
            }
        }
        nodes = std::move(next);
        if (collect) {
            telemetry::MetricsRegistry::global()
                .gauge("partition.layer" +
                       std::to_string(layer_number) + ".parts")
                .set(static_cast<std::int64_t>(nodes.size()));
        }
        ++layer_number;
    }

    std::vector<Leaf> leaves;
    leaves.reserve(nodes.size());
    for (Node &node : nodes) {
        if (node.indices.empty())
            continue;
        Leaf leaf;
        leaf.path = std::move(node.path);
        leaf.requests.reserve(node.indices.size());
        for (const std::uint32_t idx : node.indices)
            leaf.requests.push_back(trace[idx]);
        if (node.hasBounds) {
            leaf.addrLo = node.lo;
            leaf.addrHi = node.hi;
        } else {
            leaf.addrLo = leaf.requests.front().addr;
            leaf.addrHi = leaf.requests.front().end();
            for (const auto &r : leaf.requests) {
                leaf.addrLo = std::min(leaf.addrLo, r.addr);
                leaf.addrHi = std::max(leaf.addrHi, r.end());
            }
        }
        leaves.push_back(std::move(leaf));
    }
    if (collect) {
        auto &registry = telemetry::MetricsRegistry::global();
        registry.counter("partition.leaves").add(leaves.size());
        registry.counter("partition.requests").add(trace.size());
    }
    return leaves;
}

} // namespace mocktails::core
