#include "core/markov.hpp"

#include <cassert>

namespace mocktails::core
{

MarkovChain::MarkovChain(const std::vector<std::int64_t> &values)
{
    assert(!values.empty());
    length_ = values.size();

    // Assign state indices in first-appearance order (deterministic).
    for (const std::int64_t v : values) {
        if (index_.emplace(v, static_cast<std::uint32_t>(states_.size()))
                .second) {
            states_.push_back(v);
        }
    }

    value_counts_.assign(states_.size(), 0);
    transitions_.assign(states_.size(), {});
    initial_ = index_.at(values.front());

    std::size_t prev = initial_;
    ++value_counts_[prev];
    for (std::size_t i = 1; i < values.size(); ++i) {
        const std::uint32_t cur = index_.at(values[i]);
        ++value_counts_[cur];

        auto &row = transitions_[prev];
        bool found = false;
        for (auto &[to, count] : row) {
            if (to == cur) {
                ++count;
                found = true;
                break;
            }
        }
        if (!found)
            row.emplace_back(cur, 1);
        prev = cur;
    }
}

std::size_t
MarkovChain::stateIndex(std::int64_t value) const
{
    const auto it = index_.find(value);
    return it == index_.end() ? states_.size() : it->second;
}

double
MarkovChain::transitionProbability(std::size_t from, std::size_t to) const
{
    assert(from < states_.size());
    std::uint64_t total = 0;
    std::uint64_t hits = 0;
    for (const auto &[t, count] : transitions_[from]) {
        total += count;
        if (t == to)
            hits = count;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

MarkovChain
MarkovChain::fromParts(
    std::vector<std::int64_t> states, std::size_t initial,
    std::vector<std::uint64_t> value_counts,
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
        transitions)
{
    MarkovChain chain;
    chain.states_ = std::move(states);
    chain.initial_ = initial;
    chain.value_counts_ = std::move(value_counts);
    chain.transitions_ = std::move(transitions);
    for (std::uint32_t i = 0; i < chain.states_.size(); ++i)
        chain.index_.emplace(chain.states_[i], i);
    chain.length_ = 0;
    for (const std::uint64_t c : chain.value_counts_)
        chain.length_ += c;
    return chain;
}

StrictConvergenceSampler::StrictConvergenceSampler(const MarkovChain &chain,
                                                   util::Rng &rng)
    : chain_(&chain), rng_(&rng),
      remaining_values_(chain.valueCounts()),
      current_(chain.initialState())
{
    remaining_transitions_.reserve(chain.numStates());
    for (std::size_t s = 0; s < chain.numStates(); ++s)
        remaining_transitions_.push_back(chain.transitions(s));
}

std::int64_t
StrictConvergenceSampler::next()
{
    assert(!exhausted());

    std::size_t state;
    if (generated_ == 0) {
        state = chain_->initialState();
    } else {
        state = pickTransition();
        if (state == chain_->numStates())
            state = pickFromRemaining();
    }

    assert(state < chain_->numStates());
    assert(remaining_values_[state] > 0);
    --remaining_values_[state];
    current_ = state;
    ++generated_;
    return chain_->stateValue(state);
}

std::size_t
StrictConvergenceSampler::pickTransition()
{
    auto &row = remaining_transitions_[current_];

    // Viable = transition count remaining and value budget remaining.
    std::uint64_t total = 0;
    for (const auto &[to, count] : row) {
        if (count > 0 && remaining_values_[to] > 0)
            total += count;
    }
    if (total == 0)
        return chain_->numStates();

    std::uint64_t target = rng_->below(total);
    for (auto &[to, count] : row) {
        if (count == 0 || remaining_values_[to] == 0)
            continue;
        if (target < count) {
            --count; // strict convergence: consume the transition
            return to;
        }
        target -= count;
    }
    return chain_->numStates(); // unreachable
}

std::size_t
StrictConvergenceSampler::pickFromRemaining()
{
    std::uint64_t total = 0;
    for (const std::uint64_t c : remaining_values_)
        total += c;
    assert(total > 0);

    std::uint64_t target = rng_->below(total);
    for (std::size_t s = 0; s < remaining_values_.size(); ++s) {
        if (target < remaining_values_[s])
            return s;
        target -= remaining_values_[s];
    }
    return remaining_values_.size() - 1; // unreachable
}

} // namespace mocktails::core
