#include "core/markov.hpp"

#include <cassert>

namespace mocktails::core
{

void
MarkovChain::compactRows(const std::vector<std::vector<Transition>> &rows)
{
    const std::size_t n = rows.size();
    std::size_t total = 0;
    for (const auto &row : rows)
        total += row.size();

    // Exact-size the arena so small chains carry no chunk slack: the
    // offset array (padded to the transition alignment) plus the flat
    // transition block, carved from one contiguous chunk.
    const std::size_t offs_bytes = (n + 1) * sizeof(std::uint32_t);
    const std::size_t pad =
        (alignof(Transition) - offs_bytes % alignof(Transition)) %
        alignof(Transition);
    arena_.reserve(offs_bytes + pad + total * sizeof(Transition));

    auto *offsets = arena_.allocate<std::uint32_t>(n + 1);
    auto *trans = arena_.allocate<Transition>(total);
    std::uint32_t at = 0;
    for (std::size_t r = 0; r < n; ++r) {
        offsets[r] = at;
        // Row order is preserved verbatim: iteration over the CSR
        // slice must replay the first-appearance target order the
        // nested rows were built in.
        for (const Transition &t : rows[r])
            trans[at++] = t;
    }
    offsets[n] = at;
    row_offsets_ = offsets;
    trans_ = trans;
}

void
MarkovChain::assign(const MarkovChain &other)
{
    states_ = other.states_;
    index_ = other.index_;
    value_counts_ = other.value_counts_;
    initial_ = other.initial_;
    length_ = other.length_;
    arena_.clear();
    trans_ = nullptr;
    row_offsets_ = nullptr;

    const std::size_t n = other.states_.size();
    if (n == 0)
        return;
    const std::size_t total = other.transitionCount();
    const std::size_t offs_bytes = (n + 1) * sizeof(std::uint32_t);
    const std::size_t pad =
        (alignof(Transition) - offs_bytes % alignof(Transition)) %
        alignof(Transition);
    arena_.reserve(offs_bytes + pad + total * sizeof(Transition));
    auto *offsets = arena_.allocate<std::uint32_t>(n + 1);
    auto *trans = arena_.allocate<Transition>(total);
    for (std::size_t i = 0; i <= n; ++i)
        offsets[i] = other.row_offsets_[i];
    for (std::size_t i = 0; i < total; ++i)
        trans[i] = other.trans_[i];
    row_offsets_ = offsets;
    trans_ = trans;
}

MarkovChain::MarkovChain(const std::vector<std::int64_t> &values)
{
    assert(!values.empty());
    MarkovChainBuilder builder;
    for (const std::int64_t v : values)
        builder.add(v);
    *this = builder.finish();
}

std::size_t
MarkovChain::stateIndex(std::int64_t value) const
{
    const std::uint32_t i = index_.find(value);
    return i == util::FlatMap64::kNotFound ? states_.size() : i;
}

double
MarkovChain::transitionProbability(std::size_t from, std::size_t to) const
{
    assert(from < states_.size());
    std::uint64_t total = 0;
    std::uint64_t hits = 0;
    for (const auto &[t, count] : transitions(from)) {
        total += count;
        if (t == to)
            hits = count;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

MarkovChain
MarkovChain::fromParts(
    std::vector<std::int64_t> states, std::size_t initial,
    std::vector<std::uint64_t> value_counts,
    const std::vector<std::vector<Transition>> &transitions)
{
    MarkovChain chain;
    chain.states_ = std::move(states);
    chain.initial_ = initial;
    chain.value_counts_ = std::move(value_counts);
    chain.compactRows(transitions);
    chain.index_ = util::FlatMap64(chain.states_.size());
    for (std::uint32_t i = 0; i < chain.states_.size(); ++i)
        chain.index_.insert(chain.states_[i], i);
    chain.length_ = 0;
    for (const std::uint64_t c : chain.value_counts_)
        chain.length_ += c;
    return chain;
}

void
MarkovChainBuilder::add(std::int64_t value)
{
    std::uint32_t idx = index_.find(value);
    if (idx == util::FlatMap64::kNotFound) {
        // Assign state indices in first-appearance order
        // (deterministic).
        idx = static_cast<std::uint32_t>(states_.size());
        index_.insert(value, idx);
        states_.push_back(value);
        value_counts_.push_back(0);
        rows_.emplace_back();
    }
    ++value_counts_[idx];

    if (length_ == 0) {
        initial_ = idx;
    } else {
        auto &row = rows_[prev_];
        bool found = false;
        for (auto &[to, count] : row) {
            if (to == idx) {
                ++count;
                found = true;
                break;
            }
        }
        if (!found)
            row.emplace_back(idx, 1);
    }
    prev_ = idx;
    ++length_;
}

MarkovChain
MarkovChainBuilder::finish()
{
    assert(length_ > 0);
    MarkovChain chain;
    chain.states_ = std::move(states_);
    chain.index_ = std::move(index_);
    chain.value_counts_ = std::move(value_counts_);
    chain.initial_ = initial_;
    chain.length_ = length_;
    chain.compactRows(rows_);

    // Leave the builder ready for the next sequence.
    states_.clear();
    index_ = util::FlatMap64();
    value_counts_.clear();
    rows_.clear();
    initial_ = 0;
    length_ = 0;
    prev_ = 0;
    return chain;
}

StrictConvergenceSampler::StrictConvergenceSampler(const MarkovChain &chain,
                                                   util::Rng &rng)
    : chain_(&chain), rng_(&rng),
      remaining_values_(chain.valueCounts()),
      current_(chain.initialState())
{
    // One flat copy of the transition counts, aligned with the chain's
    // CSR layout so a row's remaining counts sit at transitionOffset().
    remaining_counts_.reserve(chain.transitionCount());
    for (std::size_t s = 0; s < chain.numStates(); ++s) {
        for (const auto &[to, count] : chain.transitions(s)) {
            (void)to;
            remaining_counts_.push_back(count);
        }
    }
}

std::int64_t
StrictConvergenceSampler::next()
{
    assert(!exhausted());

    std::size_t state;
    if (generated_ == 0) {
        state = chain_->initialState();
    } else {
        state = pickTransition();
        if (state == chain_->numStates())
            state = pickFromRemaining();
    }

    assert(state < chain_->numStates());
    assert(remaining_values_[state] > 0);
    --remaining_values_[state];
    current_ = state;
    ++generated_;
    return chain_->stateValue(state);
}

std::size_t
StrictConvergenceSampler::pickTransition()
{
    const TransitionView row = chain_->transitions(current_);
    std::uint64_t *rem = remaining_counts_.data() +
                         chain_->transitionOffset(current_);

    // Viable = transition count remaining and value budget remaining.
    std::uint64_t total = 0;
    for (std::size_t k = 0; k < row.size(); ++k) {
        if (rem[k] > 0 && remaining_values_[row[k].first] > 0)
            total += rem[k];
    }
    if (total == 0)
        return chain_->numStates();

    std::uint64_t target = rng_->below(total);
    for (std::size_t k = 0; k < row.size(); ++k) {
        if (rem[k] == 0 || remaining_values_[row[k].first] == 0)
            continue;
        if (target < rem[k]) {
            --rem[k]; // strict convergence: consume the transition
            return row[k].first;
        }
        target -= rem[k];
    }
    return chain_->numStates(); // unreachable
}

std::size_t
StrictConvergenceSampler::pickFromRemaining()
{
    std::uint64_t total = 0;
    for (const std::uint64_t c : remaining_values_)
        total += c;
    assert(total > 0);

    std::uint64_t target = rng_->below(total);
    for (std::size_t s = 0; s < remaining_values_.size(); ++s) {
        if (target < remaining_values_[s])
            return s;
        target -= remaining_values_[s];
    }
    return remaining_values_.size() - 1; // unreachable
}

} // namespace mocktails::core
