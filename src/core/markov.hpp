/**
 * @file
 * First-order Markov chains over integer feature values.
 *
 * Each leaf feature with any variability is modelled by a Markov chain
 * built from the observed value sequence (paper Sec. III-B). Synthesis
 * uses *strict convergence* (following STM/WEST): every transition
 * taken consumes one unit of its observed count, so the generated
 * sequence reproduces the exact multiset of observed values — e.g. for
 * Table I's partition F, exactly two 128-byte and ten 64-byte sizes.
 *
 * Storage layout: transitions live in one arena-backed CSR block
 * (a flat (to, count) array plus per-state row offsets) and the
 * value->state index is an open-addressing FlatMap64 — a profile with
 * thousands of chains stays a handful of contiguous allocations
 * instead of a heap of per-row vectors and per-state map nodes. Row
 * iteration order is the first-appearance target order of the
 * training sequence, exactly as the nested-vector layout produced.
 */

#ifndef MOCKTAILS_CORE_MARKOV_HPP
#define MOCKTAILS_CORE_MARKOV_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "util/arena.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace mocktails::core
{

/** One observed transition: target state and how often it was taken. */
using Transition = std::pair<std::uint32_t, std::uint64_t>;

/**
 * A borrowed view of one state's transition row (CSR slice). Iterates
 * in the row's storage order; valid while the owning chain lives.
 */
class TransitionView
{
  public:
    TransitionView() = default;
    TransitionView(const Transition *data, std::size_t size)
        : data_(data), size_(size)
    {}

    const Transition *begin() const { return data_; }
    const Transition *end() const { return data_ + size_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const Transition &operator[](std::size_t i) const { return data_[i]; }

  private:
    const Transition *data_ = nullptr;
    std::size_t size_ = 0;
};

/**
 * A first-order Markov chain with transition counts.
 *
 * States are the distinct values of the training sequence. The chain
 * stores raw counts rather than probabilities so that strict
 * convergence can consume them during synthesis.
 */
class MarkovChain
{
  public:
    MarkovChain() = default;

    /** Build from a value sequence. @pre values.size() >= 1. */
    explicit MarkovChain(const std::vector<std::int64_t> &values);

    MarkovChain(const MarkovChain &other) { assign(other); }
    MarkovChain &
    operator=(const MarkovChain &other)
    {
        if (this != &other)
            assign(other);
        return *this;
    }
    MarkovChain(MarkovChain &&) = default;
    MarkovChain &operator=(MarkovChain &&) = default;

    /** Number of distinct states. */
    std::size_t numStates() const { return states_.size(); }

    /** Value of state @p index. */
    std::int64_t stateValue(std::size_t index) const
    {
        return states_[index];
    }

    /** Index of the training sequence's first value. */
    std::size_t initialState() const { return initial_; }

    /** Length of the training sequence. */
    std::uint64_t sequenceLength() const { return length_; }

    /** Occurrences of each state's value in the training sequence. */
    const std::vector<std::uint64_t> &valueCounts() const
    {
        return value_counts_;
    }

    /** Observed (to, count) transitions out of state @p from. */
    TransitionView
    transitions(std::size_t from) const
    {
        const std::uint32_t begin = row_offsets_[from];
        return TransitionView(trans_ + begin,
                              row_offsets_[from + 1] - begin);
    }

    /** Position of state @p from's row in the flat transition array
     *  (for side tables indexed per transition, e.g. the sampler's
     *  remaining counts). */
    std::uint32_t transitionOffset(std::size_t from) const
    {
        return row_offsets_[from];
    }

    /** Total transitions over all rows (size of the flat array). */
    std::size_t
    transitionCount() const
    {
        return states_.empty() ? 0 : row_offsets_[states_.size()];
    }

    /** Index of @p value, or numStates() when unknown. */
    std::size_t stateIndex(std::int64_t value) const;

    /**
     * Probability of moving @p from -> @p to per the raw counts
     * (before any strict-convergence adjustment).
     */
    double transitionProbability(std::size_t from, std::size_t to) const;

    /// @name Direct construction (used by profile decoding)
    /// @{
    static MarkovChain
    fromParts(std::vector<std::int64_t> states, std::size_t initial,
              std::vector<std::uint64_t> value_counts,
              const std::vector<std::vector<Transition>> &transitions);
    /// @}

  private:
    friend class MarkovChainBuilder;

    /** Copy nested rows into this chain's arena as one CSR block. */
    void compactRows(const std::vector<std::vector<Transition>> &rows);

    /** Deep copy (fresh arena) for the copy constructor/assignment. */
    void assign(const MarkovChain &other);

    util::Arena arena_;
    std::vector<std::int64_t> states_;
    util::FlatMap64 index_;
    std::vector<std::uint64_t> value_counts_;
    /// Arena-owned CSR: row r is trans_[row_offsets_[r]..row_offsets_[r+1]).
    const Transition *trans_ = nullptr;
    const std::uint32_t *row_offsets_ = nullptr;
    std::size_t initial_ = 0;
    std::uint64_t length_ = 0;
};

/**
 * Incremental MarkovChain construction: feed the training sequence
 * one value at a time and finish() into a chain.
 *
 * The streamed profile build fits leaves while routing requests, so
 * it can never hand the whole value sequence over at once. Feeding a
 * builder value by value produces a chain identical to
 * MarkovChain(values) — the eager constructor is itself implemented
 * on top of this builder.
 */
class MarkovChainBuilder
{
  public:
    /** Append the next training value. */
    void add(std::int64_t value);

    /** Values fed so far. */
    std::uint64_t length() const { return length_; }

    /**
     * Build the chain. The builder is left empty and reusable.
     * @pre length() >= 1.
     */
    MarkovChain finish();

  private:
    std::vector<std::int64_t> states_;
    util::FlatMap64 index_;
    std::vector<std::uint64_t> value_counts_;
    std::vector<std::vector<Transition>> rows_;
    std::size_t initial_ = 0;
    std::uint64_t length_ = 0;
    std::uint32_t prev_ = 0;
};

/**
 * Generates a value sequence from a MarkovChain under strict
 * convergence.
 *
 * The sampler owns mutable copies of the transition and value counts
 * (the transition copy is one flat array aligned with the chain's CSR
 * layout). Each emission decrements the count of the transition taken
 * and of the value produced; exhausted transitions can no longer be
 * taken. When the current state has no viable transition left
 * (possible because first-order counts do not capture full ordering),
 * the next value is drawn from the remaining value multiset, which
 * guarantees the multiset of generated values equals the training
 * multiset.
 */
class StrictConvergenceSampler
{
  public:
    /** The chain must outlive the sampler. */
    StrictConvergenceSampler(const MarkovChain &chain, util::Rng &rng);

    /**
     * Produce the next value.
     *
     * The first call returns the initial state's value; subsequent
     * calls walk the chain. @pre generated() < chain.sequenceLength().
     */
    std::int64_t next();

    /** Values produced so far. */
    std::uint64_t generated() const { return generated_; }

    /**
     * State whose value the last next() call emitted (the initial
     * state before any call) — the provenance hook that lets a
     * synthesised request name the chain state that produced it.
     */
    std::size_t currentState() const { return current_; }

    /** True when the full training-length sequence was produced. */
    bool
    exhausted() const
    {
        return generated_ >= chain_->sequenceLength();
    }

  private:
    std::size_t pickTransition();
    std::size_t pickFromRemaining();

    const MarkovChain *chain_;
    util::Rng *rng_;
    std::vector<std::uint64_t> remaining_values_;
    /// Remaining count per transition, CSR-aligned with the chain.
    std::vector<std::uint64_t> remaining_counts_;
    std::size_t current_ = 0;
    std::uint64_t generated_ = 0;
};

} // namespace mocktails::core

#endif // MOCKTAILS_CORE_MARKOV_HPP
