/**
 * @file
 * First-order Markov chains over integer feature values.
 *
 * Each leaf feature with any variability is modelled by a Markov chain
 * built from the observed value sequence (paper Sec. III-B). Synthesis
 * uses *strict convergence* (following STM/WEST): every transition
 * taken consumes one unit of its observed count, so the generated
 * sequence reproduces the exact multiset of observed values — e.g. for
 * Table I's partition F, exactly two 128-byte and ten 64-byte sizes.
 */

#ifndef MOCKTAILS_CORE_MARKOV_HPP
#define MOCKTAILS_CORE_MARKOV_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace mocktails::core
{

/**
 * A first-order Markov chain with transition counts.
 *
 * States are the distinct values of the training sequence. The chain
 * stores raw counts rather than probabilities so that strict
 * convergence can consume them during synthesis.
 */
class MarkovChain
{
  public:
    MarkovChain() = default;

    /** Build from a value sequence. @pre values.size() >= 1. */
    explicit MarkovChain(const std::vector<std::int64_t> &values);

    /** Number of distinct states. */
    std::size_t numStates() const { return states_.size(); }

    /** Value of state @p index. */
    std::int64_t stateValue(std::size_t index) const
    {
        return states_[index];
    }

    /** Index of the training sequence's first value. */
    std::size_t initialState() const { return initial_; }

    /** Length of the training sequence. */
    std::uint64_t sequenceLength() const { return length_; }

    /** Occurrences of each state's value in the training sequence. */
    const std::vector<std::uint64_t> &valueCounts() const
    {
        return value_counts_;
    }

    /** Observed (to, count) transitions out of state @p from. */
    const std::vector<std::pair<std::uint32_t, std::uint64_t>> &
    transitions(std::size_t from) const
    {
        return transitions_[from];
    }

    /** Index of @p value, or numStates() when unknown. */
    std::size_t stateIndex(std::int64_t value) const;

    /**
     * Probability of moving @p from -> @p to per the raw counts
     * (before any strict-convergence adjustment).
     */
    double transitionProbability(std::size_t from, std::size_t to) const;

    /// @name Direct construction (used by profile decoding)
    /// @{
    static MarkovChain
    fromParts(std::vector<std::int64_t> states, std::size_t initial,
              std::vector<std::uint64_t> value_counts,
              std::vector<std::vector<std::pair<std::uint32_t,
                                                std::uint64_t>>> transitions);
    /// @}

  private:
    std::vector<std::int64_t> states_;
    std::unordered_map<std::int64_t, std::uint32_t> index_;
    std::vector<std::uint64_t> value_counts_;
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
        transitions_;
    std::size_t initial_ = 0;
    std::uint64_t length_ = 0;
};

/**
 * Generates a value sequence from a MarkovChain under strict
 * convergence.
 *
 * The sampler owns mutable copies of the transition and value counts.
 * Each emission decrements the count of the transition taken and of
 * the value produced; exhausted transitions can no longer be taken.
 * When the current state has no viable transition left (possible
 * because first-order counts do not capture full ordering), the next
 * value is drawn from the remaining value multiset, which guarantees
 * the multiset of generated values equals the training multiset.
 */
class StrictConvergenceSampler
{
  public:
    /** The chain must outlive the sampler. */
    StrictConvergenceSampler(const MarkovChain &chain, util::Rng &rng);

    /**
     * Produce the next value.
     *
     * The first call returns the initial state's value; subsequent
     * calls walk the chain. @pre generated() < chain.sequenceLength().
     */
    std::int64_t next();

    /** Values produced so far. */
    std::uint64_t generated() const { return generated_; }

    /**
     * State whose value the last next() call emitted (the initial
     * state before any call) — the provenance hook that lets a
     * synthesised request name the chain state that produced it.
     */
    std::size_t currentState() const { return current_; }

    /** True when the full training-length sequence was produced. */
    bool
    exhausted() const
    {
        return generated_ >= chain_->sequenceLength();
    }

  private:
    std::size_t pickTransition();
    std::size_t pickFromRemaining();

    const MarkovChain *chain_;
    util::Rng *rng_;
    std::vector<std::uint64_t> remaining_values_;
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
        remaining_transitions_;
    std::size_t current_ = 0;
    std::uint64_t generated_ = 0;
};

} // namespace mocktails::core

#endif // MOCKTAILS_CORE_MARKOV_HPP
