/**
 * @file
 * Out-of-core profile building.
 *
 * buildProfile() materialises the whole trace, the whole index
 * hierarchy and every leaf's request vector before fitting — fine for
 * traces that fit in memory, hopeless for multi-GB captures. This
 * module builds the *same* profile from a mem::TraceReader stream in
 * bounded memory:
 *
 *  - Temporal layers are resolved on the fly: for a time-ordered
 *    stream every temporal leaf is a contiguous segment, so a small
 *    per-layer state machine (TemporalRouter in the .cpp) detects
 *    segment boundaries without ever holding two segments at once.
 *  - A trailing SpatialFixed layer (or no spatial layer) streams in a
 *    single pass: leaves are fitted incrementally via McCBuilder as
 *    requests arrive.
 *  - A trailing SpatialDynamic layer needs the segment's byte ranges
 *    in address order (paper Alg. 1), which a single pass cannot
 *    provide. Requests are spilled to a bounded on-disk store as
 *    sorted runs, k-way merged into the merged-region sweep, and the
 *    segment is re-read in time order to fit the leaves (two-pass).
 *
 * The result is bit-identical to buildProfile() with default McC
 * hooks: same leaves in the same order, same models, same encoded
 * bytes. Tests assert this equality across chunk sizes and thread
 * counts.
 *
 * Peak memory is O(chunk + per-segment region metadata + models being
 * fitted for one segment) — independent of trace length for the
 * pathological-free case. (A segment where every request is its own
 * dynamic region still needs O(regions) metadata; such a trace's
 * profile is itself O(regions), so the bound degenerates only when
 * the *output* does.)
 */

#ifndef MOCKTAILS_CORE_STREAMED_BUILD_HPP
#define MOCKTAILS_CORE_STREAMED_BUILD_HPP

#include <cstdint>
#include <string>

#include "core/model_generator.hpp"
#include "mem/trace_reader.hpp"

namespace mocktails::core
{

/**
 * Tuning for the out-of-core build.
 */
struct StreamedBuildOptions
{
    /**
     * Directory for spill files (created if missing). Empty: a fresh
     * mkdtemp directory under $TMPDIR (or /tmp) that is removed when
     * the build finishes.
     */
    std::string spillDir;

    /**
     * Advisory bound on transient build memory; the streaming chunk
     * size is derived from it. 0 = use the default chunk. The bound
     * covers the streaming buffers, not the profile being built.
     */
    std::uint64_t maxMemoryBytes = 0;

    /**
     * Requests per streaming chunk (sort-run length for the spill
     * path). Overrides maxMemoryBytes when non-zero; mainly for tests,
     * which exercise pathological sizes like 1.
     */
    std::size_t chunkRequests = 0;

    /** Worker cap for the per-segment fit; 0 = hardware threads. */
    unsigned threads = 0;
};

/**
 * Can @p config be built by buildProfileStreamed()? True for zero or
 * more temporal layers (with non-zero interval values) followed by at
 * most one final spatial layer. Spatial-above-temporal hierarchies
 * hand address-ordered subsets down to temporal layers, which breaks
 * the contiguous-segment property streaming relies on — those fall
 * back to the in-memory builder.
 */
bool canStreamConfig(const PartitionConfig &config);

/**
 * Build a profile from a request stream in bounded memory.
 *
 * Produces bytes identical to buildProfile(trace, config) with
 * default (McC) hooks. Custom per-feature hooks are not supported —
 * callers needing them must use the in-memory path.
 *
 * @param reader Source of time-ordered requests. A reader error, an
 *               out-of-order tick, an unstreamable config or a spill
 *               I/O failure aborts the build.
 * @param error  Receives a diagnostic when the build fails.
 * @return The profile; empty (zero leaves, empty name) on failure,
 *         distinguished by @p error.
 */
Profile buildProfileStreamed(mem::TraceReader &reader,
                             const PartitionConfig &config,
                             const StreamedBuildOptions &options = {},
                             std::string *error = nullptr);

} // namespace mocktails::core

#endif // MOCKTAILS_CORE_STREAMED_BUILD_HPP
