#include "core/history_markov.hpp"

#include <algorithm>
#include <cassert>

#include "core/profile.hpp"

namespace mocktails::core
{

HistoryMarkovModel::HistoryMarkovModel(
    const std::vector<std::int64_t> &values, std::uint32_t order)
    : initial_(values.front()), order_(order)
{
    assert(!values.empty());
    assert(order >= 1);

    std::map<std::int64_t, std::uint64_t> counts;
    for (const std::int64_t v : values)
        ++counts[v];
    for (const auto &[value, count] : counts)
        budget_.emplace_back(value, count);

    std::map<History, std::map<std::int64_t, std::uint64_t>> rows;
    History history;
    for (const std::int64_t v : values) {
        if (!history.empty())
            ++rows[history][v];
        history.push_back(v);
        if (history.size() > order_)
            history.erase(history.begin());
    }
    for (const auto &[key, row] : rows) {
        Row out;
        out.reserve(row.size());
        for (const auto &[value, count] : row)
            out.emplace_back(value, count);
        table_.emplace(key, std::move(out));
    }
}

HistoryMarkovModel::HistoryMarkovModel(std::map<History, Row> table,
                                       Row budget, std::int64_t initial,
                                       std::uint32_t order)
    : table_(std::move(table)), budget_(std::move(budget)),
      initial_(initial), order_(order)
{}

std::uint64_t
HistoryMarkovModel::sequenceLength() const
{
    std::uint64_t total = 0;
    for (const auto &[value, count] : budget_)
        total += count;
    return total;
}

/** Sampler walking the order-k table under strict convergence. */
class HistoryMarkovSampler : public FeatureSampler
{
  public:
    HistoryMarkovSampler(const HistoryMarkovModel &model,
                         util::Rng &rng)
        : model_(&model), rng_(&rng)
    {
        for (const auto &[value, count] : model.budget_) {
            remaining_[value] = count;
            total_ += count;
        }
    }

    std::int64_t
    next() override
    {
        std::int64_t value;
        if (first_) {
            first_ = false;
            value = remaining_.count(model_->initial_) &&
                            remaining_[model_->initial_] > 0
                        ? model_->initial_
                        : drawBudget();
        } else {
            const HistoryMarkovModel::Row *row = nullptr;
            HistoryMarkovModel::History key = history_;
            while (!key.empty()) {
                const auto it = model_->table_.find(key);
                if (it != model_->table_.end()) {
                    row = &it->second;
                    break;
                }
                key.erase(key.begin());
            }
            value = row ? drawRow(*row) : drawBudget();
        }

        consume(value);
        history_.push_back(value);
        if (history_.size() > model_->order_)
            history_.erase(history_.begin());
        return value;
    }

  private:
    std::int64_t
    drawRow(const HistoryMarkovModel::Row &row)
    {
        std::uint64_t viable = 0;
        for (const auto &[value, count] : row) {
            const auto it = remaining_.find(value);
            if (it != remaining_.end() && it->second > 0)
                viable += count;
        }
        if (viable == 0)
            return drawBudget();
        std::uint64_t target = rng_->below(viable);
        for (const auto &[value, count] : row) {
            const auto it = remaining_.find(value);
            if (it == remaining_.end() || it->second == 0)
                continue;
            if (target < count)
                return value;
            target -= count;
        }
        return drawBudget(); // unreachable
    }

    std::int64_t
    drawBudget()
    {
        assert(total_ > 0);
        std::uint64_t target = rng_->below(total_);
        for (const auto &[value, count] : remaining_) {
            if (target < count)
                return value;
            target -= count;
        }
        return remaining_.rbegin()->first; // unreachable
    }

    void
    consume(std::int64_t value)
    {
        const auto it = remaining_.find(value);
        assert(it != remaining_.end() && it->second > 0);
        --it->second;
        --total_;
    }

    const HistoryMarkovModel *model_;
    util::Rng *rng_;
    std::map<std::int64_t, std::uint64_t> remaining_;
    std::uint64_t total_ = 0;
    HistoryMarkovModel::History history_;
    bool first_ = true;
};

std::unique_ptr<FeatureSampler>
HistoryMarkovModel::makeSampler(util::Rng &rng) const
{
    return std::make_unique<HistoryMarkovSampler>(*this, rng);
}

void
HistoryMarkovModel::encodePayload(util::ByteWriter &writer) const
{
    writer.putVarint(order_);
    writer.putSigned(initial_);
    writer.putVarint(budget_.size());
    for (const auto &[value, count] : budget_) {
        writer.putSigned(value);
        writer.putVarint(count);
    }
    writer.putVarint(table_.size());
    for (const auto &[key, row] : table_) {
        writer.putVarint(key.size());
        for (const std::int64_t v : key)
            writer.putSigned(v);
        writer.putVarint(row.size());
        for (const auto &[value, count] : row) {
            writer.putSigned(value);
            writer.putVarint(count);
        }
    }
}

FeatureModelPtr
HistoryMarkovModel::decodePayload(util::ByteReader &reader)
{
    const auto order = static_cast<std::uint32_t>(reader.getVarint());
    const std::int64_t initial = reader.getSigned();

    const std::uint64_t budget_size = reader.getVarint();
    if (!reader.ok() || order == 0 || order > 64 ||
        budget_size > reader.remaining() / 2 + 1) {
        return nullptr;
    }
    Row budget;
    budget.reserve(budget_size);
    for (std::uint64_t i = 0; i < budget_size; ++i) {
        const std::int64_t value = reader.getSigned();
        budget.emplace_back(value, reader.getVarint());
    }

    const std::uint64_t rows = reader.getVarint();
    if (!reader.ok() || rows > reader.remaining() / 2 + 1)
        return nullptr;
    std::map<History, Row> table;
    for (std::uint64_t i = 0; i < rows; ++i) {
        const std::uint64_t key_size = reader.getVarint();
        if (!reader.ok() || key_size > order)
            return nullptr;
        History key(key_size);
        for (auto &v : key)
            v = reader.getSigned();
        const std::uint64_t row_size = reader.getVarint();
        if (!reader.ok() || row_size > reader.remaining() / 2 + 1)
            return nullptr;
        Row row;
        row.reserve(row_size);
        for (std::uint64_t j = 0; j < row_size; ++j) {
            const std::int64_t value = reader.getSigned();
            row.emplace_back(value, reader.getVarint());
        }
        table.emplace(std::move(key), std::move(row));
    }
    if (!reader.ok())
        return nullptr;
    return std::make_unique<HistoryMarkovModel>(
        std::move(table), std::move(budget), initial, order);
}

FeatureModelPtr
buildMccK(const std::vector<std::int64_t> &values, std::uint32_t order)
{
    if (values.empty())
        return nullptr;
    const bool constant = std::all_of(values.begin(), values.end(),
                                      [&](std::int64_t v) {
                                          return v == values.front();
                                      });
    if (constant) {
        return std::make_unique<ConstantModel>(values.front(),
                                               values.size());
    }
    return std::make_unique<HistoryMarkovModel>(values, order);
}

LeafModelerHooks
mccKHooks(std::uint32_t order)
{
    LeafModelerHooks hooks;
    const auto builder = [order](const std::vector<std::int64_t> &v) {
        return buildMccK(v, order);
    };
    hooks.deltaTime = builder;
    hooks.stride = builder;
    hooks.op = builder;
    hooks.size = builder;
    return hooks;
}

void
registerHistoryMarkov()
{
    registerFeatureModelDecoder(HistoryMarkovModel::kTag,
                                &HistoryMarkovModel::decodePayload);
}

} // namespace mocktails::core
