/**
 * @file
 * Profile introspection.
 *
 * Summarises what a statistical profile contains — how many leaves,
 * which features collapsed to constants vs. needed Markov chains, and
 * how big the chains are. This is the trade-off Fig. 17 discusses:
 * metadata grows with the number of leaves and with chain sizes, and
 * shrinks with every feature a partition renders constant.
 */

#ifndef MOCKTAILS_CORE_SUMMARY_HPP
#define MOCKTAILS_CORE_SUMMARY_HPP

#include <cstdint>

#include "core/profile.hpp"

namespace mocktails::core
{

/**
 * Per-feature model census.
 */
struct FeatureCensus
{
    std::uint64_t absent = 0;   ///< null models (single-request leaves)
    std::uint64_t constant = 0; ///< ConstantModel
    std::uint64_t markov = 0;   ///< MarkovModel
    std::uint64_t other = 0;    ///< foreign models (e.g. STM)

    /** Total Markov states across all leaves for this feature. */
    std::uint64_t markovStates = 0;
};

/**
 * Aggregate description of a profile.
 */
struct ProfileSummary
{
    std::uint64_t leaves = 0;
    std::uint64_t requests = 0;

    /** Leaves synthesising exactly one request. */
    std::uint64_t singletonLeaves = 0;

    /** Size of the compressed encoding, in bytes. */
    std::uint64_t compressedBytes = 0;

    FeatureCensus deltaTime;
    FeatureCensus stride;
    FeatureCensus op;
    FeatureCensus size;

    /** Fraction of non-null feature models that are constants. */
    double constantFraction() const;
};

/** Compute the summary of @p profile. */
ProfileSummary summarize(const Profile &profile);

} // namespace mocktails::core

#endif // MOCKTAILS_CORE_SUMMARY_HPP
