/**
 * @file
 * Temporal, spatial and hierarchical partitioning of request streams.
 *
 * Implements paper Sec. III-A: temporal partitioning by request count
 * (as in STM) or by cycle count (as in SynFull); spatial partitioning
 * into fixed-size blocks (as in HALO) or into *dynamic memory regions*
 * (Alg. 1) that merge overlapping/adjacent request byte-ranges and
 * group lonely requests; and the hierarchical composition of layers
 * whose leaves are the modelled request subsets.
 */

#ifndef MOCKTAILS_CORE_PARTITION_HPP
#define MOCKTAILS_CORE_PARTITION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mem/trace.hpp"
#include "util/codec.hpp"

namespace mocktails::core
{

/** Indices into a trace, always kept in ascending (time) order. */
using IndexList = std::vector<std::uint32_t>;

/**
 * One layer of the partitioning hierarchy.
 */
struct PartitionLayer
{
    enum class Kind : std::uint8_t
    {
        TemporalRequestCount = 0, ///< fixed number of requests
        TemporalCycleCount = 1,   ///< fixed number of cycles
        SpatialFixed = 2,         ///< fixed-size address blocks
        SpatialDynamic = 3,       ///< Alg. 1 dynamic memory regions
    };

    Kind kind = Kind::TemporalCycleCount;

    /** Requests per interval, cycles per interval, or block size in
     *  bytes. Ignored for SpatialDynamic. */
    std::uint64_t value = 0;

    bool
    isSpatial() const
    {
        return kind == Kind::SpatialFixed || kind == Kind::SpatialDynamic;
    }

    std::string describe() const;

    friend bool
    operator==(const PartitionLayer &a, const PartitionLayer &b)
    {
        return a.kind == b.kind && a.value == b.value;
    }
};

/**
 * The hierarchy configuration: an ordered list of layers applied from
 * the root (all requests) down; leaves are the final partitions.
 */
struct PartitionConfig
{
    std::vector<PartitionLayer> layers;

    /**
     * The paper's 2L-TS configuration (Sec. IV-A): temporal
     * cycle-count phases first, then dynamic spatial partitions.
     */
    static PartitionConfig twoLevelTs(std::uint64_t cycles = 500000);

    /** Temporal request-count phases, then dynamic spatial (Sec. V). */
    static PartitionConfig
    twoLevelTsByRequests(std::uint64_t requests = 100000);

    /** Temporal request-count phases, then fixed-size blocks. */
    static PartitionConfig
    twoLevelTsFixed(std::uint64_t requests = 100000,
                    std::uint64_t block_size = 4096);

    std::string describe() const;

    void encode(util::ByteWriter &writer) const;
    static bool decode(util::ByteReader &reader, PartitionConfig &config);

    friend bool
    operator==(const PartitionConfig &a, const PartitionConfig &b)
    {
        return a.layers == b.layers;
    }
};

/**
 * A spatial region produced by a spatial partitioning scheme.
 */
struct SpatialRegion
{
    mem::Addr lo = 0; ///< first byte of the region
    mem::Addr hi = 0; ///< one past the last byte
    IndexList indices; ///< member requests, in time order
};

/**
 * The requests of one hierarchy leaf, plus the address range the
 * synthesised addresses must stay within.
 *
 * For leaves under a dynamic spatial partition the range is the tight
 * merged region; for fixed-size partitions it is the whole block (the
 * "looser bounds" the paper discusses for Mocktails (4KB)); for purely
 * temporal hierarchies it is the min/max touched by the leaf.
 */
struct Leaf
{
    std::vector<mem::Request> requests;
    mem::Addr addrLo = 0;
    mem::Addr addrHi = 0;

    /**
     * Position in the hierarchy: the child ordinal this leaf's chain
     * of partitions occupied at each layer (empty for a flat config).
     * Provenance/attribution reporting renders it via pathString().
     */
    std::vector<std::uint32_t> path;
};

/** Render a hierarchy path as "2/0" ("root" when empty). */
std::string pathString(const std::vector<std::uint32_t> &path);

/// @name Single-layer partitioners
/// Input indices must be in time order; outputs preserve time order
/// inside each part and are deterministically ordered across parts.
/// @{

/** Consecutive chunks of @p per_interval requests. */
std::vector<IndexList>
partitionByRequestCount(const IndexList &indices,
                        std::uint64_t per_interval);

/**
 * Fixed cycle windows of @p cycles, anchored at the earliest request.
 *
 * Unlike the other partitioners this one tolerates indices in any
 * arrival order (e.g. the address-ordered subsets a spatial layer
 * hands down): requests are binned by window number independently of
 * their position in @p indices, and each window's members come out in
 * time order.
 */
std::vector<IndexList>
partitionByCycleCount(const mem::Trace &trace, const IndexList &indices,
                      std::uint64_t cycles);

/** Group by fixed-size address block (by request start address). */
std::vector<SpatialRegion>
partitionSpatialFixed(const mem::Trace &trace, const IndexList &indices,
                      std::uint64_t block_size);

/**
 * Dynamic memory regions (paper Alg. 1): merge intersecting/adjacent
 * request byte-ranges; then merge lonely single-request regions,
 * grouping equally-strided lonely requests into shared partitions.
 */
std::vector<SpatialRegion>
partitionSpatialDynamic(const mem::Trace &trace,
                        const IndexList &indices);

/// @}

/**
 * Apply the full hierarchy to a trace and materialise the leaves.
 *
 * @pre trace.isTimeOrdered()
 */
std::vector<Leaf> buildLeaves(const mem::Trace &trace,
                              const PartitionConfig &config);

} // namespace mocktails::core

#endif // MOCKTAILS_CORE_PARTITION_HPP
