/**
 * @file
 * Feature-sequence extraction from request subsets.
 *
 * Mocktails models the difference between subsequent values for the
 * timestamp and address features (delta time, stride) and the raw
 * values for operation and size (paper Sec. III-B).
 */

#ifndef MOCKTAILS_CORE_FEATURES_HPP
#define MOCKTAILS_CORE_FEATURES_HPP

#include <cstdint>
#include <vector>

#include "mem/request.hpp"

namespace mocktails::core
{

/** A time-ordered subset of requests (the contents of one node). */
using RequestSeq = std::vector<mem::Request>;

/** Delta times t[i] - t[i-1]; size N-1 (empty for N < 2). */
std::vector<std::int64_t> deltaTimes(const RequestSeq &requests);

/** Strides addr[i] - addr[i-1]; size N-1 (empty for N < 2). */
std::vector<std::int64_t> strides(const RequestSeq &requests);

/** Operations as integers (Read=0, Write=1); size N. */
std::vector<std::int64_t> operations(const RequestSeq &requests);

/** Request sizes in bytes; size N. */
std::vector<std::int64_t> sizes(const RequestSeq &requests);

} // namespace mocktails::core

#endif // MOCKTAILS_CORE_FEATURES_HPP
