#include "core/model_generator.hpp"

#include <cassert>

#include "core/features.hpp"
#include "telemetry/span.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::core
{

namespace
{

/**
 * Telemetry census of the fitted models: constants vs. Markov chains
 * per feature, plus the states-per-chain distribution. Runs as a
 * single-threaded post-pass so the parallel fitting loop stays free
 * of shared counters.
 */
void
recordModelCensus(const Profile &profile)
{
    auto &registry = telemetry::MetricsRegistry::global();
    auto &states = registry.histogram(
        "mcc.markov_states",
        telemetry::FixedHistogram::exponentialEdges(1, 1024));

    const auto census = [&](const char *feature,
                            const FeatureModelPtr &model) {
        const std::string prefix = std::string("mcc.") + feature;
        if (!model) {
            registry.counter(prefix + ".empty").add(1);
            return;
        }
        if (model->tag() == ConstantModel::kTag) {
            registry.counter(prefix + ".constant").add(1);
        } else if (model->tag() == MarkovModel::kTag) {
            registry.counter(prefix + ".markov").add(1);
            states.record(static_cast<std::int64_t>(
                static_cast<const MarkovModel *>(model.get())
                    ->chain()
                    .numStates()));
        } else {
            registry.counter(prefix + ".other").add(1);
        }
    };

    for (const LeafModel &leaf : profile.leaves) {
        census("delta_time", leaf.deltaTime);
        census("stride", leaf.stride);
        census("op", leaf.op);
        census("size", leaf.size);
    }
}

} // namespace

LeafModel
modelLeaf(const Leaf &leaf, const LeafModelerHooks &hooks)
{
    assert(!leaf.requests.empty());

    LeafModel model;
    model.startTime = leaf.requests.front().tick;
    model.startAddr = leaf.requests.front().addr;
    model.addrLo = leaf.addrLo;
    model.addrHi = leaf.addrHi;
    model.count = leaf.requests.size();

    model.deltaTime = hooks.deltaTime(deltaTimes(leaf.requests));
    model.stride = hooks.stride(strides(leaf.requests));
    model.op = hooks.op(operations(leaf.requests));
    model.size = hooks.size(sizes(leaf.requests));
    return model;
}

Profile
buildProfile(const mem::Trace &trace, const PartitionConfig &config,
             const LeafModelerHooks &hooks, unsigned threads)
{
    telemetry::Span span("profile.build");

    Profile profile;
    profile.name = trace.name();
    profile.device = trace.device();
    profile.config = config;

    // Leaves are independent once partitioned: fan the McC fitting out
    // across workers, each writing its own slot so the leaf order (and
    // hence the encoded profile) is identical at every thread count.
    std::vector<Leaf> leaves;
    {
        telemetry::Span partition_span("profile.partition");
        leaves = buildLeaves(trace, config);
    }
    {
        telemetry::Span fit_span("profile.fit");
        profile.leaves.resize(leaves.size());
        util::parallelFor(
            leaves.size(),
            [&](std::size_t i) {
                profile.leaves[i] = modelLeaf(leaves[i], hooks);
            },
            threads);
    }
    if (telemetry::enabled())
        recordModelCensus(profile);
    return profile;
}

} // namespace mocktails::core
