#include "core/model_generator.hpp"

#include <cassert>

#include "core/features.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::core
{

LeafModel
modelLeaf(const Leaf &leaf, const LeafModelerHooks &hooks)
{
    assert(!leaf.requests.empty());

    LeafModel model;
    model.startTime = leaf.requests.front().tick;
    model.startAddr = leaf.requests.front().addr;
    model.addrLo = leaf.addrLo;
    model.addrHi = leaf.addrHi;
    model.count = leaf.requests.size();

    model.deltaTime = hooks.deltaTime(deltaTimes(leaf.requests));
    model.stride = hooks.stride(strides(leaf.requests));
    model.op = hooks.op(operations(leaf.requests));
    model.size = hooks.size(sizes(leaf.requests));
    return model;
}

Profile
buildProfile(const mem::Trace &trace, const PartitionConfig &config,
             const LeafModelerHooks &hooks, unsigned threads)
{
    Profile profile;
    profile.name = trace.name();
    profile.device = trace.device();
    profile.config = config;

    // Leaves are independent once partitioned: fan the McC fitting out
    // across workers, each writing its own slot so the leaf order (and
    // hence the encoded profile) is identical at every thread count.
    const std::vector<Leaf> leaves = buildLeaves(trace, config);
    profile.leaves.resize(leaves.size());
    util::parallelFor(
        leaves.size(),
        [&](std::size_t i) {
            profile.leaves[i] = modelLeaf(leaves[i], hooks);
        },
        threads);
    return profile;
}

} // namespace mocktails::core
