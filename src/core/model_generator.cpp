#include "core/model_generator.hpp"

#include <cassert>

#include "core/features.hpp"

namespace mocktails::core
{

LeafModel
modelLeaf(const Leaf &leaf, const LeafModelerHooks &hooks)
{
    assert(!leaf.requests.empty());

    LeafModel model;
    model.startTime = leaf.requests.front().tick;
    model.startAddr = leaf.requests.front().addr;
    model.addrLo = leaf.addrLo;
    model.addrHi = leaf.addrHi;
    model.count = leaf.requests.size();

    model.deltaTime = hooks.deltaTime(deltaTimes(leaf.requests));
    model.stride = hooks.stride(strides(leaf.requests));
    model.op = hooks.op(operations(leaf.requests));
    model.size = hooks.size(sizes(leaf.requests));
    return model;
}

Profile
buildProfile(const mem::Trace &trace, const PartitionConfig &config,
             const LeafModelerHooks &hooks)
{
    Profile profile;
    profile.name = trace.name();
    profile.device = trace.device();
    profile.config = config;

    for (const Leaf &leaf : buildLeaves(trace, config))
        profile.leaves.push_back(modelLeaf(leaf, hooks));
    return profile;
}

} // namespace mocktails::core
