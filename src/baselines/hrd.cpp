#include "baselines/hrd.hpp"

#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "baselines/reuse.hpp"

namespace mocktails::baselines
{

std::uint64_t
HrdProfile::metadataBytes() const
{
    // Two histograms plus the size distribution and the four operation
    // counters; ~12 bytes per (value, count) bin when varint-encoded.
    return 12 * (reuseFine.size() + reuseCoarse.size() +
                 sizeCounts.size()) +
           4 * 8 + 16;
}

HrdProfile
buildHrd(const mem::Trace &trace, const HrdConfig &config)
{
    HrdProfile profile;
    profile.config = config;
    profile.requests = trace.size();

    ReuseDistanceTracker fine;
    ReuseDistanceTracker coarse;
    std::unordered_set<std::uint64_t> dirty;

    for (const mem::Request &r : trace) {
        const std::uint64_t fine_key = r.addr / config.fineBlock;
        const std::uint64_t coarse_key = r.addr / config.coarseBlock;

        const std::int64_t d_fine = fine.access(fine_key);
        const std::int64_t d_coarse = coarse.access(coarse_key);
        ++profile.reuseFine[d_fine];
        if (d_fine == reuseInfinite)
            ++profile.reuseCoarse[d_coarse];

        const bool is_dirty = dirty.count(fine_key) != 0;
        if (r.isWrite()) {
            if (is_dirty)
                ++profile.dirtyWrites;
            else
                ++profile.cleanWrites;
            dirty.insert(fine_key);
        } else {
            if (is_dirty)
                ++profile.dirtyReads;
            else
                ++profile.cleanReads;
        }

        ++profile.sizeCounts[static_cast<std::int64_t>(r.size)];
    }
    return profile;
}

namespace
{

/** Draw a key from a count map under strict convergence. */
std::int64_t
drawConverging(std::map<std::int64_t, std::uint64_t> &counts,
               std::uint64_t &total, util::Rng &rng)
{
    assert(total > 0);
    std::uint64_t target = rng.below(total);
    for (auto &[value, count] : counts) {
        if (target < count) {
            --count;
            --total;
            return value;
        }
        target -= count;
    }
    // Unreachable with a consistent total.
    assert(false);
    return counts.begin()->first;
}

/** An LRU stack with positional access (index 0 = most recent). */
class LruStack
{
  public:
    std::size_t size() const { return entries_.size(); }

    std::uint64_t at(std::size_t depth) const { return entries_[depth]; }

    /** Move the entry at @p depth to the top. */
    void
    touch(std::size_t depth)
    {
        const std::uint64_t value = entries_[depth];
        entries_.erase(entries_.begin() +
                       static_cast<std::ptrdiff_t>(depth));
        entries_.push_front(value);
    }

    /** Move @p value to the top, inserting it if absent (O(n)). */
    void
    promote(std::uint64_t value)
    {
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i] == value) {
                touch(i);
                return;
            }
        }
        entries_.push_front(value);
    }

    void push(std::uint64_t value) { entries_.push_front(value); }

  private:
    std::deque<std::uint64_t> entries_;
};

} // namespace

mem::Trace
synthesizeHrd(const HrdProfile &profile, std::uint64_t seed)
{
    util::Rng rng(seed);
    mem::Trace out("hrd-synth", "CPU");
    out.requests().reserve(profile.requests);

    const std::uint64_t blocks_per_region =
        profile.config.coarseBlock / profile.config.fineBlock;

    // Mutable copies of the histograms (strict convergence).
    auto reuse_fine = profile.reuseFine;
    auto reuse_coarse = profile.reuseCoarse;
    auto size_counts = profile.sizeCounts;
    std::uint64_t fine_total = 0, coarse_total = 0, size_total = 0;
    for (const auto &[v, c] : reuse_fine)
        fine_total += c;
    for (const auto &[v, c] : reuse_coarse)
        coarse_total += c;
    for (const auto &[v, c] : size_counts)
        size_total += c;

    // Operation budgets by block state.
    std::uint64_t clean_reads = profile.cleanReads;
    std::uint64_t clean_writes = profile.cleanWrites;
    std::uint64_t dirty_reads = profile.dirtyReads;
    std::uint64_t dirty_writes = profile.dirtyWrites;

    LruStack fine_stack;   // fine block numbers
    LruStack coarse_stack; // region numbers
    std::unordered_map<std::uint64_t, std::uint64_t> region_fill;
    std::unordered_set<std::uint64_t> dirty;
    std::uint64_t fresh_region = 0x40000; // synthetic address space base

    for (std::uint64_t i = 0; i < profile.requests; ++i) {
        assert(fine_total > 0);
        const std::int64_t d_fine =
            drawConverging(reuse_fine, fine_total, rng);

        std::uint64_t block;
        if (d_fine != reuseInfinite && fine_stack.size() > 0) {
            // Clamp distances that exceed the current stack depth.
            const std::size_t depth =
                std::min(static_cast<std::size_t>(d_fine),
                         fine_stack.size() - 1);
            block = fine_stack.at(depth);
            fine_stack.touch(depth);
            coarse_stack.promote(block / blocks_per_region);
        } else {
            // Cold fine access: place it via the coarse model.
            std::uint64_t region;
            std::int64_t d_coarse = reuseInfinite;
            if (coarse_total > 0)
                d_coarse = drawConverging(reuse_coarse, coarse_total,
                                          rng);
            if (d_coarse != reuseInfinite && coarse_stack.size() > 0) {
                const std::size_t depth =
                    std::min(static_cast<std::size_t>(d_coarse),
                             coarse_stack.size() - 1);
                region = coarse_stack.at(depth);
                coarse_stack.touch(depth);
            } else {
                region = fresh_region++;
                coarse_stack.push(region);
            }

            // A cold fine access must touch a brand-new block so the
            // footprint is preserved; when the sampled region has no
            // untouched block left, spill into a fresh region.
            if (region_fill[region] >= blocks_per_region) {
                region = fresh_region++;
                coarse_stack.push(region);
            }
            std::uint64_t &fill = region_fill[region];
            block = region * blocks_per_region + fill++;
            fine_stack.push(block);
        }

        // Operation via the clean/dirty state model.
        const bool is_dirty = dirty.count(block) != 0;
        std::uint64_t &reads = is_dirty ? dirty_reads : clean_reads;
        std::uint64_t &writes = is_dirty ? dirty_writes : clean_writes;
        bool write;
        if (reads + writes > 0) {
            write = rng.below(reads + writes) >= reads;
        } else {
            // State budget exhausted; draw from the combined budget.
            const std::uint64_t r = clean_reads + dirty_reads;
            const std::uint64_t w = clean_writes + dirty_writes;
            write = (r + w == 0) ? false : rng.below(r + w) >= r;
        }
        if (write) {
            if (writes > 0)
                --writes;
            else if (clean_writes + dirty_writes > 0)
                --(clean_writes > 0 ? clean_writes : dirty_writes);
            dirty.insert(block);
        } else if (reads > 0) {
            --reads;
        } else if (clean_reads + dirty_reads > 0) {
            --(clean_reads > 0 ? clean_reads : dirty_reads);
        }

        const auto size = static_cast<std::uint32_t>(
            size_total > 0 ? drawConverging(size_counts, size_total, rng)
                           : 1);

        out.add(i, block * profile.config.fineBlock, size,
                write ? mem::Op::Write : mem::Op::Read);
    }
    return out;
}

} // namespace mocktails::baselines
