/**
 * @file
 * STM-style feature models (Awad & Solihin, HPCA 2014).
 *
 * The paper's 2L-TS (STM) configuration swaps STM models in for the
 * stride and operation features inside the same Mocktails hierarchy
 * (Sec. IV-A): a stride pattern table that predicts the next stride
 * from a history of up to 8 strides (32 table rows), and an operation
 * model based on a single read probability. Strict convergence is kept
 * so the exact number of reads and writes is reproduced.
 */

#ifndef MOCKTAILS_BASELINES_STM_HPP
#define MOCKTAILS_BASELINES_STM_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "core/mcc.hpp"
#include "core/model_generator.hpp"

namespace mocktails::baselines
{

/**
 * STM table sizing, matching the paper's configuration.
 */
struct StmConfig
{
    std::uint32_t maxHistory = 8;  ///< strides of history per row
    std::uint32_t maxRows = 32;    ///< stride-pattern table capacity
};

/**
 * Operation model: a single read probability with strict convergence
 * (the remaining read/write budget is consumed as values are drawn).
 */
class StmOpModel : public core::FeatureModel
{
  public:
    static constexpr std::uint8_t kTag = 3;

    StmOpModel(std::uint64_t reads, std::uint64_t writes)
        : reads_(reads), writes_(writes)
    {}

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

    std::uint64_t sequenceLength() const override
    {
        return reads_ + writes_;
    }
    std::unique_ptr<core::FeatureSampler>
    makeSampler(util::Rng &rng) const override;
    std::uint8_t tag() const override { return kTag; }
    void encodePayload(util::ByteWriter &writer) const override;

    static core::FeatureModelPtr decodePayload(util::ByteReader &reader);

  private:
    std::uint64_t reads_;
    std::uint64_t writes_;
};

/**
 * Stride pattern table: rows keyed by a history of preceding strides;
 * each row holds counts of the stride that followed. Lookups fall back
 * from the longest matching history suffix to the global stride
 * distribution. A strict-convergence value budget keeps the generated
 * stride multiset equal to the observed one.
 */
class StmStrideModel : public core::FeatureModel
{
  public:
    static constexpr std::uint8_t kTag = 4;

    using History = std::vector<std::int64_t>;
    using Row = std::vector<std::pair<std::int64_t, std::uint64_t>>;

    /** Fit from a stride sequence. @pre !strides.empty() */
    StmStrideModel(const std::vector<std::int64_t> &strides,
                   const StmConfig &config);

    /** Direct construction (decoding). */
    StmStrideModel(std::map<History, Row> table, Row global,
                   std::int64_t initial, StmConfig config);

    std::uint64_t sequenceLength() const override;
    std::unique_ptr<core::FeatureSampler>
    makeSampler(util::Rng &rng) const override;
    std::uint8_t tag() const override { return kTag; }
    void encodePayload(util::ByteWriter &writer) const override;

    static core::FeatureModelPtr decodePayload(util::ByteReader &reader);

    std::size_t numRows() const { return table_.size(); }
    const Row &globalDistribution() const { return global_; }

  private:
    friend class StmStrideSampler;

    std::map<History, Row> table_;
    Row global_;            ///< counts of every observed stride
    std::int64_t initial_;  ///< first stride of the sequence
    StmConfig config_;
};

/**
 * Leaf modeler hooks for the paper's 2L-TS (STM) configuration: STM
 * models for stride and operation, McC for delta time and size.
 */
core::LeafModelerHooks stmHooks(const StmConfig &config = StmConfig{});

/** Register STM decoders with the profile codec (idempotent). */
void registerStmModels();

} // namespace mocktails::baselines

#endif // MOCKTAILS_BASELINES_STM_HPP
