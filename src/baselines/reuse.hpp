/**
 * @file
 * LRU reuse (stack) distance computation.
 *
 * Reuse distance — the number of *unique* addresses referenced between
 * consecutive accesses to the same address (Bennett & Kruskal; Mattson
 * et al.) — underlies the HRD baseline. The computation uses the
 * classic Fenwick-tree formulation and runs in O(n log n).
 */

#ifndef MOCKTAILS_BASELINES_REUSE_HPP
#define MOCKTAILS_BASELINES_REUSE_HPP

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace mocktails::baselines
{

/** Reuse distance reported for a first-touch (cold) access. */
constexpr std::int64_t reuseInfinite = -1;

/**
 * Streaming reuse-distance calculator over an arbitrary key space.
 */
class ReuseDistanceTracker
{
  public:
    /**
     * Record an access to @p key.
     * @return The LRU stack distance (unique keys since the previous
     *         access to @p key), or reuseInfinite on first touch.
     */
    std::int64_t access(std::uint64_t key);

    /** Number of distinct keys seen. */
    std::size_t uniqueKeys() const { return last_access_.size(); }

  private:
    void bitAdd(std::size_t pos, std::int64_t delta);
    std::int64_t bitSum(std::size_t pos) const;

    // Fenwick tree over access timestamps; a 1 marks the most recent
    // access of some key.
    std::vector<std::int64_t> tree_;
    std::unordered_map<std::uint64_t, std::size_t> last_access_;
    std::size_t time_ = 0;
};

/**
 * Compute the full reuse-distance sequence of a key sequence.
 */
std::vector<std::int64_t>
reuseDistances(const std::vector<std::uint64_t> &keys);

} // namespace mocktails::baselines

#endif // MOCKTAILS_BASELINES_REUSE_HPP
