#include "baselines/reuse.hpp"

namespace mocktails::baselines
{

void
ReuseDistanceTracker::bitAdd(std::size_t pos, std::int64_t delta)
{
    for (std::size_t i = pos + 1; i <= tree_.size(); i += i & (~i + 1))
        tree_[i - 1] += delta;
}

std::int64_t
ReuseDistanceTracker::bitSum(std::size_t pos) const
{
    std::int64_t sum = 0;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1))
        sum += tree_[i - 1];
    return sum;
}

std::int64_t
ReuseDistanceTracker::access(std::uint64_t key)
{
    // Grow the tree lazily; doubling keeps prefix sums valid because
    // new slots are zero.
    if (time_ >= tree_.size()) {
        std::vector<std::int64_t> bigger(
            std::max<std::size_t>(1024, tree_.size() * 2), 0);
        // Rebuild: re-insert the current marks.
        std::vector<std::int64_t> old = std::move(tree_);
        tree_ = std::move(bigger);
        for (const auto &[k, t] : last_access_) {
            (void)k;
            bitAdd(t, 1);
        }
        (void)old;
    }

    std::int64_t distance = reuseInfinite;
    const auto it = last_access_.find(key);
    if (it != last_access_.end()) {
        // Unique keys touched after the previous access = marks in
        // (prev, now).
        distance = bitSum(time_ - 1) - bitSum(it->second);
        bitAdd(it->second, -1);
    }

    bitAdd(time_, 1);
    last_access_[key] = time_;
    ++time_;
    return distance;
}

std::vector<std::int64_t>
reuseDistances(const std::vector<std::uint64_t> &keys)
{
    ReuseDistanceTracker tracker;
    std::vector<std::int64_t> out;
    out.reserve(keys.size());
    for (const std::uint64_t key : keys)
        out.push_back(tracker.access(key));
    return out;
}

} // namespace mocktails::baselines
