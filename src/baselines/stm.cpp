#include "baselines/stm.hpp"

#include <algorithm>
#include <cassert>

#include "core/profile.hpp"

namespace mocktails::baselines
{

namespace
{

/** Sampler for StmOpModel: memoryless draws from the remaining
 *  read/write budget. */
class StmOpSampler : public core::FeatureSampler
{
  public:
    StmOpSampler(std::uint64_t reads, std::uint64_t writes,
                 util::Rng &rng)
        : reads_(reads), writes_(writes), rng_(&rng)
    {}

    std::int64_t
    next() override
    {
        assert(reads_ + writes_ > 0);
        const std::uint64_t pick = rng_->below(reads_ + writes_);
        if (pick < reads_) {
            --reads_;
            return 0; // read
        }
        --writes_;
        return 1; // write
    }

  private:
    std::uint64_t reads_;
    std::uint64_t writes_;
    util::Rng *rng_;
};

} // namespace

std::unique_ptr<core::FeatureSampler>
StmOpModel::makeSampler(util::Rng &rng) const
{
    return std::make_unique<StmOpSampler>(reads_, writes_, rng);
}

void
StmOpModel::encodePayload(util::ByteWriter &writer) const
{
    writer.putVarint(reads_);
    writer.putVarint(writes_);
}

core::FeatureModelPtr
StmOpModel::decodePayload(util::ByteReader &reader)
{
    const std::uint64_t reads = reader.getVarint();
    const std::uint64_t writes = reader.getVarint();
    if (!reader.ok())
        return nullptr;
    return std::make_unique<StmOpModel>(reads, writes);
}

StmStrideModel::StmStrideModel(const std::vector<std::int64_t> &strides,
                               const StmConfig &config)
    : initial_(strides.front()), config_(config)
{
    assert(!strides.empty());

    // Global stride counts (also the strict-convergence budget).
    std::map<std::int64_t, std::uint64_t> global_counts;
    for (const std::int64_t s : strides)
        ++global_counts[s];
    for (const auto &[value, count] : global_counts)
        global_.emplace_back(value, count);

    // Pattern table rows keyed by the (up to maxHistory) preceding
    // strides.
    std::map<History, std::map<std::int64_t, std::uint64_t>> counts;
    History history;
    for (std::size_t i = 0; i < strides.size(); ++i) {
        if (!history.empty())
            ++counts[history][strides[i]];
        history.push_back(strides[i]);
        if (history.size() > config_.maxHistory)
            history.erase(history.begin());
    }

    // Enforce the row capacity: keep the most frequently used rows.
    if (counts.size() > config_.maxRows) {
        std::vector<std::pair<std::uint64_t, const History *>> ranked;
        ranked.reserve(counts.size());
        for (const auto &[key, row] : counts) {
            std::uint64_t total = 0;
            for (const auto &[value, count] : row)
                total += count;
            ranked.emplace_back(total, &key);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first > b.first;
                      return *a.second < *b.second;
                  });
        std::map<History, std::map<std::int64_t, std::uint64_t>> kept;
        for (std::uint32_t i = 0; i < config_.maxRows; ++i)
            kept.emplace(*ranked[i].second, counts[*ranked[i].second]);
        counts = std::move(kept);
    }

    for (const auto &[key, row] : counts) {
        Row out;
        out.reserve(row.size());
        for (const auto &[value, count] : row)
            out.emplace_back(value, count);
        table_.emplace(key, std::move(out));
    }
}

StmStrideModel::StmStrideModel(std::map<History, Row> table, Row global,
                               std::int64_t initial, StmConfig config)
    : table_(std::move(table)), global_(std::move(global)),
      initial_(initial), config_(config)
{}

std::uint64_t
StmStrideModel::sequenceLength() const
{
    std::uint64_t total = 0;
    for (const auto &[value, count] : global_)
        total += count;
    return total;
}

/** Sampler walking the stride pattern table with a value budget.
 *  Not in an anonymous namespace: it is a friend of StmStrideModel. */
class StmStrideSampler : public core::FeatureSampler
{
  public:
    StmStrideSampler(const StmStrideModel &model, util::Rng &rng);

    std::int64_t next() override;

  private:
    std::int64_t pickFromRow(const StmStrideModel::Row &row);
    std::int64_t pickFromBudget();
    bool consume(std::int64_t value);

    const StmStrideModel *model_;
    util::Rng *rng_;
    std::map<std::int64_t, std::uint64_t> budget_;
    std::uint64_t budget_total_ = 0;
    StmStrideModel::History history_;
    std::uint64_t generated_ = 0;
};

StmStrideSampler::StmStrideSampler(const StmStrideModel &model,
                                   util::Rng &rng)
    : model_(&model), rng_(&rng)
{
    for (const auto &[value, count] : model.globalDistribution()) {
        budget_[value] = count;
        budget_total_ += count;
    }
}

std::int64_t
StmStrideSampler::pickFromRow(const StmStrideModel::Row &row)
{
    std::uint64_t total = 0;
    for (const auto &[value, count] : row) {
        const auto it = budget_.find(value);
        if (it != budget_.end() && it->second > 0)
            total += count;
    }
    if (total == 0)
        return pickFromBudget();

    std::uint64_t target = rng_->below(total);
    for (const auto &[value, count] : row) {
        const auto it = budget_.find(value);
        if (it == budget_.end() || it->second == 0)
            continue;
        if (target < count)
            return value;
        target -= count;
    }
    return pickFromBudget(); // unreachable
}

std::int64_t
StmStrideSampler::pickFromBudget()
{
    assert(budget_total_ > 0);
    std::uint64_t target = rng_->below(budget_total_);
    for (const auto &[value, count] : budget_) {
        if (target < count)
            return value;
        target -= count;
    }
    return budget_.rbegin()->first; // unreachable
}

bool
StmStrideSampler::consume(std::int64_t value)
{
    const auto it = budget_.find(value);
    assert(it != budget_.end() && it->second > 0);
    --it->second;
    --budget_total_;
    return true;
}

std::int64_t
StmStrideSampler::next()
{
    std::int64_t value;
    if (generated_ == 0) {
        // Honour the recorded first stride when its budget allows.
        value = budget_.count(model_->initial_) &&
                        budget_[model_->initial_] > 0
                    ? model_->initial_
                    : pickFromBudget();
    } else {
        // Longest matching history suffix, then the global budget.
        const StmStrideModel::Row *row = nullptr;
        StmStrideModel::History key = history_;
        while (!key.empty()) {
            const auto it = model_->table_.find(key);
            if (it != model_->table_.end()) {
                row = &it->second;
                break;
            }
            key.erase(key.begin());
        }
        value = row ? pickFromRow(*row) : pickFromBudget();
    }

    consume(value);
    history_.push_back(value);
    if (history_.size() > model_->config_.maxHistory)
        history_.erase(history_.begin());
    ++generated_;
    return value;
}

std::unique_ptr<core::FeatureSampler>
StmStrideModel::makeSampler(util::Rng &rng) const
{
    return std::make_unique<StmStrideSampler>(*this, rng);
}

void
StmStrideModel::encodePayload(util::ByteWriter &writer) const
{
    writer.putVarint(config_.maxHistory);
    writer.putVarint(config_.maxRows);
    writer.putSigned(initial_);

    writer.putVarint(global_.size());
    for (const auto &[value, count] : global_) {
        writer.putSigned(value);
        writer.putVarint(count);
    }

    writer.putVarint(table_.size());
    for (const auto &[key, row] : table_) {
        writer.putVarint(key.size());
        for (const std::int64_t s : key)
            writer.putSigned(s);
        writer.putVarint(row.size());
        for (const auto &[value, count] : row) {
            writer.putSigned(value);
            writer.putVarint(count);
        }
    }
}

core::FeatureModelPtr
StmStrideModel::decodePayload(util::ByteReader &reader)
{
    StmConfig config;
    config.maxHistory = static_cast<std::uint32_t>(reader.getVarint());
    config.maxRows = static_cast<std::uint32_t>(reader.getVarint());
    const std::int64_t initial = reader.getSigned();

    const std::uint64_t global_size = reader.getVarint();
    if (!reader.ok() || global_size > reader.remaining() + 16)
        return nullptr;
    Row global;
    global.reserve(global_size);
    for (std::uint64_t i = 0; i < global_size; ++i) {
        const std::int64_t value = reader.getSigned();
        const std::uint64_t count = reader.getVarint();
        global.emplace_back(value, count);
    }

    const std::uint64_t rows = reader.getVarint();
    // Each row needs at least 2 bytes (key size + row size).
    if (!reader.ok() || rows > reader.remaining() / 2 + 1)
        return nullptr;
    std::map<History, Row> table;
    for (std::uint64_t i = 0; i < rows; ++i) {
        const std::uint64_t key_size = reader.getVarint();
        if (!reader.ok() || key_size > 64)
            return nullptr;
        History key(key_size);
        for (auto &s : key)
            s = reader.getSigned();
        const std::uint64_t row_size = reader.getVarint();
        if (!reader.ok() || row_size > reader.remaining() + 16)
            return nullptr;
        Row row;
        row.reserve(row_size);
        for (std::uint64_t j = 0; j < row_size; ++j) {
            const std::int64_t value = reader.getSigned();
            const std::uint64_t count = reader.getVarint();
            row.emplace_back(value, count);
        }
        table.emplace(std::move(key), std::move(row));
    }

    if (!reader.ok())
        return nullptr;
    return std::make_unique<StmStrideModel>(std::move(table),
                                            std::move(global), initial,
                                            config);
}

core::LeafModelerHooks
stmHooks(const StmConfig &config)
{
    core::LeafModelerHooks hooks;
    hooks.op = [](const std::vector<std::int64_t> &values)
        -> core::FeatureModelPtr {
        if (values.empty())
            return nullptr;
        std::uint64_t reads = 0;
        for (const std::int64_t v : values)
            reads += (v == 0);
        return std::make_unique<StmOpModel>(reads,
                                            values.size() - reads);
    };
    hooks.stride = [config](const std::vector<std::int64_t> &values)
        -> core::FeatureModelPtr {
        if (values.empty())
            return nullptr;
        return std::make_unique<StmStrideModel>(values, config);
    };
    return hooks;
}

void
registerStmModels()
{
    core::registerFeatureModelDecoder(StmOpModel::kTag,
                                      &StmOpModel::decodePayload);
    core::registerFeatureModelDecoder(StmStrideModel::kTag,
                                      &StmStrideModel::decodePayload);
}

} // namespace mocktails::baselines
