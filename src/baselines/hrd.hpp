/**
 * @file
 * The HRD baseline (Maeda et al., HPCA 2017).
 *
 * Hierarchical Reuse Distance models a CPU access stream with reuse-
 * distance histograms at two block granularities — 64 B first and,
 * for cold 64 B misses, 4 KiB — plus a multi-state operation model
 * with explicit clean/dirty states. No temporal phase partitioning is
 * applied (paper Sec. V-A). Synthesis replays the histograms against
 * synthetic LRU stacks to produce an address stream with matching
 * temporal locality.
 */

#ifndef MOCKTAILS_BASELINES_HRD_HPP
#define MOCKTAILS_BASELINES_HRD_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "mem/trace.hpp"
#include "util/rng.hpp"

namespace mocktails::baselines
{

/**
 * HRD model parameters.
 */
struct HrdConfig
{
    std::uint32_t fineBlock = 64;     ///< fine granularity (bytes)
    std::uint32_t coarseBlock = 4096; ///< coarse granularity (bytes)
};

/**
 * The fitted HRD model.
 */
struct HrdProfile
{
    HrdConfig config;
    std::uint64_t requests = 0;

    /// Reuse-distance histograms; key reuseInfinite = cold access.
    std::map<std::int64_t, std::uint64_t> reuseFine;
    std::map<std::int64_t, std::uint64_t> reuseCoarse;

    /// Operation model: counts by (block state, operation).
    std::uint64_t cleanReads = 0;
    std::uint64_t cleanWrites = 0;
    std::uint64_t dirtyReads = 0;
    std::uint64_t dirtyWrites = 0;

    /// Request size distribution (value -> count).
    std::map<std::int64_t, std::uint64_t> sizeCounts;

    /** Approximate in-memory metadata footprint, in bytes. */
    std::uint64_t metadataBytes() const;
};

/** Fit an HRD profile to a trace. */
HrdProfile buildHrd(const mem::Trace &trace,
                    const HrdConfig &config = HrdConfig{});

/**
 * Synthesise a trace from an HRD profile. Ticks are sequence numbers
 * (HRD targets atomic/order-only simulation).
 */
mem::Trace synthesizeHrd(const HrdProfile &profile,
                         std::uint64_t seed = 1);

} // namespace mocktails::baselines

#endif // MOCKTAILS_BASELINES_HRD_HPP
