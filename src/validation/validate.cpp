#include "validation/validate.hpp"

#include <cstdio>

#include "cache/hierarchy.hpp"
#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "util/stats.hpp"

namespace mocktails::validation
{

namespace
{

void
addMetric(std::vector<MetricComparison> &out, std::string name,
          double baseline, double synthetic)
{
    MetricComparison metric;
    metric.name = std::move(name);
    metric.baseline = baseline;
    metric.synthetic = synthetic;
    metric.errorPercent = util::percentError(synthetic, baseline);
    out.push_back(std::move(metric));
}

void
compareOnDram(const mem::Trace &baseline, const mem::Trace &synthetic,
              std::vector<MetricComparison> &out)
{
    const auto base = dram::simulateTrace(baseline);
    const auto synth = dram::simulateTrace(synthetic);

    addMetric(out, "dram.read_bursts",
              static_cast<double>(base.readBursts()),
              static_cast<double>(synth.readBursts()));
    addMetric(out, "dram.write_bursts",
              static_cast<double>(base.writeBursts()),
              static_cast<double>(synth.writeBursts()));
    addMetric(out, "dram.read_row_hits",
              static_cast<double>(base.readRowHits()),
              static_cast<double>(synth.readRowHits()));
    addMetric(out, "dram.write_row_hits",
              static_cast<double>(base.writeRowHits()),
              static_cast<double>(synth.writeRowHits()));
    addMetric(out, "dram.avg_read_latency", base.avgReadLatency(),
              synth.avgReadLatency());
}

void
compareOnCaches(const mem::Trace &baseline,
                const mem::Trace &synthetic,
                std::vector<MetricComparison> &out)
{
    cache::Hierarchy base_h{cache::HierarchyConfig{}};
    base_h.run(baseline);
    cache::Hierarchy synth_h{cache::HierarchyConfig{}};
    synth_h.run(synthetic);

    addMetric(out, "cache.l1_miss_rate",
              100.0 * base_h.l1Stats().missRate(),
              100.0 * synth_h.l1Stats().missRate());
    addMetric(out, "cache.l2_miss_rate",
              100.0 * base_h.l2Stats().missRate(),
              100.0 * synth_h.l2Stats().missRate());
    addMetric(out, "cache.l1_writebacks",
              static_cast<double>(base_h.l1Stats().writebacks),
              static_cast<double>(synth_h.l1Stats().writebacks));
    addMetric(out, "cache.footprint_blocks",
              static_cast<double>(base_h.footprintBlocks()),
              static_cast<double>(synth_h.footprintBlocks()));
}

void
finalize(ValidationReport &report, double threshold)
{
    double worst = 0.0;
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto *metrics :
         {&report.dramMetrics, &report.cacheMetrics}) {
        for (const auto &metric : *metrics) {
            worst = std::max(worst, metric.errorPercent);
            sum += metric.errorPercent;
            ++count;
        }
    }
    report.worstErrorPercent = worst;
    report.meanErrorPercent =
        count == 0 ? 0.0 : sum / static_cast<double>(count);
    report.passed = worst <= threshold;
}

} // namespace

ValidationReport
validateProfile(const mem::Trace &trace, const core::Profile &profile,
                const ValidationOptions &options)
{
    const mem::Trace synthetic =
        core::synthesize(profile, options.seed, options.threads);

    ValidationReport report;
    if (options.dram)
        compareOnDram(trace, synthetic, report.dramMetrics);
    if (options.cache)
        compareOnCaches(trace, synthetic, report.cacheMetrics);
    finalize(report, options.passThresholdPercent);
    return report;
}

ValidationReport
validateConfig(const mem::Trace &trace,
               const core::PartitionConfig &config,
               const ValidationOptions &options)
{
    return validateProfile(trace,
                           core::buildProfile(trace, config,
                                              core::LeafModelerHooks{},
                                              options.threads),
                           options);
}

std::string
formatReport(const ValidationReport &report)
{
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line), "%-24s %14s %14s %9s\n",
                  "metric", "baseline", "synthetic", "error");
    out += line;
    for (const auto *metrics :
         {&report.dramMetrics, &report.cacheMetrics}) {
        for (const auto &metric : *metrics) {
            std::snprintf(line, sizeof(line),
                          "%-24s %14.1f %14.1f %8.2f%%\n",
                          metric.name.c_str(), metric.baseline,
                          metric.synthetic, metric.errorPercent);
            out += line;
        }
    }
    std::snprintf(line, sizeof(line),
                  "worst %.2f%%, mean %.2f%% -> %s\n",
                  report.worstErrorPercent, report.meanErrorPercent,
                  report.passed ? "PASS" : "FAIL");
    out += line;
    return out;
}

} // namespace mocktails::validation
