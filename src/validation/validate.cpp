#include "validation/validate.hpp"

#include <cstdio>
#include <functional>
#include <vector>

#include "cache/hierarchy.hpp"
#include "core/model_generator.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::validation
{

void
appendMetric(std::vector<MetricComparison> &out, std::string name,
             double baseline, double synthetic)
{
    MetricComparison metric;
    metric.name = std::move(name);
    metric.baseline = baseline;
    metric.synthetic = synthetic;
    metric.errorPercent = util::percentError(synthetic, baseline);
    out.push_back(std::move(metric));
}

void
appendDramMetrics(const dram::SimulationResult &base,
            const dram::SimulationResult &synth,
            std::vector<MetricComparison> &out)
{
    appendMetric(out, "dram.read_bursts",
              static_cast<double>(base.readBursts()),
              static_cast<double>(synth.readBursts()));
    appendMetric(out, "dram.write_bursts",
              static_cast<double>(base.writeBursts()),
              static_cast<double>(synth.writeBursts()));
    appendMetric(out, "dram.read_row_hits",
              static_cast<double>(base.readRowHits()),
              static_cast<double>(synth.readRowHits()));
    appendMetric(out, "dram.write_row_hits",
              static_cast<double>(base.writeRowHits()),
              static_cast<double>(synth.writeRowHits()));
    appendMetric(out, "dram.avg_read_latency", base.avgReadLatency(),
              synth.avgReadLatency());
}

void
appendCacheMetrics(const cache::Hierarchy &base_h,
             const cache::Hierarchy &synth_h,
             std::vector<MetricComparison> &out)
{
    appendMetric(out, "cache.l1_miss_rate",
              100.0 * base_h.l1Stats().missRate(),
              100.0 * synth_h.l1Stats().missRate());
    appendMetric(out, "cache.l2_miss_rate",
              100.0 * base_h.l2Stats().missRate(),
              100.0 * synth_h.l2Stats().missRate());
    appendMetric(out, "cache.l1_writebacks",
              static_cast<double>(base_h.l1Stats().writebacks),
              static_cast<double>(synth_h.l1Stats().writebacks));
    appendMetric(out, "cache.footprint_blocks",
              static_cast<double>(base_h.footprintBlocks()),
              static_cast<double>(synth_h.footprintBlocks()));
}

void
finalizeReport(ValidationReport &report, double thresholdPercent)
{
    double worst = 0.0;
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto *metrics :
         {&report.dramMetrics, &report.cacheMetrics}) {
        for (const auto &metric : *metrics) {
            worst = std::max(worst, metric.errorPercent);
            sum += metric.errorPercent;
            ++count;
        }
    }
    report.worstErrorPercent = worst;
    report.meanErrorPercent =
        count == 0 ? 0.0 : sum / static_cast<double>(count);
    report.passed = worst <= thresholdPercent;
}

ValidationReport
validateProfile(const mem::Trace &trace, const core::Profile &profile,
                const ValidationOptions &options)
{
    const mem::Trace synthetic =
        core::synthesize(profile, options.seed, options.threads);

    // The four substrate runs (DRAM/cache × baseline/synthetic) are
    // independent, so they fan out over the shared pool. Each task
    // writes only its own slot and the metric tables are assembled in
    // a fixed order afterwards, which keeps the report bit-identical
    // at every thread count.
    dram::SimulationOptions sim_options;
    sim_options.threads = options.threads;

    dram::SimulationResult dram_base;
    dram::SimulationResult dram_synth;
    cache::Hierarchy cache_base{cache::HierarchyConfig{}};
    cache::Hierarchy cache_synth{cache::HierarchyConfig{}};

    std::vector<std::function<void()>> tasks;
    if (options.dram) {
        tasks.push_back([&] {
            dram_base = dram::simulateTrace(
                trace, dram::DramConfig{},
                interconnect::CrossbarConfig{}, sim_options);
        });
        tasks.push_back([&] {
            dram_synth = dram::simulateTrace(
                synthetic, dram::DramConfig{},
                interconnect::CrossbarConfig{}, sim_options);
        });
    }
    if (options.cache) {
        tasks.push_back([&] { cache_base.run(trace); });
        tasks.push_back([&] { cache_synth.run(synthetic); });
    }
    util::parallelFor(
        tasks.size(), [&](std::size_t i) { tasks[i](); },
        options.threads);

    ValidationReport report;
    if (options.dram)
        appendDramMetrics(dram_base, dram_synth, report.dramMetrics);
    if (options.cache)
        appendCacheMetrics(cache_base, cache_synth,
                           report.cacheMetrics);
    finalizeReport(report, options.passThresholdPercent);
    return report;
}

ValidationReport
validateConfig(const mem::Trace &trace,
               const core::PartitionConfig &config,
               const ValidationOptions &options)
{
    return validateProfile(trace,
                           core::buildProfile(trace, config,
                                              core::LeafModelerHooks{},
                                              options.threads),
                           options);
}

namespace
{

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    out += '"';
}

void
appendMetricArray(std::string &out,
                  const std::vector<MetricComparison> &metrics)
{
    out += '[';
    bool first = true;
    char buf[48];
    for (const MetricComparison &m : metrics) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":";
        appendJsonString(out, m.name);
        std::snprintf(buf, sizeof(buf), ",\"baseline\":%.6g",
                      m.baseline);
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"synthetic\":%.6g",
                      m.synthetic);
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"error_percent\":%.6g}",
                      m.errorPercent);
        out += buf;
    }
    out += ']';
}

} // namespace

std::string
reportToJson(const ValidationReport &report)
{
    std::string out;
    out.reserve(512);
    char buf[64];
    out += "{\"passed\":";
    out += report.passed ? "true" : "false";
    std::snprintf(buf, sizeof(buf), ",\"worst_error_percent\":%.6g",
                  report.worstErrorPercent);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"mean_error_percent\":%.6g",
                  report.meanErrorPercent);
    out += buf;
    out += ",\"dram_metrics\":";
    appendMetricArray(out, report.dramMetrics);
    out += ",\"cache_metrics\":";
    appendMetricArray(out, report.cacheMetrics);
    out += '}';
    return out;
}

bool
saveReportJson(const ValidationReport &report, const std::string &path)
{
    const std::string json = reportToJson(report);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), f);
    return std::fclose(f) == 0 && written == json.size();
}

std::string
formatReport(const ValidationReport &report)
{
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line), "%-24s %14s %14s %9s\n",
                  "metric", "baseline", "synthetic", "error");
    out += line;
    for (const auto *metrics :
         {&report.dramMetrics, &report.cacheMetrics}) {
        for (const auto &metric : *metrics) {
            std::snprintf(line, sizeof(line),
                          "%-24s %14.1f %14.1f %8.2f%%\n",
                          metric.name.c_str(), metric.baseline,
                          metric.synthetic, metric.errorPercent);
            out += line;
        }
    }
    std::snprintf(line, sizeof(line),
                  "worst %.2f%%, mean %.2f%% -> %s\n",
                  report.worstErrorPercent, report.meanErrorPercent,
                  report.passed ? "PASS" : "FAIL");
    out += line;
    return out;
}

} // namespace mocktails::validation
