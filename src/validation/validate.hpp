/**
 * @file
 * One-call fidelity validation.
 *
 * The paper validates Mocktails by comparing baseline and synthetic
 * streams on memory-controller and cache metrics (Secs. IV-V). This
 * module packages that methodology: given a trace and a hierarchy
 * configuration, it builds the profile, synthesises, runs both streams
 * on the DRAM and cache substrates, and reports per-metric errors with
 * an overall verdict. Profile producers can use it to check that a
 * profile is a faithful stand-in before distributing it.
 */

#ifndef MOCKTAILS_VALIDATION_VALIDATE_HPP
#define MOCKTAILS_VALIDATION_VALIDATE_HPP

#include <string>
#include <vector>

#include "core/profile.hpp"
#include "mem/trace.hpp"

namespace mocktails::dram
{
struct SimulationResult;
}

namespace mocktails::cache
{
class Hierarchy;
}

namespace mocktails::validation
{

/**
 * One compared metric.
 */
struct MetricComparison
{
    std::string name;
    double baseline = 0.0;
    double synthetic = 0.0;
    double errorPercent = 0.0;
};

/**
 * The full validation report.
 */
struct ValidationReport
{
    std::vector<MetricComparison> dramMetrics;
    std::vector<MetricComparison> cacheMetrics;

    /** Largest error across all metrics. */
    double worstErrorPercent = 0.0;

    /** Mean error across all metrics. */
    double meanErrorPercent = 0.0;

    /**
     * True when every metric error is below the pass threshold given
     * to validateProfile().
     */
    bool passed = false;
};

/**
 * Validation knobs.
 */
struct ValidationOptions
{
    /** Per-metric error above this fails the validation. */
    double passThresholdPercent = 15.0;

    /** Synthesis seed. */
    std::uint64_t seed = 1;

    /** Run the DRAM-controller comparison (paper Sec. IV). */
    bool dram = true;

    /** Run the cache-hierarchy comparison (paper Sec. V). */
    bool cache = true;

    /**
     * Worker threads for profile building and synthesis; 0 = one per
     * hardware thread, 1 = sequential. Results are identical at every
     * count.
     */
    unsigned threads = 0;
};

/**
 * Build a profile for @p trace with @p config, synthesise, and compare
 * both streams on the library's substrates.
 */
ValidationReport
validateConfig(const mem::Trace &trace, const core::PartitionConfig &config,
               const ValidationOptions &options = ValidationOptions{});

/**
 * Validate an existing profile against the trace it was built from.
 */
ValidationReport
validateProfile(const mem::Trace &trace, const core::Profile &profile,
                const ValidationOptions &options = ValidationOptions{});

/**
 * Append one metric comparison (error computed via util::percentError).
 * Building block shared with sampled validation (src/sampling/).
 */
void appendMetric(std::vector<MetricComparison> &out, std::string name,
                  double baseline, double synthetic);

/** Append the five standard DRAM metric comparisons. */
void appendDramMetrics(const dram::SimulationResult &base,
                       const dram::SimulationResult &synth,
                       std::vector<MetricComparison> &out);

/** Append the four standard cache metric comparisons. */
void appendCacheMetrics(const cache::Hierarchy &base,
                        const cache::Hierarchy &synth,
                        std::vector<MetricComparison> &out);

/** Compute worst/mean error and the pass verdict from the metrics. */
void finalizeReport(ValidationReport &report, double thresholdPercent);

/** Render a report as human-readable text. */
std::string formatReport(const ValidationReport &report);

/** Render a report as a JSON document (machine-readable twin of
 *  formatReport(), for `profile_tool validate --report-json`). */
std::string reportToJson(const ValidationReport &report);

/** Write reportToJson() to a file. @return true on success. */
bool saveReportJson(const ValidationReport &report,
                    const std::string &path);

} // namespace mocktails::validation

#endif // MOCKTAILS_VALIDATION_VALIDATE_HPP
