/**
 * @file
 * Per-leaf and per-layer fidelity attribution.
 *
 * validate.hpp answers *whether* a synthetic stream reproduces its
 * baseline; this module answers *where it doesn't*. Using the request
 * provenance recorded during synthesis (obs/provenance.hpp), the
 * synthetic stream is split back into per-leaf sub-streams, the
 * baseline trace is re-partitioned with the profile's own hierarchy
 * configuration so leaf i of the partition lines up with leaf i of
 * the profile, and the validation comparison is re-run per leaf and
 * aggregated per hierarchy layer. The result is a ranked table that
 * names the worst-offending partitions — the drill-down from "the
 * row-hit metric is red" to "leaf 7 (path 2/0, Markov stride) is
 * responsible".
 */

#ifndef MOCKTAILS_VALIDATION_ATTRIBUTION_HPP
#define MOCKTAILS_VALIDATION_ATTRIBUTION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "mem/trace.hpp"
#include "obs/provenance.hpp"
#include "validation/validate.hpp"

namespace mocktails::validation
{

/**
 * The re-run comparison of one hierarchy leaf.
 */
struct LeafAttribution
{
    std::uint32_t leaf = 0;  ///< index into Profile::leaves
    std::string path;        ///< hierarchy path ("2/0"), see Leaf::path

    std::uint64_t baselineRequests = 0;
    std::uint64_t syntheticRequests = 0;

    /// Feature-model families of the leaf (names the Markov chains).
    obs::FeatureMode deltaTimeMode = obs::FeatureMode::Absent;
    obs::FeatureMode strideMode = obs::FeatureMode::Absent;
    obs::FeatureMode opMode = obs::FeatureMode::Absent;
    obs::FeatureMode sizeMode = obs::FeatureMode::Absent;

    /// Per-metric baseline/synthetic/error, like a ValidationReport.
    std::vector<MetricComparison> metrics;

    std::string worstMetric; ///< name of the worst metric
    double worstErrorPercent = 0.0;
    double meanErrorPercent = 0.0;
};

/**
 * Errors aggregated over all leaves below one hierarchy node.
 */
struct LayerAttribution
{
    std::string path;       ///< hierarchy prefix ("2" = third phase)
    std::size_t depth = 0;  ///< layers above this node
    std::uint64_t leaves = 0;
    std::uint64_t baselineRequests = 0;

    double worstErrorPercent = 0.0;
    /// Mean of the member leaves' mean errors, weighted by baseline
    /// request count (big leaves dominate, as they do the metrics).
    double meanErrorPercent = 0.0;
};

/**
 * The full attribution report.
 */
struct AttributionReport
{
    /**
     * True when re-partitioning the baseline produced exactly the
     * profile's leaves (matching count and per-leaf request count).
     * When false the per-leaf pairing is positional best-effort and
     * @ref note says why — e.g. the profile was built from another
     * trace or with different partitioning code.
     */
    bool hierarchyMatched = false;
    std::string note;

    std::uint64_t baselineRequests = 0;
    std::uint64_t syntheticRequests = 0;

    /// Ranked worst-first by worstErrorPercent.
    std::vector<LeafAttribution> leaves;

    /// Every proper hierarchy prefix, ranked worst-first.
    std::vector<LayerAttribution> layers;
};

/**
 * Attribution knobs.
 */
struct AttributionOptions
{
    /** Synthesis seed; use the seed of the validate run to explain. */
    std::uint64_t seed = 1;

    /** Worker threads for synthesis (0 = hardware threads). */
    unsigned threads = 1;

    /** Re-run the DRAM comparison per leaf (row hits, bursts). */
    bool dram = true;

    /** Re-run the cache comparison per leaf (miss rates, footprint). */
    bool cache = true;

    /**
     * Leaves reported in full. All leaves are always compared and
     * aggregated into layers; only the ranked table is truncated.
     */
    std::size_t maxLeaves = 64;
};

/**
 * Re-run the validation comparison per leaf and per layer.
 *
 * Synthesises @p profile with provenance enabled, re-partitions
 * @p trace with profile.config, and compares each leaf's baseline
 * sub-stream against its synthetic sub-stream.
 */
AttributionReport
attributeErrors(const mem::Trace &trace, const core::Profile &profile,
                const AttributionOptions &options = AttributionOptions{});

/** Render as a JSON document. */
std::string attributionToJson(const AttributionReport &report);

/** Render as a markdown error table (worst leaves first). */
std::string attributionToMarkdown(const AttributionReport &report);

/** Write attributionToJson() to a file. @return true on success. */
bool saveAttribution(const AttributionReport &report,
                     const std::string &path);

} // namespace mocktails::validation

#endif // MOCKTAILS_VALIDATION_ATTRIBUTION_HPP
