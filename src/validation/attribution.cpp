#include "validation/attribution.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "cache/hierarchy.hpp"
#include "core/partition.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace mocktails::validation
{

namespace
{

void
addMetric(std::vector<MetricComparison> &out, std::string name,
          double baseline, double synthetic)
{
    MetricComparison metric;
    metric.name = std::move(name);
    metric.baseline = baseline;
    metric.synthetic = synthetic;
    metric.errorPercent = util::percentError(synthetic, baseline);
    out.push_back(std::move(metric));
}

/**
 * The per-leaf version of validate.cpp's comparison: same metric
 * names, run on one leaf's baseline and synthetic sub-streams.
 */
std::vector<MetricComparison>
compareLeaf(const mem::Trace &baseline, const mem::Trace &synthetic,
            const AttributionOptions &options)
{
    std::vector<MetricComparison> out;
    if (options.dram) {
        dram::SimulationOptions sim_options;
        sim_options.threads = options.threads;
        const auto base = dram::simulateTrace(
            baseline, dram::DramConfig{},
            interconnect::CrossbarConfig{}, sim_options);
        const auto synth = dram::simulateTrace(
            synthetic, dram::DramConfig{},
            interconnect::CrossbarConfig{}, sim_options);
        addMetric(out, "dram.read_bursts",
                  static_cast<double>(base.readBursts()),
                  static_cast<double>(synth.readBursts()));
        addMetric(out, "dram.write_bursts",
                  static_cast<double>(base.writeBursts()),
                  static_cast<double>(synth.writeBursts()));
        addMetric(out, "dram.read_row_hits",
                  static_cast<double>(base.readRowHits()),
                  static_cast<double>(synth.readRowHits()));
        addMetric(out, "dram.write_row_hits",
                  static_cast<double>(base.writeRowHits()),
                  static_cast<double>(synth.writeRowHits()));
    }
    if (options.cache) {
        cache::Hierarchy base_h{cache::HierarchyConfig{}};
        base_h.run(baseline);
        cache::Hierarchy synth_h{cache::HierarchyConfig{}};
        synth_h.run(synthetic);
        addMetric(out, "cache.l1_miss_rate",
                  100.0 * base_h.l1Stats().missRate(),
                  100.0 * synth_h.l1Stats().missRate());
        addMetric(out, "cache.l2_miss_rate",
                  100.0 * base_h.l2Stats().missRate(),
                  100.0 * synth_h.l2Stats().missRate());
        addMetric(out, "cache.footprint_blocks",
                  static_cast<double>(base_h.footprintBlocks()),
                  static_cast<double>(synth_h.footprintBlocks()));
    }
    // Always available even with both substrates off: the shape of
    // the sub-stream itself.
    addMetric(out, "stream.requests",
              static_cast<double>(baseline.size()),
              static_cast<double>(synthetic.size()));
    return out;
}

void
finalizeLeaf(LeafAttribution &leaf)
{
    double worst = 0.0;
    double sum = 0.0;
    const MetricComparison *worst_metric = nullptr;
    for (const MetricComparison &metric : leaf.metrics) {
        if (metric.errorPercent >= worst) {
            worst = metric.errorPercent;
            worst_metric = &metric;
        }
        sum += metric.errorPercent;
    }
    leaf.worstErrorPercent = worst;
    leaf.meanErrorPercent =
        leaf.metrics.empty()
            ? 0.0
            : sum / static_cast<double>(leaf.metrics.size());
    if (worst_metric != nullptr)
        leaf.worstMetric = worst_metric->name;
}

/**
 * Aggregate leaves into every proper prefix of their hierarchy paths.
 * A 2-layer config with leaves "2/0", "2/1" produces the layer "2":
 * the third temporal phase, across all its spatial children.
 */
std::vector<LayerAttribution>
aggregateLayers(const std::vector<LeafAttribution> &leaves,
                const std::vector<std::vector<std::uint32_t>> &paths)
{
    struct Accum
    {
        std::size_t depth = 0;
        std::uint64_t leaves = 0;
        std::uint64_t requests = 0;
        double worst = 0.0;
        double weighted_sum = 0.0;
        double weight = 0.0;
    };
    std::map<std::string, Accum> accum;

    for (std::size_t i = 0; i < leaves.size(); ++i) {
        const LeafAttribution &leaf = leaves[i];
        const std::vector<std::uint32_t> &path = paths[i];
        std::vector<std::uint32_t> prefix;
        for (std::size_t d = 0; d + 1 < path.size(); ++d) {
            prefix.push_back(path[d]);
            Accum &a = accum[core::pathString(prefix)];
            a.depth = prefix.size();
            a.leaves += 1;
            a.requests += leaf.baselineRequests;
            a.worst = std::max(a.worst, leaf.worstErrorPercent);
            // Weight small leaves at least 1 so empty leaves cannot
            // divide by zero and still count a little.
            const double w = static_cast<double>(
                std::max<std::uint64_t>(leaf.baselineRequests, 1));
            a.weighted_sum += w * leaf.meanErrorPercent;
            a.weight += w;
        }
    }

    std::vector<LayerAttribution> out;
    out.reserve(accum.size());
    for (const auto &[path, a] : accum) {
        LayerAttribution layer;
        layer.path = path;
        layer.depth = a.depth;
        layer.leaves = a.leaves;
        layer.baselineRequests = a.requests;
        layer.worstErrorPercent = a.worst;
        layer.meanErrorPercent =
            a.weight == 0.0 ? 0.0 : a.weighted_sum / a.weight;
        out.push_back(std::move(layer));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const LayerAttribution &a,
                        const LayerAttribution &b) {
                         return a.worstErrorPercent > b.worstErrorPercent;
                     });
    return out;
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    out += '"';
}

void
appendNumber(std::string &out, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out += buf;
}

void
appendU64(std::string &out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += buf;
}

void
appendMetrics(std::string &out,
              const std::vector<MetricComparison> &metrics)
{
    out += '[';
    bool first = true;
    for (const MetricComparison &m : metrics) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":";
        appendJsonString(out, m.name);
        out += ",\"baseline\":";
        appendNumber(out, m.baseline);
        out += ",\"synthetic\":";
        appendNumber(out, m.synthetic);
        out += ",\"error_percent\":";
        appendNumber(out, m.errorPercent);
        out += '}';
    }
    out += ']';
}

} // namespace

AttributionReport
attributeErrors(const mem::Trace &trace, const core::Profile &profile,
                const AttributionOptions &options)
{
    AttributionReport report;
    report.baselineRequests = trace.size();

    // Synthesise with the provenance side channel: origins()[i] names
    // the leaf that produced synthetic request i.
    obs::ProvenanceTable provenance;
    const mem::Trace synthetic = core::synthesize(
        profile, options.seed, options.threads, &provenance);
    report.syntheticRequests = synthetic.size();

    const std::size_t n_leaves = profile.leaves.size();

    // Split the synthetic stream back into per-leaf sub-streams.
    std::vector<mem::Trace> synth_leaf(n_leaves);
    {
        std::vector<std::uint64_t> per_leaf =
            provenance.requestsPerLeaf();
        for (std::size_t i = 0; i < n_leaves; ++i)
            synth_leaf[i].requests().reserve(per_leaf[i]);
    }
    for (std::size_t i = 0; i < synthetic.size(); ++i) {
        const std::uint32_t leaf = provenance.origins()[i].leaf;
        if (leaf < n_leaves)
            synth_leaf[leaf].add(synthetic[i]);
    }

    // Re-partition the baseline with the profile's own hierarchy so
    // baseline leaf i pairs with profile leaf i — buildProfile models
    // the buildLeaves output in order, so the pairing is exact when
    // the profile really came from this trace and this config.
    std::vector<core::Leaf> base_leaves =
        core::buildLeaves(trace, profile.config);
    report.hierarchyMatched = base_leaves.size() == n_leaves;
    if (report.hierarchyMatched) {
        for (std::size_t i = 0; i < n_leaves; ++i) {
            if (base_leaves[i].requests.size() !=
                profile.leaves[i].count) {
                report.hierarchyMatched = false;
                break;
            }
        }
    }
    if (!report.hierarchyMatched) {
        report.note =
            "re-partitioning the baseline produced " +
            std::to_string(base_leaves.size()) +
            " leaves where the profile has " +
            std::to_string(n_leaves) +
            " (or per-leaf counts differ); the trace or hierarchy "
            "configuration is not the one the profile was built from, "
            "so leaves are paired positionally best-effort";
    }

    // Each leaf's re-validation touches only its own slot in
    // report.leaves / paths / base_leaves / synth_leaf, so the loop
    // fans out over the shared pool. Slots are written by index (not
    // pushed), so the pre-sort report is identical at any thread count.
    const std::size_t paired = std::min(base_leaves.size(), n_leaves);
    std::vector<std::vector<std::uint32_t>> paths(n_leaves);
    report.leaves.resize(n_leaves);
    util::parallelFor(
        n_leaves,
        [&](std::size_t i) {
            LeafAttribution leaf;
            leaf.leaf = static_cast<std::uint32_t>(i);
            const obs::LeafProvenance &meta = provenance.leaves()[i];
            leaf.deltaTimeMode = meta.deltaTime;
            leaf.strideMode = meta.stride;
            leaf.opMode = meta.op;
            leaf.sizeMode = meta.size;
            leaf.syntheticRequests = synth_leaf[i].size();

            mem::Trace baseline;
            if (i < paired) {
                paths[i] = base_leaves[i].path;
                leaf.path = core::pathString(base_leaves[i].path);
                baseline.requests() =
                    std::move(base_leaves[i].requests);
            } else {
                leaf.path = meta.path; // "leaf<N>" placeholder
            }
            leaf.baselineRequests = baseline.size();

            leaf.metrics =
                compareLeaf(baseline, synth_leaf[i], options);
            finalizeLeaf(leaf);
            report.leaves[i] = std::move(leaf);
        },
        options.threads);

    report.layers = aggregateLayers(report.leaves, paths);

    std::stable_sort(report.leaves.begin(), report.leaves.end(),
                     [](const LeafAttribution &a,
                        const LeafAttribution &b) {
                         return a.worstErrorPercent > b.worstErrorPercent;
                     });
    if (report.leaves.size() > options.maxLeaves)
        report.leaves.resize(options.maxLeaves);
    return report;
}

std::string
attributionToJson(const AttributionReport &report)
{
    std::string out;
    out.reserve(1024 + report.leaves.size() * 512);
    out += "{\"hierarchy_matched\":";
    out += report.hierarchyMatched ? "true" : "false";
    out += ",\"note\":";
    appendJsonString(out, report.note);
    out += ",\"baseline_requests\":";
    appendU64(out, report.baselineRequests);
    out += ",\"synthetic_requests\":";
    appendU64(out, report.syntheticRequests);

    out += ",\"leaves\":[";
    bool first = true;
    for (const LeafAttribution &leaf : report.leaves) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"leaf\":";
        appendU64(out, leaf.leaf);
        out += ",\"path\":";
        appendJsonString(out, leaf.path);
        out += ",\"baseline_requests\":";
        appendU64(out, leaf.baselineRequests);
        out += ",\"synthetic_requests\":";
        appendU64(out, leaf.syntheticRequests);
        out += ",\"models\":{\"delta_time\":";
        appendJsonString(out, obs::toString(leaf.deltaTimeMode));
        out += ",\"stride\":";
        appendJsonString(out, obs::toString(leaf.strideMode));
        out += ",\"op\":";
        appendJsonString(out, obs::toString(leaf.opMode));
        out += ",\"size\":";
        appendJsonString(out, obs::toString(leaf.sizeMode));
        out += "},\"worst_metric\":";
        appendJsonString(out, leaf.worstMetric);
        out += ",\"worst_error_percent\":";
        appendNumber(out, leaf.worstErrorPercent);
        out += ",\"mean_error_percent\":";
        appendNumber(out, leaf.meanErrorPercent);
        out += ",\"metrics\":";
        appendMetrics(out, leaf.metrics);
        out += '}';
    }
    out += ']';

    out += ",\"layers\":[";
    first = true;
    for (const LayerAttribution &layer : report.layers) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"path\":";
        appendJsonString(out, layer.path);
        out += ",\"depth\":";
        appendU64(out, layer.depth);
        out += ",\"leaves\":";
        appendU64(out, layer.leaves);
        out += ",\"baseline_requests\":";
        appendU64(out, layer.baselineRequests);
        out += ",\"worst_error_percent\":";
        appendNumber(out, layer.worstErrorPercent);
        out += ",\"mean_error_percent\":";
        appendNumber(out, layer.meanErrorPercent);
        out += '}';
    }
    out += "]}";
    return out;
}

std::string
attributionToMarkdown(const AttributionReport &report)
{
    std::string out;
    char line[256];
    out += "# Fidelity attribution\n\n";
    std::snprintf(line, sizeof(line),
                  "Baseline %llu requests, synthetic %llu. Hierarchy "
                  "pairing: %s.\n\n",
                  static_cast<unsigned long long>(
                      report.baselineRequests),
                  static_cast<unsigned long long>(
                      report.syntheticRequests),
                  report.hierarchyMatched ? "exact" : "positional");
    out += line;
    if (!report.note.empty()) {
        out += "> ";
        out += report.note;
        out += "\n\n";
    }

    out += "## Worst leaves\n\n";
    out += "| rank | leaf | path | base reqs | synth reqs | models "
           "(dt/stride/op/size) | worst metric | worst err | mean err "
           "|\n";
    out += "|---:|---:|---|---:|---:|---|---|---:|---:|\n";
    int rank = 1;
    for (const LeafAttribution &leaf : report.leaves) {
        std::snprintf(
            line, sizeof(line),
            "| %d | %u | %s | %llu | %llu | %s/%s/%s/%s | %s | %.2f%% "
            "| %.2f%% |\n",
            rank++, leaf.leaf, leaf.path.c_str(),
            static_cast<unsigned long long>(leaf.baselineRequests),
            static_cast<unsigned long long>(leaf.syntheticRequests),
            obs::toString(leaf.deltaTimeMode),
            obs::toString(leaf.strideMode), obs::toString(leaf.opMode),
            obs::toString(leaf.sizeMode), leaf.worstMetric.c_str(),
            leaf.worstErrorPercent, leaf.meanErrorPercent);
        out += line;
    }

    if (!report.layers.empty()) {
        out += "\n## Hierarchy layers\n\n";
        out += "| path | depth | leaves | base reqs | worst err | "
               "mean err |\n";
        out += "|---|---:|---:|---:|---:|---:|\n";
        for (const LayerAttribution &layer : report.layers) {
            std::snprintf(
                line, sizeof(line),
                "| %s | %llu | %llu | %llu | %.2f%% | %.2f%% |\n",
                layer.path.c_str(),
                static_cast<unsigned long long>(layer.depth),
                static_cast<unsigned long long>(layer.leaves),
                static_cast<unsigned long long>(
                    layer.baselineRequests),
                layer.worstErrorPercent, layer.meanErrorPercent);
            out += line;
        }
    }
    return out;
}

bool
saveAttribution(const AttributionReport &report, const std::string &path)
{
    const std::string json = attributionToJson(report);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), f);
    return std::fclose(f) == 0 && written == json.size();
}

} // namespace mocktails::validation
