/**
 * @file
 * Fig. 17: compressed file sizes of the original traces vs the
 * Mocktails profiles (dynamic and 4KB spatial partitioning) for the
 * 23 SPEC-like benchmarks.
 *
 * Expected shape: with the paper's 100k-request temporal phases the
 * profiles are much smaller than the traces overall (paper: 84%
 * smaller on average), with chase-heavy benchmarks (mcf, astar — the
 * paper singles out astar's "high variability in strides") as the
 * expensive outliers. A second column shows the scaled-down 10k-phase
 * configuration used by our fidelity benches, where leaf metadata
 * amortises less because our traces are orders of magnitude shorter
 * than the paper's 250M-instruction collections.
 */

#include "common.hpp"
#include "mem/trace_io.hpp"

int
main()
{
    using namespace bench;
    banner("Fig. 17",
           "File sizes of traces and Mocktails models (compressed)");

    const std::size_t requests = traceLength() * 2;
    const auto paper_config =
        core::PartitionConfig::twoLevelTsByRequests(100000);
    const auto small_config =
        core::PartitionConfig::twoLevelTsByRequests(10000);
    const auto fixed_config =
        core::PartitionConfig::twoLevelTsFixed(100000, 4096);

    std::printf("%-12s %10s %12s %12s %12s %8s\n", "benchmark",
                "trace(KB)", "dyn100k(KB)", "dyn10k(KB)", "4KB(KB)",
                "saving");

    double total_trace = 0.0, total_dyn = 0.0, total_dyn_small = 0.0;
    double total_fix = 0.0;
    for (const auto &name : workloads::specBenchmarks()) {
        const mem::Trace trace =
            workloads::makeSpecTrace(name, requests, 1);
        const auto kb = [](std::size_t bytes) {
            return static_cast<double>(bytes) / 1024.0;
        };
        const double trace_kb = kb(mem::encodeTrace(trace).size());
        const double dyn_kb =
            kb(core::buildProfile(trace, paper_config)
                   .encodeCompressed()
                   .size());
        const double dyn_small_kb =
            kb(core::buildProfile(trace, small_config)
                   .encodeCompressed()
                   .size());
        const double fix_kb =
            kb(core::buildProfile(trace, fixed_config)
                   .encodeCompressed()
                   .size());

        std::printf("%-12s %10.1f %12.1f %12.1f %12.1f %7.1f%%\n",
                    name.c_str(), trace_kb, dyn_kb, dyn_small_kb,
                    fix_kb, 100.0 * (1.0 - dyn_kb / trace_kb));
        total_trace += trace_kb;
        total_dyn += dyn_kb;
        total_dyn_small += dyn_small_kb;
        total_fix += fix_kb;
    }

    std::printf("\n%-12s %10.1f %12.1f %12.1f %12.1f\n", "total",
                total_trace, total_dyn, total_dyn_small, total_fix);
    std::printf("overall saving (dynamic, 100k phases): %.1f%%\n\n",
                100.0 * (1.0 - total_dyn / total_trace));

    shapeCheck("profiles are smaller than traces overall at the "
               "paper's phase length",
               total_dyn < total_trace);
    shapeCheck("4KB profiles are no larger than dynamic ones "
               "(sparser partitions reduce fidelity and metadata)",
               total_fix <= total_dyn * 1.1);
    return 0;
}
