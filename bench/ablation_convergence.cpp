/**
 * @file
 * Ablation: strict convergence (paper Sec. III-C).
 *
 * Strict convergence consumes transition counts during synthesis so
 * each leaf reproduces its exact feature multisets. This ablation
 * compares it against plain memoryless Markov sampling (probabilities
 * fixed, no count consumption) on read/write and size totals.
 *
 * Expected shape: with strict convergence the totals match the
 * baseline exactly; without it they drift.
 */

#include "common.hpp"
#include "core/features.hpp"
#include "core/partition.hpp"

namespace
{

using namespace bench;

/** A Markov sampler without count consumption (the ablation). */
class PlainMarkovSampler : public core::FeatureSampler
{
  public:
    PlainMarkovSampler(const core::MarkovChain &chain, util::Rng &rng)
        : chain_(&chain), rng_(&rng), state_(chain.initialState())
    {}

    std::int64_t
    next() override
    {
        if (first_) {
            first_ = false;
            return chain_->stateValue(state_);
        }
        const auto &row = chain_->transitions(state_);
        if (row.empty()) {
            // Dead end: restart from the initial state.
            state_ = chain_->initialState();
            return chain_->stateValue(state_);
        }
        std::uint64_t total = 0;
        for (const auto &[to, count] : row)
            total += count;
        std::uint64_t target = rng_->below(total);
        for (const auto &[to, count] : row) {
            if (target < count) {
                state_ = to;
                break;
            }
            target -= count;
        }
        return chain_->stateValue(state_);
    }

  private:
    const core::MarkovChain *chain_;
    util::Rng *rng_;
    std::size_t state_;
    bool first_ = true;
};

class PlainMarkovModel : public core::FeatureModel
{
  public:
    explicit PlainMarkovModel(core::MarkovChain chain)
        : chain_(std::move(chain))
    {}

    std::uint64_t sequenceLength() const override
    {
        return chain_.sequenceLength();
    }
    std::unique_ptr<core::FeatureSampler>
    makeSampler(util::Rng &rng) const override
    {
        return std::make_unique<PlainMarkovSampler>(chain_, rng);
    }
    std::uint8_t tag() const override { return 250; }
    void encodePayload(util::ByteWriter &) const override {}

  private:
    core::MarkovChain chain_;
};

core::FeatureModelPtr
buildPlain(const std::vector<std::int64_t> &values)
{
    if (values.empty())
        return nullptr;
    bool constant = true;
    for (const auto v : values)
        constant &= v == values.front();
    if (constant) {
        return std::make_unique<core::ConstantModel>(values.front(),
                                                     values.size());
    }
    return std::make_unique<PlainMarkovModel>(
        core::MarkovChain(values));
}

} // namespace

int
main()
{
    using namespace bench;
    banner("Ablation: strict convergence",
           "Exact multiset reproduction vs plain Markov sampling");

    core::LeafModelerHooks plain_hooks;
    plain_hooks.deltaTime = buildPlain;
    plain_hooks.stride = buildPlain;
    plain_hooks.op = buildPlain;
    plain_hooks.size = buildPlain;

    const auto config = core::PartitionConfig::twoLevelTs();

    bool strict_exact = true;
    double plain_total_drift = 0.0;
    for (const char *name : {"CPU-V", "Multi-layer", "OpenCL2",
                             "HEVC2"}) {
        const mem::Trace trace =
            workloads::makeDeviceTrace(name, traceLength() / 2, 1);
        std::uint64_t base_reads = 0, base_bytes = 0;
        for (const auto &r : trace) {
            base_reads += r.isRead();
            base_bytes += r.size;
        }

        const mem::Trace strict = core::synthesize(
            core::buildProfile(trace, config), 1);
        const mem::Trace plain = core::synthesize(
            core::buildProfile(trace, config, plain_hooks), 1);

        std::uint64_t strict_reads = 0, strict_bytes = 0;
        for (const auto &r : strict) {
            strict_reads += r.isRead();
            strict_bytes += r.size;
        }
        std::uint64_t plain_reads = 0, plain_bytes = 0;
        for (const auto &r : plain) {
            plain_reads += r.isRead();
            plain_bytes += r.size;
        }

        std::printf("%-12s reads: base=%llu strict=%llu plain=%llu\n",
                    name,
                    static_cast<unsigned long long>(base_reads),
                    static_cast<unsigned long long>(strict_reads),
                    static_cast<unsigned long long>(plain_reads));
        std::printf("%-12s bytes: base=%llu strict=%llu plain=%llu\n",
                    "", static_cast<unsigned long long>(base_bytes),
                    static_cast<unsigned long long>(strict_bytes),
                    static_cast<unsigned long long>(plain_bytes));

        strict_exact &= (strict_reads == base_reads) &&
                        (strict_bytes == base_bytes);
        plain_total_drift +=
            err(static_cast<double>(plain_reads),
                static_cast<double>(base_reads)) +
            err(static_cast<double>(plain_bytes),
                static_cast<double>(base_bytes));
    }

    std::printf("\n");
    shapeCheck("strict convergence reproduces read and byte totals "
               "exactly",
               strict_exact);
    shapeCheck("plain sampling drifts (non-zero total error)",
               plain_total_drift > 0.0);
    return 0;
}
