/**
 * @file
 * Ablation: Markov-chain order (extension beyond the paper).
 *
 * The paper argues that dynamic spatial partitioning makes deep
 * stride history unnecessary (Sec. IV-B): once requests are split
 * into behaviourally uniform regions, first-order chains suffice.
 * This ablation measures DRAM row-hit error and profile metadata for
 * order-1 (the paper's McC), order-2 and order-4 chains under the
 * same 2L-TS hierarchy.
 *
 * Expected shape: higher order buys little accuracy (the paper's
 * claim) while costing metadata.
 */

#include "common.hpp"
#include "core/history_markov.hpp"

int
main()
{
    using namespace bench;
    banner("Ablation: chain order",
           "Order-1 (McC) vs order-2/4 chains under 2L-TS");

    const auto config = core::PartitionConfig::twoLevelTs();
    const std::vector<std::uint32_t> orders = {1, 2, 4};

    double total_err[3] = {0, 0, 0};
    double total_bytes[3] = {0, 0, 0};
    for (const char *name :
         {"Crypto1", "FBC-Tiled1", "T-Rex1", "HEVC1"}) {
        const mem::Trace trace =
            workloads::makeDeviceTrace(name, traceLength() / 2, 1);
        const auto baseline = dram::simulateTrace(trace);

        std::printf("%s\n", name);
        std::printf("  %-8s %12s %12s %14s\n", "order", "rdHitErr%",
                    "wrHitErr%", "profile(KB)");
        for (std::size_t k = 0; k < orders.size(); ++k) {
            const core::Profile profile = core::buildProfile(
                trace, config, core::mccKHooks(orders[k]));
            const auto result = dram::simulateTrace(
                core::synthesize(profile, 1));

            const double rd_err =
                err(static_cast<double>(result.readRowHits()),
                    static_cast<double>(baseline.readRowHits()));
            const double wr_err =
                err(static_cast<double>(result.writeRowHits()),
                    static_cast<double>(baseline.writeRowHits()));
            const double kb =
                static_cast<double>(
                    profile.encodeCompressed().size()) /
                1024.0;
            std::printf("  %-8u %11.2f%% %11.2f%% %14.1f\n",
                        orders[k], rd_err, wr_err, kb);
            total_err[k] += rd_err + wr_err;
            total_bytes[k] += kb;
        }
        std::printf("\n");
    }

    std::printf("totals: order-1 err=%.2f%% size=%.0fKB | order-2 "
                "err=%.2f%% size=%.0fKB | order-4 err=%.2f%% "
                "size=%.0fKB\n\n",
                total_err[0], total_bytes[0], total_err[1],
                total_bytes[1], total_err[2], total_bytes[2]);

    shapeCheck("deeper history buys little accuracy under 2L-TS "
               "(order-4 improves by < 5% total error)",
               total_err[0] - total_err[2] < 5.0);
    shapeCheck("deeper history costs metadata (order-4 profiles are "
               "no smaller)",
               total_bytes[2] >= total_bytes[0] * 0.95);
    return 0;
}
