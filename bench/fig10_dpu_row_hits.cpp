/**
 * @file
 * Fig. 10: total read and write row hits for the FBC-Linear1 and
 * FBC-Tiled1 DPU workloads, baseline vs 2L-TS (McC) vs 2L-TS (STM).
 *
 * Expected shape: both models track read row hits (both capture
 * strides well), but STM's memoryless operation model degrades write
 * row hits (paper: >25% error for STM vs <1% for McC on writes).
 */

#include "common.hpp"

int
main()
{
    using namespace bench;
    banner("Fig. 10",
           "Row hits when decompressing frame buffers on the DPU");

    bool mcc_wins_writes = true;
    for (const char *name : {"FBC-Linear1", "FBC-Tiled1"}) {
        const mem::Trace trace =
            workloads::makeDeviceTrace(name, traceLength(), 1);
        const auto cmp = compareModels(trace);

        std::printf("%s\n", name);
        std::printf("  %-16s %10s %10s %10s\n", "metric", "baseline",
                    "McC", "STM");
        std::printf("  %-16s %10llu %10llu %10llu\n", "read row hits",
                    static_cast<unsigned long long>(
                        cmp.baseline.readRowHits()),
                    static_cast<unsigned long long>(
                        cmp.mcc.readRowHits()),
                    static_cast<unsigned long long>(
                        cmp.stm.readRowHits()));
        std::printf("  %-16s %10llu %10llu %10llu\n", "write row hits",
                    static_cast<unsigned long long>(
                        cmp.baseline.writeRowHits()),
                    static_cast<unsigned long long>(
                        cmp.mcc.writeRowHits()),
                    static_cast<unsigned long long>(
                        cmp.stm.writeRowHits()));

        const double mcc_err = err(
            static_cast<double>(cmp.mcc.writeRowHits()),
            static_cast<double>(cmp.baseline.writeRowHits()));
        const double stm_err = err(
            static_cast<double>(cmp.stm.writeRowHits()),
            static_cast<double>(cmp.baseline.writeRowHits()));
        std::printf("  write row hit error: McC=%.2f%% STM=%.2f%%\n\n",
                    mcc_err, stm_err);
        mcc_wins_writes &= mcc_err <= stm_err + 1.0;
    }

    shapeCheck("McC write row hits are at least as accurate as STM "
               "on both DPU workloads",
               mcc_wins_writes);
    return 0;
}
