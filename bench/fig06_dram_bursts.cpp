/**
 * @file
 * Fig. 6: average (geometric mean) error per device class for the
 * number of DRAM read and write bursts, 2L-TS (McC) vs 2L-TS (STM).
 *
 * Expected shape: low error everywhere (strict convergence pins the
 * request/size multisets), single digits for McC.
 */

#include "common.hpp"

int
main(int argc, char **argv)
{
    using namespace bench;
    initTelemetry(argc, argv);
    banner("Fig. 6",
           "Average error per device for the number of DRAM bursts");

    std::printf("%-8s %12s %12s %12s %12s\n", "device", "rdB-McC%",
                "rdB-STM%", "wrB-McC%", "wrB-STM%");

    double worst_mcc = 0.0;
    for (const auto &device : deviceClasses()) {
        std::vector<double> rd_mcc, rd_stm, wr_mcc, wr_stm;
        for (const auto &name : tracesForDevice(device)) {
            const mem::Trace trace =
                workloads::makeDeviceTrace(name, traceLength(), 1);
            const auto cmp = compareModels(trace);
            const auto b = [&](const dram::SimulationResult &r,
                               bool reads) {
                return static_cast<double>(reads ? r.readBursts()
                                                 : r.writeBursts());
            };
            rd_mcc.push_back(
                err(b(cmp.mcc, true), b(cmp.baseline, true)));
            rd_stm.push_back(
                err(b(cmp.stm, true), b(cmp.baseline, true)));
            wr_mcc.push_back(
                err(b(cmp.mcc, false), b(cmp.baseline, false)));
            wr_stm.push_back(
                err(b(cmp.stm, false), b(cmp.baseline, false)));
        }
        const double g_rd_mcc = util::geometricMean(rd_mcc);
        const double g_wr_mcc = util::geometricMean(wr_mcc);
        std::printf("%-8s %11.3f%% %11.3f%% %11.3f%% %11.3f%%\n",
                    device.c_str(), g_rd_mcc,
                    util::geometricMean(rd_stm), g_wr_mcc,
                    util::geometricMean(wr_stm));
        worst_mcc = std::max({worst_mcc, g_rd_mcc, g_wr_mcc});
    }

    std::printf("\n");
    shapeCheck("McC burst-count error stays in single digits "
               "(paper: <= 7.5%)",
               worst_mcc <= 10.0);
    return 0;
}
