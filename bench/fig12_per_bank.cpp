/**
 * @file
 * Fig. 12: the number of read and write bursts arriving at each bank
 * of each channel for the FBC-Linear1 DPU workload.
 *
 * Expected shape: the synthetic per-bank distribution matches the
 * baseline, including banks the baseline never writes to staying
 * (near-)idle — bank conflicts drive DRAM performance.
 */

#include "common.hpp"

int
main()
{
    using namespace bench;
    banner("Fig. 12",
           "Read/write bursts per bank per channel (FBC-Linear1)");

    const mem::Trace trace =
        workloads::makeDeviceTrace("FBC-Linear1", traceLength(), 1);
    const auto cmp = compareModels(trace);

    for (const bool reads : {true, false}) {
        std::printf("%s bursts\n", reads ? "Read" : "Write");
        for (std::size_t c = 0; c < cmp.baseline.channels.size();
             ++c) {
            const auto &pick = [&](const dram::SimulationResult &r)
                -> const std::vector<std::uint64_t> & {
                return reads ? r.channels[c].perBankReadBursts
                             : r.channels[c].perBankWriteBursts;
            };
            std::printf("  channel %zu\n", c);
            std::printf("    %-6s %10s %10s %10s\n", "bank",
                        "baseline", "McC", "STM");
            for (std::size_t b = 0; b < pick(cmp.baseline).size();
                 ++b) {
                std::printf("    %-6zu %10llu %10llu %10llu\n", b,
                            static_cast<unsigned long long>(
                                pick(cmp.baseline)[b]),
                            static_cast<unsigned long long>(
                                pick(cmp.mcc)[b]),
                            static_cast<unsigned long long>(
                                pick(cmp.stm)[b]));
            }
        }
        std::printf("\n");
    }

    // Shape checks: totals match and cold banks stay cold-ish.
    std::uint64_t base_total = 0, mcc_total = 0;
    std::uint64_t cold_bank_base = 0, cold_bank_mcc = 0;
    for (std::size_t c = 0; c < cmp.baseline.channels.size(); ++c) {
        for (std::size_t b = 0;
             b < cmp.baseline.channels[c].perBankWriteBursts.size();
             ++b) {
            const auto base =
                cmp.baseline.channels[c].perBankWriteBursts[b];
            const auto mcc =
                cmp.mcc.channels[c].perBankWriteBursts[b];
            base_total += base;
            mcc_total += mcc;
            if (base == 0) {
                ++cold_bank_base;
                cold_bank_mcc += (mcc <= base_total / 100);
            }
        }
    }
    shapeCheck("total write bursts match within 5%",
               err(static_cast<double>(mcc_total),
                   static_cast<double>(base_total)) < 5.0);
    if (cold_bank_base > 0) {
        shapeCheck("banks with no baseline writes stay near-idle "
                   "under McC",
                   cold_bank_mcc * 2 >= cold_bank_base);
    }
    return 0;
}
