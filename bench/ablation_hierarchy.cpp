/**
 * @file
 * Ablation: hierarchy design choices (paper Secs. III-A and III-D).
 *
 * Compares four configurations on DRAM row-hit fidelity for one
 * workload per device class:
 *   flat          - no partitioning (one leaf)
 *   temporal-only - 500k-cycle phases, no spatial layer
 *   spatial-only  - dynamic regions, no temporal layer
 *   2L-TS         - the paper's recommendation (temporal->spatial)
 *
 * Expected shape: 2L-TS is at least as accurate as the ablated
 * variants; flat is clearly worse (interleaved streams inflate the
 * variance each model must absorb).
 */

#include <map>

#include "common.hpp"

int
main()
{
    using namespace bench;
    banner("Ablation: hierarchy",
           "Row-hit fidelity of ablated partitioning configurations");

    const std::vector<std::pair<const char *, core::PartitionConfig>>
        configs = {
            {"flat", core::PartitionConfig{}},
            {"temporal-only",
             core::PartitionConfig{
                 {{core::PartitionLayer::Kind::TemporalCycleCount,
                   500000}}}},
            {"spatial-only",
             core::PartitionConfig{
                 {{core::PartitionLayer::Kind::SpatialDynamic, 0}}}},
            {"2L-TS", core::PartitionConfig::twoLevelTs()},
        };

    std::map<std::string, double> total_err;
    for (const char *name :
         {"CPU-G", "FBC-Linear1", "T-Rex1", "HEVC1"}) {
        const mem::Trace trace =
            workloads::makeDeviceTrace(name, traceLength(), 1);
        const auto baseline = dram::simulateTrace(trace);
        const double base_rd =
            static_cast<double>(baseline.readRowHits());
        const double base_wr =
            static_cast<double>(baseline.writeRowHits());

        std::printf("%s (baseline: rdHits=%llu wrHits=%llu)\n", name,
                    static_cast<unsigned long long>(
                        baseline.readRowHits()),
                    static_cast<unsigned long long>(
                        baseline.writeRowHits()));
        for (const auto &[label, config] : configs) {
            const auto result =
                dram::simulateTrace(synthesizeMcc(trace, config));
            const double e =
                err(static_cast<double>(result.readRowHits()),
                    base_rd) +
                err(static_cast<double>(result.writeRowHits()),
                    base_wr);
            std::printf("  %-14s rdHitErr=%7.2f%% wrHitErr=%7.2f%%\n",
                        label,
                        err(static_cast<double>(result.readRowHits()),
                            base_rd),
                        err(static_cast<double>(
                                result.writeRowHits()),
                            base_wr));
            total_err[label] += e;
        }
        std::printf("\n");
    }

    std::printf("summed error over workloads:\n");
    for (const auto &[label, e] : total_err)
        std::printf("  %-14s %8.2f%%\n", label.c_str(), e);
    std::printf("\n");

    shapeCheck("2L-TS beats the flat (unpartitioned) model",
               total_err["2L-TS"] <= total_err["flat"]);
    shapeCheck("2L-TS is at least as good as temporal-only",
               total_err["2L-TS"] <=
                   total_err["temporal-only"] + 5.0);
    return 0;
}
