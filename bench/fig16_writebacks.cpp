/**
 * @file
 * Fig. 16: the number of L1 write-backs across associativities
 * (2/4/8/16) for six SPEC-like benchmarks — Baseline vs
 * Mocktails (Dynamic) vs HRD (32KB L1).
 *
 * Expected shape: Mocktails tracks the baseline write-back counts
 * despite using the same McC model for operations as for strides
 * (no explicit clean/dirty states as HRD has).
 */

#include "baselines/hrd.hpp"
#include "cache/hierarchy.hpp"
#include "common.hpp"

namespace
{

using namespace bench;

std::uint64_t
l1Writebacks(const mem::Trace &trace, std::uint32_t assoc)
{
    cache::HierarchyConfig config;
    config.l1 = cache::CacheConfig{32 * 1024, assoc, 64};
    cache::Hierarchy hierarchy(config);
    hierarchy.run(trace);
    return hierarchy.l1Stats().writebacks;
}

} // namespace

int
main()
{
    using namespace bench;
    banner("Fig. 16",
           "L1 write-backs across associativities (32KB L1)");

    const std::vector<std::uint32_t> assocs = {2, 4, 8, 16};
    const auto config =
        core::PartitionConfig::twoLevelTsByRequests(10000);

    std::vector<double> dyn_errors;
    for (const char *name : {"gobmk", "h264ref", "libquantum", "milc",
                             "soplex", "zeusmp"}) {
        const mem::Trace trace =
            workloads::makeSpecTrace(name, traceLength(), 1);
        const mem::Trace dyn = synthesizeMcc(trace, config);
        const mem::Trace hrd =
            baselines::synthesizeHrd(baselines::buildHrd(trace), 1);

        std::printf("%s\n", name);
        std::printf("  %-8s %10s %14s %10s\n", "assoc", "Baseline",
                    "Mock(Dynamic)", "HRD");
        for (const auto assoc : assocs) {
            const auto b = l1Writebacks(trace, assoc);
            const auto d = l1Writebacks(dyn, assoc);
            const auto h = l1Writebacks(hrd, assoc);
            std::printf("  %-8u %10llu %14llu %10llu\n", assoc,
                        static_cast<unsigned long long>(b),
                        static_cast<unsigned long long>(d),
                        static_cast<unsigned long long>(h));
            dyn_errors.push_back(err(static_cast<double>(d),
                                     static_cast<double>(b)));
        }
        std::printf("\n");
    }

    const double mean_err = util::arithmeticMean(dyn_errors);
    std::printf("mean write-back error, Mocktails (Dynamic): %.2f%%\n\n",
                mean_err);
    shapeCheck("Mocktails write-back error is moderate "
               "(paper: 6.9% absolute overall; allow < 20%)",
               mean_err < 20.0);
    return 0;
}
