/**
 * @file
 * Table I: the stride/size sequences of dynamic partition F, and how
 * an extra temporal split turns both features into perfectly-captured
 * Markov chains.
 *
 * The paper's partition F contains two repetitions of six requests:
 * sizes 128 64 64 64 64 64 with strides 8 64 64 64 64 (-264 between
 * repetitions). With one temporal partition a first-order chain can't
 * capture the 64 -> {64 | -264} choice; with two temporal partitions
 * each leaf is deterministic. We reconstruct the exact table and
 * verify the accuracy claim with the real models.
 */

#include "common.hpp"
#include "core/features.hpp"
#include "core/partition.hpp"

int
main()
{
    using namespace bench;
    banner("Table I",
           "Requests from partition F: 1 vs 2 temporal partitions");

    // Reconstruct partition F from the paper's listing.
    mem::Trace f("partition-F", "VPU");
    const mem::Addr base = 0x81002EB8;
    const mem::Addr addrs[6] = {base,          base + 0x8,
                                base + 0x48,   base + 0x88,
                                base + 0xc8,   base + 0x108};
    const std::uint32_t sizes[6] = {128, 64, 64, 64, 64, 64};
    for (int rep = 0; rep < 2; ++rep) {
        for (int i = 0; i < 6; ++i) {
            f.add(static_cast<mem::Tick>(rep * 600 + i * 10), addrs[i],
                  sizes[i], mem::Op::Read);
        }
    }

    // Print the table exactly as the paper lays it out.
    std::printf("%-10s %-22s %-22s\n", "", "1 Temporal Partition",
                "2 Temporal Partitions");
    std::printf("%-10s %-10s %-10s %-10s %-10s\n", "Address", "Stride",
                "Size", "Stride", "Size");
    const auto strides = core::strides(f.requests());
    for (std::size_t i = 0; i < f.size(); ++i) {
        char stride1[16] = "N/A", stride2[16] = "N/A";
        if (i > 0) {
            std::snprintf(stride1, sizeof(stride1), "%lld",
                          static_cast<long long>(strides[i - 1]));
            if (i != 6) // the second leaf restarts at its own start
                std::snprintf(stride2, sizeof(stride2), "%lld",
                              static_cast<long long>(strides[i - 1]));
        }
        std::printf("%-10llX %-10s %-10u %-10s %-10u\n",
                    static_cast<unsigned long long>(f[i].addr), stride1,
                    f[i].size, stride2, f[i].size);
    }

    // Model both configurations and check reproduction quality.
    const core::PartitionConfig one_level{
        {{core::PartitionLayer::Kind::SpatialDynamic, 0}}};
    const core::PartitionConfig two_level{
        {{core::PartitionLayer::Kind::SpatialDynamic, 0},
         {core::PartitionLayer::Kind::TemporalRequestCount, 6}}};

    // With 2 temporal partitions, every leaf feature is deterministic
    // so the sequence is reproduced bit-exactly for every seed.
    bool two_exact = true;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const mem::Trace synth = core::synthesize(
            core::buildProfile(f, two_level), seed);
        for (std::size_t i = 0; i < f.size(); ++i) {
            two_exact &= synth[i].addr == f[i].addr &&
                         synth[i].size == f[i].size;
        }
    }

    // With 1 temporal partition the Markov chain sometimes deviates
    // from the exact order (64 can be followed by 64 or -264)...
    bool one_ever_deviates = false;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const mem::Trace synth = core::synthesize(
            core::buildProfile(f, one_level), seed);
        for (std::size_t i = 0; i < f.size(); ++i)
            one_ever_deviates |= synth[i].addr != f[i].addr;
    }

    // ...but strict convergence still reproduces the exact multiset:
    // two 128-byte and ten 64-byte sizes.
    bool multiset_ok = true;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const mem::Trace synth = core::synthesize(
            core::buildProfile(f, one_level), seed);
        int n128 = 0, n64 = 0;
        for (const auto &r : synth) {
            n128 += r.size == 128;
            n64 += r.size == 64;
        }
        multiset_ok &= (n128 == 2 && n64 == 10);
    }

    std::printf("\n");
    shapeCheck("2 temporal partitions: sequence reproduced exactly "
               "(deterministic chains)",
               two_exact);
    shapeCheck("1 temporal partition: first-order chain sometimes "
               "reorders the sequence",
               one_ever_deviates);
    shapeCheck("strict convergence: exactly two 128B and ten 64B "
               "sizes for every seed",
               multiset_ok);
    return 0;
}
