/**
 * @file
 * Performance microbenchmarks for the core library (google-benchmark):
 * partitioning, model generation, synthesis, serialisation and the
 * DRAM substrate. These are throughput numbers, not paper results.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/model_generator.hpp"
#include "core/partition.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "mem/trace_io.hpp"
#include "sampling/sampled_validate.hpp"
#include "validation/validate.hpp"
#include "workloads/devices.hpp"

namespace
{

using namespace mocktails;

const mem::Trace &
sharedTrace()
{
    static const mem::Trace trace = workloads::makeHevc(50000, 1, 1);
    return trace;
}

const core::Profile &
sharedProfile()
{
    static const core::Profile profile = core::buildProfile(
        sharedTrace(), core::PartitionConfig::twoLevelTs());
    return profile;
}

void
BM_DynamicSpatialPartitioning(benchmark::State &state)
{
    const mem::Trace &trace = sharedTrace();
    core::IndexList all(trace.size());
    for (std::uint32_t i = 0; i < trace.size(); ++i)
        all[i] = i;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::partitionSpatialDynamic(trace, all));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_DynamicSpatialPartitioning);

void
BM_BuildProfile(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::buildProfile(
            sharedTrace(), core::PartitionConfig::twoLevelTs()));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sharedTrace().size()));
}
BENCHMARK(BM_BuildProfile);

// A multi-leaf workload (hundreds of leaves with the short phase
// length below) for the thread-scaling benchmarks.
const mem::Trace &
multiLeafTrace()
{
    static const mem::Trace trace = workloads::makeHevc(100000, 1, 1);
    return trace;
}

core::PartitionConfig
multiLeafConfig()
{
    return core::PartitionConfig::twoLevelTs(50000);
}

const core::Profile &
multiLeafProfile()
{
    static const core::Profile profile =
        core::buildProfile(multiLeafTrace(), multiLeafConfig());
    return profile;
}

void
BM_BuildProfileThreads(benchmark::State &state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::buildProfile(multiLeafTrace(), multiLeafConfig(),
                               core::LeafModelerHooks{}, threads));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(multiLeafTrace().size()));
    state.counters["leaves"] =
        static_cast<double>(multiLeafProfile().leaves.size());
}
BENCHMARK(BM_BuildProfileThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_SynthesizeThreads(benchmark::State &state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    std::uint64_t seed = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::synthesize(multiLeafProfile(), ++seed, threads));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(
            multiLeafProfile().totalRequests()));
}
BENCHMARK(BM_SynthesizeThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_Synthesize(benchmark::State &state)
{
    std::uint64_t seed = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::synthesize(sharedProfile(), ++seed));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sharedProfile().totalRequests()));
}
BENCHMARK(BM_Synthesize);

void
BM_ProfileEncode(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(sharedProfile().encodeCompressed());
}
BENCHMARK(BM_ProfileEncode);

void
BM_TraceEncode(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(mem::encodeTrace(sharedTrace()));
}
BENCHMARK(BM_TraceEncode);

// The sampled-validation A/B: a streaming workload big enough that
// simulation, not clustering, dominates full validation.
const mem::Trace &
validationTrace()
{
    static const mem::Trace trace =
        workloads::makeFbcLinear(400000, 1, 1);
    return trace;
}

const core::Profile &
validationProfile()
{
    static const core::Profile profile = core::buildProfile(
        validationTrace(), core::PartitionConfig::twoLevelTs());
    return profile;
}

void
BM_ValidateFull(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(validation::validateProfile(
            validationTrace(), validationProfile()));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(validationTrace().size()));
}
BENCHMARK(BM_ValidateFull);

void
BM_ValidateSampled(benchmark::State &state)
{
    sampling::SampledValidationOptions options;
    options.sampling.k = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sampling::validateProfileSampled(
            validationTrace(), validationProfile(), options));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(validationTrace().size()));

    // One timed A/B outside the loop feeds the CI trend counters:
    // the speedup over full validation and the worst extrapolation
    // delta against it (which must stay within the reported bound).
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    const validation::ValidationReport full =
        validation::validateProfile(validationTrace(),
                                    validationProfile());
    const auto t1 = Clock::now();
    const sampling::SampledValidationReport sampled =
        sampling::validateProfileSampled(validationTrace(),
                                         validationProfile(), options);
    const auto t2 = Clock::now();
    const double full_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double sampled_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    const sampling::BoundsCheck check =
        sampling::checkAgainstFull(sampled, full);
    state.counters["validate_speedup"] =
        sampled_ms > 0.0 ? full_ms / sampled_ms : 0.0;
    state.counters["sampled_error_pct"] = check.worstDeltaPercent;
    state.counters["error_bound_pct"] = check.boundPercent;
    state.counters["bound_ok"] = check.passed ? 1.0 : 0.0;
}
BENCHMARK(BM_ValidateSampled);

void
BM_DramSimulation(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(dram::simulateTrace(sharedTrace()));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sharedTrace().size()));
}
BENCHMARK(BM_DramSimulation);

} // namespace
