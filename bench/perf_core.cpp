/**
 * @file
 * Performance microbenchmarks for the core library (google-benchmark):
 * partitioning, model generation, synthesis, serialisation and the
 * DRAM substrate. These are throughput numbers, not paper results.
 */

#include <benchmark/benchmark.h>

#include "core/model_generator.hpp"
#include "core/partition.hpp"
#include "core/synthesis.hpp"
#include "dram/simulate.hpp"
#include "mem/trace_io.hpp"
#include "workloads/devices.hpp"

namespace
{

using namespace mocktails;

const mem::Trace &
sharedTrace()
{
    static const mem::Trace trace = workloads::makeHevc(50000, 1, 1);
    return trace;
}

const core::Profile &
sharedProfile()
{
    static const core::Profile profile = core::buildProfile(
        sharedTrace(), core::PartitionConfig::twoLevelTs());
    return profile;
}

void
BM_DynamicSpatialPartitioning(benchmark::State &state)
{
    const mem::Trace &trace = sharedTrace();
    core::IndexList all(trace.size());
    for (std::uint32_t i = 0; i < trace.size(); ++i)
        all[i] = i;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::partitionSpatialDynamic(trace, all));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_DynamicSpatialPartitioning);

void
BM_BuildProfile(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::buildProfile(
            sharedTrace(), core::PartitionConfig::twoLevelTs()));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sharedTrace().size()));
}
BENCHMARK(BM_BuildProfile);

// A multi-leaf workload (hundreds of leaves with the short phase
// length below) for the thread-scaling benchmarks.
const mem::Trace &
multiLeafTrace()
{
    static const mem::Trace trace = workloads::makeHevc(100000, 1, 1);
    return trace;
}

core::PartitionConfig
multiLeafConfig()
{
    return core::PartitionConfig::twoLevelTs(50000);
}

const core::Profile &
multiLeafProfile()
{
    static const core::Profile profile =
        core::buildProfile(multiLeafTrace(), multiLeafConfig());
    return profile;
}

void
BM_BuildProfileThreads(benchmark::State &state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::buildProfile(multiLeafTrace(), multiLeafConfig(),
                               core::LeafModelerHooks{}, threads));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(multiLeafTrace().size()));
    state.counters["leaves"] =
        static_cast<double>(multiLeafProfile().leaves.size());
}
BENCHMARK(BM_BuildProfileThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_SynthesizeThreads(benchmark::State &state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    std::uint64_t seed = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::synthesize(multiLeafProfile(), ++seed, threads));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(
            multiLeafProfile().totalRequests()));
}
BENCHMARK(BM_SynthesizeThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_Synthesize(benchmark::State &state)
{
    std::uint64_t seed = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::synthesize(sharedProfile(), ++seed));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sharedProfile().totalRequests()));
}
BENCHMARK(BM_Synthesize);

void
BM_ProfileEncode(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(sharedProfile().encodeCompressed());
}
BENCHMARK(BM_ProfileEncode);

void
BM_TraceEncode(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(mem::encodeTrace(sharedTrace()));
}
BENCHMARK(BM_TraceEncode);

void
BM_DramSimulation(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(dram::simulateTrace(sharedTrace()));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sharedTrace().size()));
}
BENCHMARK(BM_DramSimulation);

} // namespace
