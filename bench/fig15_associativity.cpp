/**
 * @file
 * Fig. 15: L1 miss rate across associativities (2/4/8/16) for six
 * SPEC-like benchmarks — Baseline vs Mocktails (Dynamic) vs HRD, on
 * a 32KB L1 with LRU.
 *
 * Expected shape: the synthetic streams follow the baseline's
 * associativity trend for each benchmark (increased associativity
 * may help, do nothing, or hurt).
 */

#include "baselines/hrd.hpp"
#include "cache/hierarchy.hpp"
#include "common.hpp"

namespace
{

using namespace bench;

double
l1Miss(const mem::Trace &trace, std::uint32_t assoc)
{
    cache::HierarchyConfig config;
    config.l1 = cache::CacheConfig{32 * 1024, assoc, 64};
    cache::Hierarchy hierarchy(config);
    hierarchy.run(trace);
    return 100.0 * hierarchy.l1Stats().missRate();
}

} // namespace

int
main()
{
    using namespace bench;
    banner("Fig. 15",
           "L1 miss rate across associativities (32KB L1, LRU)");

    const std::vector<std::uint32_t> assocs = {2, 4, 8, 16};
    const auto config =
        core::PartitionConfig::twoLevelTsByRequests(10000);

    int trend_matches = 0, trend_total = 0;
    for (const char *name : {"gobmk", "h264ref", "libquantum", "milc",
                             "soplex", "zeusmp"}) {
        const mem::Trace trace =
            workloads::makeSpecTrace(name, traceLength(), 1);
        const mem::Trace dyn = synthesizeMcc(trace, config);
        const mem::Trace hrd =
            baselines::synthesizeHrd(baselines::buildHrd(trace), 1);

        std::printf("%s\n", name);
        std::printf("  %-8s %10s %14s %10s\n", "assoc", "Baseline",
                    "Mock(Dynamic)", "HRD");
        std::vector<double> base_curve, dyn_curve;
        for (const auto assoc : assocs) {
            const double b = l1Miss(trace, assoc);
            const double d = l1Miss(dyn, assoc);
            const double h = l1Miss(hrd, assoc);
            std::printf("  %-8u %9.2f%% %13.2f%% %9.2f%%\n", assoc, b,
                        d, h);
            base_curve.push_back(b);
            dyn_curve.push_back(d);
        }
        std::printf("\n");

        // Trend check: the sign of the baseline's assoc-2 -> assoc-16
        // change is reproduced (or both changes are tiny).
        const double base_delta = base_curve.back() -
                                  base_curve.front();
        const double dyn_delta = dyn_curve.back() - dyn_curve.front();
        ++trend_total;
        if ((std::abs(base_delta) < 0.25 &&
             std::abs(dyn_delta) < 0.5) ||
            base_delta * dyn_delta > 0) {
            ++trend_matches;
        }
    }

    shapeCheck("Mocktails (Dynamic) reproduces the associativity "
               "trend for most benchmarks",
               trend_matches >= trend_total - 1);
    return 0;
}
