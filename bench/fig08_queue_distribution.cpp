/**
 * @file
 * Fig. 8: per-memory-controller distribution of write queue lengths
 * observed by arriving requests, for the T-Rex1 GPU workload —
 * baseline vs 2L-TS (McC) vs 2L-TS (STM).
 *
 * Expected shape: the McC distribution tracks the baseline closely on
 * every channel (distributional distance small), validating that
 * requests arrive at the right channel at the right time.
 */

#include "common.hpp"

int
main()
{
    using namespace bench;
    banner("Fig. 8",
           "Write queue length distribution per channel (T-Rex1)");

    const mem::Trace trace =
        workloads::makeDeviceTrace("T-Rex1", traceLength(), 1);
    const auto cmp = compareModels(trace);

    double worst_mcc_distance = 0.0;
    double worst_stm_distance = 0.0;
    for (std::size_t c = 0; c < cmp.baseline.channels.size(); ++c) {
        const auto &base = cmp.baseline.channels[c].writeQueueSeen;
        const auto &mcc = cmp.mcc.channels[c].writeQueueSeen;
        const auto &stm = cmp.stm.channels[c].writeQueueSeen;

        std::printf("Channel %zu (samples: base=%llu McC=%llu "
                    "STM=%llu)\n",
                    c, static_cast<unsigned long long>(base.total()),
                    static_cast<unsigned long long>(mcc.total()),
                    static_cast<unsigned long long>(stm.total()));
        std::printf("%-8s %10s %10s %10s\n", "qlen", "baseline", "McC",
                    "STM");
        const auto d_base = base.dense(64);
        const auto d_mcc = mcc.dense(64);
        const auto d_stm = stm.dense(64);
        for (std::size_t q = 0; q < 64; q += 4) {
            std::uint64_t b = 0, m = 0, s = 0;
            for (std::size_t i = q; i < q + 4; ++i) {
                b += d_base[i];
                m += d_mcc[i];
                s += d_stm[i];
            }
            if (b + m + s == 0)
                continue;
            std::printf("%2zu-%-5zu %10llu %10llu %10llu\n", q, q + 3,
                        static_cast<unsigned long long>(b),
                        static_cast<unsigned long long>(m),
                        static_cast<unsigned long long>(s));
        }
        std::printf("\n");

        worst_mcc_distance =
            std::max(worst_mcc_distance, base.distanceTo(mcc));
        worst_stm_distance =
            std::max(worst_stm_distance, base.distanceTo(stm));
    }

    std::printf("max distributional distance: McC=%.3f STM=%.3f "
                "(0 = identical, 2 = disjoint)\n\n",
                worst_mcc_distance, worst_stm_distance);
    shapeCheck("McC captures the write-queue distribution "
               "(distance < 1.0 on every channel)",
               worst_mcc_distance < 1.0);
    shapeCheck("write traffic reaches all four channels",
               [&] {
                   for (const auto &ch : cmp.mcc.channels) {
                       if (ch.writeQueueSeen.total() == 0)
                           return false;
                   }
                   return true;
               }());
    return 0;
}
