/**
 * @file
 * Performance microbenchmarks for the substrates (google-benchmark):
 * cache simulation, DRAM simulation (coupled and per-channel sharded),
 * whole-profile validation at several thread counts, reuse-distance
 * tracking, compression and the workload generators. Throughput
 * numbers, not paper results.
 */

#include <benchmark/benchmark.h>

#include <thread>

#include "baselines/hrd.hpp"
#include "baselines/reuse.hpp"
#include "cache/hierarchy.hpp"
#include "core/model_generator.hpp"
#include "core/streamed_build.hpp"
#include "core/synthesis.hpp"
#include "dram/sharded.hpp"
#include "dram/simulate.hpp"
#include "mem/source.hpp"
#include "mem/trace_reader.hpp"
#include "util/compress.hpp"
#include "util/rng.hpp"
#include "validation/validate.hpp"
#include "workloads/devices.hpp"
#include "workloads/spec.hpp"

namespace
{

using namespace mocktails;

const mem::Trace &
cpuTrace()
{
    static const mem::Trace trace =
        workloads::makeSpecTrace("gcc", 100000, 1);
    return trace;
}

/** The fig06 workload: the first Table II device trace. */
const mem::Trace &
deviceTrace()
{
    static const mem::Trace trace =
        workloads::deviceTraces().front().make(60000, 1);
    return trace;
}

void
BM_DramCoupled(benchmark::State &state)
{
    dram::SimulationOptions options;
    options.mode = dram::SimulationOptions::Mode::Coupled;
    for (auto _ : state) {
        const auto result = dram::simulateTrace(
            deviceTrace(), dram::DramConfig{},
            interconnect::CrossbarConfig{}, options);
        benchmark::DoNotOptimize(result.finishTick);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(deviceTrace().size()));
}
BENCHMARK(BM_DramCoupled)->Unit(benchmark::kMillisecond);

void
BM_DramSharded(benchmark::State &state)
{
    dram::SimulationOptions options;
    options.mode = dram::SimulationOptions::Mode::Sharded;
    options.threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const auto result = dram::simulateTrace(
            deviceTrace(), dram::DramConfig{},
            interconnect::CrossbarConfig{}, options);
        benchmark::DoNotOptimize(result.finishTick);
    }
    // 1 when the run really took the sharded path; 0 means DRAM
    // backpressure forced the coupled fallback, so the timing above is
    // front-end + replay + coupled re-run.
    mem::TraceSource probe(deviceTrace());
    state.counters["sharded_path"] = static_cast<double>(
        dram::simulateSharded(probe, dram::DramConfig{},
                              interconnect::CrossbarConfig{},
                              options.threads)
            .completed);
    // Speedup over BM_DramCoupled is bounded by the physical core
    // count; keep it next to the wall-clock so a 1-core CI runner's
    // flat numbers aren't misread as a regression.
    state.counters["hw_threads"] =
        static_cast<double>(std::thread::hardware_concurrency());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(deviceTrace().size()));
}
BENCHMARK(BM_DramSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_ValidateProfile(benchmark::State &state)
{
    const mem::Trace &trace = deviceTrace();
    static const core::Profile profile =
        core::buildProfile(trace, core::PartitionConfig::twoLevelTs());
    validation::ValidationOptions options;
    options.threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const auto report =
            validation::validateProfile(trace, profile, options);
        benchmark::DoNotOptimize(report.worstErrorPercent);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_ValidateProfile)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_CacheHierarchy(benchmark::State &state)
{
    for (auto _ : state) {
        cache::Hierarchy hierarchy{cache::HierarchyConfig{}};
        hierarchy.run(cpuTrace());
        benchmark::DoNotOptimize(hierarchy.l1Stats().misses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(cpuTrace().size()));
}
BENCHMARK(BM_CacheHierarchy);

void
BM_ReuseDistance(benchmark::State &state)
{
    for (auto _ : state) {
        baselines::ReuseDistanceTracker tracker;
        for (const auto &r : cpuTrace())
            benchmark::DoNotOptimize(tracker.access(r.addr / 64));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(cpuTrace().size()));
}
BENCHMARK(BM_ReuseDistance);

void
BM_HrdBuild(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(baselines::buildHrd(cpuTrace()));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(cpuTrace().size()));
}
BENCHMARK(BM_HrdBuild);

void
BM_Compress(benchmark::State &state)
{
    util::Rng rng(3);
    std::vector<std::uint8_t> input(1 << 20);
    for (std::size_t i = 0; i < input.size(); ++i) {
        // Mildly compressible mixture.
        input[i] = (i % 3 == 0)
                       ? static_cast<std::uint8_t>(i)
                       : static_cast<std::uint8_t>(rng() & 0x0f);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(util::compress(input));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_Compress);

/**
 * A/B pair: in-memory buildProfile vs the chunked out-of-core builder
 * on the same trace and config. Both produce byte-identical profiles;
 * the delta is the cost (or win) of streaming + spill-and-merge. The
 * streamed run uses a MemoryTraceReader so the A/B isolates the build
 * machinery — the spill files still hit the real filesystem.
 */
void
BM_BuildProfileInMemory(benchmark::State &state)
{
    const mem::Trace &trace = deviceTrace();
    for (auto _ : state) {
        const core::Profile profile = core::buildProfile(
            trace, core::PartitionConfig::twoLevelTs());
        benchmark::DoNotOptimize(profile.leaves.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_BuildProfileInMemory)->Unit(benchmark::kMillisecond);

void
BM_BuildProfileStreamed(benchmark::State &state)
{
    const mem::Trace &trace = deviceTrace();
    core::StreamedBuildOptions options;
    options.threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        mem::MemoryTraceReader reader(trace);
        std::string error;
        const core::Profile profile = core::buildProfileStreamed(
            reader, core::PartitionConfig::twoLevelTs(), options,
            &error);
        benchmark::DoNotOptimize(profile.leaves.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_BuildProfileStreamed)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

const core::Profile &
synthProfile()
{
    static const core::Profile profile = core::buildProfile(
        deviceTrace(), core::PartitionConfig::twoLevelTs());
    return profile;
}

/**
 * A/B pair: the sequential AoS engine loop vs the sharded path whose
 * per-leaf runs are SoA RequestBatch columns merged on the tick column
 * alone. Output is bit-identical at every thread count (threads >= 2
 * is what routes synthesize() through the SoA runs).
 */
void
BM_SynthEngine(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::synthesize(synthProfile(), 1, 1).size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(synthProfile().totalRequests()));
}
BENCHMARK(BM_SynthEngine)->Unit(benchmark::kMillisecond);

void
BM_SynthSoA(benchmark::State &state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::synthesize(synthProfile(), 1, threads).size());
    }
    state.counters["hw_threads"] =
        static_cast<double>(std::thread::hardware_concurrency());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(synthProfile().totalRequests()));
}
BENCHMARK(BM_SynthSoA)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_DeviceTraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            workloads::makeTRex(50000, 1, 1).size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 50000);
}
BENCHMARK(BM_DeviceTraceGeneration);

} // namespace
