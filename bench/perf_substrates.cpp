/**
 * @file
 * Performance microbenchmarks for the substrates (google-benchmark):
 * cache simulation, reuse-distance tracking, compression and the
 * workload generators. Throughput numbers, not paper results.
 */

#include <benchmark/benchmark.h>

#include "baselines/hrd.hpp"
#include "baselines/reuse.hpp"
#include "cache/hierarchy.hpp"
#include "util/compress.hpp"
#include "util/rng.hpp"
#include "workloads/devices.hpp"
#include "workloads/spec.hpp"

namespace
{

using namespace mocktails;

const mem::Trace &
cpuTrace()
{
    static const mem::Trace trace =
        workloads::makeSpecTrace("gcc", 100000, 1);
    return trace;
}

void
BM_CacheHierarchy(benchmark::State &state)
{
    for (auto _ : state) {
        cache::Hierarchy hierarchy{cache::HierarchyConfig{}};
        hierarchy.run(cpuTrace());
        benchmark::DoNotOptimize(hierarchy.l1Stats().misses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(cpuTrace().size()));
}
BENCHMARK(BM_CacheHierarchy);

void
BM_ReuseDistance(benchmark::State &state)
{
    for (auto _ : state) {
        baselines::ReuseDistanceTracker tracker;
        for (const auto &r : cpuTrace())
            benchmark::DoNotOptimize(tracker.access(r.addr / 64));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(cpuTrace().size()));
}
BENCHMARK(BM_ReuseDistance);

void
BM_HrdBuild(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(baselines::buildHrd(cpuTrace()));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(cpuTrace().size()));
}
BENCHMARK(BM_HrdBuild);

void
BM_Compress(benchmark::State &state)
{
    util::Rng rng(3);
    std::vector<std::uint8_t> input(1 << 20);
    for (std::size_t i = 0; i < input.size(); ++i) {
        // Mildly compressible mixture.
        input[i] = (i % 3 == 0)
                       ? static_cast<std::uint8_t>(i)
                       : static_cast<std::uint8_t>(rng() & 0x0f);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(util::compress(input));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_Compress);

void
BM_DeviceTraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            workloads::makeTRex(50000, 1, 1).size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 50000);
}
BENCHMARK(BM_DeviceTraceGeneration);

} // namespace
