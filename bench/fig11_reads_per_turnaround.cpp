/**
 * @file
 * Fig. 11: the average number of reads sent to DRAM before switching
 * to writes (reads per turnaround), per memory channel, for the
 * FBC-Linear1 and FBC-Tiled1 DPU workloads.
 *
 * Expected shape: McC tracks the baseline better than STM — the
 * metric depends on read/write *order*, which McC's operation chains
 * capture and STM's single probability does not (paper: McC 4-56%
 * error vs STM 18-110%).
 */

#include "common.hpp"

int
main()
{
    using namespace bench;
    banner("Fig. 11",
           "Average reads per read->write turnaround per channel");

    double total_mcc_err = 0.0, total_stm_err = 0.0;
    for (const char *name : {"FBC-Linear1", "FBC-Tiled1"}) {
        const mem::Trace trace =
            workloads::makeDeviceTrace(name, traceLength(), 1);
        const auto cmp = compareModels(trace);

        std::printf("%s\n", name);
        std::printf("  %-8s %10s %10s %10s\n", "channel", "baseline",
                    "McC", "STM");
        for (std::size_t c = 0; c < cmp.baseline.channels.size();
             ++c) {
            const double base =
                cmp.baseline.channels[c].readsPerTurnaround.mean();
            const double mcc =
                cmp.mcc.channels[c].readsPerTurnaround.mean();
            const double stm =
                cmp.stm.channels[c].readsPerTurnaround.mean();
            std::printf("  %-8zu %10.2f %10.2f %10.2f\n", c, base, mcc,
                        stm);
            total_mcc_err += err(mcc, base);
            total_stm_err += err(stm, base);
        }
        std::printf("\n");
    }

    std::printf("summed error over channels: McC=%.1f%% STM=%.1f%%\n\n",
                total_mcc_err, total_stm_err);
    shapeCheck("McC tracks reads-per-turnaround better than STM "
               "(read/write order matters)",
               total_mcc_err <= total_stm_err);
    return 0;
}
