/**
 * @file
 * Ablation: DRAM address mapping (RoRaBaChCo vs RoRaBaCoCh).
 *
 * The evaluation platform interleaves channels at row granularity
 * (RoRaBaChCo, the gem5 default). This ablation re-runs representative
 * workloads with burst-granularity channel interleaving (RoRaBaCoCh)
 * and reports channel balance, row hits and latency — the kind of
 * memory-hierarchy exploration Mocktails profiles enable (paper
 * Sec. VI). Synthetic streams must preserve the *relative* effect of
 * the mapping change, so each configuration is run for both the
 * baseline trace and the 2L-TS (McC) synthesis.
 */

#include <cmath>

#include "common.hpp"

namespace
{

using namespace bench;

/** Coefficient of variation of per-channel total bursts. */
double
channelImbalance(const dram::SimulationResult &result)
{
    util::RunningStats stats;
    for (const auto &c : result.channels) {
        stats.add(static_cast<double>(c.readBursts + c.writeBursts));
    }
    return stats.mean() == 0.0 ? 0.0 : stats.stddev() / stats.mean();
}

} // namespace

int
main()
{
    using namespace bench;
    banner("Ablation: address mapping",
           "Row-size vs burst-size channel interleaving");

    bool preserved = true;
    for (const char *name : {"FBC-Linear1", "T-Rex1", "OpenCL1"}) {
        const mem::Trace trace =
            workloads::makeDeviceTrace(name, traceLength() / 2, 1);
        const mem::Trace synth = synthesizeMcc(
            trace, core::PartitionConfig::twoLevelTs());

        std::printf("%s\n", name);
        std::printf("  %-12s %-10s %10s %10s %10s\n", "mapping",
                    "stream", "imbalance", "rdHit%", "rdLatency");

        double base_latency[2] = {0, 0};
        double synth_latency[2] = {0, 0};
        int idx = 0;
        for (const auto mapping : {dram::AddressMapping::RoRaBaChCo,
                                   dram::AddressMapping::RoRaBaCoCh}) {
            dram::DramConfig config;
            config.mapping = mapping;
            const char *label =
                mapping == dram::AddressMapping::RoRaBaChCo
                    ? "RoRaBaChCo"
                    : "RoRaBaCoCh";

            const auto base = dram::simulateTrace(trace, config);
            const auto model = dram::simulateTrace(synth, config);
            for (const auto *run : {&base, &model}) {
                const double hit_rate =
                    run->readBursts() == 0
                        ? 0.0
                        : 100.0 *
                              static_cast<double>(run->readRowHits()) /
                              static_cast<double>(run->readBursts());
                std::printf("  %-12s %-10s %10.3f %9.1f%% %10.1f\n",
                            label, run == &base ? "baseline" : "McC",
                            channelImbalance(*run), hit_rate,
                            run->avgReadLatency());
            }
            base_latency[idx] = base.avgReadLatency();
            synth_latency[idx] = model.avgReadLatency();
            ++idx;
        }

        // When the baseline has a decisive preference (>20% latency
        // swing) the synthetic stream must agree on the direction;
        // near-ties carry no design signal either way.
        const double base_delta = base_latency[1] - base_latency[0];
        const double synth_delta = synth_latency[1] - synth_latency[0];
        const bool decisive =
            std::abs(base_delta) > 0.2 * base_latency[0];
        preserved &= !decisive || base_delta * synth_delta > 0;
        std::printf("  latency delta (CoCh - ChCo): baseline %+.1f, "
                    "McC %+.1f\n\n",
                    base_delta, synth_delta);
    }

    shapeCheck("synthetic streams preserve the mapping preference of "
               "their baselines",
               preserved);
    return 0;
}
