/**
 * @file
 * Fig. 14: geometric-mean L1 and L2 cache miss rates over the 23
 * SPEC-like benchmarks for two L1 configurations (16KB 2-way and
 * 32KB 4-way), comparing Baseline, Mocktails (Dynamic),
 * Mocktails (4KB) and HRD.
 *
 * Expected shape: Mocktails (Dynamic) closest to baseline;
 * Mocktails (4KB) slightly worse (looser address bounds); HRD close
 * on miss rate but with no phase behaviour.
 */

#include "baselines/hrd.hpp"
#include "cache/hierarchy.hpp"
#include "common.hpp"

namespace
{

using namespace bench;

struct MissRates
{
    double l1 = 0.0;
    double l2 = 0.0;
};

MissRates
runCaches(const mem::Trace &trace, const cache::CacheConfig &l1)
{
    cache::HierarchyConfig config;
    config.l1 = l1;
    cache::Hierarchy hierarchy(config);
    hierarchy.run(trace);
    return {hierarchy.l1Stats().missRate(),
            hierarchy.l2Stats().missRate()};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bench;
    initTelemetry(argc, argv);
    banner("Fig. 14",
           "Cache miss rates (geometric mean over 23 benchmarks) for "
           "two cache configurations");

    const std::size_t requests = traceLength();
    const auto phase_config =
        core::PartitionConfig::twoLevelTsByRequests(10000);
    const auto fixed_config =
        core::PartitionConfig::twoLevelTsFixed(10000, 4096);

    const std::vector<std::pair<const char *, cache::CacheConfig>>
        l1_configs = {{"16KB 2-way", {16 * 1024, 2, 64}},
                      {"32KB 4-way", {32 * 1024, 4, 64}}};

    bool dynamic_wins_everywhere = true;
    for (const auto &[label, l1] : l1_configs) {
        std::vector<double> base_l1, base_l2, dyn_l1, dyn_l2, fix_l1,
            fix_l2, hrd_l1, hrd_l2;
        for (const auto &name : workloads::specBenchmarks()) {
            const mem::Trace trace =
                workloads::makeSpecTrace(name, requests, 1);

            const auto base = runCaches(trace, l1);
            const auto dyn =
                runCaches(synthesizeMcc(trace, phase_config), l1);
            const auto fix =
                runCaches(synthesizeMcc(trace, fixed_config), l1);
            const auto hrd = runCaches(
                baselines::synthesizeHrd(baselines::buildHrd(trace), 1),
                l1);

            base_l1.push_back(base.l1);
            base_l2.push_back(base.l2);
            dyn_l1.push_back(dyn.l1);
            dyn_l2.push_back(dyn.l2);
            fix_l1.push_back(fix.l1);
            fix_l2.push_back(fix.l2);
            hrd_l1.push_back(hrd.l1);
            hrd_l2.push_back(hrd.l2);
        }

        const double g_base_l1 = 100.0 * util::geometricMean(base_l1);
        const double g_dyn_l1 = 100.0 * util::geometricMean(dyn_l1);
        const double g_fix_l1 = 100.0 * util::geometricMean(fix_l1);
        const double g_hrd_l1 = 100.0 * util::geometricMean(hrd_l1);
        const double g_base_l2 = 100.0 * util::geometricMean(base_l2);
        const double g_dyn_l2 = 100.0 * util::geometricMean(dyn_l2);
        const double g_fix_l2 = 100.0 * util::geometricMean(fix_l2);
        const double g_hrd_l2 = 100.0 * util::geometricMean(hrd_l2);

        std::printf("%s\n", label);
        std::printf("  %-10s %10s %14s %14s %10s\n", "cache",
                    "Baseline", "Mock(Dynamic)", "Mock(4KB)", "HRD");
        std::printf("  %-10s %9.2f%% %13.2f%% %13.2f%% %9.2f%%\n",
                    "L1", g_base_l1, g_dyn_l1, g_fix_l1, g_hrd_l1);
        std::printf("  %-10s %9.2f%% %13.2f%% %13.2f%% %9.2f%%\n\n",
                    "L2", g_base_l2, g_dyn_l2, g_fix_l2, g_hrd_l2);

        dynamic_wins_everywhere &=
            std::abs(g_dyn_l1 - g_base_l1) <=
            std::abs(g_fix_l1 - g_base_l1) + 0.5;
    }

    shapeCheck("Mocktails (Dynamic) tracks the baseline L1 miss rate "
               "at least as well as Mocktails (4KB)",
               dynamic_wins_everywhere);
    return 0;
}
