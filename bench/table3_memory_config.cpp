/**
 * @file
 * Table III: the memory configuration used by every DRAM experiment.
 */

#include "common.hpp"

int
main()
{
    using namespace bench;
    banner("Table III", "Memory configuration");

    const dram::DramConfig c;
    std::printf("%-38s %s\n", "Parameter", "Value");
    std::printf("%-38s %u\n", "Number of Channels", c.channels);
    std::printf("%-38s %u & %u\n",
                "Ranks per Channel & Banks per Rank", c.ranksPerChannel,
                c.banksPerRank);
    std::printf("%-38s %u bytes\n", "Burst Size", c.burstSize);
    std::printf("%-38s %u & %u bursts\n", "Read & Write Queue Size",
                c.readQueueCapacity, c.writeQueueCapacity);
    std::printf("%-38s %.0f%% & %.0f%%\n",
                "High & Low Write Threshold",
                100.0 * c.writeHighThreshold,
                100.0 * c.writeLowThreshold);
    std::printf("%-38s %s\n", "Scheduling", "FR-FCFS");
    std::printf("%-38s %s\n", "Page Policy", "open adaptive");
    std::printf("%-38s RoRaBaChCo\n", "Address Mapping");
    std::printf("%-38s tRCD=%u tRP=%u tCL=%u tCWL=%u tBURST=%u\n",
                "Timing (cycles)", c.tRCD, c.tRP, c.tCL, c.tCWL,
                c.tBURST);

    std::printf("\n");
    shapeCheck("configuration matches the paper's Table III",
               c.channels == 4 && c.ranksPerChannel == 1 &&
                   c.banksPerRank == 8 && c.burstSize == 32 &&
                   c.readQueueCapacity == 32 &&
                   c.writeQueueCapacity == 64 &&
                   c.writeHighThreshold == 0.85 &&
                   c.writeLowThreshold == 0.50 &&
                   c.isValid());
    return 0;
}
