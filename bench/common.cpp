#include "common.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "obs/trace_event.hpp"
#include "telemetry/exporter.hpp"

namespace bench
{

void
initTelemetry(int argc, char **argv)
{
    std::string path;
    std::uint64_t interval_ms = 0;
    for (int i = 1; argv != nullptr && i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--telemetry") == 0)
            path = argv[++i];
        else if (std::strcmp(argv[i], "--telemetry-interval") == 0)
            interval_ms = std::strtoull(argv[++i], nullptr, 10);
    }
    if (path.empty()) {
        if (const char *env = std::getenv("MOCKTAILS_TELEMETRY"))
            path = env;
        if (const char *env =
                std::getenv("MOCKTAILS_TELEMETRY_INTERVAL_MS"))
            interval_ms = std::strtoull(env, nullptr, 10);
    }
    if (path.empty())
        return;

    // The statics below are constructed after the registry singleton
    // (global() is called first), so their destructors — which take
    // the final snapshot — run before the registry is torn down.
    static bool initialised = false;
    if (initialised)
        return;
    initialised = true;

    auto &registry = telemetry::MetricsRegistry::global();
    telemetry::setEnabled(true);
    auto exporter = telemetry::makeFileExporter(path);
    if (!exporter->ok()) {
        std::fprintf(stderr, "bench: cannot write telemetry to %s\n",
                     path.c_str());
        return;
    }
    if (interval_ms > 0) {
        static telemetry::PeriodicExporter periodic(
            registry, std::move(exporter),
            std::chrono::milliseconds(interval_ms));
    } else {
        struct FinalDump
        {
            std::unique_ptr<telemetry::Exporter> exporter;
            ~FinalDump()
            {
                exporter->write(
                    telemetry::MetricsRegistry::global().snapshot());
            }
        };
        static FinalDump dump{std::move(exporter)};
    }
}

void
initTracing(int argc, char **argv)
{
    std::string path;
    for (int i = 1; argv != nullptr && i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--trace-out") == 0)
            path = argv[++i];
    }
    if (path.empty()) {
        if (const char *env = std::getenv("MOCKTAILS_TRACE_OUT"))
            path = env;
    }
    if (path.empty())
        return;

    static bool initialised = false;
    if (initialised)
        return;
    initialised = true;

    // A static collector whose destructor detaches itself and writes
    // the file, so any instrumented work between banner() and process
    // exit lands in the output.
    struct CollectorDump
    {
        obs::TraceEventWriter writer;
        std::string path;
        ~CollectorDump()
        {
            obs::setCollector(nullptr);
            const bool binary =
                path.size() > 4 &&
                path.compare(path.size() - 4, 4, ".bin") == 0;
            const bool ok = binary ? writer.saveBinary(path)
                                   : writer.saveJson(path);
            if (!ok) {
                std::fprintf(stderr,
                             "bench: cannot write trace to %s\n",
                             path.c_str());
                return;
            }
            std::fprintf(
                stderr, "bench: %zu trace events (%llu dropped) -> %s\n",
                writer.size(),
                static_cast<unsigned long long>(writer.dropped()),
                path.c_str());
        }
    };
    static CollectorDump dump{obs::TraceEventWriter{}, path};
    obs::setCollector(&dump.writer);
}

std::size_t
traceLength()
{
    static const std::size_t length = [] {
        if (const char *env = std::getenv("MOCKTAILS_BENCH_REQUESTS"))
            return static_cast<std::size_t>(
                std::strtoull(env, nullptr, 10));
        return std::size_t{60000};
    }();
    return length;
}

const std::vector<std::string> &
deviceClasses()
{
    static const std::vector<std::string> classes = {"CPU", "DPU",
                                                     "GPU", "VPU"};
    return classes;
}

std::vector<std::string>
tracesForDevice(const std::string &device)
{
    std::vector<std::string> names;
    for (const auto &spec : workloads::deviceTraces()) {
        if (spec.device == device)
            names.push_back(spec.name);
    }
    return names;
}

mem::Trace
synthesizeMcc(const mem::Trace &trace,
              const core::PartitionConfig &config, std::uint64_t seed)
{
    return core::synthesize(core::buildProfile(trace, config), seed);
}

mem::Trace
synthesizeStm(const mem::Trace &trace,
              const core::PartitionConfig &config, std::uint64_t seed)
{
    return core::synthesize(
        core::buildProfile(trace, config, baselines::stmHooks()), seed);
}

ModelComparison
compareModels(const mem::Trace &trace,
              const core::PartitionConfig &config,
              const dram::DramConfig &dram_config)
{
    ModelComparison out;
    out.baseline = dram::simulateTrace(trace, dram_config);
    out.mcc = dram::simulateTrace(synthesizeMcc(trace, config),
                                  dram_config);
    out.stm = dram::simulateTrace(synthesizeStm(trace, config),
                                  dram_config);
    return out;
}

void
banner(const char *experiment_id, const char *description)
{
    initTelemetry();
    initTracing();
    std::printf("=== %s ===\n%s\n", experiment_id, description);
    std::printf("(traces: %zu requests each; synthetic substitutes "
                "for the proprietary Table II workloads)\n\n",
                traceLength());
}

bool
shapeCheck(const std::string &what, bool condition)
{
    std::printf("check %s: %s\n", condition ? "PASS" : "notice",
                what.c_str());
    return condition;
}

} // namespace bench
