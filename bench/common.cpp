#include "common.hpp"

#include <cstdlib>

namespace bench
{

std::size_t
traceLength()
{
    static const std::size_t length = [] {
        if (const char *env = std::getenv("MOCKTAILS_BENCH_REQUESTS"))
            return static_cast<std::size_t>(
                std::strtoull(env, nullptr, 10));
        return std::size_t{60000};
    }();
    return length;
}

const std::vector<std::string> &
deviceClasses()
{
    static const std::vector<std::string> classes = {"CPU", "DPU",
                                                     "GPU", "VPU"};
    return classes;
}

std::vector<std::string>
tracesForDevice(const std::string &device)
{
    std::vector<std::string> names;
    for (const auto &spec : workloads::deviceTraces()) {
        if (spec.device == device)
            names.push_back(spec.name);
    }
    return names;
}

mem::Trace
synthesizeMcc(const mem::Trace &trace,
              const core::PartitionConfig &config, std::uint64_t seed)
{
    return core::synthesize(core::buildProfile(trace, config), seed);
}

mem::Trace
synthesizeStm(const mem::Trace &trace,
              const core::PartitionConfig &config, std::uint64_t seed)
{
    return core::synthesize(
        core::buildProfile(trace, config, baselines::stmHooks()), seed);
}

ModelComparison
compareModels(const mem::Trace &trace,
              const core::PartitionConfig &config,
              const dram::DramConfig &dram_config)
{
    ModelComparison out;
    out.baseline = dram::simulateTrace(trace, dram_config);
    out.mcc = dram::simulateTrace(synthesizeMcc(trace, config),
                                  dram_config);
    out.stm = dram::simulateTrace(synthesizeStm(trace, config),
                                  dram_config);
    return out;
}

void
banner(const char *experiment_id, const char *description)
{
    std::printf("=== %s ===\n%s\n", experiment_id, description);
    std::printf("(traces: %zu requests each; synthetic substitutes "
                "for the proprietary Table II workloads)\n\n",
                traceLength());
}

bool
shapeCheck(const std::string &what, bool condition)
{
    std::printf("check %s: %s\n", condition ? "PASS" : "notice",
                what.c_str());
    return condition;
}

} // namespace bench
