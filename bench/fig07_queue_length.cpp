/**
 * @file
 * Fig. 7: average read and write queue length per device class for
 * baseline, 2L-TS (McC) and 2L-TS (STM).
 *
 * Expected shape: write queues are much longer than read queues
 * (write-drain mode batches writes), GPUs have the longest queues
 * (bursty, large requests), and both models track the baseline.
 */

#include "common.hpp"

int
main()
{
    using namespace bench;
    banner("Fig. 7",
           "Average read and write queue length for each SoC device");

    std::printf("%-8s | %9s %9s %9s | %9s %9s %9s\n", "device",
                "rdQ-base", "rdQ-McC", "rdQ-STM", "wrQ-base", "wrQ-McC",
                "wrQ-STM");

    double gpu_wr = 0.0, dpu_wr = 0.0;
    double all_rd = 0.0, all_wr = 0.0;
    for (const auto &device : deviceClasses()) {
        util::RunningStats rd_base, rd_mcc, rd_stm;
        util::RunningStats wr_base, wr_mcc, wr_stm;
        for (const auto &name : tracesForDevice(device)) {
            const mem::Trace trace =
                workloads::makeDeviceTrace(name, traceLength(), 1);
            const auto cmp = compareModels(trace);
            rd_base.add(cmp.baseline.avgReadQueueLength());
            rd_mcc.add(cmp.mcc.avgReadQueueLength());
            rd_stm.add(cmp.stm.avgReadQueueLength());
            wr_base.add(cmp.baseline.avgWriteQueueLength());
            wr_mcc.add(cmp.mcc.avgWriteQueueLength());
            wr_stm.add(cmp.stm.avgWriteQueueLength());
        }
        std::printf("%-8s | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n",
                    device.c_str(), rd_base.mean(), rd_mcc.mean(),
                    rd_stm.mean(), wr_base.mean(), wr_mcc.mean(),
                    wr_stm.mean());
        if (device == "GPU")
            gpu_wr = wr_base.mean();
        if (device == "DPU")
            dpu_wr = wr_base.mean();
        all_rd += rd_base.mean();
        all_wr += wr_base.mean();
    }

    std::printf("\n");
    shapeCheck("write queues are longer than read queues on average "
               "(write drain)",
               all_wr > all_rd);
    shapeCheck("GPU write queues exceed DPU write queues "
               "(GPU burstiness)",
               gpu_wr > dpu_wr);
    return 0;
}
